/**
 * @file
 * User-facing translator chain (paper Section 2.2): speech recognition
 * (Whisper) feeds a language model (GPT-Neo 1.3B) whose output prompts
 * image generation (Stable-Diffusion UNet). None of the three models is
 * invoked many times in succession — exactly the FIFO multi-DNN regime
 * FlashMem targets.
 *
 * Note the memory: the three models together hold ~4.8 GB of fp16
 * weights; preloading them simultaneously is infeasible, and serial
 * cold-start preloading pays the full load+transform price per model.
 */

#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "multidnn/fifo_scheduler.hh"

int
main()
{
    using namespace flashmem;
    using models::ModelId;

    auto device = gpusim::DeviceProfile::onePlus12();
    auto chain = multidnn::chainWorkload(
        {ModelId::WhisperMedium, ModelId::GPTNeo1_3B, ModelId::SDUNet});

    Bytes total_weights = 0;
    for (const auto &req : chain)
        total_weights +=
            models::buildModel(req.model).totalWeightBytes();
    std::cout << "Speech -> text -> image chain on " << device.name
              << " (" << formatBytes(total_weights)
              << " of weights across 3 models)\n\n";

    core::FlashMem flashmem(device);
    auto flash = multidnn::FifoScheduler::runFlashMem(flashmem, chain);
    // SmartMem is the strongest preloading baseline that supports all
    // three models.
    auto smem = multidnn::FifoScheduler::runPreload(
        baselines::FrameworkId::SmartMem, device, chain);

    // Per-stage request latency (end - arrival): with gap 0 the later
    // stages queue behind the earlier ones, and that wait is part of
    // what the user experiences.
    Table t({"Stage", "FlashMem", "SmartMem"});
    for (std::size_t i = 0; i < chain.size(); ++i) {
        t.addRow({flash.runs[i].model,
                  formatMs(flash.runs[i].requestLatency()),
                  formatMs(smem.runs[i].requestLatency())});
    }
    t.addRule();
    t.addRow({"end-to-end", formatMs(flash.makespan),
              formatMs(smem.makespan)});
    t.addRow({"peak memory", formatBytes(flash.peakMemory),
              formatBytes(smem.peakMemory)});
    t.addRow({"energy", formatDouble(flash.energyJoules, 1) + " J",
              formatDouble(smem.energyJoules, 1) + " J"});
    t.print(std::cout);

    std::cout << "\nChain speedup over SmartMem: "
              << formatRatio(static_cast<double>(smem.makespan) /
                             static_cast<double>(flash.makespan))
              << "\n";
    return 0;
}
