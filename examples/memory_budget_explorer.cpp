/**
 * @file
 * Memory/latency trade-off explorer (paper Section 3.2 "Hyperparameters
 * Considerations" and Figure 8): sweeps the peak-memory bound M_peak and
 * the preload weight lambda, showing how the overlap plan trades
 * integrated latency against average memory for a chosen model.
 *
 * Usage: memory_budget_explorer [model-abbreviation]  (default GPTN-1.3B)
 */

#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/flashmem.hh"
#include "models/model_zoo.hh"

int
main(int argc, char **argv)
{
    using namespace flashmem;

    auto device = gpusim::DeviceProfile::onePlus12();
    auto model_id =
        models::modelIdFromAbbr(argc > 1 ? argv[1] : "GPTN-1.3B");
    auto graph = models::buildModel(model_id);

    std::cout << "Memory-budget sweep for " << graph.name() << " on "
              << device.name << "\n\n";

    Table t({"M_peak", "lambda", "Overlap%", "Preload", "Integrated",
             "Exec", "Avg mem", "Peak mem"});
    for (Bytes mpeak : {mib(64), mib(128), mib(256), mib(500),
                        mib(1024)}) {
        for (double lambda : {0.5, 0.9}) {
            core::FlashMemOptions opt;
            opt.opg.mPeak = mpeak;
            opt.opg.lambda = lambda;
            core::FlashMem fm(device, opt);
            auto compiled = fm.compile(graph);
            gpusim::GpuSimulator sim(device);
            auto r = fm.execute(sim, compiled);
            t.addRow({formatBytes(mpeak), formatDouble(lambda, 1),
                      formatDouble(100 * compiled.overlapFraction(), 1),
                      formatBytes(compiled.plan.preloadBytes(
                          compiled.fusedGraph)),
                      formatMs(r.integratedLatency()),
                      formatMs(r.execLatency()),
                      formatBytes(
                          static_cast<Bytes>(r.avgMemoryBytes)),
                      formatBytes(r.peakMemory)});
        }
    }
    t.print(std::cout);
    std::cout << "\nLarger M_peak admits more streaming in flight; "
                 "higher lambda penalizes preloading harder.\n";
    return 0;
}
