/**
 * @file
 * Camera-based augmented-reality pipeline (paper Section 2.2): an
 * object-detection backbone runs briefly to identify key objects, a
 * language model interprets user actions, and a depth model performs
 * scene analysis — each triggered occasionally.
 *
 * Compares FlashMem's streamed multi-DNN execution against the
 * MNN-style preloading strategy on the same queue, then shows the
 * event-driven scheduler's policies on the FlashMem side: the depth
 * model is latency-critical (high priority), the language model is
 * best-effort, and memory-aware admission re-plans models when the
 * shared capacity budget is crowded.
 */

#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "metrics/report.hh"
#include "multidnn/scheduler.hh"

int
main()
{
    using namespace flashmem;
    using models::ModelId;

    auto device = gpusim::DeviceProfile::onePlus12();
    // Detection (ResNet50) -> action interpretation (GPT-Neo small) ->
    // depth analysis (DepthAnything-S), three rounds.
    auto queue = multidnn::interleavedWorkload(
        {ModelId::ResNet50, ModelId::GPTNeoS, ModelId::DepthAnythingS},
        /*iterations=*/3, /*gap=*/milliseconds(50), /*seed=*/2026);
    // Scene analysis must stay responsive; the LM is best-effort.
    multidnn::assignPriorities(queue, {{ModelId::DepthAnythingS, 2},
                                       {ModelId::ResNet50, 1},
                                       {ModelId::GPTNeoS, 0}});

    std::cout << "AR pipeline: " << queue.size()
              << " requests on " << device.name << "\n\n";

    core::FlashMem flashmem(device);
    multidnn::SchedulerConfig cfg;
    cfg.capacityBudget = gib(1.0);
    multidnn::EventScheduler sched(flashmem, cfg);

    auto flash = sched.run(queue, multidnn::FifoPolicy{});
    auto mnn = multidnn::EventScheduler::runPreload(
        baselines::FrameworkId::MNN, device, queue,
        multidnn::FifoPolicy{});

    Table t({"Strategy", "Makespan", "Mean latency", "Mean queue",
             "Peak mem", "Avg mem", "Energy"});
    auto row = [&](const char *name,
                   const multidnn::ScheduleOutcome &o) {
        t.addRow({name, formatMs(o.makespan), formatMs(o.meanLatency()),
                  formatMs(o.meanQueueDelay()),
                  formatBytes(o.peakMemory),
                  formatBytes(static_cast<Bytes>(o.avgMemoryBytes)),
                  formatDouble(o.energyJoules, 1) + " J"});
    };
    row("FlashMem", flash);
    row("MNN (preload)", mnn);
    t.print(std::cout);

    std::cout << "\nMemory over time:\n";
    metrics::renderAsciiChart(
        std::cout,
        {{"FlashMem", '#', metrics::sampleTrace(flash.trace, 70)},
         {"MNN", '.', metrics::sampleTrace(mnn.trace, 70)}},
        70, 12);

    // Policy comparison on the FlashMem side: how does the depth
    // model's latency fare when it outranks the queue vs plain FIFO?
    std::cout << "\nScheduling policies (FlashMem):\n";
    Table pt({"Policy", "Makespan", "Mean latency",
              "DepthAnything mean", "Re-plans"});
    for (auto kind : multidnn::allPolicyKinds()) {
        auto policy = multidnn::makePolicy(kind);
        auto o = sched.run(queue, *policy);
        SimTime depth_total = 0;
        int depth_n = 0;
        for (const auto &r : o.runs) {
            if (r.model == "depth_anything_s") {
                depth_total += r.requestLatency();
                ++depth_n;
            }
        }
        pt.addRow({o.policy, formatMs(o.makespan),
                   formatMs(o.meanLatency()),
                   formatMs(depth_n ? depth_total / depth_n : 0),
                   std::to_string(o.replans)});
    }
    pt.print(std::cout);

    std::cout << "\nSpeedup: "
              << formatRatio(static_cast<double>(mnn.makespan) /
                             static_cast<double>(flash.makespan))
              << ", peak-memory reduction: "
              << formatRatio(static_cast<double>(mnn.peakMemory) /
                             static_cast<double>(flash.peakMemory))
              << "\n";
    return 0;
}
