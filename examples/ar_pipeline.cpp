/**
 * @file
 * Camera-based augmented-reality pipeline (paper Section 2.2): an
 * object-detection backbone runs briefly to identify key objects, a
 * language model interprets user actions, and a depth model performs
 * scene analysis — each triggered occasionally, in FIFO order.
 *
 * Compares FlashMem's streamed multi-DNN execution against the MNN-style
 * preloading strategy on the same queue.
 */

#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "metrics/report.hh"
#include "multidnn/fifo_scheduler.hh"

int
main()
{
    using namespace flashmem;
    using models::ModelId;

    auto device = gpusim::DeviceProfile::onePlus12();
    // Detection (ResNet50) -> action interpretation (GPT-Neo small) ->
    // depth analysis (DepthAnything-S), three rounds.
    auto queue = multidnn::interleavedWorkload(
        {ModelId::ResNet50, ModelId::GPTNeoS, ModelId::DepthAnythingS},
        /*iterations=*/3, /*gap=*/milliseconds(50), /*seed=*/2026);

    std::cout << "AR pipeline: " << queue.size()
              << " requests on " << device.name << "\n\n";

    core::FlashMem flashmem(device);
    auto flash = multidnn::FifoScheduler::runFlashMem(flashmem, queue);
    auto flash_trace = multidnn::FifoScheduler::lastTrace();
    auto mnn = multidnn::FifoScheduler::runPreload(
        baselines::FrameworkId::MNN, device, queue);
    auto mnn_trace = multidnn::FifoScheduler::lastTrace();

    Table t({"Strategy", "Makespan", "Mean latency", "Peak mem",
             "Avg mem", "Energy"});
    auto row = [&](const char *name, const multidnn::FifoOutcome &o) {
        t.addRow({name, formatMs(o.makespan), formatMs(o.meanLatency()),
                  formatBytes(o.peakMemory),
                  formatBytes(static_cast<Bytes>(o.avgMemoryBytes)),
                  formatDouble(o.energyJoules, 1) + " J"});
    };
    row("FlashMem", flash);
    row("MNN (preload)", mnn);
    t.print(std::cout);

    std::cout << "\nMemory over time:\n";
    metrics::renderAsciiChart(
        std::cout,
        {{"FlashMem", '#', metrics::sampleTrace(flash_trace, 70)},
         {"MNN", '.', metrics::sampleTrace(mnn_trace, 70)}},
        70, 12);

    std::cout << "\nSpeedup: "
              << formatRatio(static_cast<double>(mnn.makespan) /
                             static_cast<double>(flash.makespan))
              << ", peak-memory reduction: "
              << formatRatio(static_cast<double>(mnn.peakMemory) /
                             static_cast<double>(flash.peakMemory))
              << "\n";
    return 0;
}
