/**
 * @file
 * Quickstart: compile and run one model under FlashMem.
 *
 * Demonstrates the public API end to end: pick a device profile, build
 * a model graph, compile it (fusion + LC-OPG overlap planning + kernel
 * rewriting), execute on a simulated device, and inspect the results —
 * including a look at one generated pipelined kernel.
 *
 * Usage: quickstart [model-abbreviation]   (default: ViT)
 */

#include <iostream>

#include "common/strutil.hh"
#include "core/flashmem.hh"
#include "models/model_zoo.hh"

int
main(int argc, char **argv)
{
    using namespace flashmem;

    // 1. Choose a device and a model.
    auto device = gpusim::DeviceProfile::onePlus12();
    auto model_id = models::modelIdFromAbbr(argc > 1 ? argv[1] : "ViT");
    auto graph = models::buildModel(model_id);

    std::cout << "Model: " << graph.name() << " ("
              << formatDouble(graph.totalParams() / 1e6, 1) << "M params, "
              << graph.layerCount() << " lowered layers, "
              << formatBytes(graph.totalWeightBytes()) << " weights)\n"
              << "Device: " << device.name << " / " << device.gpu << "\n\n";

    // 2. Offline stage: fuse, plan, rewrite.
    core::FlashMem flashmem(device);
    auto compiled = flashmem.compile(graph);

    std::cout << "Offline stage:\n"
              << "  fused layers:      " << compiled.fusedGraph.layerCount()
              << " (from " << graph.layerCount() << ")\n"
              << "  overlap fraction:  "
              << formatDouble(100.0 * compiled.overlapFraction(), 1)
              << "% of weight bytes streamed\n"
              << "  preload set |W|:   "
              << formatBytes(compiled.plan.preloadBytes(compiled.fusedGraph))
              << "\n"
              << "  solver:            " << compiled.stats.windows
              << " windows, "
              << formatDouble(compiled.stats.solveSeconds, 2)
              << " s solve time\n\n";

    // 3. Peek at one rewritten kernel (Figure 5b style).
    for (const auto &k : compiled.kernels) {
        if (k.tmpl == core::KernelTemplate::PipelinedBranchFree) {
            std::cout << "Example rewritten kernel (layer " << k.layer
                      << ", inline load " << formatBytes(k.inlineLoadBytes)
                      << "):\n" << k.source << "\n";
            break;
        }
    }

    // 4. Online stage: execute on the simulated device.
    gpusim::GpuSimulator sim(device);
    auto result = flashmem.execute(sim, compiled);

    std::cout << "Execution:\n"
              << "  integrated latency: "
              << formatMs(result.integratedLatency()) << "\n"
              << "  peak memory:        " << formatBytes(result.peakMemory)
              << "\n"
              << "  average memory:     "
              << formatBytes(static_cast<Bytes>(result.avgMemoryBytes))
              << "\n"
              << "  energy:             "
              << formatDouble(sim.energyJoules(result.end), 1) << " J\n";
    return 0;
}
