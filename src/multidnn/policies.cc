#include "multidnn/policies.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flashmem::multidnn {

namespace {

/** Lexicographic (arrival, queueIndex) — the FIFO total order. */
bool
fifoBefore(const ReadyRequest &a, const ReadyRequest &b)
{
    if (a.arrival != b.arrival)
        return a.arrival < b.arrival;
    return a.queueIndex < b.queueIndex;
}

} // namespace

std::size_t
FifoPolicy::select(SimTime, const std::vector<ReadyRequest> &ready) const
{
    FM_ASSERT(!ready.empty(), "select() on empty ready set");
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
        if (fifoBefore(ready[i], ready[best]))
            best = i;
    }
    return best;
}

std::size_t
SjfPolicy::select(SimTime, const std::vector<ReadyRequest> &ready) const
{
    FM_ASSERT(!ready.empty(), "select() on empty ready set");
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
        if (ready[i].estimatedLatency != ready[best].estimatedLatency
                ? ready[i].estimatedLatency < ready[best].estimatedLatency
                : fifoBefore(ready[i], ready[best]))
            best = i;
    }
    return best;
}

std::int64_t
PriorityAgingPolicy::effectivePriority(SimTime now,
                                       const ReadyRequest &r) const
{
    SimTime waited = std::max<SimTime>(now - r.arrival, 0);
    return static_cast<std::int64_t>(r.priority) +
           static_cast<std::int64_t>(waited / aging_quantum_);
}

std::size_t
PriorityAgingPolicy::select(SimTime now,
                            const std::vector<ReadyRequest> &ready) const
{
    FM_ASSERT(!ready.empty(), "select() on empty ready set");
    std::size_t best = 0;
    auto best_p = effectivePriority(now, ready[0]);
    for (std::size_t i = 1; i < ready.size(); ++i) {
        auto p = effectivePriority(now, ready[i]);
        if (p > best_p ||
            (p == best_p && fifoBefore(ready[i], ready[best]))) {
            best = i;
            best_p = p;
        }
    }
    return best;
}

std::size_t
DeadlinePolicy::select(SimTime,
                       const std::vector<ReadyRequest> &ready) const
{
    FM_ASSERT(!ready.empty(), "select() on empty ready set");
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
        if (ready[i].deadline() != ready[best].deadline()
                ? ready[i].deadline() < ready[best].deadline()
                : fifoBefore(ready[i], ready[best]))
            best = i;
    }
    return best;
}

Admission
DeadlinePolicy::admit(SimTime now, const ReadyRequest &r) const
{
    if (r.latencyBound <= 0)
        return Admission::Admit;
    // Feasible iff the request could still meet its deadline were it
    // dispatched right now at its full-budget estimate.
    if (now + r.estimatedLatency <= r.deadline())
        return Admission::Admit;
    return mode_ == Overload::Shed ? Admission::Shed
                                   : Admission::Degrade;
}

Bytes
DeadlinePolicy::degradedBudget(Bytes base_budget) const
{
    if (mode_ != Overload::Degrade)
        return base_budget;
    auto scaled = static_cast<Bytes>(
        static_cast<double>(base_budget) * degrade_fraction_);
    return std::min(base_budget, scaled);
}

std::unique_ptr<SchedulingPolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Fifo:
        return std::make_unique<FifoPolicy>();
      case PolicyKind::ShortestJobFirst:
        return std::make_unique<SjfPolicy>();
      case PolicyKind::PriorityAging:
        return std::make_unique<PriorityAgingPolicy>();
      case PolicyKind::Deadline:
        return std::make_unique<DeadlinePolicy>();
      case PolicyKind::MemoryAware:
        return std::make_unique<MemoryAwarePolicy>();
    }
    FM_FATAL("unknown policy kind");
}

const std::vector<PolicyKind> &
allPolicyKinds()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Fifo,
        PolicyKind::ShortestJobFirst,
        PolicyKind::PriorityAging,
        PolicyKind::Deadline,
        PolicyKind::MemoryAware,
    };
    return kinds;
}

} // namespace flashmem::multidnn
