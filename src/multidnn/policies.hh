/**
 * @file
 * Pluggable scheduling policies for the event-driven multi-DNN
 * scheduler (paper Figure 1c / Section 5.3).
 *
 * A policy answers one question — which ready request the device runs
 * next — and optionally opts into memory-aware admission, where the
 * scheduler caps the co-resident working-set budget and re-plans
 * models whose residual capacity share shifted (see
 * multidnn::EventScheduler).
 */

#ifndef FLASHMEM_MULTIDNN_POLICIES_HH
#define FLASHMEM_MULTIDNN_POLICIES_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "models/model_zoo.hh"

namespace flashmem::multidnn {

/** Scheduler view of one ready (arrived, not yet dispatched) request. */
struct ReadyRequest
{
    std::size_t queueIndex = 0;   ///< position in the submitted queue
    models::ModelId model{};
    SimTime arrival = 0;
    int priority = 0;
    /** Warm single-run execution estimate for this model (SJF key);
     * only populated when the policy declares needsEstimates(). */
    SimTime estimatedLatency = 0;
    /** Latency SLO carried by the request (0 = unbounded). */
    SimTime latencyBound = 0;
    /** Sticky degrade mark: once admission degrades a request it is
     * dispatched at the policy's degraded budget. */
    bool degraded = false;
    /** @name Fault-recovery state (multidnn/faults.hh). @{ */
    /** Dispatches of this request killed by a fault so far. */
    int attempts = 0;
    /** Device the most recent killed dispatch ran on (-1 = none);
     * re-dispatches landing elsewhere count as failovers. */
    int lastFailedDevice = -1;
    /** @} */

    /** Absolute completion deadline (kTimeNever when unbounded). */
    SimTime deadline() const
    {
        return latencyBound > 0 ? arrival + latencyBound : kTimeNever;
    }
};

/** Admission verdict for one ready request at a dispatch point. */
enum class Admission
{
    Admit,   ///< eligible to run as-is
    Degrade, ///< run, but at the policy's degraded capacity budget
    Shed,    ///< drop: it cannot meet its SLO; do not dispatch
};

/** Strategy deciding which ready request runs on the freed device. */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Pick the next request to dispatch at simulated time @p now.
     * @param ready non-empty list of arrived requests.
     * @return index INTO @p ready (not a queue index).
     */
    virtual std::size_t select(
        SimTime now, const std::vector<ReadyRequest> &ready) const = 0;

    /**
     * True to enable memory-aware admission: the scheduler divides the
     * shared capacity budget across co-resident models and re-plans a
     * model before dispatch whenever its share shifted.
     */
    virtual bool memoryAware() const { return false; }

    /**
     * True when select() reads ReadyRequest::estimatedLatency; only
     * then does the scheduler pay for per-model estimate runs.
     */
    virtual bool needsEstimates() const { return false; }

    /**
     * True when admit() can return anything but Admit; only then do
     * schedulers pay the per-dispatch admission pass over the ready
     * set (mirrors needsEstimates()).
     */
    virtual bool needsAdmission() const { return false; }

    /**
     * SLO admission, re-evaluated on every ready request at each
     * dispatch point (device just freed). Shed requests are removed
     * from the ready set and recorded in ScheduleOutcome::shed;
     * degraded requests stay ready but dispatch at degradedBudget().
     * The default admits everything.
     */
    virtual Admission admit(SimTime /*now*/,
                            const ReadyRequest & /*r*/) const
    {
        return Admission::Admit;
    }

    /**
     * Capacity budget for requests this policy degraded; the scheduler
     * quantizes and clamps it like any admission share. Identity for
     * policies that never degrade.
     */
    virtual Bytes degradedBudget(Bytes base_budget) const
    {
        return base_budget;
    }
};

/** Arrival order (queue-index tie-break) — the seed FIFO drain. */
class FifoPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "fifo"; }
    std::size_t select(SimTime now,
                       const std::vector<ReadyRequest> &ready)
        const override;
};

/** Shortest estimated execution first (arrival/index tie-break). */
class SjfPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "sjf"; }
    std::size_t select(SimTime now,
                       const std::vector<ReadyRequest> &ready)
        const override;
    bool needsEstimates() const override { return true; }
};

/**
 * Highest effective priority first, where waiting raises priority:
 * effective = priority + waited / agingQuantum. Aging makes the policy
 * starvation-free — any request eventually outranks fresh high-priority
 * arrivals.
 */
class PriorityAgingPolicy : public SchedulingPolicy
{
  public:
    explicit PriorityAgingPolicy(SimTime aging_quantum = milliseconds(50))
        : aging_quantum_(std::max<SimTime>(aging_quantum, 1))
    {}

    const char *name() const override { return "priority-aging"; }
    std::size_t select(SimTime now,
                       const std::vector<ReadyRequest> &ready)
        const override;

    /** Effective priority of @p r at time @p now. */
    std::int64_t effectivePriority(SimTime now,
                                   const ReadyRequest &r) const;

  private:
    SimTime aging_quantum_;
};

/**
 * FIFO selection plus memory-aware admission: the scheduler caps the
 * sum of co-resident working-set budgets at its capacity budget and
 * re-plans (via FlashMem::replan, warm-started through the PlanMemo)
 * any model whose share shrank or grew since it was last planned.
 */
class MemoryAwarePolicy : public FifoPolicy
{
  public:
    const char *name() const override { return "memory-aware"; }
    bool memoryAware() const override { return true; }
};

/**
 * Deadline/SLO-aware admission (ROADMAP "deadline/SLO-aware admission"
 * item): earliest-deadline-first selection, and at every dispatch
 * point any ready request that can no longer meet its latency bound —
 * even if started immediately (now + estimate > deadline) — is shed
 * (Overload::Shed, the default) or degraded (Overload::Degrade): kept
 * alive but dispatched at a reduced capacity budget, freeing shared
 * memory for co-resident models at the cost of a late completion.
 * Unbounded requests are always admitted and order behind bounded
 * ones (deadline = never).
 */
class DeadlinePolicy : public SchedulingPolicy
{
  public:
    /** What to do with a request that cannot meet its deadline. */
    enum class Overload { Shed, Degrade };

    explicit DeadlinePolicy(Overload mode = Overload::Shed,
                            double degrade_budget_fraction = 0.5)
        : mode_(mode),
          degrade_fraction_(degrade_budget_fraction)
    {}

    const char *name() const override
    {
        return mode_ == Overload::Shed ? "deadline" : "deadline-degrade";
    }
    std::size_t select(SimTime now,
                       const std::vector<ReadyRequest> &ready)
        const override;
    bool needsEstimates() const override { return true; }
    bool needsAdmission() const override { return true; }
    Admission admit(SimTime now, const ReadyRequest &r) const override;
    Bytes degradedBudget(Bytes base_budget) const override;

    Overload mode() const { return mode_; }

  private:
    Overload mode_;
    double degrade_fraction_;
};

class DeviceCluster;

/**
 * Arrival-time admission gate, consulted by the shared cluster event
 * loop the instant a request (or a fault retry) would enter the ready
 * set — before it ever occupies a queue slot. Dispatch-point admission
 * (SchedulingPolicy::admit) only sheds a request once it is already
 * doomed; an arrival gate can project the backlog forward and refuse
 * work that will *become* doomed, so devices spend their time on
 * requests that can still meet their bounds.
 *
 * Contract for bit-exact cross-validation: implementations must decide
 * from (now, request, ready set, cluster state) only — all four are
 * identical between the fast simulator and the real EventScheduler at
 * every arrival by construction — and must NOT read
 * ReadyRequest::estimatedLatency, which the two paths populate
 * differently. Both paths must be handed the same gate object.
 */
class ArrivalAdmission
{
  public:
    virtual ~ArrivalAdmission() = default;

    /**
     * Verdict for @p r entering the ready set at @p now (fresh arrival
     * or fault retry). @p ready is the current queued-but-unplaced
     * set; @p cluster exposes the per-device compute/DMA horizons the
     * backlog model projects from. Shed verdicts drop the request with
     * DropReason::ArrivalShed; Degrade marks it for dispatch at the
     * policy's degraded budget.
     */
    virtual Admission admitAtArrival(
        SimTime now, const ReadyRequest &r,
        const std::vector<ReadyRequest> &ready,
        const DeviceCluster &cluster) const = 0;
};

/** The built-in policy set, for iteration in benches/tests. */
enum class PolicyKind
{
    Fifo,
    ShortestJobFirst,
    PriorityAging,
    Deadline,
    MemoryAware,
};

/** Construct a policy of @p kind with default parameters. */
std::unique_ptr<SchedulingPolicy> makePolicy(PolicyKind kind);

/** All built-in kinds, in presentation order. */
const std::vector<PolicyKind> &allPolicyKinds();

} // namespace flashmem::multidnn

#endif // FLASHMEM_MULTIDNN_POLICIES_HH
