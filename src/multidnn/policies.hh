/**
 * @file
 * Pluggable scheduling policies for the event-driven multi-DNN
 * scheduler (paper Figure 1c / Section 5.3).
 *
 * A policy answers one question — which ready request the device runs
 * next — and optionally opts into memory-aware admission, where the
 * scheduler caps the co-resident working-set budget and re-plans
 * models whose residual capacity share shifted (see
 * multidnn::EventScheduler).
 */

#ifndef FLASHMEM_MULTIDNN_POLICIES_HH
#define FLASHMEM_MULTIDNN_POLICIES_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "models/model_zoo.hh"

namespace flashmem::multidnn {

/** Scheduler view of one ready (arrived, not yet dispatched) request. */
struct ReadyRequest
{
    std::size_t queueIndex = 0;   ///< position in the submitted queue
    models::ModelId model{};
    SimTime arrival = 0;
    int priority = 0;
    /** Warm single-run execution estimate for this model (SJF key);
     * only populated when the policy declares needsEstimates(). */
    SimTime estimatedLatency = 0;
};

/** Strategy deciding which ready request runs on the freed device. */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Pick the next request to dispatch at simulated time @p now.
     * @param ready non-empty list of arrived requests.
     * @return index INTO @p ready (not a queue index).
     */
    virtual std::size_t select(
        SimTime now, const std::vector<ReadyRequest> &ready) const = 0;

    /**
     * True to enable memory-aware admission: the scheduler divides the
     * shared capacity budget across co-resident models and re-plans a
     * model before dispatch whenever its share shifted.
     */
    virtual bool memoryAware() const { return false; }

    /**
     * True when select() reads ReadyRequest::estimatedLatency; only
     * then does the scheduler pay for per-model estimate runs.
     */
    virtual bool needsEstimates() const { return false; }
};

/** Arrival order (queue-index tie-break) — the seed FIFO drain. */
class FifoPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "fifo"; }
    std::size_t select(SimTime now,
                       const std::vector<ReadyRequest> &ready)
        const override;
};

/** Shortest estimated execution first (arrival/index tie-break). */
class SjfPolicy : public SchedulingPolicy
{
  public:
    const char *name() const override { return "sjf"; }
    std::size_t select(SimTime now,
                       const std::vector<ReadyRequest> &ready)
        const override;
    bool needsEstimates() const override { return true; }
};

/**
 * Highest effective priority first, where waiting raises priority:
 * effective = priority + waited / agingQuantum. Aging makes the policy
 * starvation-free — any request eventually outranks fresh high-priority
 * arrivals.
 */
class PriorityAgingPolicy : public SchedulingPolicy
{
  public:
    explicit PriorityAgingPolicy(SimTime aging_quantum = milliseconds(50))
        : aging_quantum_(std::max<SimTime>(aging_quantum, 1))
    {}

    const char *name() const override { return "priority-aging"; }
    std::size_t select(SimTime now,
                       const std::vector<ReadyRequest> &ready)
        const override;

    /** Effective priority of @p r at time @p now. */
    std::int64_t effectivePriority(SimTime now,
                                   const ReadyRequest &r) const;

  private:
    SimTime aging_quantum_;
};

/**
 * FIFO selection plus memory-aware admission: the scheduler caps the
 * sum of co-resident working-set budgets at its capacity budget and
 * re-plans (via FlashMem::replan, warm-started through the PlanMemo)
 * any model whose share shrank or grew since it was last planned.
 */
class MemoryAwarePolicy : public FifoPolicy
{
  public:
    const char *name() const override { return "memory-aware"; }
    bool memoryAware() const override { return true; }
};

/** The built-in policy set, for iteration in benches/tests. */
enum class PolicyKind
{
    Fifo,
    ShortestJobFirst,
    PriorityAging,
    MemoryAware,
};

/** Construct a policy of @p kind with default parameters. */
std::unique_ptr<SchedulingPolicy> makePolicy(PolicyKind kind);

/** All built-in kinds, in presentation order. */
const std::vector<PolicyKind> &allPolicyKinds();

} // namespace flashmem::multidnn

#endif // FLASHMEM_MULTIDNN_POLICIES_HH
