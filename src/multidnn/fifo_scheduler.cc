#include "multidnn/fifo_scheduler.hh"

namespace flashmem::multidnn {

FifoOutcome
FifoScheduler::runFlashMem(const core::FlashMem &fm,
                           const std::vector<ModelRequest> &queue,
                           Precision precision)
{
    SchedulerConfig cfg;
    cfg.precision = precision;
    EventScheduler sched(fm, cfg);
    return sched.run(queue, FifoPolicy{});
}

FifoOutcome
FifoScheduler::runPreload(baselines::FrameworkId framework,
                          const gpusim::DeviceProfile &dev,
                          const std::vector<ModelRequest> &queue,
                          Precision precision)
{
    return EventScheduler::runPreload(framework, dev, queue,
                                      FifoPolicy{}, precision);
}

} // namespace flashmem::multidnn
