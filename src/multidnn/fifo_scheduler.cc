#include "multidnn/fifo_scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flashmem::multidnn {

namespace {

/** Trace of the most recent scheduler invocation (for figure plots). */
TimeSeries g_last_trace;

FifoOutcome
summarize(const gpusim::GpuSimulator &sim,
          std::vector<core::RunResult> runs)
{
    FifoOutcome out;
    out.runs = std::move(runs);
    for (const auto &r : out.runs)
        out.makespan = std::max(out.makespan, r.end);
    const auto &mem = sim.memory();
    out.peakMemory = mem.peakOver(0, out.makespan);
    out.avgMemoryBytes = mem.averageBytes(0, out.makespan);
    out.energyJoules = sim.energyJoules(out.makespan);
    g_last_trace = mem.totalTrace();
    return out;
}

} // namespace

SimTime
FifoOutcome::meanLatency() const
{
    if (runs.empty())
        return 0;
    SimTime total = 0;
    for (const auto &r : runs)
        total += r.integratedLatency();
    return total / static_cast<SimTime>(runs.size());
}

FifoOutcome
FifoScheduler::runFlashMem(const core::FlashMem &fm,
                           const std::vector<ModelRequest> &queue,
                           Precision precision)
{
    // Compile each distinct model once (offline stage).
    std::map<models::ModelId, core::CompiledModel> compiled;
    std::map<models::ModelId, graph::Graph> graphs;
    for (const auto &req : queue) {
        if (!compiled.count(req.model)) {
            graphs.emplace(req.model,
                           models::buildModel(req.model, precision));
            compiled.emplace(req.model,
                             fm.compile(graphs.at(req.model)));
        }
    }

    gpusim::GpuSimulator sim(fm.device());
    std::vector<core::RunResult> runs;
    SimTime free_at = 0;
    for (const auto &req : queue) {
        SimTime start = std::max(req.arrival, free_at);
        auto r = fm.execute(sim, compiled.at(req.model), start);
        free_at = r.end;
        runs.push_back(std::move(r));
    }
    return summarize(sim, std::move(runs));
}

FifoOutcome
FifoScheduler::runPreload(baselines::FrameworkId framework,
                          const gpusim::DeviceProfile &dev,
                          const std::vector<ModelRequest> &queue,
                          Precision precision)
{
    baselines::PreloadFramework fw(framework, dev);
    std::map<models::ModelId, graph::Graph> graphs;
    for (const auto &req : queue) {
        if (!graphs.count(req.model))
            graphs.emplace(req.model,
                           models::buildModel(req.model, precision));
    }

    gpusim::GpuSimulator sim(dev);
    std::vector<core::RunResult> runs;
    SimTime free_at = 0;
    for (const auto &req : queue) {
        const auto &g = graphs.at(req.model);
        FM_ASSERT(fw.supports(g) ==
                      baselines::SupportStatus::Supported,
                  fw.name(), " cannot run ", g.name());
        SimTime start = std::max(req.arrival, free_at);
        auto r = fw.run(sim, g, start);
        free_at = r.end;
        runs.push_back(std::move(r));
    }
    return summarize(sim, std::move(runs));
}

const TimeSeries &
FifoScheduler::lastTrace()
{
    return g_last_trace;
}

} // namespace flashmem::multidnn
