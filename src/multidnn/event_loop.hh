/**
 * @file
 * The cluster event loop shared by the two execution paths.
 *
 * Before the DeviceCluster refactor, multidnn::EventScheduler and the
 * fast serving simulator (serving/sweep.cc) each carried a private
 * copy of the same simulation-clock loop, and their bit-exact
 * equivalence rested on keeping the copies in sync by hand. The loop
 * now lives here once, templated over three backend hooks, so the
 * real scheduler (full streamed executions) and the fast simulator
 * (calibrated service-table lookups) literally run the same control
 * flow: same event ordering, same admission pass, same policy
 * selection, same device placement — the cross-validation invariant
 * holds by construction.
 *
 * Event ordering at equal timestamps: arrivals first (a dispatch
 * point always sees every request that has arrived by then), then
 * DMA-free events (cross-request overlap: a device's preload queue
 * freeing is a dispatch opportunity), then completions; ties break on
 * the event's sequence id. The clock is integer nanoseconds, so the
 * loop is exactly deterministic.
 */

#ifndef FLASHMEM_MULTIDNN_EVENT_LOOP_HH
#define FLASHMEM_MULTIDNN_EVENT_LOOP_HH

#include <queue>
#include <vector>

#include "common/logging.hh"
#include "multidnn/device.hh"
#include "multidnn/policies.hh"
#include "multidnn/workload.hh"

namespace flashmem::multidnn {

/** What a dispatch hook reports back to the loop: where the run
 * landed and the times the cluster placed it at. */
struct DispatchedRun
{
    int device = 0;
    PlacedTimes times;
};

/**
 * Drain @p queue against @p cluster under @p policy.
 *
 * @param makeReady  (std::size_t seq) -> ReadyRequest: build the
 *     scheduler view of request @p seq (estimate lookup differs
 *     between the real and fast paths).
 * @param dispatch   (const ReadyRequest &picked,
 *     const std::vector<ReadyRequest> &ready, SimTime now)
 *     -> DispatchedRun: place and execute the picked request. The
 *     hook chooses the device (DeviceCluster::pickDevice), computes
 *     or measures the run's times, and must call
 *     DeviceCluster::commit; the loop schedules the DMA-free and
 *     completion events from the returned times. @p ready is the
 *     remaining ready set (co-resident working-set accounting).
 * @param onShed     (const ReadyRequest &r, SimTime now): request
 *     dropped by SLO admission.
 * @param ready_limit abort threshold on the ready-set size (0 = no
 *     limit). @return false when the backlog exceeded it — the
 *     offered load is unstable and the drain aborted early.
 */
template <typename MakeReadyFn, typename DispatchFn, typename ShedFn>
bool
drainClusterQueue(const std::vector<ModelRequest> &queue,
                  const SchedulingPolicy &policy,
                  DeviceCluster &cluster, MakeReadyFn &&makeReady,
                  DispatchFn &&dispatch, ShedFn &&onShed,
                  std::size_t ready_limit = 0)
{
    /** One event of the simulation clock. */
    struct Event
    {
        SimTime time = 0;
        /** Arrivals order before DMA-frees before completions at
         * equal times. */
        enum Kind
        {
            Arrival = 0,
            DmaFree = 1,
            Completion = 2
        } kind = Arrival;
        /** Queue index (arrival) / device id (DMA-free, completion);
         * the deterministic tie-break. */
        std::size_t seq = 0;

        bool
        operator>(const Event &o) const
        {
            if (time != o.time)
                return time > o.time;
            if (kind != o.kind)
                return kind > o.kind;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events;
    for (std::size_t i = 0; i < queue.size(); ++i)
        events.push({queue[i].arrival, Event::Arrival, i});

    std::vector<ReadyRequest> ready;
    SimTime now = 0;
    while (!events.empty()) {
        auto ev = events.top();
        events.pop();
        now = std::max(now, ev.time);
        if (ev.kind == Event::Arrival) {
            ready.push_back(makeReady(ev.seq));
            if (ready_limit > 0 && ready.size() > ready_limit)
                return false; // backlog diverged: unstable load
        } else if (ev.kind == Event::Completion) {
            cluster.complete(static_cast<int>(ev.seq));
        }
        // DMA-free events carry no state change; they exist to wake
        // the dispatch pass when a preload queue frees mid-compute.
        if (ready.empty())
            continue;
        // Drain simultaneous arrivals before dispatching, so the
        // policy compares every request that is ready at this instant.
        if (!events.empty() && events.top().time <= now &&
            events.top().kind == Event::Arrival)
            continue;

        while (!ready.empty() && cluster.anyAccepting(now)) {
            // SLO admission pass (deadline-aware policies): requests
            // that can no longer meet their bound are shed here —
            // before selection — or stickily marked for degraded
            // dispatch. The ready set is scanned in arrival order, so
            // verdicts are deterministic.
            for (std::size_t i = 0;
                 policy.needsAdmission() && i < ready.size();) {
                auto verdict = policy.admit(now, ready[i]);
                if (verdict == Admission::Shed) {
                    onShed(ready[i], now);
                    ready.erase(ready.begin() +
                                static_cast<std::ptrdiff_t>(i));
                    continue;
                }
                if (verdict == Admission::Degrade)
                    ready[i].degraded = true;
                ++i;
            }
            if (ready.empty())
                break;

            auto pick = policy.select(now, ready);
            FM_ASSERT(pick < ready.size(),
                      "policy picked out of range");
            ReadyRequest picked = ready[pick];
            ready.erase(ready.begin() +
                        static_cast<std::ptrdiff_t>(pick));

            auto run = dispatch(picked, ready, now);
            if (cluster.overlap() &&
                run.times.initDone < run.times.end)
                events.push({run.times.initDone, Event::DmaFree,
                             static_cast<std::size_t>(run.device)});
            events.push({run.times.end, Event::Completion,
                         static_cast<std::size_t>(run.device)});
        }
    }
    return true;
}

} // namespace flashmem::multidnn

#endif // FLASHMEM_MULTIDNN_EVENT_LOOP_HH
