/**
 * @file
 * The cluster event loop shared by the two execution paths.
 *
 * Before the DeviceCluster refactor, multidnn::EventScheduler and the
 * fast serving simulator (serving/sweep.cc) each carried a private
 * copy of the same simulation-clock loop, and their bit-exact
 * equivalence rested on keeping the copies in sync by hand. The loop
 * now lives here once, templated over backend hooks, so the real
 * scheduler (full streamed executions) and the fast simulator
 * (calibrated service-table lookups) literally run the same control
 * flow: same event ordering, same admission pass, same policy
 * selection, same device placement, and — with a FaultPlan — the same
 * fault timeline and recovery decisions. The cross-validation
 * invariant holds by construction, failure path included.
 *
 * Event ordering at equal timestamps: injected faults first (a crash
 * at time T kills the runs in flight at T before anything else
 * happens at T), then arrivals and retry re-entries (a dispatch point
 * always sees every request that is ready by then), then DMA-free
 * wakes, completions, and finally the watchdog/recovery events; ties
 * break on the event's sequence id. The clock is integer nanoseconds,
 * so the loop is exactly deterministic.
 *
 * Fault tolerance: the loop tracks every dispatched run in flight and
 * consumes the FaultPlan as a fourth event source. A crash kills the
 * victims and re-dispatches them to surviving devices with capped
 * exponential backoff; a stall shifts in-flight completions unless a
 * run blows its per-dispatch timeout budget, in which case a watchdog
 * (DeviceDown) kills everything on the wedged device; a transient DMA
 * error rolls the youngest dispatch back off the device. Requests
 * whose retry budget is exhausted are fault-shed; requests still
 * queued when no device can ever accept again are starvation-dropped
 * — the loop never ends with a request unaccounted for.
 *
 * Completion hand-off: onComplete fires once per surviving run, in
 * dispatch (runId) order — not completion order — via an internal
 * reorder window, so backends can append to dispatch-ordered result
 * vectors and feed order-sensitive streaming estimators (P²
 * quantiles) identically on both paths. Without faults every dispatch
 * completes and the delivery order equals today's dispatch-time
 * recording exactly.
 */

#ifndef FLASHMEM_MULTIDNN_EVENT_LOOP_HH
#define FLASHMEM_MULTIDNN_EVENT_LOOP_HH

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "multidnn/device.hh"
#include "multidnn/faults.hh"
#include "multidnn/policies.hh"
#include "multidnn/workload.hh"
#include "obs/trace.hh"

namespace flashmem::multidnn {

/** @name obs payload-code pins.
 * obs/trace.cc renders numeric payload codes with its own name tables
 * (obs depends only on common/ and models/); these asserts keep the
 * multidnn enums from drifting out from under them. @{ */
static_assert(static_cast<int>(Admission::Admit) == 0 &&
                  static_cast<int>(Admission::Degrade) == 1 &&
                  static_cast<int>(Admission::Shed) == 2,
              "obs::admissionVerdictCodeName mirrors these values");
static_assert(static_cast<int>(DropReason::Admission) == 0 &&
                  static_cast<int>(DropReason::FaultBudget) == 1 &&
                  static_cast<int>(DropReason::Starved) == 2 &&
                  static_cast<int>(DropReason::ArrivalShed) == 3,
              "obs::dropReasonCodeName mirrors these values");
static_assert(static_cast<int>(FaultKind::Crash) == 0 &&
                  static_cast<int>(FaultKind::Rejoin) == 1 &&
                  static_cast<int>(FaultKind::Stall) == 2 &&
                  static_cast<int>(FaultKind::Slowdown) == 3 &&
                  static_cast<int>(FaultKind::DmaError) == 4,
              "obs::faultKindCodeName mirrors these values");
static_assert(static_cast<int>(DeviceHealth::Healthy) == 0 &&
                  static_cast<int>(DeviceHealth::Suspect) == 1 &&
                  static_cast<int>(DeviceHealth::Down) == 2,
              "obs::deviceHealthCodeName mirrors these values");
/** @} */

/** What a dispatch hook reports back to the loop: where the run
 * landed and the times the cluster placed it at. */
struct DispatchedRun
{
    int device = 0;
    PlacedTimes times;
};

/**
 * Drain @p queue against @p cluster under @p policy.
 *
 * @param makeReady  (std::size_t seq) -> ReadyRequest: build the
 *     scheduler view of request @p seq (estimate lookup differs
 *     between the real and fast paths).
 * @param dispatch   (const ReadyRequest &picked,
 *     const std::vector<ReadyRequest> &ready, SimTime now,
 *     std::uint64_t runId) -> DispatchedRun: place and execute the
 *     picked request. The hook chooses the device
 *     (DeviceCluster::pickDevice), computes or measures the run's
 *     times, and must call DeviceCluster::commit; the loop schedules
 *     the DMA-free and completion events from the returned times.
 *     @p ready is the remaining ready set (co-resident working-set
 *     accounting); @p runId identifies this dispatch in the matching
 *     onComplete call (a retried request dispatches under a fresh id).
 * @param onComplete (const ReadyRequest &req, const DispatchedRun
 *     &run, std::uint64_t runId): the run survived to completion.
 *     Delivered in runId (dispatch) order; run.times carries the
 *     actual (possibly stall-shifted) timeline.
 * @param onDrop     (const ReadyRequest &r, SimTime now,
 *     DropReason reason): request dropped without completing — SLO
 *     admission shed, fault-retry budget exhausted, or starved at
 *     drain end with no accepting device left.
 * @param ready_limit abort threshold on the ready-set size (0 = no
 *     limit). @return false when the backlog exceeded it — the
 *     offered load is unstable and the drain aborted early.
 * @param faults optional deterministic fault schedule (see
 *     multidnn/faults.hh); @p recovery tunes detection and retry;
 *     @p counters, when given, accumulates fault/recovery accounting.
 * @param arrival optional arrival-time admission gate (see
 *     multidnn/policies.hh): consulted the instant a request or a
 *     fault retry would enter the ready set. Shed verdicts drop it
 *     with DropReason::ArrivalShed before it occupies a queue slot;
 *     Degrade marks it sticky-degraded on entry. Null keeps the
 *     historical dispatch-point-only behaviour bit-identically.
 * @param trace optional obs::TraceRecorder receiving the typed event
 *     stream (arrivals, admission verdicts, dispatches, completions,
 *     sheds, retries, faults, device health). Null — the default —
 *     compiles every hook down to a skipped pointer test, so the hot
 *     path cost is zero when tracing is off. The loop also hands the
 *     recorder to the cluster for device-health events.
 */
template <typename MakeReadyFn, typename DispatchFn,
          typename CompleteFn, typename DropFn>
bool
drainClusterQueue(const std::vector<ModelRequest> &queue,
                  const SchedulingPolicy &policy,
                  DeviceCluster &cluster, MakeReadyFn &&makeReady,
                  DispatchFn &&dispatch, CompleteFn &&onComplete,
                  DropFn &&onDrop, std::size_t ready_limit = 0,
                  const FaultPlan *faults = nullptr,
                  const RecoveryConfig &recovery = {},
                  FaultCounters *counters = nullptr,
                  const ArrivalAdmission *arrival = nullptr,
                  obs::TraceRecorder *trace = nullptr)
{
    cluster.setTrace(trace);
    /** One event of the simulation clock. */
    struct Event
    {
        SimTime time = 0;
        /** Faults order before arrivals/retries, which order before
         * DMA-frees, completions, and watchdog events at equal
         * times. */
        enum Kind
        {
            Fault = 0,
            Arrival = 1,
            Retry = 2,
            DmaFree = 3,
            Completion = 4,
            DeviceDown = 5, ///< watchdog fired: stall blew a timeout
            Recover = 6,    ///< stall wedge cleared; device may rejoin
        } kind = Arrival;
        /** Queue index (arrival) / fault index (fault) / retry-pool
         * index (retry) / device id (others); the deterministic
         * tie-break. */
        std::size_t seq = 0;

        bool
        operator>(const Event &o) const
        {
            if (time != o.time)
                return time > o.time;
            if (kind != o.kind)
                return kind > o.kind;
            return seq > o.seq;
        }
    };

    /** One dispatched run in the reorder window. */
    struct Flight
    {
        enum State
        {
            Live,
            Completed,
            Killed,
        } state = Live;
        ReadyRequest req;
        DispatchedRun run;
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events;
    for (std::size_t i = 0; i < queue.size(); ++i)
        events.push({queue[i].arrival, Event::Arrival, i});
    if (faults) {
        for (std::size_t i = 0; i < faults->events.size(); ++i)
            events.push({faults->events[i].time, Event::Fault, i});
    }

    // Reorder window of dispatched runs: window[id - base]. Entries
    // resolve (complete or die) out of order but flush — and hand
    // onComplete — strictly in dispatch order.
    std::deque<Flight> window;
    std::uint64_t window_base = 0;
    auto flight = [&](std::uint64_t run_id) -> Flight & {
        return window[static_cast<std::size_t>(run_id - window_base)];
    };
    auto flushWindow = [&] {
        while (!window.empty() && window.front().state != Flight::Live) {
            if (window.front().state == Flight::Completed) {
                if (trace) {
                    const Flight &f = window.front();
                    trace->requestComplete(
                        f.run.times.end, f.req.queueIndex,
                        static_cast<std::int64_t>(window_base),
                        f.run.device,
                        static_cast<std::int32_t>(f.req.model),
                        f.run.times.start, f.run.times.initDone);
                }
                onComplete(window.front().req, window.front().run,
                           window_base);
            }
            window.pop_front();
            ++window_base;
        }
    };

    // Live run ids per device, in dispatch order (the completion
    // matcher and the per-device kill sweeps key on this).
    std::vector<std::vector<std::uint64_t>> device_runs(
        static_cast<std::size_t>(cluster.deviceCount()));

    std::vector<ReadyRequest> ready;
    std::vector<ReadyRequest> retry_pool;

    // Every drop funnels through here so the trace never loses a
    // request: the shed event carries the reason and attempt count.
    auto drop = [&](const ReadyRequest &r, SimTime t,
                    DropReason reason) {
        if (trace)
            trace->requestShed(t, r.queueIndex,
                               static_cast<std::int32_t>(r.model),
                               static_cast<std::int64_t>(reason),
                               r.attempts);
        onDrop(r, t, reason);
    };

    // Kill one live run: resolve its window entry and either schedule
    // a backoff retry or fault-shed the request. Cluster-side state
    // (inFlight, horizons, residency) is the fault handler's job.
    auto killRun = [&](std::uint64_t run_id, SimTime now) {
        auto &f = flight(run_id);
        FM_ASSERT(f.state == Flight::Live, "killing a resolved run");
        f.state = Flight::Killed;
        ReadyRequest req = f.req;
        req.attempts += 1;
        req.lastFailedDevice = f.run.device;
        if (req.attempts > recovery.maxRetries) {
            if (counters)
                ++counters->faultSheds;
            drop(req, now, DropReason::FaultBudget);
            return;
        }
        if (counters)
            ++counters->retries;
        SimTime backoff = std::max<SimTime>(recovery.backoffBase, 1);
        for (int i = 1; i < req.attempts && backoff < recovery.backoffCap;
             ++i)
            backoff *= 2;
        backoff = std::min(backoff,
                           std::max<SimTime>(recovery.backoffCap, 1));
        if (trace)
            trace->retryScheduled(now, req.queueIndex,
                                  static_cast<std::int32_t>(req.model),
                                  now + backoff, req.attempts,
                                  req.lastFailedDevice);
        events.push({now + backoff, Event::Retry, retry_pool.size()});
        retry_pool.push_back(req);
    };

    auto killAllOn = [&](int dev, SimTime now, bool timeout) {
        auto &runs = device_runs[static_cast<std::size_t>(dev)];
        for (std::uint64_t id : std::vector<std::uint64_t>(runs)) {
            if (timeout && counters)
                ++counters->timeouts;
            killRun(id, now);
        }
        runs.clear();
    };

    // Stuck-clock guard: a bounded number of events may legitimately
    // share one instant (simultaneous arrivals, zero-length services,
    // fault bursts); processing vastly more without the clock moving
    // means the loop is wedged — fail loudly with the cluster state
    // rather than spin forever.
    const std::size_t stuck_limit =
        recovery.stuckEventLimit > 0
            ? recovery.stuckEventLimit
            : 64 * (queue.size() +
                    (faults ? faults->events.size() : 0)) +
                  4096;
    std::size_t stuck = 0;

    std::uint64_t next_run_id = 0;
    SimTime now = 0;
    while (!events.empty()) {
        auto ev = events.top();
        events.pop();
        if (ev.time > now) {
            now = ev.time;
            stuck = 0;
        } else if (++stuck > stuck_limit) {
            std::ostringstream diag;
            for (const auto &d : cluster.devices())
                diag << " dev" << d.id << "{health="
                     << static_cast<int>(d.health)
                     << " inFlight=" << d.inFlight
                     << " computeBusyUntil=" << d.computeBusyUntil
                     << " dmaBusyUntil=" << d.dmaBusyUntil << "}";
            FM_PANIC("cluster event loop stuck: ", stuck,
                     " events without the clock advancing past ", now,
                     "ns (limit ", stuck_limit,
                     "); ready=", ready.size(),
                     " pendingEvents=", events.size(),
                     " inFlight=", window.size(), ";", diag.str());
        }
        now = std::max(now, ev.time);

        // Arrival-time admission: consulted before the request enters
        // the ready set (fresh arrivals and fault retries alike), so a
        // shed request never occupies a queue slot. The gate reads only
        // state both execution paths share bit-identically.
        auto enterReady = [&](ReadyRequest r) {
            if (arrival) {
                auto verdict =
                    arrival->admitAtArrival(now, r, ready, cluster);
                // Emitted here — not by the gate — because both
                // execution paths share one gate object but carry
                // their own recorders.
                if (trace)
                    trace->admissionVerdict(
                        now, r.queueIndex,
                        static_cast<std::int32_t>(r.model),
                        static_cast<std::int64_t>(verdict), -1);
                if (verdict == Admission::Shed) {
                    drop(r, now, DropReason::ArrivalShed);
                    return true;
                }
                if (verdict == Admission::Degrade)
                    r.degraded = true;
            }
            ready.push_back(std::move(r));
            // Backlog diverged: unstable load, abort the drain.
            return !(ready_limit > 0 && ready.size() > ready_limit);
        };

        switch (ev.kind) {
          case Event::Arrival: {
            ReadyRequest r = makeReady(ev.seq);
            if (trace)
                trace->requestArrival(
                    now, r.queueIndex,
                    static_cast<std::int32_t>(r.model),
                    r.latencyBound);
            if (!enterReady(std::move(r)))
                return false;
            break;
          }
          case Event::Retry:
            if (!enterReady(retry_pool[ev.seq]))
                return false;
            break;
          case Event::Completion: {
            // Match the oldest live run on this device ending now.
            // No match means the event went stale (its run was killed
            // or stall-shifted); completions of shifted runs were
            // rescheduled when the shift happened.
            auto &runs = device_runs[ev.seq];
            auto it = std::find_if(
                runs.begin(), runs.end(), [&](std::uint64_t id) {
                    return flight(id).run.times.end == ev.time;
                });
            if (it != runs.end()) {
                auto &f = flight(*it);
                f.state = Flight::Completed;
                runs.erase(it);
                cluster.complete(static_cast<int>(ev.seq));
                flushWindow();
            }
            break;
          }
          case Event::Fault: {
            const auto &fe = faults->events[ev.seq];
            const auto &dev =
                cluster.devices()[static_cast<std::size_t>(fe.device)];
            if (trace)
                trace->faultInjected(
                    now, ev.seq, fe.device,
                    static_cast<std::int64_t>(fe.kind), fe.duration,
                    std::llround(fe.factor * 1000.0));
            switch (fe.kind) {
              case FaultKind::Crash:
                if (dev.health == DeviceHealth::Down)
                    break;
                if (counters)
                    ++counters->crashes;
                killAllOn(fe.device, now, /*timeout=*/false);
                cluster.crash(fe.device, now);
                flushWindow();
                break;
              case FaultKind::Rejoin:
                // Only a crashed device rejoins here; a watchdog-down
                // (wedged) device recovers through its Recover event.
                if (dev.health == DeviceHealth::Down && dev.crashDown)
                    cluster.rejoin(fe.device, now, recovery.probation);
                break;
              case FaultKind::Stall: {
                if (dev.health == DeviceHealth::Down)
                    break;
                // Freeze the device: shift its horizons and every
                // in-flight completion by the stall. A run whose
                // shifted end blows its timeout budget arms the
                // watchdog at the earliest blown deadline instead.
                cluster.delay(fe.device, now, fe.duration);
                SimTime fire = kTimeNever;
                SimTime clear = now + fe.duration;
                for (std::uint64_t id : device_runs[static_cast<
                         std::size_t>(fe.device)]) {
                    auto &f = flight(id);
                    SimTime service =
                        f.run.times.end - f.run.times.start;
                    SimTime budget_at =
                        f.run.times.start +
                        std::llround(recovery.timeoutFactor *
                                     static_cast<double>(service));
                    f.run.times.end += fe.duration;
                    if (f.run.times.initDone > now)
                        f.run.times.initDone += fe.duration;
                    events.push({f.run.times.end, Event::Completion,
                                 static_cast<std::size_t>(fe.device)});
                    if (cluster.overlap() &&
                        f.run.times.initDone > now &&
                        f.run.times.initDone < f.run.times.end)
                        events.push({f.run.times.initDone,
                                     Event::DmaFree,
                                     static_cast<std::size_t>(
                                         fe.device)});
                    if (f.run.times.end > budget_at)
                        fire = std::min(fire,
                                        std::max(budget_at, now + 1));
                    clear = std::max(clear, f.run.times.end);
                }
                if (fire != kTimeNever) {
                    events.push({fire, Event::DeviceDown,
                                 static_cast<std::size_t>(fe.device)});
                    events.push({std::max(clear, fire + 1),
                                 Event::Recover,
                                 static_cast<std::size_t>(fe.device)});
                }
                break;
              }
              case FaultKind::Slowdown:
                cluster.setSlowdown(fe.device, fe.factor,
                                    now + fe.duration);
                break;
              case FaultKind::DmaError: {
                if (dev.health == DeviceHealth::Down)
                    break;
                // Abort the preload in flight right now, if any. The
                // aborted run is provably the device's youngest
                // commit (any later commit's preload would start
                // after this one's initDone), so a one-deep undo on
                // the cluster rolls the dispatch back exactly.
                auto &runs = device_runs[static_cast<std::size_t>(
                    fe.device)];
                auto it = std::find_if(
                    runs.begin(), runs.end(), [&](std::uint64_t id) {
                        const auto &t = flight(id).run.times;
                        return t.start <= now && now < t.initDone;
                    });
                if (it == runs.end())
                    break; // transient error with no preload active
                std::uint64_t id = *it;
                runs.erase(it);
                if (counters)
                    ++counters->dmaAborts;
                cluster.abortLastCommit(fe.device);
                killRun(id, now);
                flushWindow();
                break;
              }
            }
            break;
          }
          case Event::DeviceDown:
            // Watchdog: a stalled run blew its timeout budget. The
            // whole device is declared wedged — every in-flight run
            // is killed and re-dispatched — but device memory is
            // intact, so plan residency survives for the recovery.
            if (cluster.devices()[ev.seq].health !=
                DeviceHealth::Down) {
                killAllOn(static_cast<int>(ev.seq), now,
                          /*timeout=*/true);
                cluster.markDown(static_cast<int>(ev.seq), now);
                flushWindow();
            }
            break;
          case Event::Recover:
            // The stall wedge cleared; rejoin unless a real crash
            // intervened (then only its Rejoin event recovers it).
            if (cluster.devices()[ev.seq].health ==
                    DeviceHealth::Down &&
                !cluster.devices()[ev.seq].crashDown)
                cluster.rejoin(static_cast<int>(ev.seq), now,
                               recovery.probation);
            break;
          case Event::DmaFree:
            // No state change; a DMA-free exists to wake the dispatch
            // pass when a preload queue frees mid-compute.
            break;
        }

        if (ready.empty())
            continue;
        // Drain simultaneous fault/arrival/retry events before
        // dispatching, so the policy compares every request that is
        // ready at this instant against the settled cluster state.
        if (!events.empty() && events.top().time <= now &&
            events.top().kind <= Event::Retry)
            continue;

        while (!ready.empty() && cluster.anyAccepting(now)) {
            // SLO admission pass (deadline-aware policies): requests
            // that can no longer meet their bound are shed here —
            // before selection — or stickily marked for degraded
            // dispatch. Retried requests pass through the same gate,
            // so a retry that cannot meet its deadline any more is
            // shed instead of being retried forever. The ready set is
            // scanned in arrival order, so verdicts are deterministic.
            for (std::size_t i = 0;
                 policy.needsAdmission() && i < ready.size();) {
                auto verdict = policy.admit(now, ready[i]);
                if (verdict == Admission::Shed) {
                    drop(ready[i], now, DropReason::Admission);
                    ready.erase(ready.begin() +
                                static_cast<std::ptrdiff_t>(i));
                    continue;
                }
                if (verdict == Admission::Degrade)
                    ready[i].degraded = true;
                ++i;
            }
            if (ready.empty())
                break;

            auto pick = policy.select(now, ready);
            FM_ASSERT(pick < ready.size(),
                      "policy picked out of range");
            ReadyRequest picked = ready[pick];
            ready.erase(ready.begin() +
                        static_cast<std::ptrdiff_t>(pick));

            std::uint64_t run_id = next_run_id++;
            auto run = dispatch(picked, ready, now, run_id);
            if (trace)
                trace->requestDispatch(
                    now, picked.queueIndex,
                    static_cast<std::int64_t>(run_id), run.device,
                    static_cast<std::int32_t>(picked.model),
                    run.times.start, run.times.initDone,
                    run.times.end);
            if (counters && picked.attempts > 0 &&
                run.device != picked.lastFailedDevice)
                ++counters->failovers;
            window.push_back({Flight::Live, picked, run});
            device_runs[static_cast<std::size_t>(run.device)]
                .push_back(run_id);
            if (cluster.overlap() &&
                run.times.initDone < run.times.end)
                events.push({run.times.initDone, Event::DmaFree,
                             static_cast<std::size_t>(run.device)});
            events.push({run.times.end, Event::Completion,
                         static_cast<std::size_t>(run.device)});
        }
    }

    // Anything still queued when the event horizon is exhausted had
    // no surviving device to run on: record the starvation instead of
    // dropping the requests silently.
    for (const auto &r : ready) {
        if (counters)
            ++counters->starved;
        drop(r, now, DropReason::Starved);
    }
    return true;
}

} // namespace flashmem::multidnn

#endif // FLASHMEM_MULTIDNN_EVENT_LOOP_HH
