#include "multidnn/scheduler.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace flashmem::multidnn {

namespace {

/** One event of the simulation clock. */
struct Event
{
    SimTime time = 0;
    /** Arrivals order before completions at equal times, so a freed
     * device always sees every request that has arrived by then. */
    enum Kind { Arrival = 0, Completion = 1 } kind = Arrival;
    std::size_t seq = 0; ///< queue index (arrival) / tie-break

    bool
    operator>(const Event &o) const
    {
        if (time != o.time)
            return time > o.time;
        if (kind != o.kind)
            return kind > o.kind;
        return seq > o.seq;
    }
};

} // namespace

SimTime
ScheduleOutcome::meanLatency() const
{
    if (runs.empty())
        return 0;
    SimTime total = 0;
    for (const auto &r : runs)
        total += r.requestLatency();
    return total / static_cast<SimTime>(runs.size());
}

SimTime
ScheduleOutcome::meanQueueDelay() const
{
    if (runs.empty())
        return 0;
    SimTime total = 0;
    for (const auto &r : runs)
        total += r.queueDelay();
    return total / static_cast<SimTime>(runs.size());
}

std::size_t
ScheduleOutcome::goodput() const
{
    std::size_t good = 0;
    for (const auto &r : runs)
        good += r.metSlo() ? 1 : 0;
    return good;
}

std::size_t
ScheduleOutcome::sloViolations() const
{
    return runs.size() - goodput();
}

double
ScheduleOutcome::goodputRate() const
{
    std::size_t submitted = runs.size() + shed.size();
    if (submitted == 0)
        return 1.0;
    return static_cast<double>(goodput()) /
           static_cast<double>(submitted);
}

double
ScheduleOutcome::shedRate() const
{
    std::size_t submitted = runs.size() + shed.size();
    if (submitted == 0)
        return 0.0;
    return static_cast<double>(shed.size()) /
           static_cast<double>(submitted);
}

EventScheduler::EventScheduler(const core::FlashMem &fm,
                               SchedulerConfig cfg)
    : fm_(fm), cfg_(cfg)
{
    if (cfg_.capacityBudget == 0)
        cfg_.capacityBudget = fm.device().appMemoryBudget;
    cfg_.minModelBudget =
        std::max(cfg_.minModelBudget, fm.options().opg.chunkBytes);
    cfg_.budgetQuantum = std::max<Bytes>(cfg_.budgetQuantum, 1);
}

void
EventScheduler::summarize(const gpusim::GpuSimulator &sim,
                          ScheduleOutcome &out)
{
    for (const auto &r : out.runs)
        out.makespan = std::max(out.makespan, r.end);
    const auto &mem = sim.memory();
    out.trace = mem.totalTrace();
    if (!out.runs.empty()) {
        out.peakMemory = mem.peakOver(0, out.makespan);
        out.avgMemoryBytes = mem.averageBytes(0, out.makespan);
        out.energyJoules = sim.energyJoules(out.makespan);
    }
}

ScheduleOutcome
EventScheduler::drain(gpusim::GpuSimulator &sim,
                      const std::vector<ModelRequest> &queue,
                      const SchedulingPolicy &policy,
                      const std::map<models::ModelId, SimTime> &estimates,
                      const DispatchFn &dispatch)
{
    ScheduleOutcome out;
    out.policy = policy.name();
    out.runs.reserve(queue.size());

    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events;
    for (std::size_t i = 0; i < queue.size(); ++i)
        events.push({queue[i].arrival, Event::Arrival, i});

    std::vector<ReadyRequest> ready;
    bool busy = false;
    SimTime now = 0;
    while (!events.empty()) {
        auto ev = events.top();
        events.pop();
        now = std::max(now, ev.time);
        if (ev.kind == Event::Arrival) {
            const auto &req = queue[ev.seq];
            auto est = estimates.find(req.model);
            ready.push_back({ev.seq, req.model, req.arrival,
                             req.priority,
                             est != estimates.end() ? est->second : 0,
                             req.latencyBound});
        } else {
            busy = false;
        }
        if (busy || ready.empty())
            continue;
        // Drain simultaneous arrivals before picking, so the policy
        // compares every request that is ready at this instant.
        if (!events.empty() && events.top().time <= now &&
            events.top().kind == Event::Arrival)
            continue;

        // SLO admission pass (deadline-aware policies): requests that
        // can no longer meet their bound are shed here — before
        // selection — or stickily marked for degraded dispatch. The
        // ready set is scanned in arrival order, so verdicts are
        // deterministic.
        for (std::size_t i = 0;
             policy.needsAdmission() && i < ready.size();) {
            auto verdict = policy.admit(now, ready[i]);
            if (verdict == Admission::Shed) {
                out.shed.push_back({ready[i].queueIndex,
                                    ready[i].model, ready[i].arrival,
                                    ready[i].latencyBound, now});
                ready.erase(ready.begin() +
                            static_cast<std::ptrdiff_t>(i));
                continue;
            }
            if (verdict == Admission::Degrade)
                ready[i].degraded = true;
            ++i;
        }
        if (ready.empty())
            continue;

        auto pick = policy.select(now, ready);
        FM_ASSERT(pick < ready.size(), "policy picked out of range");
        ReadyRequest picked = ready[pick];
        ready.erase(ready.begin() +
                    static_cast<std::ptrdiff_t>(pick));

        // Co-resident working sets: the dispatched model plus every
        // distinct model still waiting in the ready set.
        std::vector<models::ModelId> distinct{picked.model};
        for (const auto &r : ready) {
            if (std::find(distinct.begin(), distinct.end(), r.model) ==
                distinct.end())
                distinct.push_back(r.model);
        }

        auto r = dispatch(sim, picked, now,
                          static_cast<int>(distinct.size()));
        r.arrival = picked.arrival;
        r.latencyBound = picked.latencyBound;
        r.degraded = picked.degraded;
        if (picked.degraded)
            ++out.degradedRuns;
        events.push({r.end, Event::Completion, picked.queueIndex});
        out.runs.push_back(std::move(r));
        busy = true;
    }
    summarize(sim, out);
    return out;
}

Bytes
quantizeBudgetShare(Bytes share, const SchedulerConfig &cfg,
                    Bytes chunk_floor, Bytes mPeak)
{
    // Quantize down so ready-set fluctuations do not churn re-plans.
    share -= share % std::max<Bytes>(cfg.budgetQuantum, 1);
    share = std::max(share, std::max(cfg.minModelBudget, chunk_floor));
    return std::min(share, mPeak);
}

Bytes
EventScheduler::clampQuantize(Bytes share) const
{
    // cfg_.minModelBudget already folds in the chunk-size floor (ctor).
    return quantizeBudgetShare(share, cfg_, 0,
                               fm_.options().opg.mPeak);
}

Bytes
EventScheduler::admissionBudget(int co_resident) const
{
    // The shared capacity budget caps even a lone model: its share is
    // the whole budget, still clamped to the configured plan budget.
    Bytes share = cfg_.capacityBudget /
                  static_cast<Bytes>(std::max(co_resident, 1));
    return clampQuantize(share);
}

const core::CompiledModel &
EventScheduler::compiledFor(models::ModelId model, Bytes budget,
                            ScheduleOutcome &out)
{
    auto key = std::make_pair(model, budget);
    auto it = compiled_.find(key);
    if (it != compiled_.end())
        return it->second;

    if (!graphs_.count(model))
        graphs_.emplace(model,
                        models::buildModel(model, cfg_.precision));

    const Bytes base_budget = fm_.options().opg.mPeak;
    if (budget == base_budget) {
        it = compiled_
                 .emplace(key, fm_.compile(graphs_.at(model)))
                 .first;
        return it->second;
    }

    // On-device re-plan: shrunken/grown residual budget, warm-started
    // through the PlanMemo by the planner.
    const auto &base = compiledFor(model, base_budget, out);
    auto replanned = fm_.replan(base, budget);
    ++out.replans;
    out.replanMemoHits += replanned.stats.memoHits;
    out.replanSeconds += replanned.stats.processNodesSeconds +
                         replanned.stats.stageSeconds +
                         replanned.stats.solveSeconds +
                         replanned.stats.mergeSeconds;
    it = compiled_.emplace(key, std::move(replanned)).first;
    return it->second;
}

SimTime
EventScheduler::estimateFor(models::ModelId model, ScheduleOutcome &out)
{
    auto it = estimates_.find(model);
    if (it != estimates_.end())
        return it->second;
    // Warm estimate: one run on a scratch simulator at the base budget.
    const auto &compiled =
        compiledFor(model, fm_.options().opg.mPeak, out);
    gpusim::GpuSimulator scratch(fm_.device());
    auto r = fm_.execute(scratch, compiled, 0);
    it = estimates_.emplace(model, r.integratedLatency()).first;
    return it->second;
}

ScheduleOutcome
EventScheduler::run(const std::vector<ModelRequest> &queue,
                    const SchedulingPolicy &policy)
{
    ScheduleOutcome replan_acc; // collects offline/replan counters
    // Offline stage: estimate each distinct model's warm latency —
    // only when the policy actually keys on it (SJF).
    std::map<models::ModelId, SimTime> estimates;
    if (policy.needsEstimates()) {
        for (const auto &req : queue) {
            if (!estimates.count(req.model))
                estimates.emplace(req.model,
                                  estimateFor(req.model, replan_acc));
        }
    }

    const bool memory_aware =
        policy.memoryAware() && cfg_.replanOnBudgetShift;
    gpusim::GpuSimulator sim(fm_.device());
    auto out = drain(
        sim, queue, policy, estimates,
        [&](gpusim::GpuSimulator &s, const ReadyRequest &picked,
            SimTime now, int co_resident) {
            Bytes budget = fm_.options().opg.mPeak;
            if (memory_aware)
                budget = admissionBudget(co_resident);
            if (picked.degraded) {
                // Degraded dispatch: the policy's reduced budget frees
                // shared capacity instead of dropping the request.
                budget = std::min(
                    budget,
                    clampQuantize(policy.degradedBudget(
                        fm_.options().opg.mPeak)));
            }
            const auto &cm = compiledFor(picked.model, budget,
                                         replan_acc);
            return fm_.execute(s, cm, now);
        });
    out.replans += replan_acc.replans;
    out.replanMemoHits += replan_acc.replanMemoHits;
    out.replanSeconds += replan_acc.replanSeconds;
    return out;
}

ScheduleOutcome
EventScheduler::runPreload(baselines::FrameworkId framework,
                           const gpusim::DeviceProfile &dev,
                           const std::vector<ModelRequest> &queue,
                           const SchedulingPolicy &policy,
                           Precision precision)
{
    baselines::PreloadFramework fw(framework, dev);
    std::map<models::ModelId, graph::Graph> graphs;
    std::map<models::ModelId, SimTime> estimates;
    for (const auto &req : queue) {
        if (graphs.count(req.model))
            continue;
        graphs.emplace(req.model,
                       models::buildModel(req.model, precision));
        const auto &g = graphs.at(req.model);
        FM_ASSERT(fw.supports(g) == baselines::SupportStatus::Supported,
                  fw.name(), " cannot run ", g.name());
        if (policy.needsEstimates()) {
            // Cold-start estimate: preloading pays init per request.
            gpusim::GpuSimulator scratch(dev);
            estimates.emplace(
                req.model, fw.run(scratch, g, 0).integratedLatency());
        }
    }

    gpusim::GpuSimulator sim(dev);
    return drain(sim, queue, policy, estimates,
                 [&](gpusim::GpuSimulator &s, const ReadyRequest &picked,
                     SimTime now, int) {
                     return fw.run(s, graphs.at(picked.model), now);
                 });
}

} // namespace flashmem::multidnn
