#include "multidnn/scheduler.hh"

#include <algorithm>

#include "common/logging.hh"
#include "multidnn/event_loop.hh"

namespace flashmem::multidnn {

namespace {

/** Sum of the devices' total-memory step functions (cluster trace). */
TimeSeries
mergedTotalTrace(const std::vector<gpusim::GpuSimulator> &sims)
{
    struct Cursor
    {
        const std::vector<TimeSeries::Point> *points;
        std::size_t next = 0;
        double value = 0.0;
    };
    std::vector<Cursor> cursors;
    for (const auto &sim : sims)
        cursors.push_back({&sim.memory().totalTrace().points()});

    TimeSeries merged;
    for (;;) {
        SimTime t = kTimeNever;
        for (const auto &c : cursors) {
            if (c.next < c.points->size())
                t = std::min(t, (*c.points)[c.next].time);
        }
        if (t == kTimeNever)
            break;
        double total = 0.0;
        for (auto &c : cursors) {
            while (c.next < c.points->size() &&
                   (*c.points)[c.next].time <= t) {
                c.value = (*c.points)[c.next].value;
                ++c.next;
            }
            total += c.value;
        }
        merged.record(t, total);
    }
    return merged;
}

} // namespace

SimTime
ScheduleOutcome::meanLatency() const
{
    if (runs.empty())
        return 0;
    SimTime total = 0;
    for (const auto &r : runs)
        total += r.requestLatency();
    return total / static_cast<SimTime>(runs.size());
}

SimTime
ScheduleOutcome::meanQueueDelay() const
{
    if (runs.empty())
        return 0;
    SimTime total = 0;
    for (const auto &r : runs)
        total += r.queueDelay();
    return total / static_cast<SimTime>(runs.size());
}

std::size_t
ScheduleOutcome::goodput() const
{
    std::size_t good = 0;
    for (const auto &r : runs)
        good += r.metSlo() ? 1 : 0;
    return good;
}

std::size_t
ScheduleOutcome::sloViolations() const
{
    return runs.size() - goodput();
}

double
ScheduleOutcome::goodputRate() const
{
    std::size_t submitted = runs.size() + shed.size();
    if (submitted == 0)
        return 1.0;
    return static_cast<double>(goodput()) /
           static_cast<double>(submitted);
}

double
ScheduleOutcome::shedRate() const
{
    std::size_t submitted = runs.size() + shed.size();
    if (submitted == 0)
        return 0.0;
    return static_cast<double>(shed.size()) /
           static_cast<double>(submitted);
}

EventScheduler::EventScheduler(const core::FlashMem &fm,
                               SchedulerConfig cfg)
    : fm_(fm), cfg_(cfg)
{
    if (cfg_.capacityBudget == 0)
        cfg_.capacityBudget = fm.device().appMemoryBudget;
    cfg_.minModelBudget =
        std::max(cfg_.minModelBudget, fm.options().opg.chunkBytes);
    cfg_.budgetQuantum = std::max<Bytes>(cfg_.budgetQuantum, 1);
}

void
EventScheduler::summarize(const std::vector<gpusim::GpuSimulator> &sims,
                          const DeviceCluster &cluster,
                          ScheduleOutcome &out)
{
    for (const auto &r : out.runs)
        out.makespan = std::max(out.makespan, r.end);
    out.trace = sims.size() == 1
                    ? sims.front().memory().totalTrace()
                    : mergedTotalTrace(sims);
    out.devices = cluster.utilization(out.makespan);
    if (out.runs.empty())
        return;
    for (std::size_t i = 0; i < sims.size(); ++i) {
        const auto &mem = sims[i].memory();
        Bytes peak = mem.peakOver(0, out.makespan);
        double energy = sims[i].energyJoules(out.makespan);
        out.devices[i].peakMemory = peak;
        out.devices[i].energyJoules = energy;
        // Devices are distinct hardware: the cluster peak is the
        // worst per-device peak, energy and average live bytes sum.
        out.peakMemory = std::max(out.peakMemory, peak);
        out.avgMemoryBytes += mem.averageBytes(0, out.makespan);
        out.energyJoules += energy;
    }
}

ScheduleOutcome
EventScheduler::drain(DeviceCluster &cluster,
                      const std::vector<ModelRequest> &queue,
                      const SchedulingPolicy &policy,
                      const std::map<models::ModelId, SimTime> &estimates,
                      const DispatchFn &dispatch,
                      const FaultPlan *faults,
                      const RecoveryConfig &recovery,
                      const ArrivalAdmission *arrival,
                      obs::TraceRecorder *trace)
{
    ScheduleOutcome out;
    out.policy = policy.name();
    out.runs.reserve(queue.size());
    // Results computed at dispatch, keyed by run id until the loop
    // resolves the run: completions land in out.runs (in dispatch
    // order — the loop delivers onComplete in run-id order), runs
    // killed by a fault never do.
    std::map<std::uint64_t, core::RunResult> pending;

    drainClusterQueue(
        queue, policy, cluster,
        [&](std::size_t seq) {
            const auto &req = queue[seq];
            auto est = estimates.find(req.model);
            ReadyRequest r;
            r.queueIndex = seq;
            r.model = req.model;
            r.arrival = req.arrival;
            r.priority = req.priority;
            r.estimatedLatency =
                est != estimates.end() ? est->second : 0;
            r.latencyBound = req.latencyBound;
            return r;
        },
        [&](const ReadyRequest &picked,
            const std::vector<ReadyRequest> &ready, SimTime now,
            std::uint64_t run_id) {
            // Co-resident working sets: the dispatched model plus
            // every distinct model still waiting in the ready set.
            std::vector<models::ModelId> distinct{picked.model};
            for (const auto &r : ready) {
                if (std::find(distinct.begin(), distinct.end(),
                              r.model) == distinct.end())
                    distinct.push_back(r.model);
            }

            auto d = dispatch(picked, now,
                              static_cast<int>(distinct.size()));
            d.run.arrival = picked.arrival;
            d.run.latencyBound = picked.latencyBound;
            d.run.degraded = picked.degraded;
            d.run.device = d.device;
            DispatchedRun placed{d.device,
                                 {d.run.start, d.run.initDone,
                                  d.run.end}};
            pending.emplace(run_id, std::move(d.run));
            return placed;
        },
        [&](const ReadyRequest &picked, const DispatchedRun &run,
            std::uint64_t run_id) {
            auto it = pending.find(run_id);
            FM_ASSERT(it != pending.end(),
                      "completion for an unknown run id");
            auto r = std::move(it->second);
            pending.erase(it);
            // A stall may have shifted the run while it was in
            // flight; the loop's placed times are the actual ones.
            r.initDone = run.times.initDone;
            r.end = run.times.end;
            if (picked.degraded)
                ++out.degradedRuns;
            out.runs.push_back(std::move(r));
        },
        [&](const ReadyRequest &r, SimTime now, DropReason reason) {
            out.shed.push_back({r.queueIndex, r.model, r.arrival,
                                r.latencyBound, now, reason});
        },
        /*ready_limit=*/0, faults, recovery, &out.faults, arrival,
        trace);
    return out;
}

Bytes
quantizeBudgetShare(Bytes share, const SchedulerConfig &cfg,
                    Bytes chunk_floor, Bytes mPeak)
{
    // Quantize down so ready-set fluctuations do not churn re-plans.
    share -= share % std::max<Bytes>(cfg.budgetQuantum, 1);
    share = std::max(share, std::max(cfg.minModelBudget, chunk_floor));
    return std::min(share, mPeak);
}

Bytes
EventScheduler::clampQuantize(Bytes share) const
{
    // cfg_.minModelBudget already folds in the chunk-size floor (ctor).
    return quantizeBudgetShare(share, cfg_, 0,
                               fm_.options().opg.mPeak);
}

Bytes
EventScheduler::admissionBudget(int co_resident) const
{
    // The shared capacity budget caps even a lone model: its share is
    // the whole budget, still clamped to the configured plan budget.
    Bytes share = cfg_.capacityBudget /
                  static_cast<Bytes>(std::max(co_resident, 1));
    return clampQuantize(share);
}

const core::CompiledModel &
EventScheduler::compiledFor(models::ModelId model, Bytes budget,
                            ScheduleOutcome &out)
{
    auto key = std::make_pair(model, budget);
    auto it = compiled_.find(key);
    if (it != compiled_.end())
        return it->second;

    if (!graphs_.count(model))
        graphs_.emplace(model,
                        models::buildModel(model, cfg_.precision));

    const Bytes base_budget = fm_.options().opg.mPeak;
    if (budget == base_budget) {
        it = compiled_
                 .emplace(key, fm_.compile(graphs_.at(model)))
                 .first;
        return it->second;
    }

    // On-device re-plan: shrunken/grown residual budget, warm-started
    // through the PlanMemo by the planner.
    const auto &base = compiledFor(model, base_budget, out);
    auto replanned = fm_.replan(base, budget);
    ++out.replans;
    out.replanMemoHits += replanned.stats.memoHits;
    out.replanSeconds += replanned.stats.processNodesSeconds +
                         replanned.stats.stageSeconds +
                         replanned.stats.solveSeconds +
                         replanned.stats.mergeSeconds;
    it = compiled_.emplace(key, std::move(replanned)).first;
    return it->second;
}

const core::RunResult &
EventScheduler::profileFor(models::ModelId model, Bytes budget,
                           ScheduleOutcome &out)
{
    auto key = std::make_pair(model, budget);
    auto it = profiles_.find(key);
    if (it != profiles_.end())
        return it->second;
    const auto &compiled = compiledFor(model, budget, out);
    gpusim::GpuSimulator scratch(fm_.device());
    it = profiles_.emplace(key, fm_.execute(scratch, compiled, 0))
             .first;
    return it->second;
}

SimTime
EventScheduler::estimateFor(models::ModelId model, ScheduleOutcome &out)
{
    // Warm estimate: one run on a scratch simulator at the base budget.
    return profileFor(model, fm_.options().opg.mPeak, out)
        .integratedLatency();
}

ScheduleOutcome
EventScheduler::run(const std::vector<ModelRequest> &queue,
                    const SchedulingPolicy &policy)
{
    ScheduleOutcome replan_acc; // collects offline/replan counters
    // Offline stage: estimate each distinct model's warm latency —
    // only when the policy actually keys on it (SJF).
    std::map<models::ModelId, SimTime> estimates;
    if (policy.needsEstimates()) {
        for (const auto &req : queue) {
            if (!estimates.count(req.model))
                estimates.emplace(req.model,
                                  estimateFor(req.model, replan_acc));
        }
    }

    const bool memory_aware =
        policy.memoryAware() && cfg_.replanOnBudgetShift;
    const bool faulty = !cfg_.faults.empty();
    DeviceCluster cluster(cfg_.cluster);
    std::vector<gpusim::GpuSimulator> sims;
    sims.reserve(static_cast<std::size_t>(cluster.deviceCount()));
    for (int i = 0; i < cluster.deviceCount(); ++i)
        sims.emplace_back(fm_.device());

    auto out = drain(
        cluster, queue, policy, estimates,
        [&](const ReadyRequest &picked, SimTime now,
            int co_resident) -> DeviceRun {
            Bytes budget = fm_.options().opg.mPeak;
            if (memory_aware)
                budget = admissionBudget(co_resident);
            if (picked.degraded) {
                // Degraded dispatch: the policy's reduced budget frees
                // shared capacity instead of dropping the request.
                budget = std::min(
                    budget,
                    clampQuantize(policy.degradedBudget(
                        fm_.options().opg.mPeak)));
            }
            int dev = cluster.pickDevice(now, picked.model, budget);
            auto &sim = sims[static_cast<std::size_t>(dev)];
            // Any on-device re-plan for this (model, budget) happens
            // inside this call; a bumped counter means the returned
            // artifact was just re-planned and its stats describe
            // that solve — emit the planner-side trace events at the
            // dispatch instant that triggered them.
            const int replans_before = replan_acc.replans;
            const auto &cm = compiledFor(picked.model, budget,
                                         replan_acc);
            if (cfg_.trace && replan_acc.replans > replans_before) {
                const auto &st = cm.stats;
                cfg_.trace->replan(
                    now, static_cast<std::int32_t>(picked.model),
                    static_cast<std::int64_t>(budget),
                    static_cast<std::int64_t>(st.memoHits),
                    st.windows);
                for (const auto &w : st.windowSummaries)
                    cfg_.trace->solverWindow(
                        now, static_cast<std::uint64_t>(w.window),
                        static_cast<std::int32_t>(picked.model),
                        static_cast<std::int64_t>(w.conflicts),
                        static_cast<std::int64_t>(w.restarts),
                        static_cast<std::int64_t>(w.propagations),
                        !w.usedGreedy &&
                                w.status ==
                                    solver::SolveStatus::Optimal
                            ? 1
                            : 0,
                        static_cast<std::int32_t>(w.winningConfig));
            }
            core::RunResult r;
            if (!cluster.overlap() && !faulty) {
                // Serialized device: the streamed execution runs on a
                // fully idle simulator, so its own times are final.
                r = fm_.execute(sim, cm, now);
            } else {
                // Cross-request overlap and/or fault injection: the
                // run's timeline follows the cluster's two-resource
                // model, with the measured solo init/exec split of
                // this (model, budget) — under faults this routes
                // even the serialized device through planTimes, so
                // slowdown scaling applies identically on both
                // execution paths. The execution on the device
                // simulator keeps the memory and energy traces real
                // (its kernels queue behind the previous run's on the
                // shared compute timeline).
                const auto &prof =
                    profileFor(picked.model, budget, replan_acc);
                auto t = cluster.planTimes(dev, now,
                                           prof.initLatency(),
                                           prof.execLatency());
                fm_.execute(sim, cm, t.start);
                r = prof;
                r.start = t.start;
                r.initDone = t.initDone;
                r.end = t.end;
            }
            cluster.commit(dev, picked.model, budget,
                           {r.start, r.initDone, r.end});
            return {dev, std::move(r)};
        },
        faulty ? &cfg_.faults : nullptr, cfg_.recovery,
        cfg_.arrivalAdmission, cfg_.trace);
    summarize(sims, cluster, out);
    out.replans += replan_acc.replans;
    out.replanMemoHits += replan_acc.replanMemoHits;
    out.replanSeconds += replan_acc.replanSeconds;
    return out;
}

ScheduleOutcome
EventScheduler::runPreload(baselines::FrameworkId framework,
                           const gpusim::DeviceProfile &dev,
                           const std::vector<ModelRequest> &queue,
                           const SchedulingPolicy &policy,
                           Precision precision, ClusterConfig cluster_cfg)
{
    // Baselines re-initialize per request on the compute path; there
    // is no streamed DMA-queue init to overlap with execution.
    cluster_cfg.overlapInitWithExec = false;

    baselines::PreloadFramework fw(framework, dev);
    std::map<models::ModelId, graph::Graph> graphs;
    std::map<models::ModelId, SimTime> estimates;
    for (const auto &req : queue) {
        if (graphs.count(req.model))
            continue;
        graphs.emplace(req.model,
                       models::buildModel(req.model, precision));
        const auto &g = graphs.at(req.model);
        FM_ASSERT(fw.supports(g) == baselines::SupportStatus::Supported,
                  fw.name(), " cannot run ", g.name());
        if (policy.needsEstimates()) {
            // Cold-start estimate: preloading pays init per request.
            gpusim::GpuSimulator scratch(dev);
            estimates.emplace(
                req.model, fw.run(scratch, g, 0).integratedLatency());
        }
    }

    DeviceCluster cluster(cluster_cfg);
    std::vector<gpusim::GpuSimulator> sims;
    sims.reserve(static_cast<std::size_t>(cluster.deviceCount()));
    for (int i = 0; i < cluster.deviceCount(); ++i)
        sims.emplace_back(dev);

    auto out = drain(
        cluster, queue, policy, estimates,
        [&](const ReadyRequest &picked, SimTime now, int) -> DeviceRun {
            int d = cluster.pickDevice(now, picked.model, 0);
            auto r = fw.run(sims[static_cast<std::size_t>(d)],
                            graphs.at(picked.model), now);
            cluster.commit(d, picked.model, 0,
                           {r.start, r.initDone, r.end});
            return {d, std::move(r)};
        });
    summarize(sims, cluster, out);
    return out;
}

} // namespace flashmem::multidnn
