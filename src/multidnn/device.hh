/**
 * @file
 * First-class devices for the execution layer: DeviceCluster models N
 * simulated devices behind one admission queue, each with **two
 * independent resources** — the compute queue and the preload-DMA
 * queue — so a request's streamed init can overlap the previous
 * request's execution on the same device (the paper's memory-hierarchy
 * overlap applied one level up, across requests).
 *
 * The cluster owns the one timing rule both execution paths share:
 * the event-driven EventScheduler (real streamed executions) and the
 * fast request-level serving simulator (calibrated service tables)
 * place runs through DeviceCluster::planTimes / commit, which is what
 * keeps the two paths bit-identical (see serving/sweep.hh).
 *
 * Placement is pluggable: least-loaded (default), round-robin, and
 * capacity-affinity (route a model to the device that already holds
 * its plan at the target budget, avoiding an on-device plan switch).
 */

#ifndef FLASHMEM_MULTIDNN_DEVICE_HH
#define FLASHMEM_MULTIDNN_DEVICE_HH

#include <map>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "models/model_zoo.hh"

namespace flashmem::obs {
class TraceRecorder;
} // namespace flashmem::obs

namespace flashmem::multidnn {

/** Placement strategies for picking a device per dispatched request. */
enum class PlacementKind
{
    LeastLoaded,      ///< earliest compute-free device (id tie-break)
    RoundRobin,       ///< cycle device ids over accepting devices
    CapacityAffinity, ///< prefer the device already holding the plan
};

/** Human name of a placement strategy. */
const char *placementName(PlacementKind kind);

/**
 * Health of one simulated device under fault injection.
 * Healthy devices serve normally; a Down device accepts nothing; a
 * Suspect device just rejoined and serves at pipeline depth 1 (the
 * heartbeat-style probation probe) until its probation window passes,
 * after which it counts as Healthy again.
 */
enum class DeviceHealth
{
    Healthy,
    Suspect,
    Down,
};

/** Human name of a device health state. */
const char *deviceHealthName(DeviceHealth health);

/** All built-in placement kinds, in presentation order. */
const std::vector<PlacementKind> &allPlacementKinds();

/** Cluster shape of the execution layer. */
struct ClusterConfig
{
    /** Simulated devices behind the shared admission queue. */
    int deviceCount = 1;
    /**
     * Cross-request init/exec overlap: dispatch the next request's
     * streamed preload on a device's DMA queue while the previous
     * request still computes (pipeline depth 2 — at most one request
     * computing and one preloading per device). Off reproduces the
     * fully serialized single-resource device.
     */
    bool overlapInitWithExec = false;
    PlacementKind placement = PlacementKind::LeastLoaded;
};

/**
 * Mutable state of one simulated device: the two resource horizons,
 * the in-flight pipeline depth, which model plans are resident (and at
 * which budget), and busy-time accounting for utilization reports.
 */
struct DeviceState
{
    int id = 0;
    /** Compute queue busy until (last placed run's end). */
    SimTime computeBusyUntil = 0;
    /** Preload-DMA queue busy until (last placed run's initDone). */
    SimTime dmaBusyUntil = 0;
    /** Requests dispatched but not yet completed (pipeline depth). */
    int inFlight = 0;

    /** @name Accounting (ScheduleOutcome/ServingOutcome reports). @{ */
    std::size_t dispatched = 0;
    SimTime computeBusyTime = 0; ///< sum of placed exec phases
    SimTime dmaBusyTime = 0;     ///< sum of placed init (preload) phases
    /** Times this device had to switch a model's resident plan budget
     * (a re-plan / plan reload on device; capacity-affinity placement
     * exists to avoid these). */
    int planSwitches = 0;
    /** @} */

    /** Plan budget this device currently holds per model. */
    std::map<models::ModelId, Bytes> residentPlanBudget;

    /** @name Fault state (driven by the event loop's fault events). @{ */
    DeviceHealth health = DeviceHealth::Healthy;
    /** Down because of a crash (recovered by a Rejoin fault event)
     * rather than a watchdog wedge (recovered by a Recover event). */
    bool crashDown = false;
    SimTime downSince = 0;      ///< when the current Down began
    SimTime probationUntil = 0; ///< Suspect until this instant
    SimTime downTime = 0;       ///< closed Down intervals, summed
    /** Thermal-throttle model: dispatches placed while now < slowUntil
     * run with init and exec scaled by slowFactor. */
    double slowFactor = 1.0;
    SimTime slowUntil = 0;
    /** @} */

    /**
     * One-deep undo for the youngest commit, consumed when a
     * transient DMA error aborts the preload it placed (the aborted
     * run is always the youngest commit: any later commit's preload
     * would start after the aborted one's initDone). Horizons are
     * restored as saved absolutes and busy times as deltas; a stall
     * delaying the device between commit and abort makes the restored
     * horizons approximate (never unsafe — only placement timing).
     */
    struct CommitUndo
    {
        bool valid = false;
        SimTime prevComputeBusyUntil = 0;
        SimTime prevDmaBusyUntil = 0;
        SimTime dmaBusyDelta = 0;
        SimTime computeBusyDelta = 0;
        models::ModelId model{};
        bool countedSwitch = false;
        bool hadResidency = false;
        Bytes prevBudget = 0;
    };
    CommitUndo undo;
};

/** Per-device utilization summary exposed on outcomes. */
struct DeviceUtilization
{
    int device = 0;
    std::size_t dispatched = 0;
    int planSwitches = 0;
    SimTime computeBusyTime = 0;
    SimTime dmaBusyTime = 0;
    /** Busy fractions over the outcome's makespan (0 when empty). */
    double computeUtilization = 0.0;
    double dmaUtilization = 0.0;
    /** Peak live memory on this device (real path only; 0 for the
     * fast simulator unless calibrated peaks are tracked). */
    Bytes peakMemory = 0;
    double energyJoules = 0.0;
    /** Time this device spent Down (crashed or wedged), including an
     * interval still open at the makespan. */
    SimTime downTime = 0;
    /** downTime over the outcome's makespan (0 when empty). */
    double downFraction = 0.0;
};

/** Placement of one run on a device's two resources. */
struct PlacedTimes
{
    SimTime start = 0;    ///< preload DMA begins (dispatch)
    SimTime initDone = 0; ///< preload set resident; DMA queue frees
    SimTime end = 0;      ///< compute retires; device slot frees
};

/** Strategy choosing a device among those able to accept a request. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Pick one of @p candidates (accepting devices, ascending id;
     * non-empty). @p planBudget is the budget the dispatched plan
     * will run under (capacity-affinity keys on it).
     */
    virtual const DeviceState *place(
        const std::vector<const DeviceState *> &candidates,
        models::ModelId model, Bytes planBudget) = 0;
};

/** Construct the built-in placement policy of @p kind. */
std::unique_ptr<PlacementPolicy> makePlacement(PlacementKind kind);

/**
 * N simulated devices behind one admission queue. The cluster is the
 * single owner of the dispatch timing rule (planTimes) and of the
 * per-device resource/accounting state (commit/complete); schedulers
 * ask it which devices can accept work and where a request lands.
 */
class DeviceCluster
{
  public:
    explicit DeviceCluster(ClusterConfig cfg);

    int deviceCount() const
    {
        return static_cast<int>(devices_.size());
    }
    bool overlap() const { return cfg_.overlapInitWithExec; }
    const ClusterConfig &config() const { return cfg_; }
    const std::vector<DeviceState> &devices() const { return devices_; }

    /**
     * True when @p device can take a new request at @p now: idle when
     * overlap is off; DMA queue free and fewer than two requests in
     * flight (one computing + one preloading) when overlap is on.
     * A Down device accepts nothing; a Suspect device (rejoined,
     * still inside probation) is capped at one request in flight.
     */
    bool canAccept(int device, SimTime now) const;

    /** Any device able to accept a request at @p now. */
    bool anyAccepting(SimTime now) const;

    /** Choose an accepting device for @p model via the placement
     * policy. At least one device must be accepting. */
    int pickDevice(SimTime now, models::ModelId model, Bytes planBudget);

    /**
     * The shared two-resource timing rule. Overlap off: the run starts
     * when the device is fully idle and holds both resources to its
     * end (`start = now`, `end = start + init + exec`). Overlap on:
     * the preload phase starts as soon as the DMA queue frees
     * (`start = max(now, dmaBusyUntil)`), and the compute phase queues
     * behind the previous run (`computeStart = max(start + init,
     * computeBusyUntil)`, `end = computeStart + exec`).
     */
    PlacedTimes planTimes(int device, SimTime now, SimTime initTime,
                          SimTime execTime) const;

    /**
     * Record a placed run: advances the device's resource horizons
     * (`dmaBusyUntil = initDone`, `computeBusyUntil = end`), pipeline
     * depth, busy-time accounting, and plan residency (counting a plan
     * switch when @p planBudget differs from the budget the device
     * held @p model at).
     */
    void commit(int device, models::ModelId model, Bytes planBudget,
                const PlacedTimes &t);

    /** A run on @p device completed; frees its pipeline slot. */
    void complete(int device);

    /** @name Fault transitions (driven by the shared event loop). @{ */

    /**
     * @p device died at @p now: Down, pipeline emptied (the loop has
     * already killed the in-flight runs), and plan residency wiped —
     * device memory is gone, so a recovered device re-plans warm
     * through the PlanMemo rather than finding plans resident.
     */
    void crash(int device, SimTime now);

    /**
     * A Down @p device came back at @p now: downtime is closed into
     * the accounting, horizons reset to @p now, and the device serves
     * as Suspect (pipeline depth 1) until @p now + @p probation.
     */
    void rejoin(int device, SimTime now, SimTime probation);

    /**
     * Watchdog variant of crash(): the device is wedged (a stalled
     * run blew its timeout budget) but its memory is intact, so plan
     * residency survives while the device sits Down.
     */
    void markDown(int device, SimTime now);

    /** Freeze @p device for @p duration from @p now: both resource
     * horizons shift by the stall (an idle horizon becomes
     * @p now + @p duration), blocking dispatches during the window. */
    void delay(int device, SimTime now, SimTime duration);

    /** Scale dispatches placed on @p device before @p until by
     * @p factor (>= 1; thermal-throttle model). */
    void setSlowdown(int device, double factor, SimTime until);

    /** Roll back the youngest commit on @p device (transient DMA
     * abort). The undo must still be valid — the aborted preload is
     * always the youngest commit. */
    void abortLastCommit(int device);
    /** @} */

    /** Utilization rows over @p makespan (fractions 0 when 0);
     * includes per-device downtime, counting a still-open Down
     * interval up to the makespan. */
    std::vector<DeviceUtilization> utilization(SimTime makespan) const;

    /** Attach (or detach, with null) a trace recorder receiving
     * DeviceHealthChange events from the fault transitions. The event
     * loop calls this itself when it is handed a recorder. */
    void setTrace(obs::TraceRecorder *trace) { trace_ = trace; }

  private:
    ClusterConfig cfg_;
    std::unique_ptr<PlacementPolicy> placement_;
    std::vector<DeviceState> devices_;
    obs::TraceRecorder *trace_ = nullptr;
    /** Scratch candidate buffer reused across pickDevice calls (the
     * loop is single-threaded per cluster), keeping the fast
     * simulator's per-request dispatch allocation-free. */
    std::vector<const DeviceState *> candidates_;
};

} // namespace flashmem::multidnn

#endif // FLASHMEM_MULTIDNN_DEVICE_HH
