/**
 * @file
 * Deterministic fault injection for the device cluster.
 *
 * A FaultPlan is a seeded, pre-computed schedule of per-device fault
 * events — crash / rejoin, stall, slowdown, transient DMA error —
 * generated from common/rng exactly like the serving trace generators,
 * so a fault timeline is a pure function of (params, devices, horizon,
 * seed). The plan is consumed by the shared cluster event loop
 * (multidnn/event_loop.hh); because the real EventScheduler and the
 * fast serving simulator run that same loop, both paths observe a
 * bit-identical fault timeline by construction.
 *
 * Fault semantics (the recovery decision table lives in
 * src/multidnn/README.md):
 *  - Crash: the device dies instantly. In-flight runs are killed and
 *    re-dispatched to surviving devices (capped exponential backoff);
 *    plan residency is invalidated (device memory is gone). The device
 *    is Down until its Rejoin event, then Suspect for a probation
 *    window (pipeline depth capped at 1 — the heartbeat probe) before
 *    returning to Healthy.
 *  - Stall: in-flight runs on the device stop progressing for the
 *    stall's duration. If the delay keeps every run within its
 *    per-dispatch timeout budget (timeoutFactor x expected service)
 *    the runs simply complete late; otherwise the watchdog fires at
 *    the earliest blown timeout, every in-flight run is killed and
 *    retried elsewhere, and the device is Down until the wedge clears
 *    (plan residency survives — device memory was not lost).
 *  - Slowdown: requests *dispatched* while the window is active run
 *    with init and exec scaled by the factor (thermal throttling
 *    model); in-flight runs are unaffected and health is unchanged.
 *  - DmaError: the preload in flight at the event time aborts; the
 *    request retries with backoff and the dispatch is rolled back.
 *    Transient — health is unchanged; a no-op if no preload is active.
 */

#ifndef FLASHMEM_MULTIDNN_FAULTS_HH
#define FLASHMEM_MULTIDNN_FAULTS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace flashmem::multidnn {

/** Kinds of injected device faults. */
enum class FaultKind
{
    Crash,    ///< device dies; Down until the paired Rejoin
    Rejoin,   ///< crashed device comes back (probation before Healthy)
    Stall,    ///< in-flight work frozen for @c duration
    Slowdown, ///< dispatches scaled by @c factor for @c duration
    DmaError, ///< the preload active at this instant aborts
};

/** Human name of a fault kind. */
const char *faultKindName(FaultKind kind);

/** One scheduled fault on one device. */
struct FaultEvent
{
    SimTime time = 0;
    int device = 0;
    FaultKind kind = FaultKind::Crash;
    /** Stall / slowdown window length (unused otherwise). */
    SimTime duration = 0;
    /** Slowdown service-time multiplier (>= 1; unused otherwise). */
    double factor = 1.0;
};

/** A deterministic schedule of fault events, sorted by time. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Sort events by (time, device, kind) — the canonical order the
     * event loop consumes them in. Builders call this last. */
    void normalize();
};

/** Rates for the seeded fault-plan generator (per device). */
struct FaultPlanParams
{
    /** Crash arrivals per device-second (0 = none). */
    double crashesPerSecond = 0.0;
    /** Mean exponential downtime before the paired Rejoin. */
    SimTime meanDowntime = milliseconds(500);
    double stallsPerSecond = 0.0;
    SimTime meanStall = milliseconds(100);
    double slowdownsPerSecond = 0.0;
    SimTime meanSlowdownDuration = milliseconds(500);
    double slowdownFactor = 4.0;
    double dmaErrorsPerSecond = 0.0;
};

/**
 * Generate a seeded fault plan over @p device_count devices and a
 * @p horizon of simulated time. Each device draws from an independent
 * deterministic stream, so plans are bit-reproducible and stable under
 * changes to the device count (device i's timeline never shifts).
 * Stalls, slowdowns, and DMA errors falling inside a crash's down
 * window are suppressed (a dead device cannot misbehave further).
 */
FaultPlan generateFaultPlan(const FaultPlanParams &params,
                            int device_count, SimTime horizon,
                            std::uint64_t seed);

/** @name Hand-built scenario plans (bench / test fixtures). @{ */

/** One crash at @p at on @p device; never rejoins. */
FaultPlan singleCrash(int device, SimTime at);

/** One crash at @p at, rejoining @p downFor later. */
FaultPlan crashAndRejoin(int device, SimTime at, SimTime downFor);

/** One slowdown window on @p device. */
FaultPlan singleSlowdown(int device, SimTime at, SimTime duration,
                         double factor);

/** One stall of @p duration at @p at on @p device. */
FaultPlan singleStall(int device, SimTime at, SimTime duration);

/** @p cycles crash/rejoin pairs: crash at @p firstCrash, down for
 * @p downFor, next crash one @p period after the previous. */
FaultPlan flappingDevice(int device, SimTime firstCrash, SimTime period,
                         SimTime downFor, int cycles);
/** @} */

/** Merge @p b's events into @p a (re-normalized). */
FaultPlan mergeFaultPlans(FaultPlan a, const FaultPlan &b);

/**
 * Detection and recovery knobs of the fault-tolerant event loop.
 * Defaults are deliberately conservative; both execution paths must
 * be handed the same values for the bit-exact equivalence to hold.
 */
struct RecoveryConfig
{
    /**
     * Per-dispatch timeout budget as a multiple of the expected
     * (placed) service time: a stalled run whose completion would slip
     * past start + timeoutFactor x expected is declared dead by the
     * watchdog and re-dispatched.
     */
    double timeoutFactor = 3.0;
    /** Re-dispatch attempts per request before it is fault-shed. */
    int maxRetries = 3;
    /** First retry backoff; doubles per attempt up to backoffCap. */
    SimTime backoffBase = milliseconds(1);
    SimTime backoffCap = milliseconds(64);
    /** Suspect window after a rejoin: the device serves at pipeline
     * depth 1 (the heartbeat probe) until the window passes. */
    SimTime probation = milliseconds(250);
    /**
     * Stuck-clock guard: abort loudly when the event loop processes
     * more than this many events without the simulation clock
     * advancing (0 = derive a generous bound from the queue size).
     * Exists purely as a defense against silent infinite waits.
     */
    std::size_t stuckEventLimit = 0;
};

/** Why the event loop dropped a request without completing it. */
enum class DropReason
{
    Admission,   ///< SLO admission shed (policy verdict)
    FaultBudget, ///< retries exhausted after repeated fault kills
    Starved,     ///< queue drained with no device ever accepting again
    ArrivalShed, ///< shed at arrival by the backlog admission gate
};

/** Human name of a drop reason. */
const char *dropReasonName(DropReason reason);

/** Fault-recovery accounting shared by ScheduleOutcome and
 * ServingOutcome. */
struct FaultCounters
{
    int crashes = 0;     ///< crash events applied to a live device
    int timeouts = 0;    ///< watchdog kills (stall beyond budget)
    int dmaAborts = 0;   ///< transient DMA preload aborts
    int retries = 0;     ///< re-dispatches scheduled after a kill
    int failovers = 0;   ///< retries that landed on a different device
    int faultSheds = 0;  ///< requests dropped: retry budget exhausted
    int starved = 0;     ///< requests dropped: no device ever accepted

    /** Total requests dropped by the fault layer (not by admission). */
    int faultDrops() const { return faultSheds + starved; }
};

} // namespace flashmem::multidnn

#endif // FLASHMEM_MULTIDNN_FAULTS_HH
