#include "multidnn/device.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace flashmem::multidnn {

namespace {

/** Overlap pipeline depth: one computing + one preloading request. */
constexpr int kOverlapPipelineDepth = 2;

/** Load order: earlier compute-free first, DMA-free then id tie-break.
 * All placement policies fall back to this total order, so placement
 * is deterministic for any candidate set. */
bool
lessLoaded(const DeviceState *a, const DeviceState *b)
{
    if (a->computeBusyUntil != b->computeBusyUntil)
        return a->computeBusyUntil < b->computeBusyUntil;
    if (a->dmaBusyUntil != b->dmaBusyUntil)
        return a->dmaBusyUntil < b->dmaBusyUntil;
    return a->id < b->id;
}

class LeastLoadedPlacement : public PlacementPolicy
{
  public:
    const char *name() const override { return "least-loaded"; }

    const DeviceState *
    place(const std::vector<const DeviceState *> &candidates,
          models::ModelId, Bytes) override
    {
        return *std::min_element(candidates.begin(), candidates.end(),
                                 lessLoaded);
    }
};

class RoundRobinPlacement : public PlacementPolicy
{
  public:
    const char *name() const override { return "round-robin"; }

    const DeviceState *
    place(const std::vector<const DeviceState *> &candidates,
          models::ModelId, Bytes) override
    {
        // First accepting device at/after the cursor, wrapping to the
        // lowest id (candidates arrive in ascending id order).
        const DeviceState *pick = candidates.front();
        for (const auto *d : candidates) {
            if (d->id >= cursor_) {
                pick = d;
                break;
            }
        }
        cursor_ = pick->id + 1;
        return pick;
    }

  private:
    int cursor_ = 0;
};

class CapacityAffinityPlacement : public PlacementPolicy
{
  public:
    const char *name() const override { return "capacity-affinity"; }

    const DeviceState *
    place(const std::vector<const DeviceState *> &candidates,
          models::ModelId model, Bytes planBudget) override
    {
        // Prefer a device already holding this model's plan at the
        // target budget (no plan switch / re-plan on dispatch);
        // fall back to least-loaded among the rest.
        const DeviceState *affine = nullptr;
        for (const auto *d : candidates) {
            auto it = d->residentPlanBudget.find(model);
            if (it == d->residentPlanBudget.end() ||
                it->second != planBudget)
                continue;
            if (!affine || lessLoaded(d, affine))
                affine = d;
        }
        if (affine)
            return affine;
        return *std::min_element(candidates.begin(), candidates.end(),
                                 lessLoaded);
    }
};

} // namespace

const char *
deviceHealthName(DeviceHealth health)
{
    switch (health) {
      case DeviceHealth::Healthy:
        return "healthy";
      case DeviceHealth::Suspect:
        return "suspect";
      case DeviceHealth::Down:
        return "down";
    }
    return "unknown";
}

const char *
placementName(PlacementKind kind)
{
    switch (kind) {
      case PlacementKind::LeastLoaded:
        return "least-loaded";
      case PlacementKind::RoundRobin:
        return "round-robin";
      case PlacementKind::CapacityAffinity:
        return "capacity-affinity";
    }
    return "unknown";
}

const std::vector<PlacementKind> &
allPlacementKinds()
{
    static const std::vector<PlacementKind> kinds = {
        PlacementKind::LeastLoaded,
        PlacementKind::RoundRobin,
        PlacementKind::CapacityAffinity,
    };
    return kinds;
}

std::unique_ptr<PlacementPolicy>
makePlacement(PlacementKind kind)
{
    switch (kind) {
      case PlacementKind::LeastLoaded:
        return std::make_unique<LeastLoadedPlacement>();
      case PlacementKind::RoundRobin:
        return std::make_unique<RoundRobinPlacement>();
      case PlacementKind::CapacityAffinity:
        return std::make_unique<CapacityAffinityPlacement>();
    }
    FM_FATAL("unknown placement kind");
}

DeviceCluster::DeviceCluster(ClusterConfig cfg)
    : cfg_(cfg), placement_(makePlacement(cfg.placement))
{
    FM_ASSERT(cfg_.deviceCount >= 1, "cluster needs >= 1 device");
    devices_.resize(static_cast<std::size_t>(cfg_.deviceCount));
    for (std::size_t i = 0; i < devices_.size(); ++i)
        devices_[i].id = static_cast<int>(i);
}

bool
DeviceCluster::canAccept(int device, SimTime now) const
{
    const auto &d = devices_[static_cast<std::size_t>(device)];
    if (d.health == DeviceHealth::Down)
        return false;
    if (!cfg_.overlapInitWithExec)
        return d.inFlight == 0 && d.computeBusyUntil <= now &&
               d.dmaBusyUntil <= now;
    // Probation probe: a freshly rejoined device serves one request
    // at a time until its Suspect window passes.
    int depth = d.health == DeviceHealth::Suspect &&
                        now < d.probationUntil
                    ? 1
                    : kOverlapPipelineDepth;
    return d.inFlight < depth && d.dmaBusyUntil <= now;
}

bool
DeviceCluster::anyAccepting(SimTime now) const
{
    for (const auto &d : devices_) {
        if (canAccept(d.id, now))
            return true;
    }
    return false;
}

int
DeviceCluster::pickDevice(SimTime now, models::ModelId model,
                          Bytes planBudget)
{
    candidates_.clear();
    for (const auto &d : devices_) {
        if (canAccept(d.id, now))
            candidates_.push_back(&d);
    }
    FM_ASSERT(!candidates_.empty(),
              "pickDevice with no accepting device");
    return placement_->place(candidates_, model, planBudget)->id;
}

PlacedTimes
DeviceCluster::planTimes(int device, SimTime now, SimTime initTime,
                         SimTime execTime) const
{
    const auto &d = devices_[static_cast<std::size_t>(device)];
    if (now < d.slowUntil && d.slowFactor > 1.0) {
        // Thermal-throttle window: the whole service stretches.
        initTime = std::llround(d.slowFactor *
                                static_cast<double>(initTime));
        execTime = std::llround(d.slowFactor *
                                static_cast<double>(execTime));
    }
    PlacedTimes t;
    if (!cfg_.overlapInitWithExec) {
        // Single-resource device: init and exec run back to back, and
        // the device is only offered work when fully idle.
        t.start = std::max({now, d.computeBusyUntil, d.dmaBusyUntil});
        t.initDone = t.start + initTime;
        t.end = t.initDone + execTime;
        return t;
    }
    // Two resources: preload DMA starts when the DMA queue frees (it
    // may overlap the previous run's compute); the compute phase then
    // queues behind the previous run.
    t.start = std::max(now, d.dmaBusyUntil);
    t.initDone = t.start + initTime;
    t.end = std::max(t.initDone, d.computeBusyUntil) + execTime;
    return t;
}

void
DeviceCluster::commit(int device, models::ModelId model,
                      Bytes planBudget, const PlacedTimes &t)
{
    auto &d = devices_[static_cast<std::size_t>(device)];
    // Exec phase begins once the preload set is resident and the
    // previous run retired (equals t.initDone when overlap is off).
    SimTime compute_start = std::max(t.initDone, d.computeBusyUntil);
    d.undo.valid = true;
    d.undo.prevComputeBusyUntil = d.computeBusyUntil;
    d.undo.prevDmaBusyUntil = d.dmaBusyUntil;
    d.undo.dmaBusyDelta = t.initDone - t.start;
    d.undo.computeBusyDelta = t.end - compute_start;
    d.undo.model = model;
    d.dmaBusyUntil = t.initDone;
    d.computeBusyUntil = t.end;
    ++d.inFlight;
    ++d.dispatched;
    d.dmaBusyTime += t.initDone - t.start;
    d.computeBusyTime += t.end - compute_start;

    auto [it, inserted] =
        d.residentPlanBudget.try_emplace(model, planBudget);
    d.undo.hadResidency = !inserted;
    d.undo.prevBudget = inserted ? 0 : it->second;
    d.undo.countedSwitch = inserted || it->second != planBudget;
    if (d.undo.countedSwitch) {
        ++d.planSwitches;
        it->second = planBudget;
    }
}

void
DeviceCluster::complete(int device)
{
    auto &d = devices_[static_cast<std::size_t>(device)];
    FM_ASSERT(d.inFlight > 0, "completion on an idle device");
    --d.inFlight;
}

namespace {

/** Shared Down transition: the loop has already killed the in-flight
 * runs, so the pipeline empties and the horizons collapse to now. */
void
takeDown(DeviceState &d, SimTime now, bool crashed)
{
    d.health = DeviceHealth::Down;
    d.crashDown = crashed;
    d.downSince = now;
    d.inFlight = 0;
    d.computeBusyUntil = now;
    d.dmaBusyUntil = now;
    d.undo.valid = false;
}

} // namespace

void
DeviceCluster::crash(int device, SimTime now)
{
    auto &d = devices_[static_cast<std::size_t>(device)];
    FM_ASSERT(d.health != DeviceHealth::Down,
              "crash on a device already down");
    takeDown(d, now, /*crashed=*/true);
    // Device memory is gone with the device: every resident plan must
    // be re-planned (warm through the PlanMemo) after the rejoin.
    d.residentPlanBudget.clear();
    if (trace_)
        trace_->deviceHealthChange(
            now, d.id, static_cast<std::int64_t>(d.health),
            d.crashDown ? 1 : 0, d.probationUntil);
}

void
DeviceCluster::markDown(int device, SimTime now)
{
    auto &d = devices_[static_cast<std::size_t>(device)];
    FM_ASSERT(d.health != DeviceHealth::Down,
              "markDown on a device already down");
    // Wedged, not dead: plan residency survives the outage.
    takeDown(d, now, /*crashed=*/false);
    if (trace_)
        trace_->deviceHealthChange(
            now, d.id, static_cast<std::int64_t>(d.health),
            d.crashDown ? 1 : 0, d.probationUntil);
}

void
DeviceCluster::rejoin(int device, SimTime now, SimTime probation)
{
    auto &d = devices_[static_cast<std::size_t>(device)];
    FM_ASSERT(d.health == DeviceHealth::Down,
              "rejoin on a device that is not down");
    d.downTime += now - d.downSince;
    d.health = DeviceHealth::Suspect;
    d.crashDown = false;
    d.probationUntil = now + probation;
    d.inFlight = 0;
    d.computeBusyUntil = now;
    d.dmaBusyUntil = now;
    d.undo.valid = false;
    if (trace_)
        trace_->deviceHealthChange(
            now, d.id, static_cast<std::int64_t>(d.health),
            /*crash_down=*/0, d.probationUntil);
}

void
DeviceCluster::delay(int device, SimTime now, SimTime duration)
{
    auto &d = devices_[static_cast<std::size_t>(device)];
    // A frozen device makes no progress: busy horizons slide by the
    // stall, and an idle resource stays unavailable until it clears.
    d.computeBusyUntil = std::max(d.computeBusyUntil, now) + duration;
    d.dmaBusyUntil = std::max(d.dmaBusyUntil, now) + duration;
}

void
DeviceCluster::setSlowdown(int device, double factor, SimTime until)
{
    auto &d = devices_[static_cast<std::size_t>(device)];
    FM_ASSERT(factor >= 1.0, "slowdown factor must be >= 1");
    d.slowFactor = factor;
    d.slowUntil = until;
}

void
DeviceCluster::abortLastCommit(int device)
{
    auto &d = devices_[static_cast<std::size_t>(device)];
    FM_ASSERT(d.undo.valid, "abortLastCommit without a valid undo");
    FM_ASSERT(d.inFlight > 0, "abortLastCommit on an idle device");
    d.computeBusyUntil = d.undo.prevComputeBusyUntil;
    d.dmaBusyUntil = d.undo.prevDmaBusyUntil;
    d.dmaBusyTime -= d.undo.dmaBusyDelta;
    d.computeBusyTime -= d.undo.computeBusyDelta;
    --d.inFlight;
    --d.dispatched;
    if (d.undo.countedSwitch) {
        --d.planSwitches;
        if (d.undo.hadResidency)
            d.residentPlanBudget[d.undo.model] = d.undo.prevBudget;
        else
            d.residentPlanBudget.erase(d.undo.model);
    }
    d.undo.valid = false;
}

std::vector<DeviceUtilization>
DeviceCluster::utilization(SimTime makespan) const
{
    std::vector<DeviceUtilization> out;
    out.reserve(devices_.size());
    for (const auto &d : devices_) {
        DeviceUtilization u;
        u.device = d.id;
        u.dispatched = d.dispatched;
        u.planSwitches = d.planSwitches;
        u.computeBusyTime = d.computeBusyTime;
        u.dmaBusyTime = d.dmaBusyTime;
        u.downTime = d.downTime;
        if (d.health == DeviceHealth::Down && makespan > d.downSince)
            u.downTime += makespan - d.downSince;
        if (makespan > 0) {
            u.computeUtilization =
                static_cast<double>(d.computeBusyTime) /
                static_cast<double>(makespan);
            u.dmaUtilization = static_cast<double>(d.dmaBusyTime) /
                               static_cast<double>(makespan);
            u.downFraction = static_cast<double>(u.downTime) /
                             static_cast<double>(makespan);
        }
        out.push_back(u);
    }
    return out;
}

} // namespace flashmem::multidnn
