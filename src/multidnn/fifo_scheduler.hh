/**
 * @file
 * FIFO multi-DNN scheduling (paper Figure 1c / Section 5.3): requests
 * execute in arrival order on one shared device; each model swaps in,
 * runs, and swaps out. Under FlashMem the swap-in is the streamed
 * overlap plan; under preloading frameworks it is a full cold-start
 * init — the repeated-load overhead the paper targets.
 */

#ifndef FLASHMEM_MULTIDNN_FIFO_SCHEDULER_HH
#define FLASHMEM_MULTIDNN_FIFO_SCHEDULER_HH

#include <map>
#include <vector>

#include "baselines/preload_framework.hh"
#include "core/flashmem.hh"
#include "multidnn/workload.hh"

namespace flashmem::multidnn {

/** Outcome of draining one FIFO queue. */
struct FifoOutcome
{
    std::vector<core::RunResult> runs;
    SimTime makespan = 0;        ///< last completion
    Bytes peakMemory = 0;        ///< peak over the whole queue
    double avgMemoryBytes = 0.0; ///< time-weighted average
    double energyJoules = 0.0;

    /** Mean integrated latency across requests. */
    SimTime meanLatency() const;
};

/** Drains FIFO queues against one simulator. */
class FifoScheduler
{
  public:
    /**
     * Run the queue under FlashMem. Models are compiled once and
     * reused across repeated requests (the offline plan is per-model).
     */
    static FifoOutcome runFlashMem(const core::FlashMem &fm,
                                   const std::vector<ModelRequest> &queue,
                                   Precision precision = Precision::FP16);

    /** Run the queue under a preloading baseline framework. */
    static FifoOutcome runPreload(baselines::FrameworkId framework,
                                  const gpusim::DeviceProfile &dev,
                                  const std::vector<ModelRequest> &queue,
                                  Precision precision = Precision::FP16);

    /** Memory trace of the last run*() call (for Figure 6 plots). */
    static const TimeSeries &lastTrace();
};

} // namespace flashmem::multidnn

#endif // FLASHMEM_MULTIDNN_FIFO_SCHEDULER_HH
