/**
 * @file
 * FIFO multi-DNN scheduling (paper Figure 1c / Section 5.3): requests
 * execute in arrival order on one shared device; each model swaps in,
 * runs, and swaps out. A thin wrapper over the event-driven
 * EventScheduler with the FifoPolicy — kept as the entry point the
 * figure reproductions and examples use, and as the baseline the
 * other policies are compared against.
 */

#ifndef FLASHMEM_MULTIDNN_FIFO_SCHEDULER_HH
#define FLASHMEM_MULTIDNN_FIFO_SCHEDULER_HH

#include <vector>

#include "multidnn/scheduler.hh"

namespace flashmem::multidnn {

/** Outcome of draining one FIFO queue (trace included — schedulers
 * keep no mutable global state). */
using FifoOutcome = ScheduleOutcome;

/** Drains FIFO queues against one simulator. */
class FifoScheduler
{
  public:
    /**
     * Run the queue under FlashMem. Models are compiled once and
     * reused across repeated requests (the offline plan is per-model).
     */
    static FifoOutcome runFlashMem(const core::FlashMem &fm,
                                   const std::vector<ModelRequest> &queue,
                                   Precision precision = Precision::FP16);

    /** Run the queue under a preloading baseline framework. */
    static FifoOutcome runPreload(baselines::FrameworkId framework,
                                  const gpusim::DeviceProfile &dev,
                                  const std::vector<ModelRequest> &queue,
                                  Precision precision = Precision::FP16);
};

} // namespace flashmem::multidnn

#endif // FLASHMEM_MULTIDNN_FIFO_SCHEDULER_HH
