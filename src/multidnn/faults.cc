#include "multidnn/faults.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace flashmem::multidnn {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Crash:
        return "crash";
      case FaultKind::Rejoin:
        return "rejoin";
      case FaultKind::Stall:
        return "stall";
      case FaultKind::Slowdown:
        return "slowdown";
      case FaultKind::DmaError:
        return "dma-error";
    }
    return "unknown";
}

const char *
dropReasonName(DropReason reason)
{
    switch (reason) {
      case DropReason::Admission:
        return "admission";
      case DropReason::FaultBudget:
        return "fault-budget";
      case DropReason::Starved:
        return "starved";
      case DropReason::ArrivalShed:
        return "arrival-shed";
    }
    return "unknown";
}

void
FaultPlan::normalize()
{
    std::stable_sort(events.begin(), events.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         if (a.time != b.time)
                             return a.time < b.time;
                         if (a.device != b.device)
                             return a.device < b.device;
                         return static_cast<int>(a.kind) <
                                static_cast<int>(b.kind);
                     });
}

namespace {

/** Exponential inter-arrival draw at @p per_second events/s. */
SimTime
exponentialGap(Rng &rng, double per_second)
{
    // Inverse-CDF with the uniform clamped away from 0, matching the
    // serving trace generators' style of deterministic draws.
    double u = std::max(rng.uniform(), 1e-12);
    double gap_s = -std::log(u) / per_second;
    return std::llround(gap_s * 1e9);
}

/** Exponential duration with mean @p mean (floor 1ns). */
SimTime
exponentialDuration(Rng &rng, SimTime mean)
{
    double u = std::max(rng.uniform(), 1e-12);
    auto d = std::llround(-std::log(u) *
                          static_cast<double>(std::max<SimTime>(mean, 1)));
    return std::max<SimTime>(d, 1);
}

/** [start, end) windows where the device is crashed. */
struct DownWindows
{
    std::vector<std::pair<SimTime, SimTime>> spans;

    bool
    covers(SimTime t) const
    {
        for (const auto &[s, e] : spans) {
            if (t >= s && t < e)
                return true;
        }
        return false;
    }
};

} // namespace

FaultPlan
generateFaultPlan(const FaultPlanParams &params, int device_count,
                  SimTime horizon, std::uint64_t seed)
{
    FM_ASSERT(device_count >= 1, "fault plan needs >= 1 device");
    FM_ASSERT(horizon > 0, "fault plan needs a positive horizon");
    FaultPlan plan;
    for (int dev = 0; dev < device_count; ++dev) {
        // One independent stream per (device, fault family), so a
        // device's timeline is invariant under device-count changes
        // and adding one fault family never perturbs another.
        auto dev_seed = seed + 0x9E3779B97F4A7C15ull *
                                   static_cast<std::uint64_t>(dev + 1);
        DownWindows down;

        if (params.crashesPerSecond > 0.0) {
            Rng rng(dev_seed ^ 0xC1A5Cull);
            SimTime t = 0;
            for (;;) {
                t += exponentialGap(rng, params.crashesPerSecond);
                if (t >= horizon)
                    break;
                SimTime dur =
                    exponentialDuration(rng, params.meanDowntime);
                plan.events.push_back(
                    {t, dev, FaultKind::Crash, 0, 1.0});
                SimTime up = t + dur;
                if (up < horizon)
                    plan.events.push_back(
                        {up, dev, FaultKind::Rejoin, 0, 1.0});
                down.spans.emplace_back(t, up);
                t = up;
            }
        }

        auto inject = [&](std::uint64_t stream, double per_second,
                          FaultKind kind, SimTime mean_duration,
                          double factor) {
            if (per_second <= 0.0)
                return;
            Rng rng(dev_seed ^ stream);
            SimTime t = 0;
            for (;;) {
                t += exponentialGap(rng, per_second);
                if (t >= horizon)
                    break;
                SimTime dur =
                    mean_duration > 0
                        ? exponentialDuration(rng, mean_duration)
                        : 0;
                // A crashed device cannot stall, throttle, or flip a
                // DMA bit — suppress events inside down windows.
                if (down.covers(t))
                    continue;
                plan.events.push_back({t, dev, kind, dur, factor});
            }
        };
        inject(0x57A11ull, params.stallsPerSecond, FaultKind::Stall,
               params.meanStall, 1.0);
        inject(0x510Dull, params.slowdownsPerSecond,
               FaultKind::Slowdown, params.meanSlowdownDuration,
               params.slowdownFactor);
        inject(0xD3AEull, params.dmaErrorsPerSecond,
               FaultKind::DmaError, 0, 1.0);
    }
    plan.normalize();
    return plan;
}

FaultPlan
singleCrash(int device, SimTime at)
{
    FaultPlan plan;
    plan.events.push_back({at, device, FaultKind::Crash, 0, 1.0});
    return plan;
}

FaultPlan
crashAndRejoin(int device, SimTime at, SimTime downFor)
{
    FaultPlan plan;
    plan.events.push_back({at, device, FaultKind::Crash, 0, 1.0});
    plan.events.push_back(
        {at + downFor, device, FaultKind::Rejoin, 0, 1.0});
    return plan;
}

FaultPlan
singleSlowdown(int device, SimTime at, SimTime duration, double factor)
{
    FaultPlan plan;
    plan.events.push_back(
        {at, device, FaultKind::Slowdown, duration, factor});
    return plan;
}

FaultPlan
singleStall(int device, SimTime at, SimTime duration)
{
    FaultPlan plan;
    plan.events.push_back(
        {at, device, FaultKind::Stall, duration, 1.0});
    return plan;
}

FaultPlan
flappingDevice(int device, SimTime firstCrash, SimTime period,
               SimTime downFor, int cycles)
{
    FM_ASSERT(downFor < period,
              "flapping device must rejoin before its next crash");
    FaultPlan plan;
    SimTime t = firstCrash;
    for (int i = 0; i < cycles; ++i) {
        plan.events.push_back({t, device, FaultKind::Crash, 0, 1.0});
        plan.events.push_back(
            {t + downFor, device, FaultKind::Rejoin, 0, 1.0});
        t += period;
    }
    return plan;
}

FaultPlan
mergeFaultPlans(FaultPlan a, const FaultPlan &b)
{
    a.events.insert(a.events.end(), b.events.begin(), b.events.end());
    a.normalize();
    return a;
}

} // namespace flashmem::multidnn
