#include "multidnn/workload.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace flashmem::multidnn {

std::vector<ModelRequest>
interleavedWorkload(const std::vector<models::ModelId> &models,
                    int iterations, SimTime gap, std::uint64_t seed)
{
    FM_ASSERT(!models.empty() && iterations > 0, "empty workload");
    Rng rng(seed);
    std::vector<ModelRequest> out;
    SimTime t = 0;
    for (int it = 0; it < iterations; ++it) {
        // Fisher-Yates round order.
        std::vector<models::ModelId> round = models;
        for (std::size_t i = round.size(); i > 1; --i) {
            auto j = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(round[i - 1], round[j]);
        }
        for (auto m : round) {
            out.push_back({m, t});
            t += gap;
        }
    }
    return out;
}

std::vector<ModelRequest>
chainWorkload(const std::vector<models::ModelId> &models, SimTime gap)
{
    std::vector<ModelRequest> out;
    SimTime t = 0;
    for (auto m : models) {
        out.push_back({m, t});
        t += gap;
    }
    return out;
}

void
assignPriorities(std::vector<ModelRequest> &queue,
                 const std::vector<std::pair<models::ModelId, int>>
                     &priorities)
{
    for (auto &req : queue) {
        for (const auto &[m, p] : priorities) {
            if (req.model == m)
                req.priority = p;
        }
    }
}

} // namespace flashmem::multidnn
