/**
 * @file
 * Multi-DNN workload generation (paper Section 2.2 / Figure 6): FIFO
 * queues of model invocations as produced by AR pipelines, translators,
 * and similar applications that chain several distinct models.
 */

#ifndef FLASHMEM_MULTIDNN_WORKLOAD_HH
#define FLASHMEM_MULTIDNN_WORKLOAD_HH

#include <vector>

#include "common/types.hh"
#include "models/model_zoo.hh"

namespace flashmem::multidnn {

/** One queued inference request. */
struct ModelRequest
{
    models::ModelId model{};
    SimTime arrival = 0;
    /** Scheduling priority (higher runs first under the priority
     * policy; ignored by FIFO/SJF). */
    int priority = 0;
    /**
     * Latency SLO: the request must finish within this bound of its
     * arrival (0 = unbounded). Deadline-aware policies shed or degrade
     * requests that cannot meet it; other policies ignore it.
     */
    SimTime latencyBound = 0;

    /** Absolute completion deadline (kTimeNever when unbounded). */
    SimTime deadline() const
    {
        return latencyBound > 0 ? arrival + latencyBound : kTimeNever;
    }
};

/** Assign per-model priorities to an existing queue (in place). */
void assignPriorities(std::vector<ModelRequest> &queue,
                      const std::vector<std::pair<models::ModelId, int>>
                          &priorities);

/**
 * Figure-6-style workload: @p iterations rounds over @p models in a
 * deterministic pseudo-random order (seeded), with @p gap between
 * request arrivals.
 */
std::vector<ModelRequest> interleavedWorkload(
    const std::vector<models::ModelId> &models, int iterations,
    SimTime gap, std::uint64_t seed);

/** Simple chain: each model requested once, in order. */
std::vector<ModelRequest> chainWorkload(
    const std::vector<models::ModelId> &models, SimTime gap = 0);

} // namespace flashmem::multidnn

#endif // FLASHMEM_MULTIDNN_WORKLOAD_HH
