/**
 * @file
 * Event-driven multi-DNN scheduling (paper Figure 1c / Section 5.3).
 *
 * A simulation-clock event loop drains a queue of inference requests
 * against a DeviceCluster (multidnn/device.hh): arrival events feed a
 * ready set, completion events free device pipeline slots, and on
 * every dispatch opportunity a pluggable SchedulingPolicy picks the
 * next request and a pluggable placement policy picks its device.
 * Under FlashMem the swap-in is the streamed overlap plan; under
 * preloading baselines it is a full cold-start init — the repeated-
 * load overhead the paper targets. With
 * ClusterConfig::overlapInitWithExec the scheduler additionally
 * overlaps a request's streamed init (preload DMA) with the previous
 * request's compute on the same device — the paper's memory-hierarchy
 * overlap applied across requests.
 *
 * Memory-aware policies additionally enable **on-device re-planning**:
 * the scheduler caps the sum of co-resident working-set budgets at a
 * shared capacity budget, and when a model's share shifts — because
 * other models were admitted to or evicted from the ready set — the
 * model is re-planned at its new budget via FlashMem::replan(),
 * warm-started through the PlanMemo so re-plans land well under a
 * second and are bit-deterministic for any planner thread count.
 */

#ifndef FLASHMEM_MULTIDNN_SCHEDULER_HH
#define FLASHMEM_MULTIDNN_SCHEDULER_HH

#include <functional>
#include <map>
#include <vector>

#include "baselines/preload_framework.hh"
#include "core/flashmem.hh"
#include "multidnn/device.hh"
#include "multidnn/faults.hh"
#include "multidnn/policies.hh"
#include "multidnn/workload.hh"

namespace flashmem::multidnn {

/** Knobs of the event-driven scheduler. */
struct SchedulerConfig
{
    Precision precision = Precision::FP16;
    /**
     * Shared working-set capacity budget that memory-aware admission
     * divides across co-resident models; 0 = the device's app memory
     * budget. Ignored by policies without memoryAware().
     */
    Bytes capacityBudget = 0;
    /** Floor below which a model's share is never shrunk. */
    Bytes minModelBudget = mib(128);
    /**
     * Budget shares are rounded down to a multiple of this quantum, so
     * small ready-set fluctuations do not trigger re-plan churn (and
     * the per-budget artifact cache stays small). */
    Bytes budgetQuantum = mib(64);
    /** Master switch for on-device re-planning on budget shifts. */
    bool replanOnBudgetShift = true;
    /** Cluster shape: device count, placement policy, cross-request
     * init/exec overlap (see multidnn/device.hh). The default is the
     * single serialized device of the original scheduler. */
    ClusterConfig cluster;
    /** Deterministic fault schedule injected into the drain (empty =
     * fault-free; see multidnn/faults.hh). */
    FaultPlan faults;
    /** Detection/retry knobs for recovering from injected faults. */
    RecoveryConfig recovery;
    /**
     * Arrival-time admission gate (null = dispatch-point admission
     * only). Not owned; must outlive the scheduler. Hand the SAME
     * gate to ServingSimParams::arrival for the fast-sim-vs-real
     * cross-validation to stay bit-exact (the gate sees identical
     * cluster state and ready sets on both paths by construction).
     */
    const ArrivalAdmission *arrivalAdmission = nullptr;
    /**
     * Optional trace recorder (not owned; must outlive the
     * scheduler's run() calls). Receives the serving event stream
     * from the shared event loop plus the scheduler's planner-side
     * events: a Replan event per on-device re-plan and one
     * SolverWindow summary per solved window of that re-plan. Null
     * (the default) keeps every hook a skipped pointer test.
     */
    obs::TraceRecorder *trace = nullptr;
};

/**
 * Quantize a per-model budget share down to @p cfg.budgetQuantum and
 * clamp it to [max(cfg.minModelBudget, chunk_floor), mPeak] — the one
 * rule every admission and degrade budget passes through, shared with
 * the serving harness's service calibration so both re-plan at the
 * same budgets.
 */
Bytes quantizeBudgetShare(Bytes share, const SchedulerConfig &cfg,
                          Bytes chunk_floor, Bytes mPeak);

/** One request dropped without completing: SLO admission (never
 * dispatched), fault-retry budget exhausted, or starved when no
 * device could ever accept it again. */
struct ShedRecord
{
    std::size_t queueIndex = 0;
    models::ModelId model{};
    SimTime arrival = 0;
    SimTime latencyBound = 0;
    SimTime shedAt = 0; ///< dispatch point at which it was dropped
    DropReason reason = DropReason::Admission;
};

/** Outcome of draining one request queue. */
struct ScheduleOutcome
{
    /** Name of the policy that produced this outcome. */
    std::string policy;
    /**
     * Per-request results in dispatch (execution) order — queue order
     * under FIFO. RunResult::arrival carries the request's queue-entry
     * time, so requestLatency() includes queueing delay.
     */
    std::vector<core::RunResult> runs;
    SimTime makespan = 0;        ///< last completion
    Bytes peakMemory = 0;        ///< peak over the whole queue
    double avgMemoryBytes = 0.0; ///< time-weighted average
    double energyJoules = 0.0;
    /** Total-memory trace of this run (Figure 6 plots). Owned by the
     * outcome — schedulers keep no mutable global state. */
    TimeSeries trace;

    /** @name On-device re-planning counters (memory-aware policies). @{ */
    int replans = 0;                  ///< FlashMem::replan invocations
    std::uint64_t replanMemoHits = 0; ///< warm starts reused from memo
    double replanSeconds = 0.0;       ///< wall time spent re-planning
    /** @} */

    /** @name SLO admission (deadline-aware policies). @{ */
    /** Requests dropped without completing (admission, fault budget,
     * starvation — see ShedRecord::reason), in drop order. */
    std::vector<ShedRecord> shed;
    /** Completed runs that were dispatched at a degraded budget. */
    int degradedRuns = 0;
    /** @} */

    /** Fault-recovery accounting (all zero on fault-free drains). */
    FaultCounters faults;

    /** Per-device accounting: dispatch counts, plan switches, and
     * compute-/DMA-busy fractions over the makespan, so benches can
     * report overlap efficiency directly instead of inferring it from
     * the makespan. One row per cluster device. */
    std::vector<DeviceUtilization> devices;

    /** Mean request latency (end - arrival): includes queueing delay. */
    SimTime meanLatency() const;
    /** Mean time requests spent queued before dispatch. */
    SimTime meanQueueDelay() const;

    /** Completed runs that met their SLO (unbounded requests count;
     * shed requests never do — they did not complete). */
    std::size_t goodput() const;
    /** Completed runs that blew their latency bound. */
    std::size_t sloViolations() const;
    /** goodput() over all submitted requests (completed + shed). */
    double goodputRate() const;
    /** Shed requests over all submitted requests. */
    double shedRate() const;
};

/** Event-driven scheduler bound to one FlashMem instance. */
class EventScheduler
{
  public:
    explicit EventScheduler(const core::FlashMem &fm,
                            SchedulerConfig cfg = {});

    /**
     * Drain @p queue under @p policy. Compiled artifacts (per model,
     * per budget) and latency estimates persist across run() calls, so
     * per-policy comparisons pay the offline stage once; results are
     * unaffected because plans are deterministic per (model, budget).
     */
    ScheduleOutcome run(const std::vector<ModelRequest> &queue,
                        const SchedulingPolicy &policy);

    /**
     * Drain @p queue under a preloading baseline framework. Cold-start
     * init per request; no re-planning (the baselines have no plans).
     * @p cluster supports multi-device sharding, but cross-request
     * overlap is forced off: the baselines serialize initialization
     * with execution — there is no streamed DMA-queue init to overlap,
     * which is exactly the repeated-load overhead the paper targets.
     */
    static ScheduleOutcome runPreload(baselines::FrameworkId framework,
                                      const gpusim::DeviceProfile &dev,
                                      const std::vector<ModelRequest>
                                          &queue,
                                      const SchedulingPolicy &policy,
                                      Precision precision =
                                          Precision::FP16,
                                      ClusterConfig cluster = {});

    const SchedulerConfig &config() const { return cfg_; }

  private:
    /** Places and runs one picked request on a cluster device. */
    struct DeviceRun
    {
        int device = 0;
        core::RunResult run;
    };
    using DispatchFn = std::function<DeviceRun(
        const ReadyRequest &, SimTime now, int co_resident_models)>;

    /**
     * The simulation-clock event loop shared by the FlashMem and
     * preload paths (multidnn/event_loop.hh): arrivals enter the ready
     * set, completions free device pipeline slots, @p policy picks on
     * every dispatch opportunity, @p dispatch places and executes the
     * pick (and commits it to @p cluster). @p faults, when non-null,
     * injects the deterministic fault schedule; killed dispatches are
     * retried per @p recovery and never reach ScheduleOutcome::runs.
     */
    static ScheduleOutcome drain(
        DeviceCluster &cluster,
        const std::vector<ModelRequest> &queue,
        const SchedulingPolicy &policy,
        const std::map<models::ModelId, SimTime> &estimates,
        const DispatchFn &dispatch,
        const FaultPlan *faults = nullptr,
        const RecoveryConfig &recovery = {},
        const ArrivalAdmission *arrival = nullptr,
        obs::TraceRecorder *trace = nullptr);

    /** Finalize makespan/memory/energy/trace/per-device rows. */
    static void summarize(const std::vector<gpusim::GpuSimulator> &sims,
                          const DeviceCluster &cluster,
                          ScheduleOutcome &out);

    /** Compiled artifact for (model, budget), compiling/re-planning on
     * first use. Re-plans are counted into @p out. */
    const core::CompiledModel &compiledFor(models::ModelId model,
                                           Bytes budget,
                                           ScheduleOutcome &out);

    /** Measured solo run of (model, budget) on a scratch simulator —
     * the init/exec split the cross-request overlap model places runs
     * with, and the source of warm latency estimates. Cached;
     * executions are start-time invariant so one measurement covers
     * every dispatch. */
    const core::RunResult &profileFor(models::ModelId model,
                                      Bytes budget,
                                      ScheduleOutcome &out);

    /** Warm single-run latency estimate (scratch simulator). */
    SimTime estimateFor(models::ModelId model, ScheduleOutcome &out);

    /** Admission budget for a model when @p co_resident distinct
     * models currently share the capacity budget. */
    Bytes admissionBudget(int co_resident) const;

    /** Quantize @p share down to the budget quantum and clamp it to
     * [minModelBudget, configured mPeak]. */
    Bytes clampQuantize(Bytes share) const;

    const core::FlashMem &fm_;
    SchedulerConfig cfg_;
    std::map<models::ModelId, graph::Graph> graphs_;
    std::map<std::pair<models::ModelId, Bytes>, core::CompiledModel>
        compiled_;
    std::map<std::pair<models::ModelId, Bytes>, core::RunResult>
        profiles_;
};

} // namespace flashmem::multidnn

#endif // FLASHMEM_MULTIDNN_SCHEDULER_HH
