/**
 * @file
 * Event-driven multi-DNN scheduling (paper Figure 1c / Section 5.3).
 *
 * A simulation-clock event loop drains a queue of inference requests
 * against one shared device: arrival events feed a ready set, a
 * completion event frees the device, and on every free device a
 * pluggable SchedulingPolicy picks the next request. Under FlashMem
 * the swap-in is the streamed overlap plan; under preloading baselines
 * it is a full cold-start init — the repeated-load overhead the paper
 * targets.
 *
 * Memory-aware policies additionally enable **on-device re-planning**:
 * the scheduler caps the sum of co-resident working-set budgets at a
 * shared capacity budget, and when a model's share shifts — because
 * other models were admitted to or evicted from the ready set — the
 * model is re-planned at its new budget via FlashMem::replan(),
 * warm-started through the PlanMemo so re-plans land well under a
 * second and are bit-deterministic for any planner thread count.
 */

#ifndef FLASHMEM_MULTIDNN_SCHEDULER_HH
#define FLASHMEM_MULTIDNN_SCHEDULER_HH

#include <functional>
#include <map>
#include <vector>

#include "baselines/preload_framework.hh"
#include "core/flashmem.hh"
#include "multidnn/policies.hh"
#include "multidnn/workload.hh"

namespace flashmem::multidnn {

/** Knobs of the event-driven scheduler. */
struct SchedulerConfig
{
    Precision precision = Precision::FP16;
    /**
     * Shared working-set capacity budget that memory-aware admission
     * divides across co-resident models; 0 = the device's app memory
     * budget. Ignored by policies without memoryAware().
     */
    Bytes capacityBudget = 0;
    /** Floor below which a model's share is never shrunk. */
    Bytes minModelBudget = mib(128);
    /**
     * Budget shares are rounded down to a multiple of this quantum, so
     * small ready-set fluctuations do not trigger re-plan churn (and
     * the per-budget artifact cache stays small). */
    Bytes budgetQuantum = mib(64);
    /** Master switch for on-device re-planning on budget shifts. */
    bool replanOnBudgetShift = true;
};

/**
 * Quantize a per-model budget share down to @p cfg.budgetQuantum and
 * clamp it to [max(cfg.minModelBudget, chunk_floor), mPeak] — the one
 * rule every admission and degrade budget passes through, shared with
 * the serving harness's service calibration so both re-plan at the
 * same budgets.
 */
Bytes quantizeBudgetShare(Bytes share, const SchedulerConfig &cfg,
                          Bytes chunk_floor, Bytes mPeak);

/** One request dropped by SLO admission (never dispatched). */
struct ShedRecord
{
    std::size_t queueIndex = 0;
    models::ModelId model{};
    SimTime arrival = 0;
    SimTime latencyBound = 0;
    SimTime shedAt = 0; ///< dispatch point at which it was dropped
};

/** Outcome of draining one request queue. */
struct ScheduleOutcome
{
    /** Name of the policy that produced this outcome. */
    std::string policy;
    /**
     * Per-request results in dispatch (execution) order — queue order
     * under FIFO. RunResult::arrival carries the request's queue-entry
     * time, so requestLatency() includes queueing delay.
     */
    std::vector<core::RunResult> runs;
    SimTime makespan = 0;        ///< last completion
    Bytes peakMemory = 0;        ///< peak over the whole queue
    double avgMemoryBytes = 0.0; ///< time-weighted average
    double energyJoules = 0.0;
    /** Total-memory trace of this run (Figure 6 plots). Owned by the
     * outcome — schedulers keep no mutable global state. */
    TimeSeries trace;

    /** @name On-device re-planning counters (memory-aware policies). @{ */
    int replans = 0;                  ///< FlashMem::replan invocations
    std::uint64_t replanMemoHits = 0; ///< warm starts reused from memo
    double replanSeconds = 0.0;       ///< wall time spent re-planning
    /** @} */

    /** @name SLO admission (deadline-aware policies). @{ */
    /** Requests dropped by admission, in shed order. */
    std::vector<ShedRecord> shed;
    /** Runs dispatched at a degraded capacity budget. */
    int degradedRuns = 0;
    /** @} */

    /** Mean request latency (end - arrival): includes queueing delay. */
    SimTime meanLatency() const;
    /** Mean time requests spent queued before dispatch. */
    SimTime meanQueueDelay() const;

    /** Completed runs that met their SLO (unbounded requests count;
     * shed requests never do — they did not complete). */
    std::size_t goodput() const;
    /** Completed runs that blew their latency bound. */
    std::size_t sloViolations() const;
    /** goodput() over all submitted requests (completed + shed). */
    double goodputRate() const;
    /** Shed requests over all submitted requests. */
    double shedRate() const;
};

/** Event-driven scheduler bound to one FlashMem instance. */
class EventScheduler
{
  public:
    explicit EventScheduler(const core::FlashMem &fm,
                            SchedulerConfig cfg = {});

    /**
     * Drain @p queue under @p policy. Compiled artifacts (per model,
     * per budget) and latency estimates persist across run() calls, so
     * per-policy comparisons pay the offline stage once; results are
     * unaffected because plans are deterministic per (model, budget).
     */
    ScheduleOutcome run(const std::vector<ModelRequest> &queue,
                        const SchedulingPolicy &policy);

    /**
     * Drain @p queue under a preloading baseline framework. Cold-start
     * init per request; no re-planning (the baselines have no plans).
     */
    static ScheduleOutcome runPreload(baselines::FrameworkId framework,
                                      const gpusim::DeviceProfile &dev,
                                      const std::vector<ModelRequest>
                                          &queue,
                                      const SchedulingPolicy &policy,
                                      Precision precision =
                                          Precision::FP16);

    const SchedulerConfig &config() const { return cfg_; }

  private:
    /** Runs one picked request; returns its RunResult. */
    using DispatchFn = std::function<core::RunResult(
        gpusim::GpuSimulator &, const ReadyRequest &, SimTime now,
        int co_resident_models)>;

    /**
     * The simulation-clock event loop shared by the FlashMem and
     * preload paths: arrivals enter the ready set, completions free
     * the device, @p policy picks on every free device, @p dispatch
     * executes the pick.
     */
    static ScheduleOutcome drain(
        gpusim::GpuSimulator &sim,
        const std::vector<ModelRequest> &queue,
        const SchedulingPolicy &policy,
        const std::map<models::ModelId, SimTime> &estimates,
        const DispatchFn &dispatch);

    /** Finalize makespan/memory/energy/trace for @p out. */
    static void summarize(const gpusim::GpuSimulator &sim,
                          ScheduleOutcome &out);

    /** Compiled artifact for (model, budget), compiling/re-planning on
     * first use. Re-plans are counted into @p out. */
    const core::CompiledModel &compiledFor(models::ModelId model,
                                           Bytes budget,
                                           ScheduleOutcome &out);

    /** Warm single-run latency estimate (scratch simulator). */
    SimTime estimateFor(models::ModelId model, ScheduleOutcome &out);

    /** Admission budget for a model when @p co_resident distinct
     * models currently share the capacity budget. */
    Bytes admissionBudget(int co_resident) const;

    /** Quantize @p share down to the budget quantum and clamp it to
     * [minModelBudget, configured mPeak]. */
    Bytes clampQuantize(Bytes share) const;

    const core::FlashMem &fm_;
    SchedulerConfig cfg_;
    std::map<models::ModelId, graph::Graph> graphs_;
    std::map<std::pair<models::ModelId, Bytes>, core::CompiledModel>
        compiled_;
    std::map<models::ModelId, SimTime> estimates_;
};

} // namespace flashmem::multidnn

#endif // FLASHMEM_MULTIDNN_SCHEDULER_HH
