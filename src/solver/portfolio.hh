/**
 * @file
 * Deterministic portfolio search: K solver configurations race the
 * same model, sharing a monotone bound board for cancellation.
 *
 * Determinism contract (the "bound-sharing safety argument", see
 * src/solver/README.md for the full proof sketch):
 *
 *   - Each configuration's *uninterfered* search trajectory is a pure
 *     function of (model, hint, config). The board never injects
 *     bounds into a running search — it only CANCELS searches, so an
 *     interfered run is always a prefix of the uninterfered one.
 *   - The board publishes at most one objective value: the proven
 *     optimum B*. Every prover publishes the same B* (optimality is
 *     unique in value), so racing publications are idempotent.
 *   - A configuration is cancelled only when a strictly lower-indexed
 *     configuration has *achieved* B*. Achieving B* under
 *     cancellation implies achieving it uninterfered (prefix), so the
 *     lowest-indexed achiever j* is timing-independent: it can never
 *     be cancelled (no lower achiever exists), runs uninterfered to
 *     its first B*-incumbent, and its values freeze there (B* cannot
 *     be improved).
 *   - The merge picks the winner as the lowest-indexed outcome whose
 *     objective equals the best found — exactly j* whenever any
 *     configuration proves, and the deterministic min-index best
 *     otherwise (no publication, hence no interference, occurs).
 *   - Overall Optimal status is timing-independent: if any
 *     configuration proves uninterfered, then in every schedule some
 *     configuration proves (a prover is only ever cancelled after a
 *     publication, which itself requires a completed proof).
 *
 * Raw work counters of cancelled configurations remain
 * timing-dependent and are exposed for diagnostics only; everything
 * that feeds plans, memo entries, or traces comes from the winner's
 * improvement-snapshot counters, which live in the uninterfered
 * prefix.
 */

#ifndef FLASHMEM_SOLVER_PORTFOLIO_HH
#define FLASHMEM_SOLVER_PORTFOLIO_HH

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "solver/solver.hh"

namespace flashmem::solver {

/**
 * Shared cancellation board for one portfolio race. Monotone by
 * construction: the proven objective is written at most with one
 * value (B*), and the achiever index only decreases. Publication
 * order therefore cannot change what is eventually observable, which
 * is what makes cancellation timing-independent at the plan level.
 */
class PortfolioBoard
{
  public:
    /** Record that @p config proved @p objective optimal. */
    void
    publishProven(int config, std::int64_t objective)
    {
        // proven_ is written before the hasProven_ release-store so a
        // reader that observes the flag also observes the value.
        proven_.store(objective, std::memory_order_relaxed);
        hasProven_.store(true, std::memory_order_release);
        noteAchieved(config);
    }

    /** True (and *out set) once any configuration proved optimality. */
    bool
    provenObjective(std::int64_t *out) const
    {
        if (!hasProven_.load(std::memory_order_acquire))
            return false;
        *out = proven_.load(std::memory_order_relaxed);
        return true;
    }

    /** Record that @p config holds an incumbent matching B*. */
    void
    noteAchieved(int config)
    {
        int cur = achiever_.load(std::memory_order_relaxed);
        while (config < cur &&
               !achiever_.compare_exchange_weak(
                   cur, config, std::memory_order_release,
                   std::memory_order_relaxed)) {
        }
    }

    /** True when a strictly lower-indexed achiever exists. */
    bool
    cancelled(int config) const
    {
        return achiever_.load(std::memory_order_acquire) < config;
    }

  private:
    // FMLINT(allow:cross-thread-state) portfolio bound sharing: flag only ever flips false->true (monotone), so observation order cannot change the merged result
    std::atomic<bool> hasProven_{false};
    // FMLINT(allow:cross-thread-state) portfolio bound sharing: written with at most one value (the unique proven optimum B*), so racing writers are idempotent
    std::atomic<std::int64_t> proven_{0};
    // FMLINT(allow:cross-thread-state) portfolio bound sharing: min-CAS only ever decreases, and cancellation requires a strictly lower achiever, so the lowest achiever is schedule-independent
    std::atomic<int> achiever_{std::numeric_limits<int>::max()};
};

/** One configuration's finished (or cancelled) solve. */
struct PortfolioOutcome
{
    int config = 0;
    SolveResult result;
};

/** Deterministically merged portfolio result (see file comment). */
struct PortfolioResult
{
    /**
     * Winner's values/objective and improvement snapshots; status
     * merged across configurations (Optimal if any proved); raw
     * decision/propagation/backtrack/restart counters and wallSeconds
     * summed across configurations as total-work diagnostics.
     */
    SolveResult result;
    int winningConfig = 0;
    /** Per-configuration outcomes in configuration (submission) order. */
    std::vector<PortfolioOutcome> outcomes;
};

/**
 * Derive configuration @p index from @p base and attach the board.
 * Index 0 is @p base verbatim (the byte-compatibility anchor: a
 * one-configuration portfolio reproduces a plain solve). Higher
 * indices permute the first-fail tie-break order (orderSeed), flip
 * the value-ordering polarity on odd indices, and vary the restart
 * schedule — index 3 (mod 4) disables restarts entirely so one
 * configuration always attempts an uninterrupted exhaustion proof.
 */
SolverParams portfolioConfig(const SolverParams &base, int index,
                             PortfolioBoard *board);

/**
 * Run configuration @p index to completion against @p model and
 * report the outcome to @p board (publish on proof; note achievement
 * when the result matches an already-proven optimum). Pure apart
 * from board traffic — safe to run concurrently with other indices.
 */
PortfolioOutcome solvePortfolioConfig(
    const CpModel &model, const SolverParams &base, int index,
    PortfolioBoard *board, const std::vector<std::int64_t> *hint);

/**
 * Merge per-configuration outcomes (must be in configuration order)
 * into the deterministic portfolio result. Pure.
 */
PortfolioResult mergePortfolio(std::vector<PortfolioOutcome> outcomes);

/**
 * Convenience driver: race @p configs configurations of @p base over
 * @p model on an internal pool of @p threads workers (threads <= 1
 * runs them sequentially — the merged result is byte-identical either
 * way). configs <= 1 degenerates to a plain CpSolver::solve.
 */
PortfolioResult solvePortfolio(const CpModel &model,
                               const SolverParams &base, int configs,
                               const std::vector<std::int64_t> *hint,
                               int threads);

} // namespace flashmem::solver

#endif // FLASHMEM_SOLVER_PORTFOLIO_HH
