#include "solver/portfolio.hh"

#include <future>
#include <utility>

#include "common/thread_pool.hh"

namespace flashmem::solver {

SolverParams
portfolioConfig(const SolverParams &base, int index, PortfolioBoard *board)
{
    SolverParams p = base;
    p.board = board;
    p.portfolioIndex = index;
    if (index == 0)
        return p; // anchor: base search order, base schedule
    // Golden-ratio stride gives well-separated xoshiro seed streams;
    // any nonzero seed permutes the first-fail tie-break order.
    p.orderSeed = 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(index);
    p.invertValueOrder = (index % 2) == 1;
    switch (index % 4) {
      case 1: // base restart schedule, flipped polarity
        break;
      case 2: // slower restarts: longer dives on a permuted order
        p.restartConflictBase =
            base.restartConflictBase ? 2 * base.restartConflictBase : 256;
        break;
      case 3: // no restarts: the dedicated exhaustion-proof attempt
        p.restartConflictBase = 0;
        break;
      default: // index % 4 == 0, index >= 4: faster restarts
        p.restartConflictBase = base.restartConflictBase
                                    ? base.restartConflictBase / 2 + 1
                                    : 512;
        break;
    }
    return p;
}

PortfolioOutcome
solvePortfolioConfig(const CpModel &model, const SolverParams &base,
                     int index, PortfolioBoard *board,
                     const std::vector<std::int64_t> *hint)
{
    CpSolver solver(portfolioConfig(base, index, board));
    PortfolioOutcome out;
    out.config = index;
    out.result = solver.solve(model, hint);
    if (board) {
        if (out.result.status == SolveStatus::Optimal) {
            board->publishProven(index, out.result.objective);
        } else if (out.result.feasible()) {
            std::int64_t proven = 0;
            if (board->provenObjective(&proven) &&
                out.result.objective <= proven)
                board->noteAchieved(index);
        }
    }
    return out;
}

PortfolioResult
mergePortfolio(std::vector<PortfolioOutcome> outcomes)
{
    PortfolioResult merged;

    // Winner: lowest-indexed outcome holding the best objective. When
    // any configuration proved, the best objective is B* and this is
    // the schedule-independent j* (see portfolio.hh).
    int winner = -1;
    bool anyOptimal = false;
    bool anyInfeasible = false;
    for (const PortfolioOutcome &o : outcomes) {
        anyOptimal |= o.result.status == SolveStatus::Optimal;
        anyInfeasible |= o.result.status == SolveStatus::Infeasible;
        if (!o.result.feasible())
            continue;
        if (winner < 0 ||
            o.result.objective < outcomes[winner].result.objective)
            winner = o.config;
    }

    if (winner >= 0) {
        const SolveResult &w = outcomes[winner].result;
        merged.result.values = w.values;
        merged.result.objective = w.objective;
        merged.result.improveDecisions = w.improveDecisions;
        merged.result.improvePropagations = w.improvePropagations;
        merged.result.improveBacktracks = w.improveBacktracks;
        merged.result.improveRestarts = w.improveRestarts;
        merged.result.status =
            anyOptimal ? SolveStatus::Optimal : SolveStatus::Feasible;
        merged.winningConfig = winner;
    } else {
        merged.result.status = anyInfeasible ? SolveStatus::Infeasible
                                             : SolveStatus::Unknown;
    }

    for (const PortfolioOutcome &o : outcomes) {
        merged.result.decisions += o.result.decisions;
        merged.result.propagations += o.result.propagations;
        merged.result.backtracks += o.result.backtracks;
        merged.result.restarts += o.result.restarts;
        merged.result.wallSeconds += o.result.wallSeconds;
    }
    merged.outcomes = std::move(outcomes);
    return merged;
}

PortfolioResult
solvePortfolio(const CpModel &model, const SolverParams &base, int configs,
               const std::vector<std::int64_t> *hint, int threads)
{
    if (configs <= 1) {
        PortfolioOutcome only;
        only.config = 0;
        only.result = CpSolver(base).solve(model, hint);
        std::vector<PortfolioOutcome> outcomes;
        outcomes.push_back(std::move(only));
        return mergePortfolio(std::move(outcomes));
    }

    PortfolioBoard board;
    std::vector<PortfolioOutcome> outcomes;
    outcomes.reserve(configs);
    if (threads <= 1) {
        // Sequential race: configuration 0 runs first and publishes,
        // so later configurations cancel at their first poll. The
        // merged result is byte-identical to any parallel schedule.
        for (int k = 0; k < configs; ++k)
            outcomes.push_back(
                solvePortfolioConfig(model, base, k, &board, hint));
    } else {
        ThreadPool pool(threads);
        std::vector<std::future<PortfolioOutcome>> futures;
        futures.reserve(configs);
        for (int k = 0; k < configs; ++k) {
            futures.push_back(pool.submit([&model, &base, k, &board,
                                           hint] {
                return solvePortfolioConfig(model, base, k, &board, hint);
            }));
        }
        for (auto &f : futures)
            outcomes.push_back(f.get());
    }
    return mergePortfolio(std::move(outcomes));
}

} // namespace flashmem::solver
