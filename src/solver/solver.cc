#include "solver/solver.hh"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/logging.hh"
#include "common/rng.hh"
#include "solver/portfolio.hh"
#include "solver/trail.hh"

namespace flashmem::solver {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

/** Floor division robust to negative operands. */
std::int64_t
divFloor(std::int64_t a, std::int64_t b)
{
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

/** Ceiling division robust to negative operands. */
std::int64_t
divCeil(std::int64_t a, std::int64_t b)
{
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) == (b < 0)))
        ++q;
    return q;
}

std::int64_t
objectiveOf(const CpModel &model, const std::vector<std::int64_t> &values)
{
    std::int64_t s = 0;
    for (const auto &t : model.objective())
        s += t.coef * values[t.var];
    return s;
}

/**
 * Luby restart sequence (Luby/Sinclair/Zuckerman 1993), 1-indexed:
 * 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
 */
std::uint64_t
luby(std::uint64_t i)
{
    for (;;) {
        std::uint64_t k = 1;
        while ((1ull << k) - 1 < i)
            ++k;
        if ((1ull << k) - 1 == i)
            return 1ull << (k - 1);
        i -= (1ull << (k - 1)) - 1;
    }
}

// ===================================================== Trail engine

/**
 * Trail-based DFS branch and bound. Per-node cost is proportional to
 * the number of bound changes, not to V or to the constraint count:
 * backtracking rewinds the trail, propagation drains a dirty queue fed
 * by per-variable watch lists, the objective lower bound AND every
 * linear row's smin/smax are maintained incrementally (sum-restore
 * entries on the trail), and variable selection pops a lazy heap.
 * Optional Luby restarts with solution phase saving (see SolverParams).
 */
struct TrailSearch
{
    const CpModel *model = nullptr;
    SolverParams params;

    DomainTrail dom;

    // Dense objective coefficient per variable (0 when absent).
    std::vector<std::int64_t> objCoef;
    /** Incremental objective lower bound over current domains. */
    std::int64_t objMin = 0;

    /**
     * Trailed per-constraint partial sums: slot 2*ci holds smin (the
     * row's minimum over current domains), slot 2*ci+1 holds smax.
     * Updated by delta on every bound change via varCons and restored
     * exactly on rewind, so reviseLinear never re-sums a full row.
     */
    std::vector<std::int64_t> conSums;
    /** (constraint, coef) for every term mentioning a variable. */
    struct VarCon
    {
        std::int32_t con = -1;
        std::int64_t coef = 0;
    };
    std::vector<std::vector<VarCon>> varCons;

    // Incumbent.
    bool haveIncumbent = false;
    std::vector<std::int64_t> best;
    std::int64_t bestObjective = kInf;

    // Dirty propagation queue: ids [0, C) are linear constraints,
    // [C, C+I) are implications (offset by constraint count).
    std::vector<std::int32_t> queue;
    std::size_t queueHead = 0;
    std::vector<char> inQueue;

    // Lazy first-fail heap: entries go stale when a domain changes; a
    // fresh entry is pushed on every change, so the newest entry for a
    // variable always reflects its current size and stale ones are
    // discarded on pop (validated against the live domain).
    struct HeapEntry
    {
        std::int64_t size = 0;
        double activity = 0.0;
        VarId var = -1;
    };
    struct HeapWorse
    {
        /**
         * Final tie-break key per variable: the identity when
         * orderSeed == 0 (preserving the historical smallest-id-first
         * order byte for byte), a seeded permutation otherwise — the
         * portfolio's search-order diversity axis.
         */
        const std::int32_t *orderKey = nullptr;

        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.size != b.size)
                return a.size > b.size; // smallest domain first
            if (a.activity != b.activity)
                return a.activity < b.activity; // then most active
            return orderKey[a.var] > orderKey[b.var];
        }
    };
    std::vector<HeapEntry> heap;
    std::vector<std::int32_t> orderKey;
    std::vector<double> activity;
    double activityInc = 1.0;
    // Deferred heap maintenance: changed variables are only marked
    // here; flushDirtyVars() pushes one fresh entry per variable right
    // before selection. A variable tightened several times between two
    // decisions costs one push instead of one per change, and the lazy
    // validity check on pop keeps selection order identical.
    std::vector<char> varDirty;
    std::vector<VarId> dirtyVars;

    // Stats / limits / restarts.
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t backtracks = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t conflictLimit = 0; ///< next restart point (conflicts)
    std::uint64_t restarts = 0;
    bool restartPending = false;
    bool limitHit = false;
    bool cancelled = false;
    // Snapshots at the last incumbent improvement (see SolveResult).
    std::uint64_t improveDecisions = 0;
    std::uint64_t improvePropagations = 0;
    std::uint64_t improveBacktracks = 0;
    std::uint64_t improveRestarts = 0;
    // FMLINT(allow:no-wall-clock) wall-clock time budget; Table-4 determinism runs bound by conflicts/decisions, not time
    std::chrono::steady_clock::time_point deadline;

    bool
    timeUp()
    {
        // Check the clock (and the portfolio board) sparingly;
        // decisions dominate runtime.
        if ((decisions & 0x3F) == 0) {
            // FMLINT(allow:no-wall-clock) wall-clock time budget; Table-4 determinism runs bound by conflicts/decisions, not time
            if (std::chrono::steady_clock::now() >= deadline)
                limitHit = true;
            if (params.board && !cancelled) {
                // Cancellation-only bound sharing: stop when a
                // lower-indexed configuration achieved the proven
                // optimum, or self-stop once our own incumbent
                // matches it (further search cannot improve it).
                std::int64_t proven = 0;
                if (params.board->cancelled(params.portfolioIndex)) {
                    cancelled = true;
                    limitHit = true;
                } else if (params.board->provenObjective(&proven) &&
                           haveIncumbent && bestObjective <= proven) {
                    params.board->noteAchieved(params.portfolioIndex);
                    cancelled = true;
                    limitHit = true;
                }
            }
        }
        if (params.maxDecisions && decisions >= params.maxDecisions)
            limitHit = true;
        return limitHit;
    }

    /** Conflict bookkeeping shared by propagation and branching. */
    void
    noteConflict()
    {
        ++conflicts;
        if (params.restartConflictBase && conflicts >= conflictLimit)
            restartPending = true;
    }

    void
    init(const CpModel &m)
    {
        model = &m;
        const auto n = m.varCount();
        std::vector<std::int64_t> lb(n), ub(n);
        for (VarId v = 0; v < static_cast<VarId>(n); ++v) {
            lb[v] = m.lowerBound(v);
            ub[v] = m.upperBound(v);
        }
        dom.init(std::move(lb), std::move(ub));

        objCoef.assign(n, 0);
        for (const auto &t : m.objective())
            objCoef[t.var] += t.coef;
        objMin = 0;
        for (VarId v = 0; v < static_cast<VarId>(n); ++v) {
            objMin += objCoef[v] *
                      (objCoef[v] >= 0 ? dom.lb(v) : dom.ub(v));
        }

        // Root partial sums per constraint + the var -> (row, coef)
        // adjacency that keeps them incremental from here on.
        const auto ncons = m.constraints().size();
        conSums.assign(2 * ncons, 0);
        varCons.assign(n, {});
        for (std::size_t ci = 0; ci < ncons; ++ci) {
            const auto &c = m.constraints()[ci];
            for (const auto &t : c.terms) {
                if (t.coef >= 0) {
                    conSums[2 * ci] += t.coef * dom.lb(t.var);
                    conSums[2 * ci + 1] += t.coef * dom.ub(t.var);
                } else {
                    conSums[2 * ci] += t.coef * dom.ub(t.var);
                    conSums[2 * ci + 1] += t.coef * dom.lb(t.var);
                }
                varCons[t.var].push_back(
                    {static_cast<std::int32_t>(ci), t.coef});
            }
        }
        dom.trackSums(&conSums);

        orderKey.resize(n);
        for (VarId v = 0; v < static_cast<VarId>(n); ++v)
            orderKey[v] = v;
        if (params.orderSeed) {
            // Seeded Fisher-Yates over the tie-break ranks; the
            // permutation is a pure function of the seed, so every
            // configuration's search order is reproducible.
            Rng rng(params.orderSeed);
            for (std::size_t i = n; i > 1; --i) {
                const auto j = static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(i) - 1));
                std::swap(orderKey[i - 1], orderKey[j]);
            }
        }

        activity.assign(n, 0.0);
        varDirty.assign(n, 0);
        dirtyVars.clear();
        heap.clear();
        heap.reserve(n);
        for (VarId v = 0; v < static_cast<VarId>(n); ++v) {
            if (dom.domainSize(v) > 0)
                pushHeap(v);
        }

        const auto total =
            m.constraints().size() + m.implications().size();
        inQueue.assign(total, 0);
        queue.clear();
        queueHead = 0;
        // Root propagation visits everything once.
        for (std::size_t id = 0; id < total; ++id)
            enqueue(static_cast<std::int32_t>(id));
    }

    void
    pushHeap(VarId v)
    {
        heap.push_back({dom.domainSize(v), activity[v], v});
        std::push_heap(heap.begin(), heap.end(),
                       HeapWorse{orderKey.data()});
    }

    /** Mark @p v for a heap refresh at the next selection point. */
    void
    markDirty(VarId v)
    {
        if (!varDirty[v]) {
            varDirty[v] = 1;
            dirtyVars.push_back(v);
        }
    }

    /** Push one fresh entry per dirty, still-unfixed variable. */
    void
    flushDirtyVars()
    {
        for (auto v : dirtyVars) {
            varDirty[v] = 0;
            if (dom.domainSize(v) > 0)
                pushHeap(v);
        }
        dirtyVars.clear();
    }

    /** Pop the unfixed variable with the smallest current domain. */
    VarId
    pickVariable()
    {
        flushDirtyVars();
        while (!heap.empty()) {
            HeapEntry e = heap.front();
            std::pop_heap(heap.begin(), heap.end(),
                          HeapWorse{orderKey.data()});
            heap.pop_back();
            // Valid only if it still describes the live domain.
            if (e.size > 0 && dom.domainSize(e.var) == e.size)
                return e.var;
        }
        return -1;
    }

    /** Rebuild the heap from live domains when stale entries pile up. */
    void
    compactHeapIfNeeded()
    {
        if (heap.size() <=
            std::max<std::size_t>(64, 8 * dom.varCount()))
            return;
        heap.clear();
        for (VarId v = 0; v < static_cast<VarId>(dom.varCount()); ++v) {
            if (dom.domainSize(v) > 0)
                heap.push_back({dom.domainSize(v), activity[v], v});
        }
        std::make_heap(heap.begin(), heap.end(),
                       HeapWorse{orderKey.data()});
    }

    void
    enqueue(std::int32_t id)
    {
        if (!inQueue[id]) {
            inQueue[id] = 1;
            queue.push_back(id);
        }
    }

    /** Wake every constraint/implication watching @p v. */
    void
    onVarChanged(VarId v)
    {
        const auto ncons =
            static_cast<std::int32_t>(model->constraints().size());
        for (auto c : model->constraintsWatching(v))
            enqueue(c);
        for (auto i : model->implicationsWatching(v))
            enqueue(ncons + i);
        markDirty(v);
    }

    /** @return false when the domain wipes out (conflict). */
    bool
    tightenLb(VarId v, std::int64_t x)
    {
        if (x <= dom.lb(v))
            return true;
        const std::int64_t delta = x - dom.lb(v);
        if (objCoef[v] > 0)
            objMin += objCoef[v] * delta;
        // A raised lb moves smin for coef >= 0 rows (smin tracks lb
        // there) and smax for coef < 0 rows (smax tracks lb there).
        for (const auto &vc : varCons[v]) {
            dom.addToSum(vc.coef >= 0 ? 2 * vc.con : 2 * vc.con + 1,
                         vc.coef * delta);
        }
        dom.tightenLb(v, x);
        if (dom.empty(v))
            return false;
        onVarChanged(v);
        return true;
    }

    bool
    tightenUb(VarId v, std::int64_t x)
    {
        if (x >= dom.ub(v))
            return true;
        const std::int64_t delta = x - dom.ub(v);
        if (objCoef[v] < 0)
            objMin += objCoef[v] * delta;
        for (const auto &vc : varCons[v]) {
            dom.addToSum(vc.coef >= 0 ? 2 * vc.con + 1 : 2 * vc.con,
                         vc.coef * delta);
        }
        dom.tightenUb(v, x);
        if (dom.empty(v))
            return false;
        onVarChanged(v);
        return true;
    }

    /** Undo observer: keeps objMin and the heap in sync with rewinds. */
    void
    onUndo(VarId v, bool isUpper, std::int64_t cur, std::int64_t old)
    {
        if (isUpper) {
            if (objCoef[v] < 0)
                objMin += objCoef[v] * (old - cur);
        } else {
            if (objCoef[v] > 0)
                objMin += objCoef[v] * (old - cur);
        }
    }

    void
    rewindTo(std::size_t mark)
    {
        // Restored vars are marked dirty so each gets one fresh heap
        // entry (reflecting its re-grown domain) at the next pick.
        dom.rewindTo(mark, [&](VarId v, bool isUpper, std::int64_t cur,
                               std::int64_t old) {
            onUndo(v, isUpper, cur, old);
            markDirty(v);
        });
        compactHeapIfNeeded();
    }

    /** Bump activity of the variables in the conflicting row. */
    void
    bumpConflict(std::int32_t id)
    {
        const auto ncons =
            static_cast<std::int32_t>(model->constraints().size());
        auto bump = [&](VarId v) {
            activity[v] += activityInc;
            if (activity[v] > 1e100) {
                for (auto &a : activity)
                    a *= 1e-100;
                activityInc *= 1e-100;
            }
        };
        if (id < ncons) {
            for (const auto &t : model->constraints()[id].terms)
                bump(t.var);
        } else {
            const auto &imp = model->implications()[id - ncons];
            bump(imp.x);
            bump(imp.y);
        }
        activityInc *= params.activityDecay;
    }

    void
    clearQueue()
    {
        for (std::size_t i = queueHead; i < queue.size(); ++i)
            inQueue[queue[i]] = 0;
        queue.clear();
        queueHead = 0;
    }

    /**
     * One bounds-consistency revision of linear constraint @p ci.
     * The row's smin/smax come from the trailed partial sums, so the
     * conflict and entailment checks are O(1); only a row that can
     * actually tighten something pays a per-term pass, and the sums
     * stay consistent automatically because tightenLb/Ub route every
     * delta through dom.addToSum().
     */
    bool
    reviseLinear(std::int32_t ci)
    {
        const auto &c = model->constraints()[ci];
        {
            const std::int64_t smin = conSums[2 * ci];
            const std::int64_t smax = conSums[2 * ci + 1];
            if (smin > c.hi || smax < c.lo)
                return false;
            // Entailed: no term can be tightened (coef*v <= c.hi -
            // others_min is implied by smax <= c.hi, and symmetrically
            // for lo), so skip the per-term division pass entirely.
            if (smin >= c.lo && smax <= c.hi)
                return true;
        }

        for (const auto &t : c.terms) {
            const std::int64_t lb_v = dom.lb(t.var);
            const std::int64_t ub_v = dom.ub(t.var);
            if (lb_v == ub_v)
                continue; // fixed: nothing to tighten
            // Bounds of the sum excluding this term, against the live
            // sums (earlier iterations may have tightened them).
            std::int64_t tmin, tmax;
            if (t.coef >= 0) {
                tmin = t.coef * lb_v;
                tmax = t.coef * ub_v;
            } else {
                tmin = t.coef * ub_v;
                tmax = t.coef * lb_v;
            }
            // One-multiply tightenability filter: the term's value
            // coef*v spans [tmin, tmax]; the row only forces
            // coef*v - tmin <= c.hi - smin and tmax - coef*v <= smax -
            // c.lo, so unless the span exceeds one of those slacks the
            // division pass below cannot change anything.
            const std::int64_t width = tmax - tmin;
            if (width <= c.hi - conSums[2 * ci] &&
                width <= conSums[2 * ci + 1] - c.lo)
                continue;
            std::int64_t others_min = conSums[2 * ci] - tmin;
            std::int64_t others_max = conSums[2 * ci + 1] - tmax;
            // c.lo - others_max <= coef*v <= c.hi - others_min.
            std::int64_t lo_num = c.lo == -kInf ? -kInf : c.lo - others_max;
            std::int64_t hi_num = c.hi == kInf ? kInf : c.hi - others_min;
            std::int64_t new_lb, new_ub;
            if (t.coef > 0) {
                new_lb = lo_num <= -kInf ? dom.lb(t.var)
                                         : divCeil(lo_num, t.coef);
                new_ub = hi_num >= kInf ? dom.ub(t.var)
                                        : divFloor(hi_num, t.coef);
            } else if (t.coef < 0) {
                new_lb = hi_num >= kInf ? dom.lb(t.var)
                                        : divCeil(hi_num, t.coef);
                new_ub = lo_num <= -kInf ? dom.ub(t.var)
                                         : divFloor(lo_num, t.coef);
            } else {
                continue;
            }
            if (!tightenLb(t.var, new_lb) || !tightenUb(t.var, new_ub))
                return false;
        }
        return true;
    }

    /** One revision of implication @p ii. */
    bool
    reviseImplication(std::int32_t ii)
    {
        const auto &imp = model->implications()[ii];
        // (x >= thr) => (y <= bound)
        if (dom.lb(imp.x) >= imp.xThreshold) {
            if (!tightenUb(imp.y, imp.yBound))
                return false;
        } else if (dom.lb(imp.y) > imp.yBound) {
            // Contrapositive: y already exceeds the bound, so x must
            // stay below its threshold.
            if (!tightenUb(imp.x, imp.xThreshold - 1))
                return false;
        }
        return true;
    }

    /**
     * Drain the dirty queue to fixpoint. @return false on conflict
     * (domain wipe-out or objective bound exceeded).
     */
    bool
    propagate()
    {
        if (haveIncumbent && model->hasObjective() &&
            objMin >= bestObjective) {
            clearQueue();
            return false;
        }
        while (queueHead < queue.size()) {
            auto id = queue[queueHead++];
            inQueue[id] = 0;
            ++propagations;
            const auto ncons =
                static_cast<std::int32_t>(model->constraints().size());
            bool ok = id < ncons ? reviseLinear(id)
                                 : reviseImplication(id - ncons);
            if (!ok) {
                bumpConflict(id);
                clearQueue();
                return false;
            }
            // Objective bounding against the incumbent, incrementally.
            if (haveIncumbent && model->hasObjective() &&
                objMin >= bestObjective) {
                clearQueue();
                return false;
            }
        }
        queue.clear();
        queueHead = 0;
        return true;
    }

    void
    recordIncumbent()
    {
        // All variables fixed: objMin is the exact objective value.
        if (!haveIncumbent || objMin < bestObjective) {
            haveIncumbent = true;
            bestObjective = objMin;
            best = dom.lbs();
            improveDecisions = decisions;
            improvePropagations = propagations;
            improveBacktracks = backtracks;
            improveRestarts = restarts;
        }
    }

    /**
     * DFS with trail-rewind backtracking. @return true if exhausted.
     * A pending restart unwinds like a limit hit (every level returns
     * false and rewinds its mark), landing back at the root state; the
     * driver in solve() then re-enters search().
     */
    bool
    search()
    {
        if (timeUp() || restartPending)
            return false;
        if (!propagate()) {
            ++backtracks;
            noteConflict();
            return true;
        }
        VarId v = pickVariable();
        if (v < 0) {
            recordIncumbent();
            if (!model->hasObjective()) {
                // Satisfaction problem: first solution suffices.
                return true;
            }
            ++backtracks;
            return true;
        }

        // Value ordering: under restarts with an incumbent, follow the
        // saved solution phase (branch toward the incumbent's value)
        // so re-descents revisit the good region first. Otherwise,
        // objective-aware: positive-coefficient objective variables
        // prefer small values; negative prefer large.
        const std::int64_t saved_lb = dom.lb(v);
        const std::int64_t saved_ub = dom.ub(v);
        const bool low_first =
            ((params.restartConflictBase && haveIncumbent)
                 ? best[v] <= saved_lb
                 : objCoef[v] >= 0) != params.invertValueOrder;
        const std::size_t node_mark = dom.mark();

        for (int side = 0; side < 2; ++side) {
            ++decisions;
            if (timeUp() || restartPending)
                return false;
            bool try_low = (side == 0) == low_first;
            bool ok;
            if (try_low) {
                // v = lb
                ok = tightenUb(v, saved_lb);
            } else {
                // v in [lb+1, ub]
                if (saved_lb + 1 > saved_ub)
                    continue;
                ok = tightenLb(v, saved_lb + 1);
            }
            bool exhausted = !ok || search();
            if (!ok) {
                ++backtracks;
                noteConflict();
            }
            rewindTo(node_mark);
            if (!exhausted)
                return false;
            if (!model->hasObjective() && haveIncumbent)
                return true;
        }
        return true;
    }

    /**
     * Search to exhaustion or a limit, restarting on the Luby schedule
     * when enabled. @return true if the search space was exhausted.
     */
    bool
    run()
    {
        if (!params.restartConflictBase)
            return search();
        for (std::uint64_t i = 1;; ++i) {
            conflictLimit =
                conflicts + luby(i) * params.restartConflictBase;
            restartPending = false;
            if (search())
                return true; // exhausted (or satisfied)
            if (limitHit)
                return false;
            // Restart: the unwind already rewound to the root state;
            // re-descend with the saved solution phase.
            ++restarts;
        }
    }
};

// ================================================== Baseline engine

/**
 * The seed DFS, kept verbatim as the before/after comparison point and
 * differential oracle: full lb/ub snapshots per node, full constraint
 * sweeps per propagation pass, O(V) variable scans.
 */
struct BaselineState
{
    const CpModel *model = nullptr;
    SolverParams params;
    std::vector<std::int64_t> lb, ub;
    // Incumbent.
    bool haveIncumbent = false;
    std::vector<std::int64_t> best;
    std::int64_t bestObjective = kInf;
    // Stats / limits.
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t backtracks = 0;
    std::uint64_t restarts = 0; ///< always 0: no restarts in the seed DFS
    bool limitHit = false;
    bool cancelled = false; ///< always false: the board is Trail-only
    // Snapshots at the last incumbent improvement (see SolveResult).
    std::uint64_t improveDecisions = 0;
    std::uint64_t improvePropagations = 0;
    std::uint64_t improveBacktracks = 0;
    std::uint64_t improveRestarts = 0;
    // FMLINT(allow:no-wall-clock) wall-clock time budget; Table-4 determinism runs bound by conflicts/decisions, not time
    std::chrono::steady_clock::time_point deadline;

    bool
    timeUp()
    {
        // Check the clock sparingly; decisions dominate runtime.
        if ((decisions & 0x3F) == 0 &&
            // FMLINT(allow:no-wall-clock) wall-clock time budget; Table-4 determinism runs bound by conflicts/decisions, not time
            std::chrono::steady_clock::now() >= deadline) {
            limitHit = true;
        }
        if (params.maxDecisions && decisions >= params.maxDecisions)
            limitHit = true;
        return limitHit;
    }

    /** Uniform entry point with TrailSearch (no restart schedule). */
    bool run() { return search(); }

    std::int64_t
    objectiveMin() const
    {
        std::int64_t s = 0;
        for (const auto &t : model->objective())
            s += t.coef * (t.coef >= 0 ? lb[t.var] : ub[t.var]);
        return s;
    }

    /**
     * Bounds propagation to fixpoint over linear constraints and
     * implications. @return false on a domain wipe-out (conflict).
     */
    bool
    propagate()
    {
        for (int pass = 0; pass < params.maxPropagationPasses; ++pass) {
            ++propagations;
            bool changed = false;

            for (const auto &c : model->constraints()) {
                // Current sum bounds.
                std::int64_t smin = 0, smax = 0;
                for (const auto &t : c.terms) {
                    if (t.coef >= 0) {
                        smin += t.coef * lb[t.var];
                        smax += t.coef * ub[t.var];
                    } else {
                        smin += t.coef * ub[t.var];
                        smax += t.coef * lb[t.var];
                    }
                }
                if (smin > c.hi || smax < c.lo)
                    return false;

                for (const auto &t : c.terms) {
                    // Bounds of the sum excluding this term.
                    std::int64_t tmin, tmax;
                    if (t.coef >= 0) {
                        tmin = t.coef * lb[t.var];
                        tmax = t.coef * ub[t.var];
                    } else {
                        tmin = t.coef * ub[t.var];
                        tmax = t.coef * lb[t.var];
                    }
                    std::int64_t others_min = smin - tmin;
                    std::int64_t others_max = smax - tmax;
                    // c.lo - others_max <= coef*v <= c.hi - others_min.
                    std::int64_t lo_num =
                        c.lo == -kInf ? -kInf : c.lo - others_max;
                    std::int64_t hi_num =
                        c.hi == kInf ? kInf : c.hi - others_min;
                    std::int64_t new_lb, new_ub;
                    if (t.coef > 0) {
                        new_lb = lo_num <= -kInf ? lb[t.var]
                                                 : divCeil(lo_num, t.coef);
                        new_ub = hi_num >= kInf ? ub[t.var]
                                                : divFloor(hi_num, t.coef);
                    } else if (t.coef < 0) {
                        new_lb = hi_num >= kInf ? lb[t.var]
                                                : divCeil(hi_num, t.coef);
                        new_ub = lo_num <= -kInf
                                     ? ub[t.var]
                                     : divFloor(lo_num, t.coef);
                    } else {
                        continue;
                    }
                    if (new_lb > lb[t.var]) {
                        lb[t.var] = new_lb;
                        changed = true;
                    }
                    if (new_ub < ub[t.var]) {
                        ub[t.var] = new_ub;
                        changed = true;
                    }
                    if (lb[t.var] > ub[t.var])
                        return false;
                }
            }

            for (const auto &imp : model->implications()) {
                // (x >= thr) => (y <= bound)
                if (lb[imp.x] >= imp.xThreshold) {
                    if (imp.yBound < ub[imp.y]) {
                        ub[imp.y] = imp.yBound;
                        changed = true;
                    }
                } else if (lb[imp.y] > imp.yBound) {
                    // Contrapositive: y already exceeds the bound, so x
                    // must stay below its threshold.
                    if (imp.xThreshold - 1 < ub[imp.x]) {
                        ub[imp.x] = imp.xThreshold - 1;
                        changed = true;
                    }
                }
                if (lb[imp.x] > ub[imp.x] || lb[imp.y] > ub[imp.y])
                    return false;
            }

            // Objective bounding against the incumbent.
            if (haveIncumbent && model->hasObjective() &&
                objectiveMin() >= bestObjective) {
                return false;
            }

            if (!changed)
                return true;
        }
        return true; // fixpoint not reached within pass budget; sound
    }

    /** First-fail: unfixed variable with the smallest domain. */
    VarId
    pickVariable() const
    {
        VarId best_var = -1;
        std::int64_t best_size = kInf;
        for (VarId v = 0; v < static_cast<VarId>(lb.size()); ++v) {
            std::int64_t size = ub[v] - lb[v];
            if (size > 0 && size < best_size) {
                best_size = size;
                best_var = v;
            }
        }
        return best_var;
    }

    void
    recordIncumbent()
    {
        std::int64_t obj = 0;
        for (const auto &t : model->objective())
            obj += t.coef * lb[t.var];
        if (!haveIncumbent || obj < bestObjective) {
            haveIncumbent = true;
            bestObjective = obj;
            best = lb;
            improveDecisions = decisions;
            improvePropagations = propagations;
            improveBacktracks = backtracks;
            improveRestarts = restarts;
        }
    }

    /** DFS with chronological backtracking. @return true if exhausted. */
    bool
    search()
    {
        if (timeUp())
            return false;
        if (!propagate()) {
            ++backtracks;
            return true;
        }
        VarId v = pickVariable();
        if (v < 0) {
            recordIncumbent();
            if (!model->hasObjective()) {
                // Satisfaction problem: first solution suffices.
                return true;
            }
            ++backtracks;
            return true;
        }

        // Objective-aware value ordering: positive-coefficient objective
        // variables prefer small values; negative prefer large.
        bool low_first = true;
        for (const auto &t : model->objective()) {
            if (t.var == v) {
                low_first = t.coef >= 0;
                break;
            }
        }
        low_first = low_first != params.invertValueOrder;

        auto saved_lb = lb;
        auto saved_ub = ub;
        for (int side = 0; side < 2; ++side) {
            ++decisions;
            if (timeUp())
                return false;
            bool try_low = (side == 0) == low_first;
            if (try_low) {
                // v = lb
                ub[v] = lb[v];
            } else {
                // v in [lb+1, ub]
                if (saved_lb[v] + 1 > saved_ub[v])
                    continue;
                lb[v] = saved_lb[v] + 1;
                ub[v] = saved_ub[v];
            }
            bool exhausted = search();
            lb = saved_lb;
            ub = saved_ub;
            if (!exhausted)
                return false;
            if (!model->hasObjective() && haveIncumbent)
                return true;
        }
        return true;
    }
};

} // namespace

const char *
solveStatusName(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Optimal:
        return "OPTIMAL";
      case SolveStatus::Feasible:
        return "FEASIBLE";
      case SolveStatus::Infeasible:
        return "INFEASIBLE";
      case SolveStatus::Unknown:
        return "UNKNOWN";
    }
    return "?";
}

const char *
searchEngineName(SearchEngine engine)
{
    switch (engine) {
      case SearchEngine::Trail:
        return "trail";
      case SearchEngine::Baseline:
        return "baseline";
    }
    return "?";
}

SolveResult
CpSolver::solve(const CpModel &model,
                const std::vector<std::int64_t> *hint)
{
    // FMLINT(allow:no-wall-clock) reported wall time only; solve results never depend on it
    auto t0 = std::chrono::steady_clock::now();
    auto deadline =
        t0 + std::chrono::microseconds(static_cast<std::int64_t>(
                 params_.timeLimitSeconds * 1e6));

    SolveResult result;
    bool exhausted = false;
    bool haveIncumbent = false;
    std::vector<std::int64_t> best;
    std::int64_t bestObjective = 0;

    // Shared per-engine tail: seed the incumbent from a valid hint,
    // search, and pull the stats out of the engine state.
    auto runEngine = [&](auto &st) {
        if (hint && model.satisfiedBy(*hint)) {
            st.haveIncumbent = true;
            st.best = *hint;
            st.bestObjective = objectiveOf(model, *hint);
        }
        exhausted = st.run();
        result.decisions = st.decisions;
        result.propagations = st.propagations;
        result.backtracks = st.backtracks;
        result.restarts = st.restarts;
        result.cancelled = st.cancelled;
        result.improveDecisions = st.improveDecisions;
        result.improvePropagations = st.improvePropagations;
        result.improveBacktracks = st.improveBacktracks;
        result.improveRestarts = st.improveRestarts;
        haveIncumbent = st.haveIncumbent;
        best = std::move(st.best);
        bestObjective = st.bestObjective;
    };

    if (params_.engine == SearchEngine::Trail) {
        TrailSearch st;
        st.params = params_;
        st.deadline = deadline;
        st.init(model);
        runEngine(st);
    } else {
        BaselineState st;
        st.model = &model;
        st.params = params_;
        st.deadline = deadline;
        st.lb.resize(model.varCount());
        st.ub.resize(model.varCount());
        for (VarId v = 0; v < static_cast<VarId>(model.varCount());
             ++v) {
            st.lb[v] = model.lowerBound(v);
            st.ub[v] = model.upperBound(v);
        }
        runEngine(st);
    }

    result.wallSeconds =
        // FMLINT(allow:no-wall-clock) reported wall time only; solve results never depend on it
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    if (haveIncumbent) {
        result.status =
            exhausted ? SolveStatus::Optimal : SolveStatus::Feasible;
        result.values = std::move(best);
        result.objective = bestObjective;
    } else {
        result.status =
            exhausted ? SolveStatus::Infeasible : SolveStatus::Unknown;
    }
    return result;
}

} // namespace flashmem::solver
