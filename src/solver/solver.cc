#include "solver/solver.hh"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/logging.hh"

namespace flashmem::solver {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

/** Floor division robust to negative operands. */
std::int64_t
divFloor(std::int64_t a, std::int64_t b)
{
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

/** Ceiling division robust to negative operands. */
std::int64_t
divCeil(std::int64_t a, std::int64_t b)
{
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) == (b < 0)))
        ++q;
    return q;
}

/** Working search state: current domains + incumbent. */
struct SearchState
{
    const CpModel *model = nullptr;
    SolverParams params;
    std::vector<std::int64_t> lb, ub;
    // Incumbent.
    bool haveIncumbent = false;
    std::vector<std::int64_t> best;
    std::int64_t bestObjective = kInf;
    // Stats / limits.
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t backtracks = 0;
    bool limitHit = false;
    std::chrono::steady_clock::time_point deadline;

    bool
    timeUp()
    {
        // Check the clock sparingly; decisions dominate runtime.
        if ((decisions & 0x3F) == 0 &&
            std::chrono::steady_clock::now() >= deadline) {
            limitHit = true;
        }
        if (params.maxDecisions && decisions >= params.maxDecisions)
            limitHit = true;
        return limitHit;
    }

    std::int64_t
    objectiveMin() const
    {
        std::int64_t s = 0;
        for (const auto &t : model->objective())
            s += t.coef * (t.coef >= 0 ? lb[t.var] : ub[t.var]);
        return s;
    }

    std::int64_t
    objectiveOf(const std::vector<std::int64_t> &values) const
    {
        std::int64_t s = 0;
        for (const auto &t : model->objective())
            s += t.coef * values[t.var];
        return s;
    }

    /**
     * Bounds propagation to fixpoint over linear constraints and
     * implications. @return false on a domain wipe-out (conflict).
     */
    bool
    propagate()
    {
        for (int pass = 0; pass < params.maxPropagationPasses; ++pass) {
            ++propagations;
            bool changed = false;

            for (const auto &c : model->constraints()) {
                // Current sum bounds.
                std::int64_t smin = 0, smax = 0;
                for (const auto &t : c.terms) {
                    if (t.coef >= 0) {
                        smin += t.coef * lb[t.var];
                        smax += t.coef * ub[t.var];
                    } else {
                        smin += t.coef * ub[t.var];
                        smax += t.coef * lb[t.var];
                    }
                }
                if (smin > c.hi || smax < c.lo)
                    return false;

                for (const auto &t : c.terms) {
                    // Bounds of the sum excluding this term.
                    std::int64_t tmin, tmax;
                    if (t.coef >= 0) {
                        tmin = t.coef * lb[t.var];
                        tmax = t.coef * ub[t.var];
                    } else {
                        tmin = t.coef * ub[t.var];
                        tmax = t.coef * lb[t.var];
                    }
                    std::int64_t others_min = smin - tmin;
                    std::int64_t others_max = smax - tmax;
                    // c.lo - others_max <= coef*v <= c.hi - others_min.
                    std::int64_t lo_num =
                        c.lo == -kInf ? -kInf : c.lo - others_max;
                    std::int64_t hi_num =
                        c.hi == kInf ? kInf : c.hi - others_min;
                    std::int64_t new_lb, new_ub;
                    if (t.coef > 0) {
                        new_lb = lo_num <= -kInf ? lb[t.var]
                                                 : divCeil(lo_num, t.coef);
                        new_ub = hi_num >= kInf ? ub[t.var]
                                                : divFloor(hi_num, t.coef);
                    } else if (t.coef < 0) {
                        new_lb = hi_num >= kInf ? lb[t.var]
                                                : divCeil(hi_num, t.coef);
                        new_ub = lo_num <= -kInf
                                     ? ub[t.var]
                                     : divFloor(lo_num, t.coef);
                    } else {
                        continue;
                    }
                    if (new_lb > lb[t.var]) {
                        lb[t.var] = new_lb;
                        changed = true;
                    }
                    if (new_ub < ub[t.var]) {
                        ub[t.var] = new_ub;
                        changed = true;
                    }
                    if (lb[t.var] > ub[t.var])
                        return false;
                }
            }

            for (const auto &imp : model->implications()) {
                // (x >= thr) => (y <= bound)
                if (lb[imp.x] >= imp.xThreshold) {
                    if (imp.yBound < ub[imp.y]) {
                        ub[imp.y] = imp.yBound;
                        changed = true;
                    }
                } else if (lb[imp.y] > imp.yBound) {
                    // Contrapositive: y already exceeds the bound, so x
                    // must stay below its threshold.
                    if (imp.xThreshold - 1 < ub[imp.x]) {
                        ub[imp.x] = imp.xThreshold - 1;
                        changed = true;
                    }
                }
                if (lb[imp.x] > ub[imp.x] || lb[imp.y] > ub[imp.y])
                    return false;
            }

            // Objective bounding against the incumbent.
            if (haveIncumbent && model->hasObjective() &&
                objectiveMin() >= bestObjective) {
                return false;
            }

            if (!changed)
                return true;
        }
        return true; // fixpoint not reached within pass budget; sound
    }

    /** Verify a full assignment against all constraints. */
    bool
    checkAssignment(const std::vector<std::int64_t> &values) const
    {
        if (values.size() != model->varCount())
            return false;
        for (VarId v = 0; v < static_cast<VarId>(values.size()); ++v) {
            if (values[v] < model->lowerBound(v) ||
                values[v] > model->upperBound(v))
                return false;
        }
        for (const auto &c : model->constraints()) {
            std::int64_t s = 0;
            for (const auto &t : c.terms)
                s += t.coef * values[t.var];
            if (s < c.lo || s > c.hi)
                return false;
        }
        for (const auto &imp : model->implications()) {
            if (values[imp.x] >= imp.xThreshold &&
                values[imp.y] > imp.yBound)
                return false;
        }
        return true;
    }

    /** First-fail: unfixed variable with the smallest domain. */
    VarId
    pickVariable() const
    {
        VarId best_var = -1;
        std::int64_t best_size = kInf;
        for (VarId v = 0; v < static_cast<VarId>(lb.size()); ++v) {
            std::int64_t size = ub[v] - lb[v];
            if (size > 0 && size < best_size) {
                best_size = size;
                best_var = v;
            }
        }
        return best_var;
    }

    void
    recordIncumbent()
    {
        std::int64_t obj = 0;
        for (const auto &t : model->objective())
            obj += t.coef * lb[t.var];
        if (!haveIncumbent || obj < bestObjective) {
            haveIncumbent = true;
            bestObjective = obj;
            best = lb;
        }
    }

    /** DFS with chronological backtracking. @return true if exhausted. */
    bool
    search()
    {
        if (timeUp())
            return false;
        if (!propagate()) {
            ++backtracks;
            return true;
        }
        VarId v = pickVariable();
        if (v < 0) {
            recordIncumbent();
            if (!model->hasObjective()) {
                // Satisfaction problem: first solution suffices.
                return true;
            }
            ++backtracks;
            return true;
        }

        // Objective-aware value ordering: positive-coefficient objective
        // variables prefer small values; negative prefer large.
        bool low_first = true;
        for (const auto &t : model->objective()) {
            if (t.var == v) {
                low_first = t.coef >= 0;
                break;
            }
        }

        auto saved_lb = lb;
        auto saved_ub = ub;
        for (int side = 0; side < 2; ++side) {
            ++decisions;
            if (timeUp())
                return false;
            bool try_low = (side == 0) == low_first;
            if (try_low) {
                // v = lb
                ub[v] = lb[v];
            } else {
                // v in [lb+1, ub]
                if (saved_lb[v] + 1 > saved_ub[v])
                    continue;
                lb[v] = saved_lb[v] + 1;
                ub[v] = saved_ub[v];
            }
            bool exhausted = search();
            lb = saved_lb;
            ub = saved_ub;
            if (!exhausted)
                return false;
            if (!model->hasObjective() && haveIncumbent)
                return true;
        }
        return true;
    }
};

} // namespace

const char *
solveStatusName(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Optimal:
        return "OPTIMAL";
      case SolveStatus::Feasible:
        return "FEASIBLE";
      case SolveStatus::Infeasible:
        return "INFEASIBLE";
      case SolveStatus::Unknown:
        return "UNKNOWN";
    }
    return "?";
}

SolveResult
CpSolver::solve(const CpModel &model,
                const std::vector<std::int64_t> *hint)
{
    auto t0 = std::chrono::steady_clock::now();

    SearchState st;
    st.model = &model;
    st.params = params_;
    st.deadline =
        t0 + std::chrono::microseconds(static_cast<std::int64_t>(
                 params_.timeLimitSeconds * 1e6));
    st.lb.resize(model.varCount());
    st.ub.resize(model.varCount());
    for (VarId v = 0; v < static_cast<VarId>(model.varCount()); ++v) {
        st.lb[v] = model.lowerBound(v);
        st.ub[v] = model.upperBound(v);
    }

    if (hint && st.checkAssignment(*hint)) {
        st.haveIncumbent = true;
        st.best = *hint;
        st.bestObjective = st.objectiveOf(*hint);
    }

    bool exhausted = st.search();

    SolveResult result;
    result.decisions = st.decisions;
    result.propagations = st.propagations;
    result.backtracks = st.backtracks;
    result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    if (st.haveIncumbent) {
        result.status =
            exhausted ? SolveStatus::Optimal : SolveStatus::Feasible;
        result.values = st.best;
        result.objective = st.bestObjective;
    } else {
        result.status =
            exhausted ? SolveStatus::Infeasible : SolveStatus::Unknown;
    }
    return result;
}

} // namespace flashmem::solver
