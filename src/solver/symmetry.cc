#include "solver/symmetry.hh"

#include <algorithm>
#include <limits>

namespace flashmem::solver {

namespace {

/**
 * Weight cap for the leader function. Positional weights are the
 * running product of the later positions' domain sizes (true lex
 * order) until the product would pass this cap; from there every
 * weight saturates. Chosen so |f| stays far below int64 overflow for
 * any realistic block (cap * positions * domain span << 2^63).
 */
constexpr std::int64_t kWeightCap = 1'000'000;

/**
 * Canonical flat encoding of one constraint under a variable
 * renaming: [coef-sorted (var, coef) pairs..., lo, hi]. Term order
 * inside a row is irrelevant to its meaning, so terms are sorted
 * after renaming to make the encoding comparison-stable.
 */
std::vector<std::int64_t>
encodeConstraint(const LinearConstraint &c, const std::vector<VarId> &perm)
{
    std::vector<std::pair<VarId, std::int64_t>> terms;
    terms.reserve(c.terms.size());
    for (const LinearTerm &t : c.terms)
        terms.emplace_back(perm[t.var], t.coef);
    std::sort(terms.begin(), terms.end());
    std::vector<std::int64_t> flat;
    flat.reserve(2 * terms.size() + 2);
    for (const auto &[var, coef] : terms) {
        flat.push_back(var);
        flat.push_back(coef);
    }
    flat.push_back(c.lo);
    flat.push_back(c.hi);
    return flat;
}

std::vector<std::int64_t> encodeImplication(const Implication &imp,
                                            const std::vector<VarId> &perm)
{
    return {perm[imp.x], imp.xThreshold, perm[imp.y], imp.yBound};
}

/** Leader-function weights for one block (see addSymmetryBreaking). */
std::vector<std::int64_t> leaderWeights(const CpModel &model,
                                        const VarBlock &block)
{
    const int n = static_cast<int>(block.vars.size());
    std::vector<std::int64_t> w(n, 1);
    for (int i = n - 2; i >= 0; --i) {
        const VarId next = block.vars[i + 1];
        const std::int64_t span =
            model.upperBound(next) - model.lowerBound(next) + 1;
        if (span <= 0 || span > kWeightCap || w[i + 1] > kWeightCap / span)
            w[i] = kWeightCap;
        else
            w[i] = std::min(w[i + 1] * span, kWeightCap);
    }
    return w;
}

std::int64_t leaderValue(const VarBlock &block,
                         const std::vector<std::int64_t> &weights,
                         const std::vector<std::int64_t> &values)
{
    std::int64_t f = 0;
    for (std::size_t i = 0; i < block.vars.size(); ++i)
        f += weights[i] * values[block.vars[i]];
    return f;
}

} // namespace

bool blocksInterchangeable(const CpModel &model, const VarBlock &a,
                           const VarBlock &b)
{
    if (a.vars.size() != b.vars.size() || a.vars.empty())
        return false;

    // Build the transposition; bail out on overlap (a shared variable
    // has no well-defined swap image).
    std::vector<VarId> perm(model.varCount());
    for (std::size_t v = 0; v < perm.size(); ++v)
        perm[v] = static_cast<VarId>(v);
    for (std::size_t i = 0; i < a.vars.size(); ++i) {
        const VarId av = a.vars[i];
        const VarId bv = b.vars[i];
        if (av == bv || perm[av] != av || perm[bv] != bv)
            return false;
        perm[av] = bv;
        perm[bv] = av;
    }

    // Per-position domains must match or the swap is not a bijection
    // on assignments.
    for (std::size_t i = 0; i < a.vars.size(); ++i) {
        if (model.lowerBound(a.vars[i]) != model.lowerBound(b.vars[i]) ||
            model.upperBound(a.vars[i]) != model.upperBound(b.vars[i]))
            return false;
    }

    // The objective must be invariant: equal coefficient per position
    // (variables outside the blocks are fixed points of the swap).
    std::vector<std::int64_t> obj(model.varCount(), 0);
    for (const LinearTerm &t : model.objective())
        obj[t.var] += t.coef;
    for (std::size_t i = 0; i < a.vars.size(); ++i)
        if (obj[a.vars[i]] != obj[b.vars[i]])
            return false;

    // Constraint system invariance: the multiset of rows must be
    // unchanged by the renaming. Exact comparison (sorted canonical
    // encodings), so a "symmetric" verdict is a proof, not a guess.
    const auto identity = [&](auto encode, const auto &rows) {
        std::vector<std::vector<std::int64_t>> out;
        out.reserve(rows.size());
        for (const auto &row : rows)
            out.push_back(encode(row, perm));
        std::sort(out.begin(), out.end());
        return out;
    };
    std::vector<VarId> id(model.varCount());
    for (std::size_t v = 0; v < id.size(); ++v)
        id[v] = static_cast<VarId>(v);
    const auto plain = [&](auto encode, const auto &rows) {
        std::vector<std::vector<std::int64_t>> out;
        out.reserve(rows.size());
        for (const auto &row : rows)
            out.push_back(encode(row, id));
        std::sort(out.begin(), out.end());
        return out;
    };
    const auto encC = [](const LinearConstraint &c,
                         const std::vector<VarId> &p) {
        return encodeConstraint(c, p);
    };
    const auto encI = [](const Implication &i, const std::vector<VarId> &p) {
        return encodeImplication(i, p);
    };
    if (identity(encC, model.constraints()) !=
        plain(encC, model.constraints()))
        return false;
    if (identity(encI, model.implications()) !=
        plain(encI, model.implications()))
        return false;
    return true;
}

std::vector<std::vector<int>>
groupInterchangeableBlocks(const CpModel &model,
                           const std::vector<VarBlock> &blocks)
{
    std::vector<std::vector<int>> chains;
    for (int i = 0; i < static_cast<int>(blocks.size()); ++i) {
        bool placed = false;
        for (auto &chain : chains) {
            if (blocksInterchangeable(model, blocks[chain.back()],
                                      blocks[i])) {
                chain.push_back(i);
                placed = true;
                break;
            }
        }
        if (!placed)
            chains.push_back({i});
    }
    std::vector<std::vector<int>> groups;
    for (auto &chain : chains)
        if (chain.size() >= 2)
            groups.push_back(std::move(chain));
    return groups;
}

int addSymmetryBreaking(CpModel &model, const std::vector<VarBlock> &blocks,
                        const std::vector<std::vector<int>> &groups)
{
    int rows = 0;
    for (const auto &group : groups) {
        // Per-position domains are equal across the group, so one
        // weight vector serves every member.
        const std::vector<std::int64_t> w =
            leaderWeights(model, blocks[group.front()]);
        for (std::size_t k = 0; k + 1 < group.size(); ++k) {
            const VarBlock &lead = blocks[group[k]];
            const VarBlock &follow = blocks[group[k + 1]];
            std::vector<LinearTerm> terms;
            terms.reserve(2 * lead.vars.size());
            for (std::size_t i = 0; i < lead.vars.size(); ++i) {
                terms.push_back({lead.vars[i], w[i]});
                terms.push_back({follow.vars[i], -w[i]});
            }
            model.addLessOrEqual(std::move(terms), 0);
            ++rows;
        }
    }
    return rows;
}

void canonicalizeHint(const CpModel &model,
                      const std::vector<VarBlock> &blocks,
                      const std::vector<std::vector<int>> &groups,
                      std::vector<std::int64_t> &hint)
{
    if (hint.size() != model.varCount())
        return;
    for (const auto &group : groups) {
        const std::vector<std::int64_t> w =
            leaderWeights(model, blocks[group.front()]);
        std::vector<std::pair<std::int64_t, int>> order;
        order.reserve(group.size());
        for (int idx : group)
            order.emplace_back(leaderValue(blocks[idx], w, hint), idx);
        std::stable_sort(order.begin(), order.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        // Slot k of the group receives the value tuple of the k-th
        // smallest-f member; copy out first so swaps don't alias.
        std::vector<std::vector<std::int64_t>> tuples;
        tuples.reserve(group.size());
        for (const auto &[f, idx] : order) {
            std::vector<std::int64_t> tuple;
            tuple.reserve(blocks[idx].vars.size());
            for (VarId v : blocks[idx].vars)
                tuple.push_back(hint[v]);
            tuples.push_back(std::move(tuple));
        }
        for (std::size_t k = 0; k < group.size(); ++k) {
            const VarBlock &target = blocks[group[k]];
            for (std::size_t i = 0; i < target.vars.size(); ++i)
                hint[target.vars[i]] = tuples[k][i];
        }
    }
}

} // namespace flashmem::solver
