/**
 * @file
 * Symmetry detection and breaking for OPG window models.
 *
 * A window model contains one block of variables per weight
 * (preload amount, per-layer load amounts, earliest-load layer).
 * Two weights with the same chunk count, the same consumer layer and
 * the same candidate-layer set are interchangeable: swapping their
 * entire variable blocks maps every constraint onto another constraint
 * of the model and preserves the objective, so the solver would
 * otherwise explore every permutation of the same subtree. This module
 *
 *   1. verifies interchangeability exactly (multiset comparison of the
 *      swapped constraint system — no hashing, no false positives),
 *   2. groups interchangeable blocks deterministically, and
 *   3. breaks each group with a chain of single-row "leader function"
 *      orderings f(B_k) <= f(B_{k+1}) that keep at least one optimal
 *      solution while pruning permuted duplicates.
 *
 * Soundness: each verified adjacent transposition is a
 * satisfaction- and objective-preserving bijection on assignments, so
 * the group they generate contains every permutation of the group's
 * blocks. Any solution can therefore be bubble-sorted into one whose
 * blocks are ordered by f using only model-preserving swaps, which
 * means the lex chain removes no objective value from the feasible
 * set. A single linear f per adjacent pair is used instead of two
 * independent per-variable chains because independent chains can cut
 * both a solution and its mirror (losing optimality); sorting by one
 * scalar cannot.
 */

#ifndef FLASHMEM_SOLVER_SYMMETRY_HH
#define FLASHMEM_SOLVER_SYMMETRY_HH

#include <cstdint>
#include <vector>

#include "solver/model.hh"

namespace flashmem::solver {

/**
 * One candidate symmetry unit: the ordered variables of one weight
 * (e.g. [y, x_0..x_{m-1}, z]). Blocks offered for grouping must be
 * pairwise disjoint and position-aligned (position i of block A is
 * swapped with position i of block B).
 */
struct VarBlock
{
    std::vector<VarId> vars;
};

/**
 * Exact interchangeability check: true iff swapping the blocks
 * position-wise maps the model onto itself (equal per-position
 * domains and objective coefficients, and the swapped constraint and
 * implication multisets equal the originals). Overlapping or
 * length-mismatched blocks are never interchangeable.
 */
bool blocksInterchangeable(const CpModel &model, const VarBlock &a,
                           const VarBlock &b);

/**
 * Partition block indices into interchangeability groups. Groups are
 * chains: each block is appended to the first group whose last member
 * it is interchangeable with, preserving input order, so consecutive
 * group members are verified pairs. Only groups of two or more blocks
 * are returned (singletons carry no symmetry).
 */
std::vector<std::vector<int>>
groupInterchangeableBlocks(const CpModel &model,
                           const std::vector<VarBlock> &blocks);

/**
 * Add one leader-function ordering row per consecutive pair in each
 * group: f(B_k) - f(B_{k+1}) <= 0 with positional weights that form
 * an exact lexicographic order until the running domain product
 * overflows a fixed cap (then a sound, coarser linear order).
 * Returns the number of rows added.
 */
int addSymmetryBreaking(CpModel &model,
                        const std::vector<VarBlock> &blocks,
                        const std::vector<std::vector<int>> &groups);

/**
 * Permute @p hint block-wise so every group is sorted by its leader
 * function (stable, so equal-f blocks keep their order). A hint that
 * satisfied the model before addSymmetryBreaking() satisfies the lex
 * rows after canonicalization; hints are re-validated downstream
 * regardless.
 */
void canonicalizeHint(const CpModel &model,
                      const std::vector<VarBlock> &blocks,
                      const std::vector<std::vector<int>> &groups,
                      std::vector<std::int64_t> &hint);

} // namespace flashmem::solver

#endif // FLASHMEM_SOLVER_SYMMETRY_HH
