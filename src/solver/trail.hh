/**
 * @file
 * Trail-based domain store for backtracking search.
 *
 * Instead of snapshotting full lb/ub vectors at every decision node (the
 * seed solver's O(V)-per-node approach), the trail records only the
 * bounds that actually change. Backtracking rewinds the tail of the
 * trail, restoring the previous state in time proportional to the number
 * of changes — typically a handful per node instead of thousands.
 *
 * The rewind observer lets the solver keep derived state (incremental
 * objective bound, variable-selection heap) consistent without the trail
 * knowing about it.
 */

#ifndef FLASHMEM_SOLVER_TRAIL_HH
#define FLASHMEM_SOLVER_TRAIL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "solver/model.hh"

namespace flashmem::solver {

/** One recorded bound change: enough to undo it. */
struct TrailEntry
{
    VarId var = -1;
    bool isUpper = false;
    std::int64_t old = 0;
};

/** Variable domains ([lb, ub] boxes) with an undo trail. */
class DomainTrail
{
  public:
    /** Reset to the given root domains; clears the trail. */
    void
    init(std::vector<std::int64_t> lb, std::vector<std::int64_t> ub)
    {
        FM_ASSERT(lb.size() == ub.size(), "lb/ub size mismatch");
        lb_ = std::move(lb);
        ub_ = std::move(ub);
        trail_.clear();
    }

    std::size_t varCount() const { return lb_.size(); }
    std::int64_t lb(VarId v) const { return lb_[v]; }
    std::int64_t ub(VarId v) const { return ub_[v]; }
    bool fixed(VarId v) const { return lb_[v] == ub_[v]; }
    /** ub - lb: 0 means fixed. */
    std::int64_t domainSize(VarId v) const { return ub_[v] - lb_[v]; }
    bool empty(VarId v) const { return lb_[v] > ub_[v]; }
    const std::vector<std::int64_t> &lbs() const { return lb_; }
    const std::vector<std::int64_t> &ubs() const { return ub_; }

    /**
     * Raise the lower bound to @p x, recording the old bound. The caller
     * must ensure @p x > lb(v); the domain may become empty (conflict),
     * which the caller detects via empty().
     */
    void
    tightenLb(VarId v, std::int64_t x)
    {
        trail_.push_back({v, false, lb_[v]});
        lb_[v] = x;
    }

    /** Lower the upper bound to @p x (x < ub(v)); see tightenLb(). */
    void
    tightenUb(VarId v, std::int64_t x)
    {
        trail_.push_back({v, true, ub_[v]});
        ub_[v] = x;
    }

    /** Current trail position; pass to rewindTo() to undo past here. */
    std::size_t mark() const { return trail_.size(); }

    /** Number of bound changes recorded since init(). */
    std::size_t depth() const { return trail_.size(); }

    /**
     * Undo every change recorded after @p mark, newest first.
     * @p onUndo is called as onUndo(var, isUpper, currentValue,
     * restoredValue) *before* the bound is restored, so observers can
     * update derived state (objective bound deltas, heap entries).
     */
    template <typename F>
    void
    rewindTo(std::size_t mark, F &&onUndo)
    {
        while (trail_.size() > mark) {
            const TrailEntry e = trail_.back();
            trail_.pop_back();
            if (e.isUpper) {
                onUndo(e.var, true, ub_[e.var], e.old);
                ub_[e.var] = e.old;
            } else {
                onUndo(e.var, false, lb_[e.var], e.old);
                lb_[e.var] = e.old;
            }
        }
    }

    /** rewindTo() without an observer. */
    void
    rewindTo(std::size_t mark)
    {
        rewindTo(mark,
                 [](VarId, bool, std::int64_t, std::int64_t) {});
    }

  private:
    std::vector<std::int64_t> lb_, ub_;
    std::vector<TrailEntry> trail_;
};

} // namespace flashmem::solver

#endif // FLASHMEM_SOLVER_TRAIL_HH
