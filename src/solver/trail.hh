/**
 * @file
 * Trail-based domain store for backtracking search.
 *
 * Instead of snapshotting full lb/ub vectors at every decision node (the
 * seed solver's O(V)-per-node approach), the trail records only the
 * bounds that actually change. Backtracking rewinds the tail of the
 * trail, restoring the previous state in time proportional to the number
 * of changes — typically a handful per node instead of thousands.
 *
 * The rewind observer lets the solver keep derived state (incremental
 * objective bound, variable-selection heap) consistent without the trail
 * knowing about it.
 *
 * Besides bound changes the trail can also record *sum-restore* entries
 * for an external array of per-constraint partial sums (trackSums /
 * addToSum): the solver keeps each linear row's smin/smax incrementally
 * up to date as bounds tighten, and rewinding restores the sums in the
 * exact reverse order, interleaved with the bound undos. This is what
 * makes reviseLinear O(changed terms) instead of O(terms).
 */

#ifndef FLASHMEM_SOLVER_TRAIL_HH
#define FLASHMEM_SOLVER_TRAIL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "solver/model.hh"

namespace flashmem::solver {

/** One recorded change: enough to undo it. */
struct TrailEntry
{
    enum class Kind : std::uint8_t { Lower, Upper, Sum };

    /** Variable id (Lower/Upper) or sum-slot index (Sum). */
    std::int32_t index = -1;
    Kind kind = Kind::Lower;
    std::int64_t old = 0;
};

/** Variable domains ([lb, ub] boxes) with an undo trail. */
class DomainTrail
{
  public:
    /** Reset to the given root domains; clears the trail. */
    void
    init(std::vector<std::int64_t> lb, std::vector<std::int64_t> ub)
    {
        FM_ASSERT(lb.size() == ub.size(), "lb/ub size mismatch");
        lb_ = std::move(lb);
        ub_ = std::move(ub);
        trail_.clear();
        sums_ = nullptr;
    }

    /**
     * Register an external array of trailed sums (the solver's
     * per-constraint smin/smax slots). Mutate it only through
     * addToSum() so every change is recorded and rewound.
     */
    void trackSums(std::vector<std::int64_t> *sums) { sums_ = sums; }

    /** Trailed update of sum slot @p slot: records the old value. */
    void
    addToSum(std::int32_t slot, std::int64_t delta)
    {
        auto &s = (*sums_)[static_cast<std::size_t>(slot)];
        trail_.push_back({slot, TrailEntry::Kind::Sum, s});
        s += delta;
    }

    std::size_t varCount() const { return lb_.size(); }
    std::int64_t lb(VarId v) const { return lb_[v]; }
    std::int64_t ub(VarId v) const { return ub_[v]; }
    bool fixed(VarId v) const { return lb_[v] == ub_[v]; }
    /** ub - lb: 0 means fixed. */
    std::int64_t domainSize(VarId v) const { return ub_[v] - lb_[v]; }
    bool empty(VarId v) const { return lb_[v] > ub_[v]; }
    const std::vector<std::int64_t> &lbs() const { return lb_; }
    const std::vector<std::int64_t> &ubs() const { return ub_; }

    /**
     * Raise the lower bound to @p x, recording the old bound. The caller
     * must ensure @p x > lb(v); the domain may become empty (conflict),
     * which the caller detects via empty().
     */
    void
    tightenLb(VarId v, std::int64_t x)
    {
        trail_.push_back({v, TrailEntry::Kind::Lower, lb_[v]});
        lb_[v] = x;
    }

    /** Lower the upper bound to @p x (x < ub(v)); see tightenLb(). */
    void
    tightenUb(VarId v, std::int64_t x)
    {
        trail_.push_back({v, TrailEntry::Kind::Upper, ub_[v]});
        ub_[v] = x;
    }

    /** Current trail position; pass to rewindTo() to undo past here. */
    std::size_t mark() const { return trail_.size(); }

    /** Number of bound changes recorded since init(). */
    std::size_t depth() const { return trail_.size(); }

    /**
     * Undo every change recorded after @p mark, newest first.
     * @p onUndo is called as onUndo(var, isUpper, currentValue,
     * restoredValue) *before* the bound is restored, so observers can
     * update derived state (objective bound deltas, heap entries).
     * Sum-restore entries are applied silently: the tracked slot is set
     * back to its recorded value without invoking the observer.
     */
    template <typename F>
    void
    rewindTo(std::size_t mark, F &&onUndo)
    {
        while (trail_.size() > mark) {
            const TrailEntry e = trail_.back();
            trail_.pop_back();
            switch (e.kind) {
              case TrailEntry::Kind::Upper:
                onUndo(e.index, true, ub_[e.index], e.old);
                ub_[e.index] = e.old;
                break;
              case TrailEntry::Kind::Lower:
                onUndo(e.index, false, lb_[e.index], e.old);
                lb_[e.index] = e.old;
                break;
              case TrailEntry::Kind::Sum:
                (*sums_)[static_cast<std::size_t>(e.index)] = e.old;
                break;
            }
        }
    }

    /** rewindTo() without an observer. */
    void
    rewindTo(std::size_t mark)
    {
        rewindTo(mark,
                 [](VarId, bool, std::int64_t, std::int64_t) {});
    }

  private:
    std::vector<std::int64_t> lb_, ub_;
    std::vector<TrailEntry> trail_;
    std::vector<std::int64_t> *sums_ = nullptr; // see trackSums()
};

} // namespace flashmem::solver

#endif // FLASHMEM_SOLVER_TRAIL_HH
