/**
 * @file
 * Branch-and-bound CP solver with interval (bounds) propagation.
 *
 * Two search engines share the statuses and semantics:
 *
 *   Trail (default) — trail-based undo stack (only changed bounds are
 *   recorded and rewound on backtrack), watch-list dirty-queue
 *   propagation (only constraints whose variables changed are
 *   revisited), an incrementally maintained objective lower bound, and
 *   heap-based first-fail variable selection with activity tie-breaking.
 *
 *   Baseline — the seed DFS that copies full lb/ub vectors per decision
 *   node and re-scans every constraint per propagation pass. Kept for
 *   the before/after comparison in bench_table4_solver_runtime and as a
 *   differential-testing oracle.
 *
 * Search: first-fail variable selection, objective-aware value ordering,
 * incumbent-driven bounding, wall-clock + decision limits. Statuses
 * mirror CP-SAT: Optimal (search exhausted with incumbent), Feasible
 * (limit hit with incumbent), Infeasible (exhausted without incumbent),
 * Unknown (limit hit without incumbent).
 */

#ifndef FLASHMEM_SOLVER_SOLVER_HH
#define FLASHMEM_SOLVER_SOLVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "solver/model.hh"

namespace flashmem::solver {

class PortfolioBoard; // solver/portfolio.hh

/** Terminal state of one solve() call. */
enum class SolveStatus { Optimal, Feasible, Infeasible, Unknown };

/** Human-readable status name ("OPTIMAL", "FEASIBLE", ...). */
const char *solveStatusName(SolveStatus status);

/** Which search kernel solve() runs (see file comment). */
enum class SearchEngine { Trail, Baseline };

/** Human-readable engine name ("trail", "baseline"). */
const char *searchEngineName(SearchEngine engine);

/** Search limits and tunables. */
struct SolverParams
{
    double timeLimitSeconds = 150.0;  ///< paper Table 4 uses 150 s
    std::uint64_t maxDecisions = 0;   ///< 0 = unlimited
    /** Maximum propagation sweeps per node before giving up fixpoint
     * (Baseline engine only; Trail always reaches fixpoint). */
    int maxPropagationPasses = 16;
    SearchEngine engine = SearchEngine::Trail;
    /** Multiplicative activity bump applied per conflict (Trail). */
    double activityDecay = 1.05;
    /**
     * Luby restart base, in conflicts (Trail only; 0 disables).
     * Restart i aborts the current dive after luby(i) * base conflicts
     * and re-descends from the root with solution phase saving: value
     * ordering follows the incumbent, so restarted searches keep (and
     * typically improve) incumbent quality under the same decision
     * budget. Restarting is conflict-counted, hence deterministic.
     * The strategy stays complete: the limit grows without bound, so
     * an exhaustive pass eventually fits inside one restart window —
     * but proving optimality can take more decisions than a single
     * uninterrupted dive, which is why LC-OPG only switches restarts
     * on for budget-truncated (FEASIBLE) window solves.
     */
    std::uint64_t restartConflictBase = 0;
    /**
     * @name Deterministic portfolio hooks (solver/portfolio.hh).
     *
     * orderSeed != 0 replaces the first-fail heap's final var-id
     * tie-break with a seeded permutation of the variable ids (Trail
     * only) — search order diversity without touching the heuristics.
     * invertValueOrder flips the branching polarity (low-first <->
     * high-first, including the saved solution phase under restarts).
     * board/portfolioIndex attach this solve to a cancellation board:
     * the search stops early when a lower-indexed configuration has
     * achieved the proven optimum (Trail only; Baseline ignores the
     * board). The board never injects bounds, so an attached run is
     * always a prefix of the detached one.
     * @{
     */
    std::uint64_t orderSeed = 0;
    bool invertValueOrder = false;
    PortfolioBoard *board = nullptr; ///< non-owning; null = detached
    int portfolioIndex = 0;
    /** @} */
};

/** Result of a solve: status, assignment, objective, search stats. */
struct SolveResult
{
    SolveStatus status = SolveStatus::Unknown;
    std::vector<std::int64_t> values;
    std::int64_t objective = 0;
    std::uint64_t decisions = 0;
    /** Constraint revisions (Trail) / full passes (Baseline). */
    std::uint64_t propagations = 0;
    std::uint64_t backtracks = 0;
    /** Luby restarts taken (Trail with restartConflictBase > 0). */
    std::uint64_t restarts = 0;
    double wallSeconds = 0.0;
    /** Stopped early by the portfolio cancellation board. */
    bool cancelled = false;
    /**
     * @name Counters snapshotted at the last incumbent improvement.
     *
     * Unlike the raw totals above (which, under portfolio
     * cancellation, depend on when the stop lands), these freeze at
     * the moment the final incumbent was found — inside the
     * uninterfered prefix of the search — so the winning
     * configuration's snapshots are byte-deterministic for any thread
     * count. All zero when the warm-start hint was never improved.
     * @{
     */
    std::uint64_t improveDecisions = 0;
    std::uint64_t improvePropagations = 0;
    std::uint64_t improveBacktracks = 0;
    std::uint64_t improveRestarts = 0;
    /** @} */

    bool
    feasible() const
    {
        return status == SolveStatus::Optimal ||
               status == SolveStatus::Feasible;
    }

    std::int64_t value(VarId v) const { return values.at(v); }
};

/** Branch-and-bound solver over a CpModel. */
class CpSolver
{
  public:
    explicit CpSolver(SolverParams params = {}) : params_(params) {}

    /**
     * Solve @p model, optionally warm-starting from @p hint (a full
     * assignment used as the initial incumbent if it is feasible).
     */
    SolveResult solve(const CpModel &model,
                      const std::vector<std::int64_t> *hint = nullptr);

  private:
    SolverParams params_;
};

} // namespace flashmem::solver

#endif // FLASHMEM_SOLVER_SOLVER_HH
