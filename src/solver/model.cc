#include "solver/model.hh"

#include "common/logging.hh"

namespace flashmem::solver {

VarId
CpModel::newIntVar(std::int64_t lb, std::int64_t ub, std::string name)
{
    FM_ASSERT(lb <= ub, "empty initial domain for '", name, "': [", lb,
              ", ", ub, "]");
    lbs_.push_back(lb);
    ubs_.push_back(ub);
    names_.push_back(std::move(name));
    return static_cast<VarId>(lbs_.size()) - 1;
}

void
CpModel::checkVar(VarId v) const
{
    FM_ASSERT(v >= 0 && v < static_cast<VarId>(lbs_.size()),
              "bad variable id ", v);
}

void
CpModel::checkTerms(const std::vector<LinearTerm> &terms) const
{
    for (const auto &t : terms)
        checkVar(t.var);
}

void
CpModel::addLinear(std::vector<LinearTerm> terms, std::int64_t lo,
                   std::int64_t hi)
{
    FM_ASSERT(lo <= hi, "addLinear with lo > hi");
    checkTerms(terms);
    constraints_.push_back({std::move(terms), lo, hi});
}

void
CpModel::addLessOrEqual(std::vector<LinearTerm> terms, std::int64_t hi)
{
    addLinear(std::move(terms),
              std::numeric_limits<std::int64_t>::min() / 4, hi);
}

void
CpModel::addGreaterOrEqual(std::vector<LinearTerm> terms, std::int64_t lo)
{
    addLinear(std::move(terms), lo,
              std::numeric_limits<std::int64_t>::max() / 4);
}

void
CpModel::addEquality(std::vector<LinearTerm> terms, std::int64_t value)
{
    addLinear(std::move(terms), value, value);
}

void
CpModel::addImplicationGeLe(VarId x, std::int64_t x_threshold, VarId y,
                            std::int64_t y_bound)
{
    checkVar(x);
    checkVar(y);
    implications_.push_back({x, x_threshold, y, y_bound});
}

void
CpModel::minimize(std::vector<LinearTerm> objective)
{
    checkTerms(objective);
    objective_ = std::move(objective);
}

} // namespace flashmem::solver
