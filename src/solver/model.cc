#include "solver/model.hh"

#include "common/logging.hh"

namespace flashmem::solver {

VarId
CpModel::newIntVar(std::int64_t lb, std::int64_t ub, std::string name)
{
    FM_ASSERT(lb <= ub, "empty initial domain for '", name, "': [", lb,
              ", ", ub, "]");
    lbs_.push_back(lb);
    ubs_.push_back(ub);
    names_.push_back(std::move(name));
    varConstraints_.emplace_back();
    varImplications_.emplace_back();
    return static_cast<VarId>(lbs_.size()) - 1;
}

void
CpModel::checkVar(VarId v) const
{
    FM_ASSERT(v >= 0 && v < static_cast<VarId>(lbs_.size()),
              "bad variable id ", v);
}

void
CpModel::checkTerms(const std::vector<LinearTerm> &terms) const
{
    for (const auto &t : terms)
        checkVar(t.var);
}

void
CpModel::addLinear(std::vector<LinearTerm> terms, std::int64_t lo,
                   std::int64_t hi)
{
    FM_ASSERT(lo <= hi, "addLinear with lo > hi");
    checkTerms(terms);
    const auto ci = static_cast<std::int32_t>(constraints_.size());
    for (const auto &t : terms) {
        auto &list = varConstraints_[t.var];
        // Guard against a variable appearing twice in one constraint:
        // one watch entry is enough.
        if (list.empty() || list.back() != ci)
            list.push_back(ci);
    }
    constraints_.push_back({std::move(terms), lo, hi});
}

void
CpModel::addLessOrEqual(std::vector<LinearTerm> terms, std::int64_t hi)
{
    addLinear(std::move(terms),
              std::numeric_limits<std::int64_t>::min() / 4, hi);
}

void
CpModel::addGreaterOrEqual(std::vector<LinearTerm> terms, std::int64_t lo)
{
    addLinear(std::move(terms), lo,
              std::numeric_limits<std::int64_t>::max() / 4);
}

void
CpModel::addEquality(std::vector<LinearTerm> terms, std::int64_t value)
{
    addLinear(std::move(terms), value, value);
}

void
CpModel::addImplicationGeLe(VarId x, std::int64_t x_threshold, VarId y,
                            std::int64_t y_bound)
{
    checkVar(x);
    checkVar(y);
    const auto ii = static_cast<std::int32_t>(implications_.size());
    varImplications_[x].push_back(ii);
    if (y != x)
        varImplications_[y].push_back(ii);
    implications_.push_back({x, x_threshold, y, y_bound});
}

void
CpModel::minimize(std::vector<LinearTerm> objective)
{
    checkTerms(objective);
    objective_ = std::move(objective);
}

const std::vector<std::int32_t> &
CpModel::constraintsWatching(VarId v) const
{
    checkVar(v);
    return varConstraints_[v];
}

const std::vector<std::int32_t> &
CpModel::implicationsWatching(VarId v) const
{
    checkVar(v);
    return varImplications_[v];
}

bool
CpModel::satisfiedBy(const std::vector<std::int64_t> &values) const
{
    if (values.size() != lbs_.size())
        return false;
    for (std::size_t v = 0; v < lbs_.size(); ++v) {
        if (values[v] < lbs_[v] || values[v] > ubs_[v])
            return false;
    }
    for (const auto &c : constraints_) {
        std::int64_t s = 0;
        for (const auto &t : c.terms)
            s += t.coef * values[t.var];
        if (s < c.lo || s > c.hi)
            return false;
    }
    for (const auto &imp : implications_) {
        if (values[imp.x] >= imp.xThreshold && values[imp.y] > imp.yBound)
            return false;
    }
    return true;
}

namespace {

/** FNV-1a, 64-bit. */
struct Fnv1a
{
    std::uint64_t h = 14695981039346656037ull;

    void
    mix(std::uint64_t x)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (x >> (8 * i)) & 0xFF;
            h *= 1099511628211ull;
        }
    }

    void mixI64(std::int64_t x) { mix(static_cast<std::uint64_t>(x)); }
};

} // namespace

std::uint64_t
CpModel::fingerprint() const
{
    Fnv1a f;
    f.mix(lbs_.size());
    for (std::size_t v = 0; v < lbs_.size(); ++v) {
        f.mixI64(lbs_[v]);
        f.mixI64(ubs_[v]);
    }
    f.mix(constraints_.size());
    for (const auto &c : constraints_) {
        f.mixI64(c.lo);
        f.mixI64(c.hi);
        f.mix(c.terms.size());
        for (const auto &t : c.terms) {
            f.mix(static_cast<std::uint64_t>(t.var));
            f.mixI64(t.coef);
        }
    }
    f.mix(implications_.size());
    for (const auto &imp : implications_) {
        f.mix(static_cast<std::uint64_t>(imp.x));
        f.mixI64(imp.xThreshold);
        f.mix(static_cast<std::uint64_t>(imp.y));
        f.mixI64(imp.yBound);
    }
    f.mix(objective_.size());
    for (const auto &t : objective_) {
        f.mix(static_cast<std::uint64_t>(t.var));
        f.mixI64(t.coef);
    }
    return f.h;
}

} // namespace flashmem::solver
