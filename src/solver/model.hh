/**
 * @file
 * Constraint-programming model builder.
 *
 * The paper solves Overlap Plan Generation with Google OR-Tools CP-SAT;
 * this is a from-scratch replacement covering the fragment OPG needs:
 * bounded integer variables, two-sided linear constraints, half-reified
 * implications of the form (x >= t) => (y <= b), and a linear
 * minimization objective.
 */

#ifndef FLASHMEM_SOLVER_MODEL_HH
#define FLASHMEM_SOLVER_MODEL_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace flashmem::solver {

using VarId = int;

/** coef * var contribution to a linear expression. */
struct LinearTerm
{
    VarId var = -1;
    std::int64_t coef = 1;
};

/** lo <= sum(terms) <= hi. */
struct LinearConstraint
{
    std::vector<LinearTerm> terms;
    std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    std::int64_t hi = std::numeric_limits<std::int64_t>::max();
};

/** Half-reified implication: (x >= xThreshold) => (y <= yBound). */
struct Implication
{
    VarId x = -1;
    std::int64_t xThreshold = 1;
    VarId y = -1;
    std::int64_t yBound = 0;
};

/** Declarative CP model: variables, constraints, objective. */
class CpModel
{
  public:
    /** New integer variable with inclusive domain [lb, ub]. */
    VarId newIntVar(std::int64_t lb, std::int64_t ub,
                    std::string name = "");

    /** Add lo <= expr <= hi. */
    void addLinear(std::vector<LinearTerm> terms, std::int64_t lo,
                   std::int64_t hi);

    /** Add expr <= hi. */
    void addLessOrEqual(std::vector<LinearTerm> terms, std::int64_t hi);

    /** Add expr >= lo. */
    void addGreaterOrEqual(std::vector<LinearTerm> terms,
                           std::int64_t lo);

    /** Add expr == value. */
    void addEquality(std::vector<LinearTerm> terms, std::int64_t value);

    /** Add (x >= x_threshold) => (y <= y_bound). */
    void addImplicationGeLe(VarId x, std::int64_t x_threshold, VarId y,
                            std::int64_t y_bound);

    /** Set the linear expression to minimize. */
    void minimize(std::vector<LinearTerm> objective);

    /** @name Introspection (used by the solver and tests). @{ */
    std::size_t varCount() const { return lbs_.size(); }
    std::int64_t lowerBound(VarId v) const { return lbs_[v]; }
    std::int64_t upperBound(VarId v) const { return ubs_[v]; }
    const std::string &varName(VarId v) const { return names_[v]; }
    const std::vector<LinearConstraint> &constraints() const
    {
        return constraints_;
    }
    const std::vector<Implication> &implications() const
    {
        return implications_;
    }
    const std::vector<LinearTerm> &objective() const { return objective_; }
    bool hasObjective() const { return !objective_.empty(); }
    /** @} */

    /** @name Propagation watch lists. @{ */
    /**
     * Constraint indices whose terms mention @p v. The solver's
     * dirty-queue propagation only revisits these when v's bounds
     * change, instead of re-scanning every constraint. Maintained
     * eagerly as the model is built, so const access is safe to share.
     */
    const std::vector<std::int32_t> &constraintsWatching(VarId v) const;
    /** Implication indices where @p v appears as x or y. */
    const std::vector<std::int32_t> &implicationsWatching(VarId v) const;
    /** @} */

    /**
     * True when @p values is a complete assignment satisfying every
     * domain, constraint, and implication.
     */
    bool satisfiedBy(const std::vector<std::int64_t> &values) const;

    /**
     * Structural 64-bit fingerprint (FNV-1a over domains, constraints,
     * implications, and the objective; names excluded). Identical models
     * hash identically, so repeated planning calls can reuse cached
     * incumbents as warm starts. Collisions are harmless: cached hints
     * are validated before use.
     */
    std::uint64_t fingerprint() const;

  private:
    void checkVar(VarId v) const;
    void checkTerms(const std::vector<LinearTerm> &terms) const;

    std::vector<std::int64_t> lbs_;
    std::vector<std::int64_t> ubs_;
    std::vector<std::string> names_;
    std::vector<LinearConstraint> constraints_;
    std::vector<Implication> implications_;
    std::vector<LinearTerm> objective_;

    // Eagerly maintained watch lists (see constraintsWatching()).
    std::vector<std::vector<std::int32_t>> varConstraints_;
    std::vector<std::vector<std::int32_t>> varImplications_;
};

} // namespace flashmem::solver

#endif // FLASHMEM_SOLVER_MODEL_HH
