#include "graph/op.hh"

#include <array>

#include "common/logging.hh"

namespace flashmem::graph {

namespace {

struct OpInfo
{
    OpKind kind;
    const char *name;
    OpClass cls;
    bool weighted;
};

constexpr std::array<OpInfo, static_cast<std::size_t>(OpKind::NumKinds)>
kOpInfo{{
    {OpKind::MatMul, "matmul", OpClass::Reusable, true},
    {OpKind::Conv2D, "conv2d", OpClass::Reusable, true},
    {OpKind::DepthwiseConv2D, "dwconv2d", OpClass::Reusable, true},
    {OpKind::AttentionMatMul, "attn_matmul", OpClass::Reusable, false},
    {OpKind::Add, "add", OpClass::Elemental, false},
    {OpKind::Mul, "mul", OpClass::Elemental, false},
    {OpKind::BiasAdd, "bias_add", OpClass::Elemental, true},
    {OpKind::ReLU, "relu", OpClass::Elemental, false},
    {OpKind::GeLU, "gelu", OpClass::Elemental, false},
    {OpKind::SiLU, "silu", OpClass::Elemental, false},
    {OpKind::Sigmoid, "sigmoid", OpClass::Elemental, false},
    {OpKind::Tanh, "tanh", OpClass::Elemental, false},
    {OpKind::Scale, "scale", OpClass::Elemental, false},
    {OpKind::Embedding, "embedding", OpClass::Elemental, true},
    {OpKind::Pooling, "pooling", OpClass::Elemental, false},
    {OpKind::Upsample, "upsample", OpClass::Elemental, false},
    {OpKind::RoPE, "rope", OpClass::Elemental, false},
    {OpKind::Softmax, "softmax", OpClass::Hierarchical, false},
    {OpKind::LayerNorm, "layernorm", OpClass::Hierarchical, true},
    {OpKind::GroupNorm, "groupnorm", OpClass::Hierarchical, true},
    {OpKind::RMSNorm, "rmsnorm", OpClass::Hierarchical, true},
    {OpKind::Reshape, "reshape", OpClass::Movement, false},
    {OpKind::Transpose, "transpose", OpClass::Movement, false},
    {OpKind::Concat, "concat", OpClass::Movement, false},
    {OpKind::Split, "split", OpClass::Movement, false},
    {OpKind::Slice, "slice", OpClass::Movement, false},
}};

const OpInfo &
info(OpKind kind)
{
    auto idx = static_cast<std::size_t>(kind);
    FM_ASSERT(idx < kOpInfo.size(), "bad OpKind ", idx);
    FM_ASSERT(kOpInfo[idx].kind == kind, "kOpInfo table out of order");
    return kOpInfo[idx];
}

} // namespace

OpClass
opClass(OpKind kind)
{
    return info(kind).cls;
}

const char *
opKindName(OpKind kind)
{
    return info(kind).name;
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::Elemental:
        return "elemental";
      case OpClass::Reusable:
        return "reusable";
      case OpClass::Hierarchical:
        return "hierarchical";
      case OpClass::Movement:
        return "movement";
    }
    return "?";
}

bool
opUsuallyWeighted(OpKind kind)
{
    return info(kind).weighted;
}

OpKind
opKindFromName(const std::string &name)
{
    for (const auto &entry : kOpInfo) {
        if (name == entry.name)
            return entry.kind;
    }
    FM_FATAL("unknown operator name '", name, "'");
}

} // namespace flashmem::graph
