#include "graph/builder.hh"

#include "common/logging.hh"

namespace flashmem::graph {

namespace {

/** Elements of an activation used as the generic cost of pointwise ops. */
std::uint64_t
elems(const TensorShape &s)
{
    return static_cast<std::uint64_t>(s.elements());
}

} // namespace

GraphBuilder::GraphBuilder(std::string model_name, Precision precision)
    : graph_(std::move(model_name), precision)
{
}

Graph
GraphBuilder::build()
{
    FM_ASSERT(!built_, "GraphBuilder::build() called twice");
    built_ = true;
    graph_.validate();
    return std::move(graph_);
}

NodeId
GraphBuilder::emit(OpKind kind, std::vector<NodeId> inputs,
                   TensorShape out_shape, std::uint64_t macs,
                   const std::string &name)
{
    Node n;
    n.name = name;
    n.kind = kind;
    n.inputs = std::move(inputs);
    n.output = TensorDesc{std::move(out_shape), graph_.precision()};
    n.macs = macs;
    return graph_.addNode(std::move(n));
}

WeightId
GraphBuilder::addWeight(NodeId node, TensorShape shape,
                        const std::string &name)
{
    TensorDesc desc{std::move(shape), graph_.precision()};
    return graph_.attachWeight(node, std::move(desc), name);
}

NodeId
GraphBuilder::input(TensorShape shape, const std::string &name)
{
    return emit(OpKind::Reshape, {}, std::move(shape), 0, name);
}

NodeId
GraphBuilder::matmul(NodeId in, std::int64_t out_features,
                     const std::string &name, bool bias)
{
    const TensorShape &in_shape = shapeOf(in);
    FM_ASSERT(in_shape.rank() >= 1, "matmul input must have rank >= 1");
    std::int64_t k = in_shape.dim(in_shape.rank() - 1);
    std::int64_t rows = in_shape.elements() / k;

    std::vector<std::int64_t> out_dims = in_shape.dims();
    out_dims.back() = out_features;

    auto macs = static_cast<std::uint64_t>(rows) * k * out_features;
    NodeId id = emit(OpKind::MatMul, {in}, TensorShape(out_dims), macs,
                     name);
    addWeight(id, {k, out_features}, name + ".weight");
    if (bias)
        addWeight(id, {out_features}, name + ".bias");
    return id;
}

NodeId
GraphBuilder::attnMatmul(NodeId a, NodeId b, TensorShape out_shape,
                         std::uint64_t macs, const std::string &name)
{
    return emit(OpKind::AttentionMatMul, {a, b}, std::move(out_shape),
                macs, name);
}

NodeId
GraphBuilder::conv2d(NodeId in, std::int64_t out_channels, int kernel,
                     int stride, int padding, const std::string &name,
                     bool bias)
{
    const TensorShape &in_shape = shapeOf(in);
    FM_ASSERT(in_shape.rank() == 4, "conv2d expects NCHW, got ",
              in_shape.toString());
    std::int64_t n = in_shape.dim(0);
    std::int64_t c = in_shape.dim(1);
    std::int64_t h = in_shape.dim(2);
    std::int64_t w = in_shape.dim(3);
    std::int64_t oh = (h + 2 * padding - kernel) / stride + 1;
    std::int64_t ow = (w + 2 * padding - kernel) / stride + 1;
    FM_ASSERT(oh > 0 && ow > 0, "conv2d '", name,
              "' produces empty output");

    auto macs = static_cast<std::uint64_t>(n) * out_channels * oh * ow *
                c * kernel * kernel;
    NodeId id = emit(OpKind::Conv2D, {in},
                     TensorShape{n, out_channels, oh, ow}, macs, name);
    addWeight(id, {out_channels, c, kernel, kernel}, name + ".weight");
    if (bias)
        addWeight(id, {out_channels}, name + ".bias");
    return id;
}

NodeId
GraphBuilder::dwConv2d(NodeId in, int kernel, int stride, int padding,
                       const std::string &name)
{
    const TensorShape &in_shape = shapeOf(in);
    FM_ASSERT(in_shape.rank() == 4, "dwConv2d expects NCHW");
    std::int64_t n = in_shape.dim(0);
    std::int64_t c = in_shape.dim(1);
    std::int64_t h = in_shape.dim(2);
    std::int64_t w = in_shape.dim(3);
    std::int64_t oh = (h + 2 * padding - kernel) / stride + 1;
    std::int64_t ow = (w + 2 * padding - kernel) / stride + 1;

    auto macs =
        static_cast<std::uint64_t>(n) * c * oh * ow * kernel * kernel;
    NodeId id = emit(OpKind::DepthwiseConv2D, {in},
                     TensorShape{n, c, oh, ow}, macs, name);
    addWeight(id, {c, 1, kernel, kernel}, name + ".weight");
    return id;
}

NodeId
GraphBuilder::add(NodeId a, NodeId b, const std::string &name)
{
    // Allow numpy-style broadcast of the smaller operand.
    FM_ASSERT(shapeOf(a).elements() % shapeOf(b).elements() == 0,
              "add '", name, "' operands not broadcastable");
    return emit(OpKind::Add, {a, b}, shapeOf(a), 0, name);
}

NodeId
GraphBuilder::mul(NodeId a, NodeId b, const std::string &name)
{
    return emit(OpKind::Mul, {a, b}, shapeOf(a), 0, name);
}

NodeId
GraphBuilder::biasAdd(NodeId in, const std::string &name)
{
    const TensorShape &s = shapeOf(in);
    // Channel dimension: dim 1 for NCHW feature maps, innermost otherwise.
    std::int64_t channels =
        s.rank() == 4 ? s.dim(1) : s.dim(s.rank() - 1);
    NodeId id = emit(OpKind::BiasAdd, {in}, s, 0, name);
    addWeight(id, {channels}, name + ".bias");
    return id;
}

NodeId
GraphBuilder::activation(NodeId in, OpKind kind, const std::string &name)
{
    FM_ASSERT(opClass(kind) == OpClass::Elemental,
              "activation must be an elemental kind");
    return emit(kind, {in}, shapeOf(in), 0, name);
}

NodeId
GraphBuilder::scale(NodeId in, const std::string &name)
{
    return emit(OpKind::Scale, {in}, shapeOf(in), 0, name);
}

NodeId
GraphBuilder::rope(NodeId in, const std::string &name)
{
    return emit(OpKind::RoPE, {in}, shapeOf(in), 0, name);
}

NodeId
GraphBuilder::embedding(std::int64_t tokens, std::int64_t vocab,
                        std::int64_t dim, const std::string &name)
{
    NodeId id = emit(OpKind::Embedding, {}, TensorShape{tokens, dim}, 0,
                     name);
    addWeight(id, {vocab, dim}, name + ".weight");
    return id;
}

NodeId
GraphBuilder::pooling(NodeId in, int kernel, int stride,
                      const std::string &name)
{
    const TensorShape &s = shapeOf(in);
    FM_ASSERT(s.rank() == 4, "pooling expects NCHW");
    std::int64_t oh = (s.dim(2) - kernel) / stride + 1;
    std::int64_t ow = (s.dim(3) - kernel) / stride + 1;
    if (oh < 1)
        oh = 1;
    if (ow < 1)
        ow = 1;
    return emit(OpKind::Pooling, {in},
                TensorShape{s.dim(0), s.dim(1), oh, ow}, 0, name);
}

NodeId
GraphBuilder::upsample(NodeId in, int factor, const std::string &name)
{
    const TensorShape &s = shapeOf(in);
    FM_ASSERT(s.rank() == 4, "upsample expects NCHW");
    return emit(OpKind::Upsample, {in},
                TensorShape{s.dim(0), s.dim(1), s.dim(2) * factor,
                            s.dim(3) * factor},
                0, name);
}

NodeId
GraphBuilder::softmax(NodeId in, const std::string &name)
{
    return emit(OpKind::Softmax, {in}, shapeOf(in),
                4 * elems(shapeOf(in)), name);
}

NodeId
GraphBuilder::layerNorm(NodeId in, const std::string &name)
{
    // By value: emit() grows the node vector and would dangle a
    // reference, which the s.dim()/s.rank() reads below still need.
    const TensorShape s = shapeOf(in);
    NodeId id = emit(OpKind::LayerNorm, {in}, s, 4 * elems(s), name);
    addWeight(id, {2, s.dim(s.rank() - 1)}, name + ".gamma_beta");
    return id;
}

NodeId
GraphBuilder::groupNorm(NodeId in, const std::string &name)
{
    const TensorShape s = shapeOf(in); // by value; emit() reallocates
    NodeId id = emit(OpKind::GroupNorm, {in}, s, 4 * elems(s), name);
    addWeight(id, {2, s.dim(1)}, name + ".gamma_beta");
    return id;
}

NodeId
GraphBuilder::rmsNorm(NodeId in, const std::string &name)
{
    const TensorShape s = shapeOf(in); // by value; emit() reallocates
    NodeId id = emit(OpKind::RMSNorm, {in}, s, 3 * elems(s), name);
    addWeight(id, {s.dim(s.rank() - 1)}, name + ".gamma");
    return id;
}

NodeId
GraphBuilder::reshape(NodeId in, TensorShape out_shape,
                      const std::string &name)
{
    FM_ASSERT(shapeOf(in).elements() == out_shape.elements(),
              "reshape '", name, "' changes element count");
    return emit(OpKind::Reshape, {in}, std::move(out_shape), 0, name);
}

NodeId
GraphBuilder::transpose(NodeId in, TensorShape out_shape,
                        const std::string &name)
{
    FM_ASSERT(shapeOf(in).elements() == out_shape.elements(),
              "transpose '", name, "' changes element count");
    return emit(OpKind::Transpose, {in}, std::move(out_shape), 0, name);
}

NodeId
GraphBuilder::concat(const std::vector<NodeId> &ins, TensorShape out_shape,
                     const std::string &name)
{
    FM_ASSERT(!ins.empty(), "concat needs at least one input");
    return emit(OpKind::Concat, ins, std::move(out_shape), 0, name);
}

NodeId
GraphBuilder::slice(NodeId in, TensorShape out_shape,
                    const std::string &name)
{
    return emit(OpKind::Slice, {in}, std::move(out_shape), 0, name);
}

const TensorShape &
GraphBuilder::shapeOf(NodeId id) const
{
    return graph_.node(id).output.shape;
}

} // namespace flashmem::graph
