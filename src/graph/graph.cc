#include "graph/graph.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flashmem::graph {

NodeId
Graph::addNode(Node node)
{
    node.id = static_cast<NodeId>(nodes_.size());
    if (node.fusedKinds.empty())
        node.fusedKinds.push_back(node.kind);
    for (NodeId in : node.inputs) {
        FM_ASSERT(in >= 0 && in < node.id,
                  "node '", node.name, "' input ", in,
                  " breaks topological order");
    }
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
}

WeightId
Graph::attachWeight(NodeId consumer, TensorDesc desc, std::string name)
{
    FM_ASSERT(consumer >= 0 &&
              consumer < static_cast<NodeId>(nodes_.size()),
              "attachWeight: bad consumer ", consumer);
    Weight w;
    w.id = static_cast<WeightId>(weights_.size());
    w.name = std::move(name);
    w.desc = std::move(desc);
    w.consumer = consumer;
    nodes_[consumer].weights.push_back(w.id);
    weights_.push_back(std::move(w));
    return weights_.back().id;
}

const Node &
Graph::node(NodeId id) const
{
    FM_ASSERT(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
              "bad node id ", id);
    return nodes_[id];
}

Node &
Graph::mutableNode(NodeId id)
{
    FM_ASSERT(id >= 0 && id < static_cast<NodeId>(nodes_.size()),
              "bad node id ", id);
    return nodes_[id];
}

const Weight &
Graph::weight(WeightId id) const
{
    FM_ASSERT(id >= 0 && id < static_cast<WeightId>(weights_.size()),
              "bad weight id ", id);
    return weights_[id];
}

std::vector<NodeId>
Graph::consumersOf(NodeId id) const
{
    std::vector<NodeId> out;
    for (const auto &n : nodes_) {
        if (std::find(n.inputs.begin(), n.inputs.end(), id) !=
            n.inputs.end()) {
            out.push_back(n.id);
        }
    }
    return out;
}

Bytes
Graph::totalWeightBytes() const
{
    Bytes total = 0;
    for (const auto &w : weights_)
        total += w.bytes();
    return total;
}

std::int64_t
Graph::totalParams() const
{
    std::int64_t total = 0;
    for (const auto &w : weights_)
        total += w.desc.shape.elements();
    return total;
}

std::uint64_t
Graph::totalMacs() const
{
    std::uint64_t total = 0;
    for (const auto &n : nodes_)
        total += n.macs;
    return total;
}

Bytes
Graph::inputBytes(NodeId id) const
{
    Bytes total = 0;
    for (NodeId in : node(id).inputs)
        total += node(in).output.bytes();
    return total;
}

Bytes
Graph::peakActivationBytes() const
{
    Bytes peak = 0;
    for (const auto &n : nodes_)
        peak = std::max(peak, n.output.bytes());
    return peak;
}

bool
Graph::validate(bool fatal_on_error) const
{
    auto fail = [&](const std::string &msg) -> bool {
        if (fatal_on_error)
            FM_FATAL("graph '", name_, "': ", msg);
        warn("graph '", name_, "': ", msg);
        return false;
    };

    for (const auto &n : nodes_) {
        if (n.id < 0 || n.id >= static_cast<NodeId>(nodes_.size()))
            return fail("node id out of range");
        for (NodeId in : n.inputs) {
            if (in < 0 || in >= n.id)
                return fail("node '" + n.name + "' violates topo order");
        }
        if (n.output.shape.rank() == 0)
            return fail("node '" + n.name + "' has no output shape");
        if (n.fusedKinds.empty())
            return fail("node '" + n.name + "' has empty fusedKinds");
        for (WeightId wid : n.weights) {
            if (wid < 0 || wid >= static_cast<WeightId>(weights_.size()))
                return fail("node '" + n.name + "' has bad weight id");
            if (weights_[wid].consumer != n.id)
                return fail("weight consumer mismatch at '" + n.name + "'");
        }
    }
    for (const auto &w : weights_) {
        if (w.consumer < 0 ||
            w.consumer >= static_cast<NodeId>(nodes_.size()))
            return fail("weight '" + w.name + "' has bad consumer");
        if (w.bytes() == 0)
            return fail("weight '" + w.name + "' is empty");
    }
    return true;
}

} // namespace flashmem::graph
