#include "graph/tensor.hh"

#include <sstream>

#include "common/logging.hh"

namespace flashmem::graph {

TensorShape::TensorShape(std::initializer_list<std::int64_t> dims)
    : dims_(dims)
{
    for (auto d : dims_)
        FM_ASSERT(d > 0, "tensor dims must be positive, got ", d);
}

TensorShape::TensorShape(std::vector<std::int64_t> dims)
    : dims_(std::move(dims))
{
    for (auto d : dims_)
        FM_ASSERT(d > 0, "tensor dims must be positive, got ", d);
}

std::int64_t
TensorShape::dim(std::size_t i) const
{
    FM_ASSERT(i < dims_.size(), "dim index ", i, " out of range");
    return dims_[i];
}

std::int64_t
TensorShape::elements() const
{
    std::int64_t n = 1;
    for (auto d : dims_)
        n *= d;
    return n;
}

std::string
TensorShape::toString() const
{
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            os << ", ";
        os << dims_[i];
    }
    os << ']';
    return os.str();
}

Bytes
TensorDesc::bytes() const
{
    return static_cast<Bytes>(shape.elements()) * elementSize(precision);
}

std::string
TensorDesc::toString() const
{
    return shape.toString() +
           (precision == Precision::FP16 ? " fp16" : " fp32");
}

} // namespace flashmem::graph
