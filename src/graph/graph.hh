/**
 * @file
 * DNN computational-graph IR.
 *
 * A Graph is a DAG of low-level operator nodes stored in execution order
 * (paper Section 3.1: the runtime imposes a linear order 1..N). Weight
 * tensors are first-class objects attached to their first consuming node,
 * mirroring the OPG formalization where i_w denotes the layer consuming
 * weight w.
 */

#ifndef FLASHMEM_GRAPH_GRAPH_HH
#define FLASHMEM_GRAPH_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "graph/op.hh"
#include "graph/tensor.hh"

namespace flashmem::graph {

using NodeId = std::int32_t;
using WeightId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;

/** A weight tensor streamed from disk at runtime. */
struct Weight
{
    WeightId id = -1;
    std::string name;
    TensorDesc desc;
    /** First (primary) consuming layer; the i_w of the OPG model. */
    NodeId consumer = kInvalidNode;

    Bytes bytes() const { return desc.bytes(); }
};

/** One low-level operator (layer) in execution order. */
struct Node
{
    NodeId id = kInvalidNode;
    std::string name;
    /** Dominant kind; for fused nodes, the most capacity-restrictive. */
    OpKind kind = OpKind::MatMul;
    /** Constituent kinds; singleton unless this node is a fusion. */
    std::vector<OpKind> fusedKinds;
    /** Producer nodes whose outputs this node reads. */
    std::vector<NodeId> inputs;
    TensorDesc output;
    /** Multiply-accumulate count (0 for non-compute ops). */
    std::uint64_t macs = 0;
    /** Weights consumed by this node (indices into Graph weights). */
    std::vector<WeightId> weights;

    bool isFused() const { return fusedKinds.size() > 1; }
};

/**
 * Weighted DAG in execution order.
 *
 * Nodes are appended in topological order (inputs must already exist), so
 * NodeId doubles as the layer index of the OPG formalization.
 */
class Graph
{
  public:
    Graph() = default;
    Graph(std::string name, Precision precision)
        : name_(std::move(name)), precision_(precision)
    {}

    const std::string &name() const { return name_; }
    Precision precision() const { return precision_; }

    /** @name Construction (used by GraphBuilder and the fusion pass). @{ */
    NodeId addNode(Node node);
    WeightId attachWeight(NodeId consumer, TensorDesc desc,
                          std::string name);
    /** @} */

    /** @name Topology queries. @{ */
    std::size_t layerCount() const { return nodes_.size(); }
    const std::vector<Node> &nodes() const { return nodes_; }
    const Node &node(NodeId id) const;
    Node &mutableNode(NodeId id);

    std::size_t weightCount() const { return weights_.size(); }
    const std::vector<Weight> &weights() const { return weights_; }
    const Weight &weight(WeightId id) const;

    /** Node ids that read the output of @p id. */
    std::vector<NodeId> consumersOf(NodeId id) const;
    /** @} */

    /** @name Aggregate statistics. @{ */
    /** Total bytes of all weight tensors (the on-disk model size). */
    Bytes totalWeightBytes() const;
    /** Total trainable parameters (elements across weights). */
    std::int64_t totalParams() const;
    /** Total multiply-accumulate operations over all nodes. */
    std::uint64_t totalMacs() const;
    /** Sum of input activation bytes a node reads. */
    Bytes inputBytes(NodeId id) const;
    /** Largest single activation tensor in the graph. */
    Bytes peakActivationBytes() const;
    /** @} */

    /**
     * Check structural invariants: execution order is topological, weight
     * consumers exist, shapes are non-empty. Fatal on violation when
     * @p fatal_on_error, otherwise returns false.
     */
    bool validate(bool fatal_on_error = true) const;

  private:
    std::string name_;
    Precision precision_ = Precision::FP16;
    std::vector<Node> nodes_;
    std::vector<Weight> weights_;
};

} // namespace flashmem::graph

#endif // FLASHMEM_GRAPH_GRAPH_HH
