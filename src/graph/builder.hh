/**
 * @file
 * Fluent construction API for DNN graphs.
 *
 * The builder performs shape inference and MAC accounting for every
 * operator it emits, so model definitions in src/models stay close to the
 * architectural description of each network.
 */

#ifndef FLASHMEM_GRAPH_BUILDER_HH
#define FLASHMEM_GRAPH_BUILDER_HH

#include <string>
#include <vector>

#include "graph/graph.hh"

namespace flashmem::graph {

/** Fluent builder; append operators in execution order, then build(). */
class GraphBuilder
{
  public:
    GraphBuilder(std::string model_name, Precision precision);

    /** Finalize, validate, and return the graph. */
    Graph build();

    /** @name Graph sources. @{ */
    /** External input placeholder (counts as a zero-cost layer). */
    NodeId input(TensorShape shape, const std::string &name = "input");
    /** @} */

    /** @name Reusable operators. @{ */
    /**
     * Dense layer: input [..., k] x weight [k, n] -> [..., n].
     * Emits the weight tensor; optionally a fused bias weight.
     */
    NodeId matmul(NodeId in, std::int64_t out_features,
                  const std::string &name, bool bias = true);

    /** Weight-free batched matmul for attention scores / context. */
    NodeId attnMatmul(NodeId a, NodeId b, TensorShape out_shape,
                      std::uint64_t macs, const std::string &name);

    /** NCHW convolution with square kernel. */
    NodeId conv2d(NodeId in, std::int64_t out_channels, int kernel,
                  int stride, int padding, const std::string &name,
                  bool bias = true);

    /** Depthwise NCHW convolution with square kernel. */
    NodeId dwConv2d(NodeId in, int kernel, int stride, int padding,
                    const std::string &name);
    /** @} */

    /** @name Elemental operators. @{ */
    NodeId add(NodeId a, NodeId b, const std::string &name);
    NodeId mul(NodeId a, NodeId b, const std::string &name);
    NodeId biasAdd(NodeId in, const std::string &name);
    NodeId activation(NodeId in, OpKind kind, const std::string &name);
    NodeId scale(NodeId in, const std::string &name);
    NodeId rope(NodeId in, const std::string &name);
    /** Token embedding lookup: ids -> [tokens, dim]. */
    NodeId embedding(std::int64_t tokens, std::int64_t vocab,
                     std::int64_t dim, const std::string &name);
    NodeId pooling(NodeId in, int kernel, int stride,
                   const std::string &name);
    NodeId upsample(NodeId in, int factor, const std::string &name);
    /** @} */

    /** @name Hierarchical operators. @{ */
    NodeId softmax(NodeId in, const std::string &name);
    NodeId layerNorm(NodeId in, const std::string &name);
    NodeId groupNorm(NodeId in, const std::string &name);
    NodeId rmsNorm(NodeId in, const std::string &name);
    /** @} */

    /** @name Movement operators. @{ */
    NodeId reshape(NodeId in, TensorShape out_shape,
                   const std::string &name);
    NodeId transpose(NodeId in, TensorShape out_shape,
                     const std::string &name);
    NodeId concat(const std::vector<NodeId> &ins, TensorShape out_shape,
                  const std::string &name);
    NodeId slice(NodeId in, TensorShape out_shape, const std::string &name);
    /** @} */

    /** Output shape of an already-added node. */
    const TensorShape &shapeOf(NodeId id) const;

    /** Number of nodes emitted so far. */
    std::size_t size() const { return graph_.layerCount(); }

  private:
    NodeId emit(OpKind kind, std::vector<NodeId> inputs,
                TensorShape out_shape, std::uint64_t macs,
                const std::string &name);
    /** Attach a weight of @p shape to @p node. */
    WeightId addWeight(NodeId node, TensorShape shape,
                       const std::string &name);

    Graph graph_;
    bool built_ = false;
};

} // namespace flashmem::graph

#endif // FLASHMEM_GRAPH_BUILDER_HH
