/**
 * @file
 * Tensor shape / descriptor types for the graph IR.
 */

#ifndef FLASHMEM_GRAPH_TENSOR_HH
#define FLASHMEM_GRAPH_TENSOR_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/types.hh"

namespace flashmem::graph {

/** Dense tensor shape; rank 0 means scalar. */
class TensorShape
{
  public:
    TensorShape() = default;
    TensorShape(std::initializer_list<std::int64_t> dims);
    explicit TensorShape(std::vector<std::int64_t> dims);

    const std::vector<std::int64_t> &dims() const { return dims_; }
    std::size_t rank() const { return dims_.size(); }
    std::int64_t dim(std::size_t i) const;

    /** Total element count (1 for scalars). */
    std::int64_t elements() const;

    /** "[1, 197, 768]" style rendering. */
    std::string toString() const;

    bool operator==(const TensorShape &other) const = default;

  private:
    std::vector<std::int64_t> dims_;
};

/** Shape + precision; enough to size buffers and texture layouts. */
struct TensorDesc
{
    TensorShape shape;
    Precision precision = Precision::FP16;

    Bytes bytes() const;
    std::string toString() const;

    bool operator==(const TensorDesc &other) const = default;
};

} // namespace flashmem::graph

#endif // FLASHMEM_GRAPH_TENSOR_HH
