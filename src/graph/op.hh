/**
 * @file
 * Operator taxonomy for the DNN graph IR.
 *
 * The FlashMem load-capacity model (paper Table 5) classifies low-level
 * operators into three behavioural classes:
 *   - Elemental: linear memory access, low arithmetic, tolerate heavy
 *     inline loading (300% threshold).
 *   - Reusable: structured data reuse (Conv/MatMul), tolerate moderate
 *     inline loading (20% threshold) thanks to high arithmetic intensity.
 *   - Hierarchical: staged reductions with synchronization (Softmax,
 *     LayerNorm); no inline loading (0% threshold).
 * We add a fourth internal class, Movement, for pure layout operators
 * (Reshape/Transpose/...) that SmartMem-style planning can eliminate.
 */

#ifndef FLASHMEM_GRAPH_OP_HH
#define FLASHMEM_GRAPH_OP_HH

#include <string>

namespace flashmem::graph {

/** Low-level operator kinds after graph lowering. */
enum class OpKind
{
    // Reusable: multi-dimensional compute with data reuse.
    MatMul,
    Conv2D,
    DepthwiseConv2D,
    AttentionMatMul,    // QK^T and PV batched matmuls
    // Elemental: memory-bound, element-wise or near element-wise.
    Add,
    Mul,
    BiasAdd,
    ReLU,
    GeLU,
    SiLU,
    Sigmoid,
    Tanh,
    Scale,
    Embedding,
    Pooling,
    Upsample,
    RoPE,               // rotary position embedding applied elementwise
    // Hierarchical: staged reductions with intra-kernel synchronization.
    Softmax,
    LayerNorm,
    GroupNorm,
    RMSNorm,
    // Movement: pure layout manipulation.
    Reshape,
    Transpose,
    Concat,
    Split,
    Slice,

    NumKinds,
};

/** Behavioural classes from paper Table 5 (+ Movement, see file docs). */
enum class OpClass
{
    Elemental,
    Reusable,
    Hierarchical,
    Movement,
};

/** Behavioural class of @p kind. */
OpClass opClass(OpKind kind);

/** Stable lowercase mnemonic, e.g. "matmul". */
const char *opKindName(OpKind kind);

/** Human name of an operator class, e.g. "reusable". */
const char *opClassName(OpClass cls);

/** True if the operator kind carries trainable weights. */
bool opUsuallyWeighted(OpKind kind);

/** Parse the mnemonic produced by opKindName(); fatal on unknown names. */
OpKind opKindFromName(const std::string &name);

} // namespace flashmem::graph

#endif // FLASHMEM_GRAPH_OP_HH
