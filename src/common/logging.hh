/**
 * @file
 * Status/error reporting in the gem5 style.
 *
 * fatal() is for user errors (bad configuration); panic() is for internal
 * invariant violations. Both terminate. warn()/inform() never terminate.
 */

#ifndef FLASHMEM_COMMON_LOGGING_HH
#define FLASHMEM_COMMON_LOGGING_HH

#include <cstddef>
#include <sstream>
#include <string>

namespace flashmem {

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent, Error, Warn, Info, Debug };

/**
 * Set the process-wide verbosity. The initial level comes from the
 * FLASHMEM_LOG_LEVEL environment variable
 * (silent|error|warn|info|debug), defaulting to Warn so benches stay
 * clean; this setter overrides it for the rest of the process.
 */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void errorImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Concatenate a parameter pack through an ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Terminate on unrecoverable user error (bad config, invalid argument). */
template <typename... Args>
[[noreturn]] void
fatal(const char *file, int line, Args &&...args)
{
    detail::fatalImpl(file, line, detail::concat(std::forward<Args>(args)...));
}

/** Terminate on internal invariant violation (a FlashMem bug). */
template <typename... Args>
[[noreturn]] void
panic(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line, detail::concat(std::forward<Args>(args)...));
}

/** Non-fatal error report (survivable, but louder than a warning). */
template <typename... Args>
void
error(Args &&...args)
{
    detail::errorImpl(detail::concat(std::forward<Args>(args)...));
}

/** Non-fatal warning about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informational progress message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Verbose diagnostic message, suppressed unless LogLevel::Debug. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

/**
 * Rate limiter for a recurring warning site: the first `limit`
 * invocations warn normally, then a single note that further
 * occurrences are suppressed. Deliberately count-based, never
 * time-based — a wall-clock window would make the warning stream
 * (and anything that parses it) non-deterministic, which the
 * no-wall-clock lint forbids outside bench/. One instance per
 * warning site (typically a function-local static or a member).
 */
class RateLimitedWarn
{
  public:
    explicit RateLimitedWarn(std::size_t limit = 10) : limit_(limit) {}

    template <typename... Args>
    void
    operator()(Args &&...args)
    {
        ++seen_;
        if (seen_ <= limit_)
            warn(std::forward<Args>(args)...);
        else if (seen_ == limit_ + 1)
            warn("(further identical warnings suppressed after ",
                 limit_, " occurrences)");
    }

    /** Total invocations, emitted or not. */
    std::size_t seen() const { return seen_; }
    /** Invocations swallowed past the limit. */
    std::size_t
    suppressed() const
    {
        return seen_ > limit_ ? seen_ - limit_ : 0;
    }

  private:
    std::size_t limit_;
    std::size_t seen_ = 0;
};

} // namespace flashmem

#define FM_FATAL(...) ::flashmem::fatal(__FILE__, __LINE__, __VA_ARGS__)
#define FM_PANIC(...) ::flashmem::panic(__FILE__, __LINE__, __VA_ARGS__)

/** Assert an internal invariant; always active (not tied to NDEBUG). */
#define FM_ASSERT(cond, ...)                                               \
    do {                                                                   \
        if (!(cond))                                                       \
            FM_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__);       \
    } while (0)

#endif // FLASHMEM_COMMON_LOGGING_HH
