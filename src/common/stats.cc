#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace flashmem {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++n;
        }
    }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

void
TimeSeries::record(SimTime time, double value)
{
    if (!points_.empty()) {
        FM_ASSERT(time >= points_.back().time,
                  "TimeSeries samples must be time-ordered");
        // Collapse same-timestamp updates: last write wins.
        if (points_.back().time == time) {
            points_.back().value = value;
            return;
        }
        if (points_.back().value == value)
            return;
    }
    points_.push_back({time, value});
}

double
TimeSeries::peak() const
{
    double p = 0.0;
    for (const auto &pt : points_)
        p = std::max(p, pt.value);
    return p;
}

double
TimeSeries::maxOver(SimTime start, SimTime end) const
{
    double best = valueAt(start);
    for (const auto &pt : points_) {
        if (pt.time > start && pt.time <= end)
            best = std::max(best, pt.value);
    }
    return best;
}

double
TimeSeries::timeWeightedAverage(SimTime start, SimTime end) const
{
    if (points_.empty() || end <= start)
        return 0.0;
    double area = 0.0;
    double current = 0.0;
    SimTime cursor = start;
    for (const auto &pt : points_) {
        if (pt.time <= start) {
            current = pt.value;
            continue;
        }
        if (pt.time >= end)
            break;
        area += current * static_cast<double>(pt.time - cursor);
        cursor = pt.time;
        current = pt.value;
    }
    area += current * static_cast<double>(end - cursor);
    return area / static_cast<double>(end - start);
}

double
TimeSeries::timeWeightedAverage() const
{
    if (points_.size() < 2)
        return points_.empty() ? 0.0 : points_.front().value;
    return timeWeightedAverage(points_.front().time, points_.back().time);
}

double
TimeSeries::valueAt(SimTime time) const
{
    double current = 0.0;
    for (const auto &pt : points_) {
        if (pt.time > time)
            break;
        current = pt.value;
    }
    return current;
}

} // namespace flashmem
