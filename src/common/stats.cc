#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace flashmem {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++n;
        }
    }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

P2Quantile::P2Quantile(double quantile) : p_(quantile)
{
    FM_ASSERT(quantile > 0.0 && quantile < 1.0,
              "quantile must be in (0, 1)");
    rate_[0] = 0.0;
    rate_[1] = p_ / 2.0;
    rate_[2] = p_;
    rate_[3] = (1.0 + p_) / 2.0;
    rate_[4] = 1.0;
}

void
P2Quantile::add(double x)
{
    if (n_ < 5) {
        q_[n_++] = x;
        if (n_ == 5) {
            std::sort(q_, q_ + 5);
            for (int i = 0; i < 5; ++i)
                pos_[i] = static_cast<double>(i + 1);
            desired_[0] = 1.0;
            desired_[1] = 1.0 + 2.0 * p_;
            desired_[2] = 1.0 + 4.0 * p_;
            desired_[3] = 3.0 + 2.0 * p_;
            desired_[4] = 5.0;
        }
        return;
    }
    ++n_;

    // Cell k holds x: markers above it shift right by one.
    int k;
    if (x < q_[0]) {
        q_[0] = x;
        k = 0;
    } else if (x >= q_[4]) {
        q_[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= q_[k + 1])
            ++k;
    }
    for (int i = k + 1; i < 5; ++i)
        pos_[i] += 1.0;
    for (int i = 0; i < 5; ++i)
        desired_[i] += rate_[i];

    // Adjust the three interior markers toward their desired positions
    // with the piecewise-parabolic (P^2) height update, falling back to
    // linear interpolation when the parabola breaks monotonicity.
    for (int i = 1; i <= 3; ++i) {
        double d = desired_[i] - pos_[i];
        if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
            (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
            double s = d >= 0.0 ? 1.0 : -1.0;
            double np = pos_[i + 1], pp = pos_[i - 1], cp = pos_[i];
            double parabolic =
                q_[i] +
                s / (np - pp) *
                    ((cp - pp + s) * (q_[i + 1] - q_[i]) / (np - cp) +
                     (np - cp - s) * (q_[i] - q_[i - 1]) / (cp - pp));
            if (q_[i - 1] < parabolic && parabolic < q_[i + 1]) {
                q_[i] = parabolic;
            } else {
                int j = i + static_cast<int>(s);
                q_[i] += s * (q_[j] - q_[i]) / (pos_[j] - cp);
            }
            pos_[i] += s;
        }
    }
}

double
P2Quantile::value() const
{
    if (n_ == 0)
        return 0.0;
    if (n_ < 5) {
        // Nearest-rank on the stored prefix.
        double sorted[5];
        std::copy(q_, q_ + n_, sorted);
        std::sort(sorted, sorted + n_);
        auto rank = static_cast<std::size_t>(
            std::ceil(p_ * static_cast<double>(n_)));
        rank = std::min(std::max<std::size_t>(rank, 1), n_);
        return sorted[rank - 1];
    }
    return q_[2];
}

void
TimeSeries::record(SimTime time, double value)
{
    if (!points_.empty()) {
        FM_ASSERT(time >= points_.back().time,
                  "TimeSeries samples must be time-ordered");
        // Collapse same-timestamp updates: last write wins.
        if (points_.back().time == time) {
            points_.back().value = value;
            return;
        }
        if (points_.back().value == value)
            return;
    }
    points_.push_back({time, value});
}

double
TimeSeries::peak() const
{
    double p = 0.0;
    for (const auto &pt : points_)
        p = std::max(p, pt.value);
    return p;
}

double
TimeSeries::maxOver(SimTime start, SimTime end) const
{
    double best = valueAt(start);
    for (const auto &pt : points_) {
        if (pt.time > start && pt.time <= end)
            best = std::max(best, pt.value);
    }
    return best;
}

double
TimeSeries::timeWeightedAverage(SimTime start, SimTime end) const
{
    if (points_.empty() || end <= start)
        return 0.0;
    double area = 0.0;
    double current = 0.0;
    SimTime cursor = start;
    for (const auto &pt : points_) {
        if (pt.time <= start) {
            current = pt.value;
            continue;
        }
        if (pt.time >= end)
            break;
        area += current * static_cast<double>(pt.time - cursor);
        cursor = pt.time;
        current = pt.value;
    }
    area += current * static_cast<double>(end - cursor);
    return area / static_cast<double>(end - start);
}

double
TimeSeries::timeWeightedAverage() const
{
    if (points_.size() < 2)
        return points_.empty() ? 0.0 : points_.front().value;
    return timeWeightedAverage(points_.front().time, points_.back().time);
}

double
TimeSeries::valueAt(SimTime time) const
{
    double current = 0.0;
    for (const auto &pt : points_) {
        if (pt.time > time)
            break;
        current = pt.value;
    }
    return current;
}

} // namespace flashmem
