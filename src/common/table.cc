#include "common/table.hh"

#include <algorithm>
#include <sstream>

namespace flashmem {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back({std::move(cells), false});
}

void
Table::addRule()
{
    rows_.push_back({{}, true});
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (row.rule)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto print_rule = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    auto print_cells = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
        }
        os << "|\n";
    };

    print_rule();
    print_cells(headers_);
    print_rule();
    for (const auto &row : rows_) {
        if (row.rule)
            print_rule();
        else
            print_cells(row.cells);
    }
    print_rule();
}

std::string
Table::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

void
printHeading(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n";
}

} // namespace flashmem
