#include "common/thread_pool.hh"

#include <algorithm>

namespace flashmem {

ThreadPool::ThreadPool(int threads)
{
    const int n = std::max(threads, 1);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

std::size_t
ThreadPool::pendingTasks() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size() + inFlight_;
}

int
ThreadPool::defaultThreadCount()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push(std::move(job));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this]() { return stopping_ || !queue_.empty(); });
            // Drain the queue even when stopping: submitted futures
            // must complete.
            if (queue_.empty())
                return;
            job = std::move(queue_.front());
            queue_.pop();
            ++inFlight_;
        }
        // submit() wraps tasks in a packaged_task, which captures the
        // task's exception into its future — the waiter rethrows it on
        // get(). An exception escaping job() anyway (a future_error
        // from the packaged_task itself, or a raw internal job) must
        // not take the worker thread down with std::terminate and
        // strand every queued future: swallow it and keep serving.
        try {
            job();
        } catch (...) {
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --inFlight_;
        }
    }
}

} // namespace flashmem
