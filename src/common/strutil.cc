#include "common/strutil.hh"

#include <cmath>
#include <cstdio>

namespace flashmem {

std::string
formatDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
formatWithCommas(long long v)
{
    std::string digits = std::to_string(v < 0 ? -v : v);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.insert(out.begin(), ',');
        out.insert(out.begin(), *it);
        ++count;
    }
    if (v < 0)
        out.insert(out.begin(), '-');
    return out;
}

std::string
formatBytes(Bytes b)
{
    const double kb = 1024.0;
    auto v = static_cast<double>(b);
    if (v >= kb * kb * kb)
        return formatDouble(v / (kb * kb * kb), 2) + " GB";
    if (v >= kb * kb)
        return formatDouble(v / (kb * kb), 1) + " MB";
    if (v >= kb)
        return formatDouble(v / kb, 1) + " KB";
    return std::to_string(b) + " B";
}

std::string
formatMs(SimTime t)
{
    double ms = toMilliseconds(t);
    if (ms >= 100.0)
        return formatWithCommas(static_cast<long long>(std::llround(ms))) +
               " ms";
    if (ms >= 1.0)
        return formatDouble(ms, 1) + " ms";
    return formatDouble(toMicroseconds(t), 1) + " us";
}

std::string
formatRatio(double r, int decimals)
{
    return formatDouble(r, decimals) + "x";
}

} // namespace flashmem
