/**
 * @file
 * Fundamental value types shared across the FlashMem codebase.
 *
 * Simulation time is kept in integer nanoseconds so event ordering is
 * exact; conversions to human units happen only at reporting boundaries.
 */

#ifndef FLASHMEM_COMMON_TYPES_HH
#define FLASHMEM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace flashmem {

/** Simulated time in nanoseconds. */
using SimTime = std::int64_t;

/** Byte counts. Weights for the large models exceed 4 GiB in aggregate. */
using Bytes = std::uint64_t;

/** Sentinel for "never" / unscheduled events. */
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::max();

/** @name Time-unit constructors. @{ */
constexpr SimTime
nanoseconds(double ns)
{
    return static_cast<SimTime>(ns);
}

constexpr SimTime
microseconds(double us)
{
    return static_cast<SimTime>(us * 1e3);
}

constexpr SimTime
milliseconds(double ms)
{
    return static_cast<SimTime>(ms * 1e6);
}

constexpr SimTime
seconds(double s)
{
    return static_cast<SimTime>(s * 1e9);
}
/** @} */

/** @name Time-unit accessors. @{ */
constexpr double
toMicroseconds(SimTime t)
{
    return static_cast<double>(t) / 1e3;
}

constexpr double
toMilliseconds(SimTime t)
{
    return static_cast<double>(t) / 1e6;
}

constexpr double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / 1e9;
}
/** @} */

/** @name Byte-size constructors. @{ */
constexpr Bytes
kib(double v)
{
    return static_cast<Bytes>(v * 1024.0);
}

constexpr Bytes
mib(double v)
{
    return static_cast<Bytes>(v * 1024.0 * 1024.0);
}

constexpr Bytes
gib(double v)
{
    return static_cast<Bytes>(v * 1024.0 * 1024.0 * 1024.0);
}

constexpr double
toMiB(Bytes b)
{
    return static_cast<double>(b) / (1024.0 * 1024.0);
}

constexpr double
toGiB(Bytes b)
{
    return static_cast<double>(b) / (1024.0 * 1024.0 * 1024.0);
}
/** @} */

/**
 * Bandwidth expressed in bytes per second.
 *
 * Transfer durations are rounded up to the next nanosecond so that a
 * nonzero transfer always advances simulated time.
 */
struct Bandwidth
{
    double bytesPerSecond = 0.0;

    static constexpr Bandwidth
    gbps(double gigabytes_per_second)
    {
        return Bandwidth{gigabytes_per_second * 1e9};
    }

    static constexpr Bandwidth
    mbps(double megabytes_per_second)
    {
        return Bandwidth{megabytes_per_second * 1e6};
    }

    /** Time to move @p bytes at this bandwidth. */
    constexpr SimTime
    transferTime(Bytes bytes) const
    {
        if (bytesPerSecond <= 0.0)
            return kTimeNever;
        double ns = static_cast<double>(bytes) / bytesPerSecond * 1e9;
        auto whole = static_cast<SimTime>(ns);
        return (static_cast<double>(whole) < ns) ? whole + 1 : whole;
    }
};

/** Floating-point precision used by a deployment. */
enum class Precision { FP16, FP32 };

/** Size in bytes of a single scalar element of @p p. */
constexpr Bytes
elementSize(Precision p)
{
    return p == Precision::FP16 ? 2 : 4;
}

} // namespace flashmem

#endif // FLASHMEM_COMMON_TYPES_HH
