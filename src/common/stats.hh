/**
 * @file
 * Lightweight statistics accumulators used by the simulator, profiler and
 * benchmark reporting (mean/min/max/stddev, geometric mean, time-weighted
 * averages for memory traces).
 */

#ifndef FLASHMEM_COMMON_STATS_HH
#define FLASHMEM_COMMON_STATS_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace flashmem {

/** Streaming scalar accumulator (Welford). */
class RunningStat
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Geometric mean of strictly positive values; ignores non-positive. */
double geomean(const std::vector<double> &values);

/**
 * Streaming quantile estimator (the P² algorithm, Jain & Chlamtac,
 * CACM 1985): tracks one quantile of an unbounded observation stream
 * in O(1) memory by maintaining five markers whose heights are
 * adjusted with a piecewise-parabolic fit.
 *
 * Exact for the first five observations (they are kept verbatim);
 * afterwards the estimate converges to the true quantile as the stream
 * grows. Purely arithmetic on the observation sequence, so the
 * estimate is bit-deterministic for a given input order — the property
 * the serving harness's cross-thread-count determinism checks rely on.
 */
class P2Quantile
{
  public:
    /** @param quantile target in (0, 1), e.g. 0.99 for p99. */
    explicit P2Quantile(double quantile);

    void add(double x);

    /** Current estimate; nearest-rank over the stored observations
     * while fewer than five have been seen (0 when empty). */
    double value() const;

    std::size_t count() const { return n_; }
    double quantile() const { return p_; }

  private:
    double p_;
    std::size_t n_ = 0;
    double q_[5] = {};      ///< marker heights
    double pos_[5] = {};    ///< marker positions (1-based counts)
    double desired_[5] = {};///< desired marker positions
    double rate_[5] = {};   ///< desired-position increment per add()
};

/**
 * Step-function time series, e.g. bytes of live memory over simulated
 * time. Samples must be appended in non-decreasing time order.
 */
class TimeSeries
{
  public:
    struct Point
    {
        SimTime time = 0;
        double value = 0.0;
    };

    /** Record that the series holds @p value from @p time onwards. */
    void record(SimTime time, double value);

    bool empty() const { return points_.empty(); }
    const std::vector<Point> &points() const { return points_; }

    /** Largest recorded value. */
    double peak() const;

    /** Largest value in effect anywhere inside [start, end]. */
    double maxOver(SimTime start, SimTime end) const;

    /**
     * Time-weighted average over [start, end]; the series is treated as a
     * right-continuous step function.
     */
    double timeWeightedAverage(SimTime start, SimTime end) const;

    /** Convenience: average over the whole recorded span. */
    double timeWeightedAverage() const;

    /** Value in effect at @p time (0 before the first sample). */
    double valueAt(SimTime time) const;

  private:
    std::vector<Point> points_;
};

} // namespace flashmem

#endif // FLASHMEM_COMMON_STATS_HH
