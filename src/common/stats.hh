/**
 * @file
 * Lightweight statistics accumulators used by the simulator, profiler and
 * benchmark reporting (mean/min/max/stddev, geometric mean, time-weighted
 * averages for memory traces).
 */

#ifndef FLASHMEM_COMMON_STATS_HH
#define FLASHMEM_COMMON_STATS_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace flashmem {

/** Streaming scalar accumulator (Welford). */
class RunningStat
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double variance() const;
    double stddev() const;
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/** Geometric mean of strictly positive values; ignores non-positive. */
double geomean(const std::vector<double> &values);

/**
 * Step-function time series, e.g. bytes of live memory over simulated
 * time. Samples must be appended in non-decreasing time order.
 */
class TimeSeries
{
  public:
    struct Point
    {
        SimTime time;
        double value;
    };

    /** Record that the series holds @p value from @p time onwards. */
    void record(SimTime time, double value);

    bool empty() const { return points_.empty(); }
    const std::vector<Point> &points() const { return points_; }

    /** Largest recorded value. */
    double peak() const;

    /** Largest value in effect anywhere inside [start, end]. */
    double maxOver(SimTime start, SimTime end) const;

    /**
     * Time-weighted average over [start, end]; the series is treated as a
     * right-continuous step function.
     */
    double timeWeightedAverage(SimTime start, SimTime end) const;

    /** Convenience: average over the whole recorded span. */
    double timeWeightedAverage() const;

    /** Value in effect at @p time (0 before the first sample). */
    double valueAt(SimTime time) const;

  private:
    std::vector<Point> points_;
};

} // namespace flashmem

#endif // FLASHMEM_COMMON_STATS_HH
