/**
 * @file
 * String-formatting helpers for reports and logs.
 */

#ifndef FLASHMEM_COMMON_STRUTIL_HH
#define FLASHMEM_COMMON_STRUTIL_HH

#include <string>

#include "common/types.hh"

namespace flashmem {

/** Fixed-point formatting with @p decimals digits after the point. */
std::string formatDouble(double v, int decimals = 2);

/** "1,234" style thousands separators for integer magnitudes. */
std::string formatWithCommas(long long v);

/** Human-readable byte count, e.g. "1.50 GB". */
std::string formatBytes(Bytes b);

/** Milliseconds with adaptive precision, e.g. "3,212 ms". */
std::string formatMs(SimTime t);

/** Speedup/reduction factor, e.g. "8.4x". */
std::string formatRatio(double r, int decimals = 1);

} // namespace flashmem

#endif // FLASHMEM_COMMON_STRUTIL_HH
