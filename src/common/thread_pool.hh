/**
 * @file
 * Reusable fixed-size worker pool: a mutex-protected work queue drained
 * by N threads, with std::future-based result retrieval.
 *
 * Built for the parallel window-planning pipeline in LcOpgPlanner but
 * deliberately generic: submit() accepts any nullary callable and hands
 * back a future for its result. Tasks run in submission order (FIFO
 * pickup), but completion order is up to the scheduler — callers that
 * need deterministic merges should collect futures and consume them in
 * submission order.
 */

#ifndef FLASHMEM_COMMON_THREAD_POOL_HH
#define FLASHMEM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace flashmem {

class ThreadPool
{
  public:
    /**
     * @param threads worker count; values < 1 are clamped to 1.
     * A one-thread pool is still a real pool (queue + worker), so the
     * serial and parallel code paths are identical modulo concurrency.
     */
    explicit ThreadPool(int threads);

    /** Joins all workers; pending tasks are drained first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return static_cast<int>(workers_.size()); }

    /** Tasks accepted but not yet finished (approximate, for tests). */
    std::size_t pendingTasks() const;

    /**
     * Enqueue @p fn; the returned future yields its result (or rethrows
     * its exception). A throwing task never takes a worker down: the
     * exception travels to the waiter through the future, and the
     * worker thread goes on serving the queue.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using R = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        auto future = task->get_future();
        enqueue([task]() { (*task)(); });
        return future;
    }

    /** hardware_concurrency with a floor of 1 (it may report 0). */
    static int defaultThreadCount();

  private:
    void enqueue(std::function<void()> job);
    void workerLoop();

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t inFlight_ = 0; // popped but not yet finished
    bool stopping_ = false;
};

} // namespace flashmem

#endif // FLASHMEM_COMMON_THREAD_POOL_HH
