/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component (profiling noise, workload generators,
 * property tests) draws from an explicitly seeded Rng so that simulation
 * results are bit-reproducible across runs and platforms.
 */

#ifndef FLASHMEM_COMMON_RNG_HH
#define FLASHMEM_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace flashmem {

/**
 * xoshiro256** generator seeded through SplitMix64.
 *
 * Small, fast, and good enough statistically for simulation noise; we
 * deliberately avoid std::mt19937 so streams are identical across
 * standard-library implementations.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        if (hi <= lo)
            return lo;
        auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(next() % span);
    }

    /** Standard-normal draw (Marsaglia polar method). */
    double
    gaussian()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        double m = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * m;
        have_spare_ = true;
        return u * m;
    }

    /** Gaussian with explicit mean / stddev. */
    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    bool have_spare_ = false;
    double spare_ = 0.0;
};

} // namespace flashmem

#endif // FLASHMEM_COMMON_RNG_HH
