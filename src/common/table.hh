/**
 * @file
 * Plain-text table renderer used by the benchmark harnesses to print
 * paper-style tables (Table 1, Table 7, ...) with aligned columns.
 */

#ifndef FLASHMEM_COMMON_TABLE_HH
#define FLASHMEM_COMMON_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace flashmem {

/** Column-aligned ASCII table. */
class Table
{
  public:
    /** Construct with header labels. */
    explicit Table(std::vector<std::string> headers);

    /** Append a full row; pads/truncates to the header width. */
    void addRow(std::vector<std::string> cells);

    /** Append a separator rule between row groups. */
    void addRule();

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render with column alignment to @p os. */
    void print(std::ostream &os) const;

    /** Render to a string (used in tests). */
    std::string toString() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool rule = false;
    };

    std::vector<std::string> headers_;
    std::vector<Row> rows_;
};

/** Print a boxed section title for bench output. */
void printHeading(std::ostream &os, const std::string &title);

} // namespace flashmem

#endif // FLASHMEM_COMMON_TABLE_HH
