#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace flashmem {

namespace {
LogLevel g_level = LogLevel::Warn;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (g_level >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail
} // namespace flashmem
