#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace flashmem {

namespace {

/** FLASHMEM_LOG_LEVEL: silent|error|warn|info|debug (default warn,
 * so benches stay clean); unknown values fall back to warn with a
 * note, so a typo cannot silently mute diagnostics. */
LogLevel
levelFromEnv()
{
    // FMLINT(allow:no-wall-clock) getenv is process config, not time
    const char *env = std::getenv("FLASHMEM_LOG_LEVEL");
    if (!env || !*env)
        return LogLevel::Warn;
    if (!std::strcmp(env, "silent"))
        return LogLevel::Silent;
    if (!std::strcmp(env, "error"))
        return LogLevel::Error;
    if (!std::strcmp(env, "warn"))
        return LogLevel::Warn;
    if (!std::strcmp(env, "info"))
        return LogLevel::Info;
    if (!std::strcmp(env, "debug"))
        return LogLevel::Debug;
    std::fprintf(stderr,
                 "warn: FLASHMEM_LOG_LEVEL='%s' not recognized "
                 "(silent|error|warn|info|debug); using warn\n",
                 env);
    return LogLevel::Warn;
}

/** Function-local static so the env read happens on first use, not
 * at some unspecified static-init point. */
LogLevel &
levelRef()
{
    static LogLevel level = levelFromEnv();
    return level;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    levelRef() = level;
}

LogLevel
logLevel()
{
    return levelRef();
}

namespace detail {

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
errorImpl(const std::string &msg)
{
    if (levelRef() >= LogLevel::Error)
        std::fprintf(stderr, "error: %s\n", msg.c_str());
}

void
warnImpl(const std::string &msg)
{
    if (levelRef() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (levelRef() >= LogLevel::Info)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    if (levelRef() >= LogLevel::Debug)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail
} // namespace flashmem
