/**
 * @file
 * Reporting helpers for the benchmark harnesses: speedup/reduction
 * aggregation with geometric means, trace sampling, and ASCII charts
 * for figure reproductions.
 */

#ifndef FLASHMEM_METRICS_REPORT_HH
#define FLASHMEM_METRICS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace flashmem::metrics {

/** Collects per-model ratios and reports their geometric mean. */
class RatioSummary
{
  public:
    /** Record one ratio (speedup, memory reduction, ...). */
    void add(double ratio);

    std::size_t count() const { return ratios_.size(); }
    double geomean() const;
    double min() const;
    double max() const;

  private:
    std::vector<double> ratios_;
};

/** One sampled point of a memory trace. */
struct TracePoint
{
    double seconds = 0.0;
    double megabytes = 0.0;
};

/** Downsample a byte-valued time series to @p points step samples. */
std::vector<TracePoint> sampleTrace(const TimeSeries &trace, int points);

/**
 * Render one or more labelled series as an ASCII chart (used by the
 * figure benches). All series share the x (seconds) and y (MB) axes.
 */
struct ChartSeries
{
    std::string label;
    char glyph = '*';
    std::vector<TracePoint> points;
};

void renderAsciiChart(std::ostream &os,
                      const std::vector<ChartSeries> &series, int width,
                      int height);

/** One labelled latency-quantile row (milliseconds). */
struct QuantileRow
{
    std::string label;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
};

/**
 * Render per-policy latency quantiles on one shared horizontal axis:
 * each row marks p50 ('5'), p95 ('9'), and p99 ('!') positions scaled
 * to the largest p99 across rows (serving-bench tail comparison).
 */
void renderQuantileChart(std::ostream &os,
                         const std::vector<QuantileRow> &rows,
                         int width);

} // namespace flashmem::metrics

#endif // FLASHMEM_METRICS_REPORT_HH
