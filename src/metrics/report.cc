#include "metrics/report.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace flashmem::metrics {

void
RatioSummary::add(double ratio)
{
    if (ratio > 0.0)
        ratios_.push_back(ratio);
}

double
RatioSummary::geomean() const
{
    return flashmem::geomean(ratios_);
}

double
RatioSummary::min() const
{
    return ratios_.empty()
               ? 0.0
               : *std::min_element(ratios_.begin(), ratios_.end());
}

double
RatioSummary::max() const
{
    return ratios_.empty()
               ? 0.0
               : *std::max_element(ratios_.begin(), ratios_.end());
}

std::vector<TracePoint>
sampleTrace(const TimeSeries &trace, int points)
{
    std::vector<TracePoint> out;
    if (trace.empty() || points <= 1)
        return out;
    SimTime start = trace.points().front().time;
    SimTime end = trace.points().back().time;
    if (end <= start)
        return out;
    out.reserve(points);
    for (int i = 0; i < points; ++i) {
        SimTime t = start + (end - start) *
                                static_cast<SimTime>(i) /
                                (points - 1);
        out.push_back({toSeconds(t), trace.valueAt(t) / (1024.0 *
                                                         1024.0)});
    }
    return out;
}

void
renderAsciiChart(std::ostream &os,
                 const std::vector<ChartSeries> &series, int width,
                 int height)
{
    FM_ASSERT(width > 10 && height > 2, "chart too small");
    double x_max = 0.0, y_max = 0.0;
    for (const auto &s : series) {
        for (const auto &p : s.points) {
            x_max = std::max(x_max, p.seconds);
            y_max = std::max(y_max, p.megabytes);
        }
    }
    if (x_max <= 0.0 || y_max <= 0.0) {
        os << "(empty chart)\n";
        return;
    }

    std::vector<std::string> rows(height, std::string(width, ' '));
    for (const auto &s : series) {
        for (const auto &p : s.points) {
            int x = static_cast<int>(p.seconds / x_max * (width - 1));
            int y = static_cast<int>(p.megabytes / y_max * (height - 1));
            x = std::clamp(x, 0, width - 1);
            y = std::clamp(y, 0, height - 1);
            rows[height - 1 - y][x] = s.glyph;
        }
    }

    os << formatDouble(y_max, 0) << " MB\n";
    for (const auto &row : rows)
        os << "  |" << row << "\n";
    os << "  +" << std::string(width, '-') << "> "
       << formatDouble(x_max, 1) << " s\n";
    for (const auto &s : series)
        os << "   " << s.glyph << " = " << s.label << "\n";
}

void
renderQuantileChart(std::ostream &os,
                    const std::vector<QuantileRow> &rows, int width)
{
    FM_ASSERT(width > 10, "chart too small");
    double max_p99 = 0.0;
    std::size_t label_width = 0;
    for (const auto &r : rows) {
        max_p99 = std::max(max_p99, r.p99Ms);
        label_width = std::max(label_width, r.label.size());
    }
    if (rows.empty() || max_p99 <= 0.0) {
        os << "(empty chart)\n";
        return;
    }
    auto mark = [&](std::string &axis, double ms, char glyph) {
        int x = static_cast<int>(ms / max_p99 *
                                 static_cast<double>(width - 1));
        axis[static_cast<std::size_t>(std::clamp(x, 0, width - 1))] =
            glyph;
    };
    for (const auto &r : rows) {
        std::string axis(width, '-');
        mark(axis, r.p50Ms, '5');
        mark(axis, r.p95Ms, '9');
        mark(axis, r.p99Ms, '!');
        os << "  " << r.label
           << std::string(label_width - r.label.size(), ' ') << " |"
           << axis << "|  p50 " << formatDouble(r.p50Ms, 1)
           << "  p95 " << formatDouble(r.p95Ms, 1) << "  p99 "
           << formatDouble(r.p99Ms, 1) << " ms\n";
    }
    os << "  " << std::string(label_width, ' ') << "  0"
       << std::string(static_cast<std::size_t>(width) - 1, ' ')
       << formatDouble(max_p99, 1) << " ms   (5=p50 9=p95 !=p99)\n";
}

} // namespace flashmem::metrics
