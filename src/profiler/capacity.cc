#include "profiler/capacity.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "profiler/features.hh"

namespace flashmem::profiler {

using graph::OpClass;

double
CapacityThresholds::forClass(OpClass cls) const
{
    switch (cls) {
      case OpClass::Elemental:
        return elemental;
      case OpClass::Reusable:
        return reusable;
      case OpClass::Hierarchical:
        return hierarchical;
      case OpClass::Movement:
        return movement;
    }
    return 0.0;
}

std::int64_t
CapacityProvider::capacityChunks(const gpusim::KernelSpec &spec,
                                 Bytes chunk_bytes) const
{
    FM_ASSERT(chunk_bytes > 0, "chunk size must be positive");
    return static_cast<std::int64_t>(capacityBytes(spec) / chunk_bytes);
}

Bytes
AnalyticCapacityProvider::capacityBytes(
    const gpusim::KernelSpec &spec) const
{
    return model_.loadCapacityBytes(spec,
                                    thresholds_.forClass(spec.cls()));
}

LearnedCapacityProvider::LearnedCapacityProvider(
    const gpusim::KernelModel &model, CapacityThresholds thresholds,
    ProfileParams params)
    : model_(model), thresholds_(thresholds), params_(params),
      gbt_(params.gbt)
{
}

void
LearnedCapacityProvider::profileAndFit(
    const std::vector<const graph::Graph *> &graphs)
{
    std::vector<std::vector<double>> x_train, x_test;
    std::vector<double> y_train, y_test;
    Rng rng(params_.seed);

    for (const auto *g : graphs) {
        FM_ASSERT(g != nullptr, "null graph in profiling set");
        for (const auto &node : g->nodes()) {
            auto spec = gpusim::kernelSpecFor(*g, node.id, true);
            spec.pipelined = true;
            for (double ratio : params_.ratios) {
                auto extra = static_cast<Bytes>(
                    ratio * static_cast<double>(std::max<Bytes>(
                                spec.inputBytes, 1)));
                double truth_ms = toMilliseconds(
                    model_.latencyWithLoad(spec, extra));
                // Simulated on-device measurement with multiplicative
                // noise, as repeated profiling runs would produce.
                double measured =
                    truth_ms *
                    std::max(0.5, rng.gaussian(1.0, params_.noiseStddev));
                auto features = kernelFeatures(spec, ratio);
                // 1-in-5 holdout split for validation.
                if (rng.uniform() < 0.2) {
                    x_test.push_back(std::move(features));
                    y_test.push_back(measured);
                } else {
                    x_train.push_back(std::move(features));
                    y_train.push_back(measured);
                }
            }
        }
    }
    FM_ASSERT(!x_train.empty(), "profiling produced no samples");
    samples_ = x_train.size() + x_test.size();
    gbt_.fit(x_train, y_train);
    holdout_r2_ = x_test.empty() ? 1.0 : gbt_.r2(x_test, y_test);
}

double
LearnedCapacityProvider::predictLatencyMs(const gpusim::KernelSpec &spec,
                                          double extra_ratio) const
{
    FM_ASSERT(gbt_.trained(), "LearnedCapacityProvider used before fit");
    return gbt_.predict(kernelFeatures(spec, extra_ratio));
}

Bytes
LearnedCapacityProvider::capacityBytes(
    const gpusim::KernelSpec &spec) const
{
    double limit = thresholds_.forClass(spec.cls());
    if (limit <= 0.0)
        return 0;
    double base_ms = predictLatencyMs(spec, 0.0);
    double budget_ms = (1.0 + limit) * base_ms;

    // The learned curve is noisy but monotone in expectation; invert by
    // scanning the profiled ratio grid, then refine by bisection.
    double lo = 0.0, hi = 0.0;
    for (double ratio : params_.ratios) {
        if (predictLatencyMs(spec, ratio) <= budget_ms)
            hi = std::max(hi, ratio);
    }
    lo = hi;
    double probe = std::max(hi, 0.5) * 2.0;
    const double max_ratio = 16.0;
    while (probe <= max_ratio &&
           predictLatencyMs(spec, probe) <= budget_ms) {
        lo = probe;
        probe *= 2.0;
    }
    hi = std::min(probe, max_ratio);
    for (int i = 0; i < 24; ++i) {
        double mid = 0.5 * (lo + hi);
        if (predictLatencyMs(spec, mid) <= budget_ms)
            lo = mid;
        else
            hi = mid;
    }
    auto cap = static_cast<Bytes>(
        lo * static_cast<double>(std::max<Bytes>(spec.inputBytes, 1)));
    return std::min<Bytes>(cap, mib(256));
}

} // namespace flashmem::profiler
