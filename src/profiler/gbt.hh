/**
 * @file
 * Gradient-boosted regression trees, from scratch.
 *
 * The paper trains an XGBoost regressor on profiled kernels to predict
 * latency under varying inline-load volume (Section 4.2, Figure 4).
 * This is a dependency-free equivalent: squared-loss gradient boosting
 * over depth-limited CART trees with variance-reduction splits.
 */

#ifndef FLASHMEM_PROFILER_GBT_HH
#define FLASHMEM_PROFILER_GBT_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"

namespace flashmem::profiler {

/** Boosting hyper-parameters. */
struct GbtParams
{
    int trees = 120;
    int maxDepth = 4;
    double learningRate = 0.12;
    int minSamplesLeaf = 3;
    /** Row subsample fraction per tree (stochastic boosting). */
    double subsample = 0.85;
    std::uint64_t seed = 0x5eed;
};

/** Squared-loss gradient-boosted tree ensemble. */
class GbtRegressor
{
  public:
    explicit GbtRegressor(GbtParams params = {}) : params_(params) {}

    /**
     * Fit on a dense feature matrix (row-major samples). All rows must
     * share the same dimensionality.
     */
    void fit(const std::vector<std::vector<double>> &x,
             const std::vector<double> &y);

    /** Predict one sample; fatal if called before fit() or when
     * @p x's dimensionality differs from the training matrix (tree
     * traversal would index out of bounds otherwise). */
    double predict(const std::vector<double> &x) const;

    bool trained() const { return trained_; }
    std::size_t treeCount() const { return trees_.size(); }
    /** Feature dimensionality the ensemble was fitted on. */
    std::size_t featureCount() const { return feature_count_; }

    /** Root-mean-square error over a labelled set; fatal on an empty
     * set, mismatched row/label counts, or ragged rows. */
    double rmse(const std::vector<std::vector<double>> &x,
                const std::vector<double> &y) const;

    /** Coefficient of determination (R^2) over a labelled set; same
     * input validation as rmse(). */
    double r2(const std::vector<std::vector<double>> &x,
              const std::vector<double> &y) const;

  private:
    struct Node
    {
        bool leaf = true;
        int feature = -1;
        double threshold = 0.0;
        double value = 0.0;
        int left = -1;
        int right = -1;
    };

    struct Tree
    {
        std::vector<Node> nodes;
        double predict(const std::vector<double> &x) const;
    };

    /** Recursively grow one CART tree over the given sample indices. */
    int growNode(Tree &tree, const std::vector<std::vector<double>> &x,
                 const std::vector<double> &residual,
                 std::vector<std::size_t> &indices, int depth);

    GbtParams params_;
    bool trained_ = false;
    std::size_t feature_count_ = 0;
    double base_prediction_ = 0.0;
    std::vector<Tree> trees_;
};

} // namespace flashmem::profiler

#endif // FLASHMEM_PROFILER_GBT_HH
