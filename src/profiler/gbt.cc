#include "profiler/gbt.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"

namespace flashmem::profiler {

double
GbtRegressor::Tree::predict(const std::vector<double> &x) const
{
    int idx = 0;
    while (!nodes[idx].leaf) {
        const Node &n = nodes[idx];
        idx = (x[n.feature] <= n.threshold) ? n.left : n.right;
    }
    return nodes[idx].value;
}

int
GbtRegressor::growNode(Tree &tree,
                       const std::vector<std::vector<double>> &x,
                       const std::vector<double> &residual,
                       std::vector<std::size_t> &indices, int depth)
{
    int node_id = static_cast<int>(tree.nodes.size());
    tree.nodes.emplace_back();

    double sum = 0.0;
    for (auto i : indices)
        sum += residual[i];
    double mean = sum / static_cast<double>(indices.size());

    auto make_leaf = [&] {
        tree.nodes[node_id].leaf = true;
        tree.nodes[node_id].value = mean;
        return node_id;
    };

    if (depth >= params_.maxDepth ||
        indices.size() <
            static_cast<std::size_t>(2 * params_.minSamplesLeaf)) {
        return make_leaf();
    }

    // Best variance-reduction split: maximize S_L^2/n_L + S_R^2/n_R.
    const std::size_t dims = x[indices[0]].size();
    int best_feature = -1;
    double best_threshold = 0.0;
    double best_score = sum * sum / static_cast<double>(indices.size());
    bool found = false;

    std::vector<std::size_t> sorted = indices;
    for (std::size_t f = 0; f < dims; ++f) {
        std::sort(sorted.begin(), sorted.end(),
                  [&](std::size_t a, std::size_t b) {
                      return x[a][f] < x[b][f];
                  });
        double left_sum = 0.0;
        for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
            left_sum += residual[sorted[k]];
            // Valid split point only between distinct feature values.
            if (x[sorted[k]][f] == x[sorted[k + 1]][f])
                continue;
            std::size_t n_left = k + 1;
            std::size_t n_right = sorted.size() - n_left;
            if (n_left < static_cast<std::size_t>(params_.minSamplesLeaf) ||
                n_right < static_cast<std::size_t>(params_.minSamplesLeaf))
                continue;
            double right_sum = sum - left_sum;
            double score =
                left_sum * left_sum / static_cast<double>(n_left) +
                right_sum * right_sum / static_cast<double>(n_right);
            if (score > best_score + 1e-12) {
                best_score = score;
                best_feature = static_cast<int>(f);
                best_threshold =
                    0.5 * (x[sorted[k]][f] + x[sorted[k + 1]][f]);
                found = true;
            }
        }
    }

    if (!found)
        return make_leaf();

    std::vector<std::size_t> left_idx, right_idx;
    for (auto i : indices) {
        if (x[i][best_feature] <= best_threshold)
            left_idx.push_back(i);
        else
            right_idx.push_back(i);
    }
    FM_ASSERT(!left_idx.empty() && !right_idx.empty(),
              "degenerate GBT split");

    tree.nodes[node_id].leaf = false;
    tree.nodes[node_id].feature = best_feature;
    tree.nodes[node_id].threshold = best_threshold;
    int left = growNode(tree, x, residual, left_idx, depth + 1);
    int right = growNode(tree, x, residual, right_idx, depth + 1);
    tree.nodes[node_id].left = left;
    tree.nodes[node_id].right = right;
    return node_id;
}

void
GbtRegressor::fit(const std::vector<std::vector<double>> &x,
                  const std::vector<double> &y)
{
    FM_ASSERT(!x.empty() && x.size() == y.size(),
              "GBT fit: bad training set (", x.size(), " rows, ",
              y.size(), " labels)");
    const std::size_t dims = x[0].size();
    FM_ASSERT(dims > 0, "GBT fit: empty feature rows");
    for (const auto &row : x)
        FM_ASSERT(row.size() == dims, "GBT fit: ragged feature matrix");
    feature_count_ = dims;

    trees_.clear();
    base_prediction_ =
        std::accumulate(y.begin(), y.end(), 0.0) /
        static_cast<double>(y.size());

    std::vector<double> current(y.size(), base_prediction_);
    std::vector<double> residual(y.size());
    Rng rng(params_.seed);

    for (int t = 0; t < params_.trees; ++t) {
        for (std::size_t i = 0; i < y.size(); ++i)
            residual[i] = y[i] - current[i];

        // Row subsampling for stochastic boosting.
        std::vector<std::size_t> indices;
        indices.reserve(y.size());
        for (std::size_t i = 0; i < y.size(); ++i) {
            if (params_.subsample >= 1.0 ||
                rng.uniform() < params_.subsample)
                indices.push_back(i);
        }
        if (indices.size() <
            static_cast<std::size_t>(2 * params_.minSamplesLeaf)) {
            indices.resize(y.size());
            std::iota(indices.begin(), indices.end(), 0);
        }

        Tree tree;
        growNode(tree, x, residual, indices, 0);
        for (std::size_t i = 0; i < y.size(); ++i)
            current[i] += params_.learningRate * tree.predict(x[i]);
        trees_.push_back(std::move(tree));
    }
    trained_ = true;
}

double
GbtRegressor::predict(const std::vector<double> &x) const
{
    FM_ASSERT(trained_, "GBT predict before fit");
    FM_ASSERT(x.size() == feature_count_,
              "GBT predict: feature dimension mismatch (got ",
              x.size(), ", trained on ", feature_count_, ")");
    double out = base_prediction_;
    for (const auto &tree : trees_)
        out += params_.learningRate * tree.predict(x);
    return out;
}

double
GbtRegressor::rmse(const std::vector<std::vector<double>> &x,
                   const std::vector<double> &y) const
{
    FM_ASSERT(!x.empty(), "GBT rmse: empty evaluation set");
    FM_ASSERT(x.size() == y.size(), "GBT rmse: ", x.size(), " rows vs ",
              y.size(), " labels");
    double se = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        double d = predict(x[i]) - y[i];
        se += d * d;
    }
    return std::sqrt(se / static_cast<double>(x.size()));
}

double
GbtRegressor::r2(const std::vector<std::vector<double>> &x,
                 const std::vector<double> &y) const
{
    FM_ASSERT(!x.empty(), "GBT r2: empty evaluation set");
    FM_ASSERT(x.size() == y.size(), "GBT r2: ", x.size(), " rows vs ",
              y.size(), " labels");
    double mean =
        std::accumulate(y.begin(), y.end(), 0.0) /
        static_cast<double>(y.size());
    double ss_res = 0.0, ss_tot = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        double d = predict(x[i]) - y[i];
        ss_res += d * d;
        double m = y[i] - mean;
        ss_tot += m * m;
    }
    return ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
}

} // namespace flashmem::profiler
