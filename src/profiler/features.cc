#include "profiler/features.hh"

#include <cmath>

namespace flashmem::profiler {

using graph::OpClass;

const std::vector<std::string> &
kernelFeatureNames()
{
    static const std::vector<std::string> names = {
        "is_elemental", "is_reusable",  "is_hierarchical", "is_movement",
        "log_macs",     "log_bytes",    "log_input_bytes", "log_gws",
        "lws",          "compute_intensity", "uses_texture",
        "pipelined",    "extra_ratio",
    };
    return names;
}

std::vector<double>
kernelFeatures(const gpusim::KernelSpec &spec, double extra_ratio)
{
    auto cls = spec.cls();
    auto log1p_safe = [](double v) { return std::log1p(v); };
    double bytes = static_cast<double>(spec.totalBytes());
    double intensity =
        static_cast<double>(spec.macs) / (bytes > 0 ? bytes : 1.0);

    return {
        cls == OpClass::Elemental ? 1.0 : 0.0,
        cls == OpClass::Reusable ? 1.0 : 0.0,
        cls == OpClass::Hierarchical ? 1.0 : 0.0,
        cls == OpClass::Movement ? 1.0 : 0.0,
        log1p_safe(static_cast<double>(spec.macs)),
        log1p_safe(bytes),
        log1p_safe(static_cast<double>(spec.inputBytes)),
        log1p_safe(static_cast<double>(spec.gwsX) * spec.gwsY),
        static_cast<double>(spec.lwsX * spec.lwsY),
        intensity,
        spec.usesTexture ? 1.0 : 0.0,
        spec.pipelined ? 1.0 : 0.0,
        extra_ratio,
    };
}

const std::vector<std::string> &
graphFeatureNames()
{
    static const std::vector<std::string> names = {
        "log_total_macs",      "log_weight_bytes",
        "log_params",          "log_peak_activation_bytes",
        "log_layers",          "log_weights",
        "compute_intensity",   "log_macs_per_layer",
    };
    return names;
}

std::vector<double>
graphFeatures(const graph::Graph &g)
{
    double macs = static_cast<double>(g.totalMacs());
    double wbytes = static_cast<double>(g.totalWeightBytes());
    double layers = static_cast<double>(g.layerCount());
    return {
        std::log1p(macs),
        std::log1p(wbytes),
        std::log1p(static_cast<double>(g.totalParams())),
        std::log1p(static_cast<double>(g.peakActivationBytes())),
        std::log1p(layers),
        std::log1p(static_cast<double>(g.weightCount())),
        macs / (wbytes > 0 ? wbytes : 1.0),
        std::log1p(macs / (layers > 0 ? layers : 1.0)),
    };
}

} // namespace flashmem::profiler
