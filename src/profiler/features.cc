#include "profiler/features.hh"

#include <cmath>

namespace flashmem::profiler {

using graph::OpClass;

const std::vector<std::string> &
kernelFeatureNames()
{
    static const std::vector<std::string> names = {
        "is_elemental", "is_reusable",  "is_hierarchical", "is_movement",
        "log_macs",     "log_bytes",    "log_input_bytes", "log_gws",
        "lws",          "compute_intensity", "uses_texture",
        "pipelined",    "extra_ratio",
    };
    return names;
}

std::vector<double>
kernelFeatures(const gpusim::KernelSpec &spec, double extra_ratio)
{
    auto cls = spec.cls();
    auto log1p_safe = [](double v) { return std::log1p(v); };
    double bytes = static_cast<double>(spec.totalBytes());
    double intensity =
        static_cast<double>(spec.macs) / (bytes > 0 ? bytes : 1.0);

    return {
        cls == OpClass::Elemental ? 1.0 : 0.0,
        cls == OpClass::Reusable ? 1.0 : 0.0,
        cls == OpClass::Hierarchical ? 1.0 : 0.0,
        cls == OpClass::Movement ? 1.0 : 0.0,
        log1p_safe(static_cast<double>(spec.macs)),
        log1p_safe(bytes),
        log1p_safe(static_cast<double>(spec.inputBytes)),
        log1p_safe(static_cast<double>(spec.gwsX) * spec.gwsY),
        static_cast<double>(spec.lwsX * spec.lwsY),
        intensity,
        spec.usesTexture ? 1.0 : 0.0,
        spec.pipelined ? 1.0 : 0.0,
        extra_ratio,
    };
}

} // namespace flashmem::profiler
