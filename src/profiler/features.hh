/**
 * @file
 * Kernel feature extraction for the latency regressor.
 *
 * Mirrors paper Figure 4's feature set: global/local work size, loop
 * tiling proxy, compute intensity, operator type, plus the extra-load
 * ratio whose response the model must learn.
 */

#ifndef FLASHMEM_PROFILER_FEATURES_HH
#define FLASHMEM_PROFILER_FEATURES_HH

#include <string>
#include <vector>

#include "gpusim/kernel.hh"

namespace flashmem::profiler {

/** Names of the feature columns, aligned with kernelFeatures(). */
const std::vector<std::string> &kernelFeatureNames();

/**
 * Build the feature row for @p spec streaming @p extra_ratio times its
 * input bytes inline.
 */
std::vector<double> kernelFeatures(const gpusim::KernelSpec &spec,
                                   double extra_ratio);

} // namespace flashmem::profiler

#endif // FLASHMEM_PROFILER_FEATURES_HH
