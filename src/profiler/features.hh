/**
 * @file
 * Kernel feature extraction for the latency regressor.
 *
 * Mirrors paper Figure 4's feature set: global/local work size, loop
 * tiling proxy, compute intensity, operator type, plus the extra-load
 * ratio whose response the model must learn.
 */

#ifndef FLASHMEM_PROFILER_FEATURES_HH
#define FLASHMEM_PROFILER_FEATURES_HH

#include <string>
#include <vector>

#include "graph/graph.hh"
#include "gpusim/kernel.hh"

namespace flashmem::profiler {

/** Names of the feature columns, aligned with kernelFeatures(). */
const std::vector<std::string> &kernelFeatureNames();

/**
 * Build the feature row for @p spec streaming @p extra_ratio times its
 * input bytes inline.
 */
std::vector<double> kernelFeatures(const gpusim::KernelSpec &spec,
                                   double extra_ratio);

/** Names of the feature columns, aligned with graphFeatures(). */
const std::vector<std::string> &graphFeatureNames();

/**
 * Model-level feature row from whole-graph aggregates — the inputs of
 * the cold-model service-time predictor (serving/admission.hh).
 * Everything here is derivable from the graph alone, before any
 * planning or execution: that is the point — calibration requires a
 * compile + execute per model, while these features exist the moment
 * a new model ships.
 */
std::vector<double> graphFeatures(const graph::Graph &g);

} // namespace flashmem::profiler

#endif // FLASHMEM_PROFILER_FEATURES_HH
