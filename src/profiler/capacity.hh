/**
 * @file
 * Load-capacity modeling (paper Section 4.2).
 *
 * Per-layer load capacity C_l is the number of weight chunks a layer can
 * transform inline without exceeding its class's latency-increase
 * threshold: 0% for hierarchical, 20% for reusable, 300% for elemental
 * operators. Two providers implement the query:
 *
 *  - AnalyticCapacityProvider inverts the simulator's kernel model
 *    directly (ground truth).
 *  - LearnedCapacityProvider follows the paper: profile kernels under
 *    varying inline loads (noisy measurements), train the GBT latency
 *    regressor, and invert its predictions.
 */

#ifndef FLASHMEM_PROFILER_CAPACITY_HH
#define FLASHMEM_PROFILER_CAPACITY_HH

#include <vector>

#include "gpusim/kernel.hh"
#include "profiler/gbt.hh"

namespace flashmem::profiler {

/** Class thresholds (latency-increase limits) from paper Section 4.2. */
struct CapacityThresholds
{
    double elemental = 3.0;     ///< 300%
    double reusable = 0.2;      ///< 20%
    double hierarchical = 0.0;  ///< no inline loading
    double movement = 0.5;      ///< layout ops tolerate modest streams

    double forClass(graph::OpClass cls) const;
};

/** Interface the OPG planner queries for per-layer capacities. */
class CapacityProvider
{
  public:
    virtual ~CapacityProvider() = default;

    /** Max inline-load bytes for this dispatch within its threshold. */
    virtual Bytes capacityBytes(const gpusim::KernelSpec &spec) const = 0;

    /** Capacity in whole chunks of @p chunk_bytes. */
    std::int64_t capacityChunks(const gpusim::KernelSpec &spec,
                                Bytes chunk_bytes) const;
};

/** Ground-truth provider: inverts the simulator's kernel model. */
class AnalyticCapacityProvider : public CapacityProvider
{
  public:
    AnalyticCapacityProvider(const gpusim::KernelModel &model,
                             CapacityThresholds thresholds = {})
        : model_(model), thresholds_(thresholds)
    {}

    Bytes capacityBytes(const gpusim::KernelSpec &spec) const override;

  private:
    const gpusim::KernelModel &model_;
    CapacityThresholds thresholds_;
};

/** Profiling configuration for the learned provider. */
struct ProfileParams
{
    /** Extra-load ratios sampled per kernel (Figure 2's x-axis). */
    std::vector<double> ratios = {0.0,  0.25, 0.5, 0.75, 1.0,
                                  1.25, 1.5,  2.0, 3.0};
    /** Multiplicative gaussian measurement noise (sigma). */
    double noiseStddev = 0.03;
    std::uint64_t seed = 0xCAFE;
    GbtParams gbt;
};

/**
 * Paper-faithful provider: samples simulated measurements across many
 * kernels, fits the GBT, inverts predictions for capacity queries.
 */
class LearnedCapacityProvider : public CapacityProvider
{
  public:
    LearnedCapacityProvider(const gpusim::KernelModel &model,
                            CapacityThresholds thresholds = {},
                            ProfileParams params = {});

    /** Profile every dispatch of @p graphs and fit the regressor. */
    void profileAndFit(const std::vector<const graph::Graph *> &graphs);

    /** Predicted latency (ms) at a given extra-load ratio. */
    double predictLatencyMs(const gpusim::KernelSpec &spec,
                            double extra_ratio) const;

    Bytes capacityBytes(const gpusim::KernelSpec &spec) const override;

    bool trained() const { return gbt_.trained(); }
    const GbtRegressor &regressor() const { return gbt_; }
    std::size_t sampleCount() const { return samples_; }

    /** Held-out accuracy of the fitted model (R^2). */
    double holdoutR2() const { return holdout_r2_; }

  private:
    const gpusim::KernelModel &model_;
    CapacityThresholds thresholds_;
    ProfileParams params_;
    GbtRegressor gbt_;
    std::size_t samples_ = 0;
    double holdout_r2_ = 0.0;
};

} // namespace flashmem::profiler

#endif // FLASHMEM_PROFILER_CAPACITY_HH
