/**
 * @file
 * ResNet-50 with inference-folded batch normalization (conv + ReLU at the
 * lowered level), bottleneck blocks [3, 4, 6, 3].
 */

#include "models/model_zoo.hh"

#include "models/blocks.hh"

namespace flashmem::models {

namespace {

NodeId
bottleneck(GraphBuilder &b, NodeId x, std::int64_t mid, std::int64_t out,
           int stride, bool downsample, const std::string &prefix)
{
    auto h = b.conv2d(x, mid, 1, 1, 0, prefix + ".conv1", false);
    h = b.activation(h, OpKind::ReLU, prefix + ".relu1");
    h = b.conv2d(h, mid, 3, stride, 1, prefix + ".conv2", false);
    h = b.activation(h, OpKind::ReLU, prefix + ".relu2");
    h = b.conv2d(h, out, 1, 1, 0, prefix + ".conv3", false);

    NodeId skip = x;
    if (downsample)
        skip = b.conv2d(x, out, 1, stride, 0, prefix + ".down", false);
    auto sum = b.add(skip, h, prefix + ".add");
    return b.activation(sum, OpKind::ReLU, prefix + ".relu3");
}

} // namespace

graph::Graph
buildResNet50(Precision precision)
{
    GraphBuilder b("resnet50", precision);
    auto x = b.input({1, 3, 224, 224});
    x = b.conv2d(x, 64, 7, 2, 3, "stem.conv", false);
    x = b.activation(x, OpKind::ReLU, "stem.relu");
    x = b.pooling(x, 3, 2, "stem.maxpool");

    const int stage_blocks[4] = {3, 4, 6, 3};
    const std::int64_t mids[4] = {64, 128, 256, 512};
    for (int s = 0; s < 4; ++s) {
        for (int i = 0; i < stage_blocks[s]; ++i) {
            bool first = (i == 0);
            int stride = (first && s > 0) ? 2 : 1;
            x = bottleneck(b, x, mids[s], mids[s] * 4, stride, first,
                           "layer" + std::to_string(s + 1) + "." +
                               std::to_string(i));
        }
    }

    x = b.pooling(x, 7, 7, "avgpool");
    x = b.reshape(x, {1, 2048}, "flatten");
    x = b.matmul(x, 1000, "fc");
    x = b.softmax(x, "prob");
    shapeOps(b, x, 17, "tail_shape");
    return b.build();
}

} // namespace flashmem::models
