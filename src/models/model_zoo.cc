#include "models/model_zoo.hh"

#include "common/logging.hh"

namespace flashmem::models {

const std::vector<ModelSpec> &
modelZoo()
{
    static const std::vector<ModelSpec> specs = {
        {ModelId::GPTNeoS, "GPTN-S", "Text", "NLP", 164, 16, 606},
        {ModelId::GPTNeo1_3B, "GPTN-1.3B", "Text", "NLP", 1419, 170,
         1110},
        {ModelId::GPTNeo2_7B, "GPTN-2.7B", "Text", "NLP", 2781, 342,
         1446},
        {ModelId::ResNet50, "ResNet50", "Image", "Classification", 25.6,
         4.1, 141},
        {ModelId::SAM2, "SAM-2", "Image", "Segmentation", 215, 218,
         1668},
        {ModelId::ViT, "ViT", "Image", "Classification", 103, 21, 819},
        {ModelId::DeepViT, "DeepViT", "Image", "Classification", 204, 42,
         1395},
        {ModelId::SDUNet, "SD-UNet", "Image", "Generation", 860, 78,
         1271},
        {ModelId::WhisperMedium, "Whisper-M", "Audio",
         "Speech Recognition", 356, 55, 2026},
        {ModelId::DepthAnythingS, "DepthA-S", "Video", "Segmentation",
         24.3, 14, 1108},
        {ModelId::DepthAnythingL, "DepthA-L", "Video", "Segmentation",
         333, 180, 2007},
    };
    return specs;
}

const ModelSpec &
modelSpec(ModelId id)
{
    for (const auto &spec : modelZoo()) {
        if (spec.id == id)
            return spec;
    }
    FM_PANIC("modelSpec: unknown model id");
}

ModelId
modelIdFromAbbr(const std::string &abbr)
{
    for (const auto &spec : modelZoo()) {
        if (spec.abbr == abbr)
            return spec.id;
    }
    FM_FATAL("unknown model abbreviation '", abbr, "'");
}

graph::Graph
buildModel(ModelId id, Precision precision)
{
    switch (id) {
      case ModelId::GPTNeoS: {
        GptNeoCfg cfg;
        cfg.blocks = 12;
        cfg.dModel = 768;
        cfg.heads = 12;
        cfg.shapeOpsPerBlock = 24;
        cfg.name = "gptneo_s";
        return buildGptNeo(cfg, precision);
      }
      case ModelId::GPTNeo1_3B: {
        GptNeoCfg cfg;
        cfg.blocks = 24;
        cfg.dModel = 2048;
        cfg.heads = 16;
        cfg.shapeOpsPerBlock = 20;
        cfg.name = "gptneo_1p3b";
        return buildGptNeo(cfg, precision);
      }
      case ModelId::GPTNeo2_7B: {
        GptNeoCfg cfg;
        cfg.blocks = 32;
        cfg.dModel = 2560;
        cfg.heads = 20;
        cfg.shapeOpsPerBlock = 19;
        cfg.name = "gptneo_2p7b";
        return buildGptNeo(cfg, precision);
      }
      case ModelId::ResNet50:
        return buildResNet50(precision);
      case ModelId::SAM2:
        return buildSAM2(precision);
      case ModelId::ViT:
        return buildViT(precision);
      case ModelId::DeepViT:
        return buildDeepViT(precision);
      case ModelId::SDUNet:
        return buildSDUNet(precision);
      case ModelId::WhisperMedium:
        return buildWhisperMedium(precision);
      case ModelId::DepthAnythingS:
        return buildDepthAnything(false, precision);
      case ModelId::DepthAnythingL:
        return buildDepthAnything(true, precision);
    }
    FM_PANIC("buildModel: unknown model id");
}

} // namespace flashmem::models
