/**
 * @file
 * Stable-Diffusion UNet (860M-parameter class) at 32x32 latent
 * resolution: residual blocks with group norm, spatial transformers with
 * self + text cross-attention, down/up sampling path with skips.
 */

#include "models/model_zoo.hh"

#include "models/blocks.hh"

namespace flashmem::models {

namespace {

constexpr std::int64_t kContextTokens = 77;  // CLIP text tokens
constexpr std::int64_t kContextDim = 768;

/** SD spatial transformer: self-attn + cross-attn + GEGLU FFN. */
NodeId
spatialTransformer(GraphBuilder &b, NodeId x, NodeId context,
                   std::int64_t channels, std::int64_t tokens,
                   const std::string &prefix)
{
    auto h = b.groupNorm(x, prefix + ".gn");
    h = b.conv2d(h, channels, 1, 1, 0, prefix + ".proj_in", false);
    std::int64_t side = b.shapeOf(h).dim(2);
    auto seq = b.reshape(h, {tokens, channels}, prefix + ".to_seq");

    // Self-attention.
    AttentionCfg self_cfg;
    self_cfg.dModel = channels;
    self_cfg.heads = 8;
    self_cfg.tokens = tokens;
    auto norm1 = b.layerNorm(seq, prefix + ".ln1");
    auto sa = attention(b, norm1, graph::kInvalidNode, self_cfg,
                        prefix + ".self");
    seq = b.add(seq, sa, prefix + ".res1");

    // Cross-attention against the text context.
    AttentionCfg cross_cfg = self_cfg;
    cross_cfg.kvTokens = kContextTokens;
    auto norm2 = b.layerNorm(seq, prefix + ".ln2");
    auto ca = attention(b, norm2, context, cross_cfg, prefix + ".cross");
    seq = b.add(seq, ca, prefix + ".res2");

    // GEGLU feed-forward.
    auto norm3 = b.layerNorm(seq, prefix + ".ln3");
    auto gate = b.matmul(norm3, channels * 4, prefix + ".ff_gate", false);
    gate = b.activation(gate, OpKind::GeLU, prefix + ".ff_act");
    auto up = b.matmul(norm3, channels * 4, prefix + ".ff_up", false);
    auto ff = b.mul(gate, up, prefix + ".ff_mul");
    ff = b.matmul(ff, channels, prefix + ".ff_down");
    seq = b.add(seq, ff, prefix + ".res3");
    shapeOps(b, seq, 16, prefix + ".shape");

    auto map = b.reshape(seq, {1, channels, side, side},
                         prefix + ".to_map");
    map = b.conv2d(map, channels, 1, 1, 0, prefix + ".proj_out", false);
    return b.add(x, map, prefix + ".res_out");
}

} // namespace

graph::Graph
buildSDUNet(Precision precision)
{
    GraphBuilder b("sd_unet", precision);
    const std::int64_t latent = 32;
    const std::int64_t ch[4] = {320, 640, 1280, 1280};
    const std::int64_t sides[4] = {latent, latent / 2, latent / 4,
                                   latent / 8};

    // Text conditioning enters as a precomputed CLIP embedding.
    auto context = b.input({kContextTokens, kContextDim}, "text_context");
    auto z = b.input({1, 4, latent, latent}, "latent");
    auto x = b.conv2d(z, ch[0], 3, 1, 1, "conv_in");

    std::vector<NodeId> skips;
    skips.push_back(x);
    // Down path: 2 res blocks (+ transformer in first 3 levels), then
    // stride-2 conv downsample.
    for (int lvl = 0; lvl < 4; ++lvl) {
        std::string p = "down." + std::to_string(lvl);
        for (int i = 0; i < 2; ++i) {
            x = sdResBlock(b, x, ch[lvl],
                           p + ".res" + std::to_string(i));
            if (lvl < 3) {
                x = spatialTransformer(b, x, context, ch[lvl],
                                       sides[lvl] * sides[lvl],
                                       p + ".attn" + std::to_string(i));
            }
            skips.push_back(x);
        }
        if (lvl < 3) {
            x = b.conv2d(x, ch[lvl], 3, 2, 1, p + ".downsample");
            skips.push_back(x);
        }
    }

    // Middle: res + transformer + res at the bottleneck resolution.
    x = sdResBlock(b, x, ch[3], "mid.res0");
    x = spatialTransformer(b, x, context, ch[3], sides[3] * sides[3],
                           "mid.attn");
    x = sdResBlock(b, x, ch[3], "mid.res1");

    // Up path: 3 res blocks per level with skip concats (+ transformer),
    // then upsample.
    for (int lvl = 3; lvl >= 0; --lvl) {
        std::string p = "up." + std::to_string(lvl);
        for (int i = 0; i < 3; ++i) {
            NodeId skip = skips.back();
            skips.pop_back();
            std::int64_t side = b.shapeOf(x).dim(2);
            std::int64_t skip_ch = b.shapeOf(skip).dim(1);
            auto cat = b.concat({x, skip},
                                {1, b.shapeOf(x).dim(1) + skip_ch, side,
                                 side},
                                p + ".cat" + std::to_string(i));
            x = sdResBlock(b, cat, ch[lvl],
                           p + ".res" + std::to_string(i));
            if (lvl < 3) {
                x = spatialTransformer(b, x, context, ch[lvl],
                                       side * side,
                                       p + ".attn" + std::to_string(i));
            }
        }
        if (lvl > 0)
            x = b.upsample(x, 2, p + ".upsample");
    }

    x = b.groupNorm(x, "out.gn");
    x = b.activation(x, OpKind::SiLU, "out.silu");
    x = b.conv2d(x, 4, 3, 1, 1, "conv_out");
    shapeOps(b, x, 17, "tail_shape");
    return b.build();
}

} // namespace flashmem::models
