/**
 * @file
 * The evaluated model zoo (paper Table 6) plus synthetic solver-stress
 * models (paper Table 4).
 *
 * Each builder reconstructs the published architecture at the lowered
 * operator level with synthetic weights, matching the paper's parameter
 * counts, MAC counts, and layer (lowered-node) counts.
 */

#ifndef FLASHMEM_MODELS_MODEL_ZOO_HH
#define FLASHMEM_MODELS_MODEL_ZOO_HH

#include <string>
#include <vector>

#include "graph/graph.hh"

namespace flashmem::models {

/** The 11 evaluated models of paper Table 6. */
enum class ModelId
{
    GPTNeoS,
    GPTNeo1_3B,
    GPTNeo2_7B,
    ResNet50,
    SAM2,
    ViT,
    DeepViT,
    SDUNet,
    WhisperMedium,
    DepthAnythingS,
    DepthAnythingL,
};

/** Published characteristics from paper Table 6. */
struct ModelSpec
{
    ModelId id{};
    std::string abbr;       ///< e.g. "GPTN-1.3B"
    std::string inputType;  ///< Text / Image / Audio / Video
    std::string task;
    double paperParamsM = 0.0;  ///< parameters in millions
    double paperMacsG = 0.0;    ///< multiply-accumulates in billions
    int paperLayers = 0;        ///< lowered operator nodes
};

/** All Table-6 entries in paper order. */
const std::vector<ModelSpec> &modelZoo();

/** Spec for one model. */
const ModelSpec &modelSpec(ModelId id);

/** Lookup by the paper's abbreviation column; fatal on unknown name. */
ModelId modelIdFromAbbr(const std::string &abbr);

/** Build the lowered graph for @p id. */
graph::Graph buildModel(ModelId id,
                        Precision precision = Precision::FP16);

/** @name Individual architecture builders. @{ */

/** GPT-Neo decoder-only LM configuration. */
struct GptNeoCfg
{
    int blocks = 12;
    std::int64_t dModel = 768;
    std::int64_t heads = 12;
    std::int64_t seq = 128;
    std::int64_t vocab = 50257;
    int shapeOpsPerBlock = 24;
    std::string name = "gptneo";
};
graph::Graph buildGptNeo(const GptNeoCfg &cfg, Precision precision);

graph::Graph buildResNet50(Precision precision);
graph::Graph buildViT(Precision precision);
graph::Graph buildDeepViT(Precision precision);
graph::Graph buildSAM2(Precision precision);
graph::Graph buildSDUNet(Precision precision);
graph::Graph buildWhisperMedium(Precision precision);
graph::Graph buildDepthAnything(bool large, Precision precision);

/**
 * Synthetic decoder-only transformer used for the solver-runtime study
 * (paper Table 4: ViT-8B, Llama2-13B, Llama2-70B).
 */
struct SyntheticTransformerCfg
{
    std::string name = "synthetic";
    int blocks = 32;
    std::int64_t dModel = 4096;
    std::int64_t heads = 32;
    std::int64_t seq = 128;
    std::int64_t vocab = 32000;
    std::int64_t ffnHidden = 0;    ///< 0 = 4 * dModel
    std::int64_t kvDim = 0;        ///< grouped-query attention width
    bool llamaStyle = false;       ///< RMSNorm + gated FFN
    int shapeOpsPerBlock = 12;
};
graph::Graph buildSyntheticTransformer(const SyntheticTransformerCfg &cfg,
                                       Precision precision);
/** @} */

} // namespace flashmem::models

#endif // FLASHMEM_MODELS_MODEL_ZOO_HH
