/**
 * @file
 * Synthetic large transformers for the solver-runtime study (paper
 * Table 4): ViT-8B and Llama2-13B / 70B. Only the graph structure and
 * weight sizing matter for LC-OPG scheduling, not trained weights.
 */

#include "models/model_zoo.hh"

#include "models/blocks.hh"

namespace flashmem::models {

graph::Graph
buildSyntheticTransformer(const SyntheticTransformerCfg &cfg,
                          Precision precision)
{
    GraphBuilder b(cfg.name, precision);

    auto x = b.embedding(cfg.seq, cfg.vocab, cfg.dModel, "tok_embed");
    shapeOps(b, x, 4, "stem_shape");

    TransformerBlockCfg blk;
    blk.attn.dModel = cfg.dModel;
    blk.attn.heads = cfg.heads;
    blk.attn.tokens = cfg.seq;
    blk.attn.causalMask = true;
    blk.attn.kvDim = cfg.kvDim;
    blk.ffnHidden = cfg.ffnHidden;
    blk.useRmsNorm = cfg.llamaStyle;
    blk.gatedFfn = cfg.llamaStyle;
    blk.ffnActivation = cfg.llamaStyle ? OpKind::SiLU : OpKind::GeLU;
    blk.shapeOps = cfg.shapeOpsPerBlock;

    for (int i = 0; i < cfg.blocks; ++i)
        x = transformerBlock(b, x, blk, "h." + std::to_string(i));

    x = cfg.llamaStyle ? b.rmsNorm(x, "ln_f") : b.layerNorm(x, "ln_f");
    b.matmul(x, cfg.vocab, "lm_head", false);
    return b.build();
}

} // namespace flashmem::models
