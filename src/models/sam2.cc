/**
 * @file
 * Segment-Anything-2 (SAM-2) image path: Hiera-L hierarchical encoder
 * with windowed attention in the early high-resolution stages, plus a
 * lightweight mask decoder.
 *
 * Input 512x512, patch stride 4; stages [2, 6, 36, 4] blocks at channels
 * [144, 288, 576, 1152] with 2x token pooling between stages.
 */

#include "models/model_zoo.hh"

#include "models/blocks.hh"

namespace flashmem::models {

graph::Graph
buildSAM2(Precision precision)
{
    GraphBuilder b("sam2", precision);

    const int stage_blocks[4] = {2, 6, 36, 4};
    const std::int64_t channels[4] = {144, 288, 576, 1152};
    const std::int64_t heads[4] = {2, 4, 8, 16};
    // 512/4 = 128 tokens per side at stage 1, halved per stage.
    const std::int64_t side[4] = {128, 64, 32, 16};
    // Hiera windowed attention in the high-resolution stages (stage 3
    // interleaves windowed and global blocks; modeled as a 256-token
    // effective window); full global attention only in stage 4.
    const std::int64_t window[4] = {64, 64, 256, 0};

    auto img = b.input({1, 3, 512, 512});
    auto x = b.conv2d(img, channels[0], 7, 4, 3, "patch_embed");
    NodeId seq = b.reshape(x, {side[0] * side[0], channels[0]},
                           "patch_flatten");
    seq = b.biasAdd(seq, "pos_embed");
    shapeOps(b, seq, 6, "stem_shape");

    for (int s = 0; s < 4; ++s) {
        if (s > 0) {
            // Token pooling + channel expansion between stages.
            seq = b.reshape(seq, {1, channels[s - 1], side[s - 1],
                                  side[s - 1]},
                            "stage" + std::to_string(s) + ".to_map");
            seq = b.pooling(seq, 2, 2, "stage" + std::to_string(s) +
                                           ".pool");
            seq = b.conv2d(seq, channels[s], 1, 1, 0,
                           "stage" + std::to_string(s) + ".proj", false);
            seq = b.reshape(seq, {side[s] * side[s], channels[s]},
                            "stage" + std::to_string(s) + ".to_seq");
        }
        TransformerBlockCfg blk;
        blk.attn.dModel = channels[s];
        blk.attn.heads = heads[s];
        blk.attn.tokens = side[s] * side[s];
        blk.attn.windowTokens = window[s];
        blk.ffnMult = 4;
        blk.shapeOps = 11;
        for (int i = 0; i < stage_blocks[s]; ++i) {
            seq = transformerBlock(b, seq, blk,
                                   "stage" + std::to_string(s) + ".blk." +
                                       std::to_string(i));
        }
    }

    // Mask decoder: two-way attention distilled to projections + upsample
    // convolutions producing mask logits.
    auto dec = b.matmul(seq, 256, "decoder.proj");
    dec = b.layerNorm(dec, "decoder.ln");
    dec = b.reshape(dec, {1, 256, 16, 16}, "decoder.to_map");
    dec = b.upsample(dec, 2, "decoder.up1");
    dec = b.conv2d(dec, 128, 3, 1, 1, "decoder.conv1");
    dec = b.activation(dec, OpKind::GeLU, "decoder.act1");
    dec = b.upsample(dec, 2, "decoder.up2");
    dec = b.conv2d(dec, 64, 3, 1, 1, "decoder.conv2");
    dec = b.activation(dec, OpKind::GeLU, "decoder.act2");
    dec = b.conv2d(dec, 1, 1, 1, 0, "decoder.mask_head", false);
    dec = b.activation(dec, OpKind::Sigmoid, "decoder.prob");
    shapeOps(b, dec, 7, "decoder_shape");
    return b.build();
}

} // namespace flashmem::models
