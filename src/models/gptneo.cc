/**
 * @file
 * GPT-Neo decoder-only language models (125M-class "small", 1.3B, 2.7B).
 *
 * Architecture follows EleutherAI GPT-Neo: learned token + position
 * embeddings, pre-norm blocks with causal self-attention and 4x GeLU
 * FFN, untied LM head (which is why the "small" model counts 164M
 * parameters rather than 125M).
 */

#include "models/model_zoo.hh"

#include "models/blocks.hh"

namespace flashmem::models {

graph::Graph
buildGptNeo(const GptNeoCfg &cfg, Precision precision)
{
    GraphBuilder b(cfg.name, precision);

    auto tok = b.embedding(cfg.seq, cfg.vocab, cfg.dModel, "wte");
    auto pos = b.embedding(cfg.seq, 2048, cfg.dModel, "wpe");
    auto x = b.add(tok, pos, "embed_add");

    TransformerBlockCfg blk;
    blk.attn.dModel = cfg.dModel;
    blk.attn.heads = cfg.heads;
    blk.attn.tokens = cfg.seq;
    blk.attn.causalMask = true;
    blk.ffnMult = 4;
    blk.ffnActivation = OpKind::GeLU;
    blk.shapeOps = cfg.shapeOpsPerBlock;

    for (int i = 0; i < cfg.blocks; ++i)
        x = transformerBlock(b, x, blk, "h." + std::to_string(i));

    x = b.layerNorm(x, "ln_f");
    x = b.matmul(x, cfg.vocab, "lm_head", false);
    shapeOps(b, x, 1, "head_shape");
    return b.build();
}

} // namespace flashmem::models
