/**
 * @file
 * DepthAnything (small / large): DINOv2 ViT backbone plus a DPT-style
 * dense prediction head with four reassemble + fusion stages.
 */

#include "models/model_zoo.hh"

#include "models/blocks.hh"

namespace flashmem::models {

namespace {

struct DepthCfg
{
    std::string name;
    std::int64_t dModel;
    std::int64_t heads;
    int blocks;
    std::int64_t patchSide;  ///< tokens per side
    std::int64_t headCh;     ///< DPT fusion channel width
    int shapeOpsPerBlock;
    int headShapeOps;
};

/** DPT reassemble: project tokens to a spatial map at one scale. */
NodeId
reassemble(GraphBuilder &b, NodeId tokens_node, const DepthCfg &cfg,
           std::int64_t out_ch, int upsample_factor,
           const std::string &prefix)
{
    auto t = b.matmul(tokens_node, out_ch, prefix + ".proj", false);
    auto map = b.reshape(t, {1, out_ch, cfg.patchSide, cfg.patchSide},
                         prefix + ".to_map");
    if (upsample_factor > 1)
        map = b.upsample(map, upsample_factor, prefix + ".up");
    map = b.conv2d(map, cfg.headCh, 3, 1, 1, prefix + ".fuse_conv", false);
    return map;
}

/** DPT fusion block: residual conv unit + merge (+ optional upsample). */
NodeId
fusionBlock(GraphBuilder &b, NodeId x, NodeId lateral, bool upsample,
            const std::string &prefix)
{
    auto h = b.activation(x, OpKind::ReLU, prefix + ".relu1");
    h = b.conv2d(h, b.shapeOf(x).dim(1), 3, 1, 1, prefix + ".conv1");
    h = b.activation(h, OpKind::ReLU, prefix + ".relu2");
    h = b.conv2d(h, b.shapeOf(x).dim(1), 3, 1, 1, prefix + ".conv2");
    auto merged = b.add(h, lateral, prefix + ".merge");
    return upsample ? b.upsample(merged, 2, prefix + ".up") : merged;
}

graph::Graph
buildDepthFamily(const DepthCfg &cfg, Precision precision)
{
    GraphBuilder b(cfg.name, precision);
    const std::int64_t img_side = cfg.patchSide * 14;
    const std::int64_t tokens = cfg.patchSide * cfg.patchSide + 1;

    auto img = b.input({1, 3, img_side, img_side});
    auto patches = b.conv2d(img, cfg.dModel, 14, 14, 0, "patch_embed");
    auto seq = b.reshape(patches,
                         {cfg.patchSide * cfg.patchSide, cfg.dModel},
                         "patch_flatten");
    seq = b.concat({seq}, {tokens, cfg.dModel}, "cls_concat");
    seq = b.biasAdd(seq, "pos_embed");
    shapeOps(b, seq, 6, "stem_shape");

    TransformerBlockCfg blk;
    blk.attn.dModel = cfg.dModel;
    blk.attn.heads = cfg.heads;
    blk.attn.tokens = tokens;
    blk.ffnMult = 4;
    blk.shapeOps = cfg.shapeOpsPerBlock;

    NodeId x = seq;
    std::vector<NodeId> taps;
    for (int i = 0; i < cfg.blocks; ++i) {
        x = transformerBlock(b, x, blk, "blk." + std::to_string(i));
        // Intermediate taps at 1/4, 1/2, 3/4 and final depth.
        if ((i + 1) % (cfg.blocks / 4) == 0)
            taps.push_back(x);
    }

    // Drop [CLS] before reassembling the spatial maps.
    std::vector<NodeId> maps;
    const int up_factors[4] = {4, 4, 2, 1};
    for (std::size_t i = 0; i < taps.size(); ++i) {
        auto body = b.slice(taps[i],
                            {cfg.patchSide * cfg.patchSide, cfg.dModel},
                            "tap" + std::to_string(i) + ".body");
        maps.push_back(reassemble(b, body, cfg, cfg.headCh,
                                  up_factors[i],
                                  "reassemble" + std::to_string(i)));
    }

    // Fuse from coarsest to finest. The first two stages double the
    // resolution so the running map matches the next lateral (maps[3] is
    // 1x the patch grid, maps[1] and maps[0] are 4x); the final output
    // map stays at 4x the patch grid.
    NodeId fused = fusionBlock(b, maps[3], maps[3], true, "fusion3");
    fused = fusionBlock(b, fused, maps[2], true, "fusion2");
    fused = fusionBlock(b, fused, maps[1], false, "fusion1");
    fused = fusionBlock(b, fused, maps[0], false, "fusion0");

    auto out = b.conv2d(fused, cfg.headCh / 2, 3, 1, 1, "head.conv1");
    out = b.activation(out, OpKind::ReLU, "head.relu");
    out = b.conv2d(out, 32, 3, 1, 1, "head.conv2");
    out = b.conv2d(out, 1, 1, 1, 0, "head.depth", false);
    out = b.activation(out, OpKind::ReLU, "head.final_act");
    shapeOps(b, out, cfg.headShapeOps, "head_shape");
    return b.build();
}

} // namespace

graph::Graph
buildDepthAnything(bool large, Precision precision)
{
    DepthCfg cfg;
    if (large) {
        cfg = {"depth_anything_l", 1024, 16, 24, 21, 256, 57, 30};
    } else {
        cfg = {"depth_anything_s", 384, 6, 12, 21, 64, 63, 19};
    }
    return buildDepthFamily(cfg, precision);
}

} // namespace flashmem::models
