#include "models/blocks.hh"

#include "common/logging.hh"

namespace flashmem::models {

using graph::TensorShape;

NodeId
attention(GraphBuilder &b, NodeId x, NodeId context,
          const AttentionCfg &cfg, const std::string &prefix)
{
    const std::int64_t d = cfg.dModel;
    const std::int64_t h = cfg.heads;
    const std::int64_t hd = d / h;
    const std::int64_t tq = cfg.tokens;
    const std::int64_t tk = cfg.kvTokens > 0 ? cfg.kvTokens : cfg.tokens;
    const std::int64_t kvd = cfg.kvDim > 0 ? cfg.kvDim : d;
    // Effective keys each query attends to (windowed attention shrinks
    // the score matrix without changing projection sizes).
    const std::int64_t tk_eff =
        cfg.windowTokens > 0 ? cfg.windowTokens : tk;
    FM_ASSERT(d % h == 0, "dModel must divide heads");

    NodeId kv_src = (cfg.kvTokens > 0) ? context : x;

    auto q = b.matmul(x, d, prefix + ".q");
    auto k = b.matmul(kv_src, kvd, prefix + ".k");
    auto v = b.matmul(kv_src, kvd, prefix + ".v");

    const std::int64_t kv_heads = h * kvd / d;
    const std::int64_t kv_hd = kvd / kv_heads;

    // Head split: reshape + transpose per projection.
    auto qh = b.transpose(b.reshape(q, {tq, h, hd}, prefix + ".q_r"),
                          {h, tq, hd}, prefix + ".q_t");
    auto kh = b.transpose(b.reshape(k, {tk, kv_heads, kv_hd},
                                    prefix + ".k_r"),
                          {kv_heads, kv_hd, tk}, prefix + ".k_t");
    auto vh = b.transpose(b.reshape(v, {tk, kv_heads, kv_hd},
                                    prefix + ".v_r"),
                          {kv_heads, tk, kv_hd}, prefix + ".v_t");

    auto scores_macs = static_cast<std::uint64_t>(h) * tq * tk_eff * hd;
    auto scores = b.attnMatmul(qh, kh, {h, tq, tk_eff}, scores_macs,
                               prefix + ".qk");
    scores = b.scale(scores, prefix + ".scale");
    if (cfg.causalMask) {
        auto mask = b.slice(scores, {tq, tk_eff}, prefix + ".mask_slice");
        scores = b.add(scores, b.reshape(mask, {1, tq, tk_eff},
                                         prefix + ".mask_r"),
                       prefix + ".mask_add");
    }
    scores = b.softmax(scores, prefix + ".softmax");

    auto ctx_macs = static_cast<std::uint64_t>(h) * tq * tk_eff * hd;
    auto ctx = b.attnMatmul(scores, vh, {h, tq, hd}, ctx_macs,
                            prefix + ".pv");
    auto merged = b.reshape(b.transpose(ctx, {tq, h, hd}, prefix + ".c_t"),
                            {tq, d}, prefix + ".c_r");
    return b.matmul(merged, d, prefix + ".o");
}

NodeId
transformerBlock(GraphBuilder &b, NodeId x, const TransformerBlockCfg &cfg,
                 const std::string &prefix)
{
    const std::int64_t d = cfg.attn.dModel;

    auto norm1 = cfg.useRmsNorm ? b.rmsNorm(x, prefix + ".ln1")
                                : b.layerNorm(x, prefix + ".ln1");
    auto attn_out = attention(b, norm1, graph::kInvalidNode, cfg.attn,
                              prefix + ".attn");
    if (cfg.reAttention) {
        // DeepViT re-attention: learned mixing of attention output across
        // heads, lowered as an extra projection + norm.
        attn_out = b.matmul(attn_out, d, prefix + ".reattn", false);
        attn_out = b.layerNorm(attn_out, prefix + ".reattn_norm");
    }
    auto res1 = b.add(x, attn_out, prefix + ".res1");

    auto norm2 = cfg.useRmsNorm ? b.rmsNorm(res1, prefix + ".ln2")
                                : b.layerNorm(res1, prefix + ".ln2");
    const std::int64_t ffn_hidden =
        cfg.ffnHidden > 0 ? cfg.ffnHidden : cfg.ffnMult * d;
    NodeId hcur;
    if (cfg.gatedFfn) {
        auto gate = b.matmul(norm2, ffn_hidden, prefix + ".gate", false);
        gate = b.activation(gate, cfg.ffnActivation, prefix + ".ffn_act");
        auto up = b.matmul(norm2, ffn_hidden, prefix + ".up", false);
        hcur = b.mul(gate, up, prefix + ".ffn_mul");
        hcur = b.matmul(hcur, d, prefix + ".down", false);
    } else {
        hcur = b.matmul(norm2, ffn_hidden, prefix + ".fc1");
        hcur = b.activation(hcur, cfg.ffnActivation, prefix + ".ffn_act");
        hcur = b.matmul(hcur, d, prefix + ".fc2");
    }
    auto out = b.add(res1, hcur, prefix + ".res2");

    if (cfg.shapeOps > 0)
        shapeOps(b, out, cfg.shapeOps, prefix + ".shape");
    return out;
}

void
shapeOps(GraphBuilder &b, NodeId x, int count, const std::string &prefix)
{
    if (count <= 0)
        return;
    // A small "shape tensor" extracted from the activation, then a chain
    // of index-arithmetic ops over it.
    NodeId cur = b.slice(x, {8}, prefix + ".0");
    for (int i = 1; i < count; ++i) {
        switch (i % 3) {
          case 0:
            cur = b.slice(cur, {8}, prefix + "." + std::to_string(i));
            break;
          case 1:
            cur = b.reshape(cur, {8}, prefix + "." + std::to_string(i));
            break;
          default:
            cur = b.concat({cur}, {8}, prefix + "." + std::to_string(i));
            break;
        }
    }
}

NodeId
convBnRelu(GraphBuilder &b, NodeId x, std::int64_t out_channels, int kernel,
           int stride, int padding, const std::string &prefix, bool relu)
{
    auto y = b.conv2d(x, out_channels, kernel, stride, padding,
                      prefix + ".conv");
    // Inference-time BN folds to a per-channel scale (elemental).
    y = b.scale(y, prefix + ".bn");
    if (relu)
        y = b.activation(y, OpKind::ReLU, prefix + ".relu");
    return y;
}

NodeId
sdResBlock(GraphBuilder &b, NodeId x, std::int64_t out_channels,
           const std::string &prefix)
{
    const auto &in_shape = b.shapeOf(x);
    std::int64_t in_channels = in_shape.dim(1);

    auto h = b.groupNorm(x, prefix + ".gn1");
    h = b.activation(h, OpKind::SiLU, prefix + ".silu1");
    h = b.conv2d(h, out_channels, 3, 1, 1, prefix + ".conv1");
    // Timestep-embedding injection, lowered to a bias-style add.
    h = b.biasAdd(h, prefix + ".temb");
    h = b.groupNorm(h, prefix + ".gn2");
    h = b.activation(h, OpKind::SiLU, prefix + ".silu2");
    h = b.conv2d(h, out_channels, 3, 1, 1, prefix + ".conv2");

    NodeId skip = x;
    if (in_channels != out_channels)
        skip = b.conv2d(x, out_channels, 1, 1, 0, prefix + ".skip", false);
    return b.add(skip, h, prefix + ".res");
}

} // namespace flashmem::models
