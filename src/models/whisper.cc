/**
 * @file
 * Whisper-Medium-class encoder-decoder speech recognizer: mel-spectrogram
 * conv frontend, 11 encoder blocks, 11 decoder blocks with causal self +
 * cross attention (d=1024), tied output projection.
 */

#include "models/model_zoo.hh"

#include "models/blocks.hh"

namespace flashmem::models {

namespace {

constexpr std::int64_t kD = 1024;
constexpr std::int64_t kHeads = 16;
constexpr std::int64_t kEncBlocks = 11;
constexpr std::int64_t kDecBlocks = 10;
constexpr std::int64_t kMelBins = 80;
constexpr std::int64_t kFrames = 480;        // ~4.8 s of audio
constexpr std::int64_t kEncTokens = kFrames / 2;
constexpr std::int64_t kDecTokens = 64;
constexpr std::int64_t kVocab = 51865;

/** Decoder block: causal self-attention + cross-attention + FFN. */
NodeId
decoderBlock(GraphBuilder &b, NodeId x, NodeId enc_out,
             const std::string &prefix)
{
    AttentionCfg self_cfg;
    self_cfg.dModel = kD;
    self_cfg.heads = kHeads;
    self_cfg.tokens = kDecTokens;
    self_cfg.causalMask = true;

    auto norm1 = b.layerNorm(x, prefix + ".ln1");
    auto sa = attention(b, norm1, graph::kInvalidNode, self_cfg,
                        prefix + ".self");
    x = b.add(x, sa, prefix + ".res1");

    AttentionCfg cross_cfg;
    cross_cfg.dModel = kD;
    cross_cfg.heads = kHeads;
    cross_cfg.tokens = kDecTokens;
    cross_cfg.kvTokens = kEncTokens;

    auto norm2 = b.layerNorm(x, prefix + ".ln2");
    auto ca = attention(b, norm2, enc_out, cross_cfg, prefix + ".cross");
    x = b.add(x, ca, prefix + ".res2");

    auto norm3 = b.layerNorm(x, prefix + ".ln3");
    auto h = b.matmul(norm3, 4 * kD, prefix + ".fc1");
    h = b.activation(h, OpKind::GeLU, prefix + ".ffn_act");
    h = b.matmul(h, kD, prefix + ".fc2");
    x = b.add(x, h, prefix + ".res3");
    shapeOps(b, x, 84, prefix + ".shape");
    return x;
}

} // namespace

graph::Graph
buildWhisperMedium(Precision precision)
{
    GraphBuilder b("whisper_medium", precision);

    // Conv frontend over the mel spectrogram (stride-2 second conv).
    auto mel = b.input({1, kMelBins, 1, kFrames}, "mel");
    auto h = b.conv2d(mel, kD, 3, 1, 1, "enc.conv1");
    h = b.activation(h, OpKind::GeLU, "enc.act1");
    h = b.conv2d(h, kD, 3, 2, 1, "enc.conv2");
    h = b.activation(h, OpKind::GeLU, "enc.act2");
    auto enc = b.reshape(h, {kEncTokens, kD}, "enc.to_seq");
    enc = b.biasAdd(enc, "enc.pos_embed");

    TransformerBlockCfg enc_blk;
    enc_blk.attn.dModel = kD;
    enc_blk.attn.heads = kHeads;
    enc_blk.attn.tokens = kEncTokens;
    enc_blk.ffnMult = 4;
    enc_blk.shapeOps = 43;
    for (int i = 0; i < kEncBlocks; ++i)
        enc = transformerBlock(b, enc, enc_blk, "enc." + std::to_string(i));
    enc = b.layerNorm(enc, "enc.ln_post");

    auto tok_embed = b.embedding(kDecTokens, kVocab, kD, "dec.tok_embed");
    auto dec = b.biasAdd(tok_embed, "dec.pos_embed");
    for (int i = 0; i < kDecBlocks; ++i)
        dec = decoderBlock(b, dec, enc, "dec." + std::to_string(i));
    dec = b.layerNorm(dec, "dec.ln_f");
    // Whisper ties the output projection to the token embedding, so the
    // logits matmul reuses dec.tok_embed's weight (no new parameters).
    dec = b.attnMatmul(dec, tok_embed, {kDecTokens, kVocab},
                       static_cast<std::uint64_t>(kDecTokens) * kD *
                           kVocab,
                       "logits");
    shapeOps(b, dec, 8, "tail_shape");
    return b.build();
}

} // namespace flashmem::models
