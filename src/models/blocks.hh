/**
 * @file
 * Shared building blocks for the model zoo: multi-head attention,
 * transformer blocks, conv stages, and lowering-noise helpers.
 *
 * Layer counts in paper Table 6 refer to *low-level operator nodes after
 * graph lowering*. Real exported graphs (ONNX and friends) contain large
 * numbers of shape-arithmetic nodes (Shape/Gather/Unsqueeze/Concat on
 * small index tensors); we model those with shapeOps() so per-model layer
 * counts land near the published numbers and kernel-launch overhead is
 * represented faithfully.
 */

#ifndef FLASHMEM_MODELS_BLOCKS_HH
#define FLASHMEM_MODELS_BLOCKS_HH

#include <cstdint>
#include <string>

#include "graph/builder.hh"

namespace flashmem::models {

using graph::GraphBuilder;
using graph::NodeId;
using graph::OpKind;

/** Configuration of one multi-head attention sublayer. */
struct AttentionCfg
{
    std::int64_t dModel = 768;
    std::int64_t heads = 12;
    std::int64_t tokens = 128;      ///< query tokens
    std::int64_t kvTokens = 0;      ///< 0 = self-attention
    bool causalMask = false;
    /** Windowed attention (Hiera/SAM-2): keys per window; 0 = global. */
    std::int64_t windowTokens = 0;
    /** Grouped-query attention: key/value projection width; 0 = dModel. */
    std::int64_t kvDim = 0;
};

/**
 * Emit a lowered multi-head attention sublayer (projections, head
 * split/merge movement ops, scores, softmax, context, output projection).
 *
 * @return node producing the [tokens, dModel] output.
 */
NodeId attention(GraphBuilder &b, NodeId x, NodeId context,
                 const AttentionCfg &cfg, const std::string &prefix);

/** Configuration of a full pre-norm transformer block. */
struct TransformerBlockCfg
{
    AttentionCfg attn;
    std::int64_t ffnMult = 4;       ///< hidden = ffnMult * dModel
    std::int64_t ffnHidden = 0;     ///< explicit hidden width; 0 = use mult
    OpKind ffnActivation = OpKind::GeLU;
    bool useRmsNorm = false;        ///< Llama-style blocks
    /** Shape-arithmetic nodes to emit per block (see file docs). */
    int shapeOps = 0;
    /** DeepViT-style re-attention: extra transform on attention maps. */
    bool reAttention = false;
    /** Llama-style gated FFN (gate/up/down projections). */
    bool gatedFfn = false;
};

/** Emit one pre-norm transformer block; returns the residual output. */
NodeId transformerBlock(GraphBuilder &b, NodeId x,
                        const TransformerBlockCfg &cfg,
                        const std::string &prefix);

/**
 * Emit @p count small shape-arithmetic ops anchored at @p x. The chain's
 * result is unused by the main dataflow, matching dead shape subgraphs in
 * lowered exports; cost is dominated by kernel-launch overhead.
 */
void shapeOps(GraphBuilder &b, NodeId x, int count,
              const std::string &prefix);

/** conv -> (folded BN as scale) -> ReLU stage used by CNN backbones. */
NodeId convBnRelu(GraphBuilder &b, NodeId x, std::int64_t out_channels,
                  int kernel, int stride, int padding,
                  const std::string &prefix, bool relu = true);

/** Stable-Diffusion-style residual block: GN-SiLU-conv x2 + skip. */
NodeId sdResBlock(GraphBuilder &b, NodeId x, std::int64_t out_channels,
                  const std::string &prefix);

} // namespace flashmem::models

#endif // FLASHMEM_MODELS_BLOCKS_HH
