/**
 * @file
 * Vision transformers: ViT (14 encoder blocks, d=768) and DeepViT
 * (27 blocks with re-attention).
 */

#include "models/model_zoo.hh"

#include "models/blocks.hh"

namespace flashmem::models {

namespace {

/**
 * Shared ViT-style encoder: patchify + transformer stack + pooled head.
 */
graph::Graph
buildVitFamily(const std::string &name, int blocks, int shape_ops,
               bool re_attention, Precision precision)
{
    const std::int64_t d = 768;
    const std::int64_t tokens = 197; // 14x14 patches + [CLS], 224x224/16

    GraphBuilder b(name, precision);
    auto img = b.input({1, 3, 224, 224});
    auto patches = b.conv2d(img, d, 16, 16, 0, "patch_embed");
    auto seq = b.reshape(patches, {196, d}, "patch_flatten");
    seq = b.concat({seq}, {tokens, d}, "cls_concat");
    seq = b.biasAdd(seq, "pos_embed");
    shapeOps(b, seq, re_attention ? 10 : 13, "stem_shape");

    TransformerBlockCfg blk;
    blk.attn.dModel = d;
    blk.attn.heads = 12;
    blk.attn.tokens = tokens;
    blk.ffnMult = 4;
    blk.shapeOps = shape_ops;
    blk.reAttention = re_attention;

    NodeId x = seq;
    for (int i = 0; i < blocks; ++i)
        x = transformerBlock(b, x, blk, "blk." + std::to_string(i));

    x = b.layerNorm(x, "ln_f");
    x = b.slice(x, {1, d}, "cls_token");
    x = b.matmul(x, 1000, "head");
    return b.build();
}

} // namespace

graph::Graph
buildViT(Precision precision)
{
    return buildVitFamily("vit", 14, 34, false, precision);
}

graph::Graph
buildDeepViT(Precision precision)
{
    return buildVitFamily("deepvit", 27, 26, true, precision);
}

} // namespace flashmem::models
