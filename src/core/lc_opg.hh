/**
 * @file
 * LC-OPG: the Load-Capacity-aware Overlap Plan Generation solver
 * (paper Section 3).
 *
 * The OPG problem decides, for every weight w:
 *   - how many chunks join the preload set W (loaded at init),
 *   - which earlier layers transform the remaining chunks inline
 *     (x_{w,l}, constraints C0-C3),
 *   - the earliest disk-load layer z_w (constraint C1),
 * minimizing lambda * |W| + (1 - lambda) * sum(loading distances) while
 * per-layer load capacities C_l and the in-flight memory bound M_peak
 * hold (C2, C3).
 *
 * The planner follows the paper's implementation notes: incremental
 * scheduling over a rolling layer window keeps each CP-SAT instance
 * small; a greedy warm start seeds the search; and the C4 tiered
 * fallback (soft-threshold relaxation -> incremental preloading ->
 * greedy backup) guarantees a plan within the time limit.
 */

#ifndef FLASHMEM_CORE_LC_OPG_HH
#define FLASHMEM_CORE_LC_OPG_HH

#include <cstdint>
#include <vector>

#include "core/overlap_plan.hh"
#include "gpusim/kernel.hh"
#include "profiler/capacity.hh"
#include "solver/solver.hh"

namespace flashmem::core {

/** OPG hyper-parameters (paper Sections 3.1-3.2). */
struct OpgParams
{
    Bytes chunkBytes = mib(1);          ///< S
    Bytes mPeak = mib(500);             ///< M_peak (memory priority)
    /** Preload-vs-distance balance; ~0.9 prioritizes low memory. */
    double lambda = 0.9;
    /** Distance-penalty weight (mu). */
    double mu = 0.1;
    /** Rolling-window length in layers (incremental scheduling). */
    int windowLayers = 32;
    /** How many layers before i_w a chunk may be transformed. */
    int maxLoadDistance = 24;
    /**
     * CP-SAT search budget per window, in decisions. A decision-based
     * budget keeps planning bit-deterministic across hosts; the
     * wall-clock limit below is only a backstop.
     */
    std::uint64_t solverDecisionsPerWindow = 20000;
    /** Wall-clock backstop per window, seconds. */
    double solverTimePerWindow = 0.5;
    /** C4 soft-threshold relaxation factor per fallback round. */
    double softThresholdGrowth = 1.3;
    /** Fallback rounds before the greedy backup takes over a window. */
    int maxFallbackRounds = 2;
    /**
     * Explicit preload list (paper Section 5.4: "weights can also be
     * explicitly specified by directly adding their names to the
     * preload list |W|"): weights are pinned into W, in consumer
     * order, until this fraction of total weight bytes is covered.
     * The latency-priority end of the Figure-8 trade-off.
     */
    double minPreloadFraction = 0.0;
    /**
     * Reuse prior incumbents from PlanMemo::global() as warm-start
     * hints when a window's CP model fingerprint was seen before
     * (capacity sweeps, multi-model workloads, adaptive-fusion
     * re-planning). Cached hints are validated before use. Windows
     * that solve to OPTIMAL replan byte-identically; budget-truncated
     * windows may improve under a warm start (per-window objectives
     * are monotonically non-increasing across repeated runs, since the
     * cached incumbent bounds the new search).
     */
    bool planMemo = true;
    /** CP search kernel (Baseline kept for before/after benches). */
    solver::SearchEngine solverEngine = solver::SearchEngine::Trail;
};

/** Offline-stage statistics (paper Table 4 columns). */
struct PlanStats
{
    double processNodesSeconds = 0.0;   ///< graph analysis + capacities
    double buildModelSeconds = 0.0;     ///< CP model construction
    double solveSeconds = 0.0;          ///< CP-SAT search
    solver::SolveStatus overallStatus = solver::SolveStatus::Optimal;
    int windows = 0;
    int optimalWindows = 0;
    int feasibleWindows = 0;
    int softRelaxations = 0;            ///< C4 tier-1 events
    int forcedPreloads = 0;             ///< C4 tier-2 events
    int greedyWindows = 0;              ///< C4 tier-3 events
    std::uint64_t solverDecisions = 0;
    std::uint64_t memoHits = 0;         ///< plan-memo warm starts used
    std::uint64_t memoStores = 0;       ///< incumbents written back
};

/** Produces overlap plans for one graph on one device. */
class LcOpgPlanner
{
  public:
    /**
     * @param g graph to plan (post-fusion).
     * @param capacity provider of per-layer load capacities.
     * @param kernel_model device kernel model (for specs).
     * @param params hyper-parameters.
     */
    LcOpgPlanner(const graph::Graph &g,
                 const profiler::CapacityProvider &capacity,
                 const gpusim::KernelModel &kernel_model,
                 OpgParams params = {});

    /** Run LC-OPG; always returns a valid plan. */
    OverlapPlan plan(PlanStats *stats = nullptr);

    /** Per-layer capacities in chunks (after analysis). */
    const std::vector<std::int64_t> &layerCapacities() const
    {
        return capacity_chunks_;
    }

  private:
    struct WindowResult
    {
        bool usedGreedy = false;
        int softRelaxations = 0;
        int forcedPreloads = 0;
        solver::SolveStatus status = solver::SolveStatus::Optimal;
        std::uint64_t decisions = 0;
        double buildSeconds = 0.0;
        double solveSeconds = 0.0;
        std::uint64_t memoHits = 0;
        std::uint64_t memoStores = 0;
    };

    /** Analyze graph: kernel specs, capacities, chunk counts. */
    void processNodes();

    /** Plan one window [start, end); appends into @p plan. */
    WindowResult planWindow(graph::NodeId start, graph::NodeId end,
                            OverlapPlan &plan);

    /**
     * Greedy latest-feasible chunk placement for the given weights;
     * returns per-weight (assignments, preload leftovers). Used as the
     * warm start and as the tier-3 fallback.
     */
    struct GreedyOut
    {
        // Parallel to the weight list handed in.
        std::vector<std::vector<std::pair<graph::NodeId, std::int64_t>>>
            assignments;
        std::vector<std::int64_t> preload;
    };
    GreedyOut greedyAssign(
        const std::vector<graph::WeightId> &weights,
        const std::vector<std::int64_t> &residual_capacity,
        const std::vector<std::int64_t> &inflight_used) const;

    const graph::Graph &g_;
    const profiler::CapacityProvider &capacity_;
    const gpusim::KernelModel &kernel_model_;
    OpgParams params_;
    WeightSlicer slicer_;

    // processNodes() outputs.
    std::vector<gpusim::KernelSpec> specs_;          // per layer
    std::vector<std::int64_t> capacity_chunks_;      // C_l per layer
    std::vector<std::int64_t> chunk_count_;          // T(w) per weight
    std::vector<bool> pinned_preload_;               // explicit W list
    // Cross-window state.
    std::vector<std::int64_t> residual_capacity_;    // C_l minus spent
    std::vector<std::int64_t> inflight_used_;        // M_peak usage/layer
};

} // namespace flashmem::core

#endif // FLASHMEM_CORE_LC_OPG_HH
