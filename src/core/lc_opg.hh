/**
 * @file
 * LC-OPG: the Load-Capacity-aware Overlap Plan Generation solver
 * (paper Section 3).
 *
 * The OPG problem decides, for every weight w:
 *   - how many chunks join the preload set W (loaded at init),
 *   - which earlier layers transform the remaining chunks inline
 *     (x_{w,l}, constraints C0-C3),
 *   - the earliest disk-load layer z_w (constraint C1),
 * minimizing lambda * |W| + (1 - lambda) * sum(loading distances) while
 * per-layer load capacities C_l and the in-flight memory bound M_peak
 * hold (C2, C3).
 *
 * The planner follows the paper's implementation notes: incremental
 * scheduling over a rolling layer window keeps each CP-SAT instance
 * small; a greedy warm start seeds the search; and the C4 tiered
 * fallback (soft-threshold relaxation -> incremental preloading ->
 * greedy backup) guarantees a plan within the time limit.
 *
 * Whole-plan generation is a three-phase pipeline (PR 2):
 *   1. stage  — sequential: each window's inputs (weight slice,
 *      candidates, greedy warm start, residual-capacity snapshot) are
 *      computed up front, with the greedy acting as the staged
 *      capacity reservation for windows that follow;
 *   2. solve  — parallel: windows solve concurrently on a ThreadPool
 *      (ParallelPlanParams::threads), each a pure function of its
 *      staged input;
 *   3. merge  — sequential, in window order: solutions commit into the
 *      authoritative capacity ledgers with clamping, so the final plan
 *      is valid and byte-identical for any thread count.
 */

#ifndef FLASHMEM_CORE_LC_OPG_HH
#define FLASHMEM_CORE_LC_OPG_HH

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "core/overlap_plan.hh"
#include "gpusim/kernel.hh"
#include "profiler/capacity.hh"
#include "solver/portfolio.hh"
#include "solver/solver.hh"

namespace flashmem::core {

/**
 * Parallel window-solving knobs. Whole-plan generation runs as a
 * three-phase pipeline — stage (sequential), solve (parallel on a
 * ThreadPool), merge (sequential, in window order) — so the merged
 * OverlapPlan is byte-identical for any thread count.
 */
struct ParallelPlanParams
{
    /** Worker threads for window solves; 0 = hardware_concurrency. */
    int threads = 0;
};

/** OPG hyper-parameters (paper Sections 3.1-3.2). */
struct OpgParams
{
    Bytes chunkBytes = mib(1);          ///< S
    Bytes mPeak = mib(500);             ///< M_peak (memory priority)
    /** Preload-vs-distance balance; ~0.9 prioritizes low memory. */
    double lambda = 0.9;
    /** Distance-penalty weight (mu). */
    double mu = 0.1;
    /** Rolling-window length in layers (incremental scheduling). */
    int windowLayers = 32;
    /** How many layers before i_w a chunk may be transformed. */
    int maxLoadDistance = 24;
    /**
     * CP-SAT search budget per window, in decisions. A decision-based
     * budget keeps planning bit-deterministic across hosts; the
     * wall-clock limit below is only a backstop.
     */
    std::uint64_t solverDecisionsPerWindow = 20000;
    /** Wall-clock backstop per window, seconds. */
    double solverTimePerWindow = 0.5;
    /** C4 soft-threshold relaxation factor per fallback round. */
    double softThresholdGrowth = 1.3;
    /** Fallback rounds before the greedy backup takes over a window. */
    int maxFallbackRounds = 2;
    /**
     * Explicit preload list (paper Section 5.4: "weights can also be
     * explicitly specified by directly adding their names to the
     * preload list |W|"): weights are pinned into W, in consumer
     * order, until this fraction of total weight bytes is covered.
     * The latency-priority end of the Figure-8 trade-off.
     */
    double minPreloadFraction = 0.0;
    /**
     * Reuse prior incumbents from PlanMemo::global() as warm-start
     * hints when a window's CP model fingerprint was seen before
     * (capacity sweeps, multi-model workloads, adaptive-fusion
     * re-planning). Cached hints are validated before use. Windows
     * that solve to OPTIMAL replan byte-identically; budget-truncated
     * windows may improve under a warm start (per-window objectives
     * are monotonically non-increasing across repeated runs, since the
     * cached incumbent bounds the new search).
     */
    bool planMemo = true;
    /**
     * Memo instance to consult; nullptr means PlanMemo::global().
     * Point this at a file-backed PlanMemo (see PlanMemo::memoPath) so
     * CLI tools and benches warm-start across process launches.
     */
    PlanMemo *memo = nullptr;
    /**
     * Merge-time capacity re-balancing (second merge pass): after the
     * ordered commit, weights that were budget-truncated into the
     * preload set are topped up from capacity that earlier windows
     * reserved greedily but did not use. Deterministic (sequential,
     * consumer order) and purely plan-improving: every moved chunk
     * lowers |W| without violating C2/C3, since it only consumes
     * residual capacity and in-flight headroom left in the
     * authoritative ledgers.
     */
    bool mergeRebalance = true;
    /** CP search kernel (Baseline kept for before/after benches). */
    solver::SearchEngine solverEngine = solver::SearchEngine::Trail;
    /**
     * Luby restart base (conflicts) for window solves; 0 = off.
     * Useful on budget-truncated (FEASIBLE) windows, where restarts
     * with solution phase saving keep incumbent quality under the same
     * decision budget; leave off when windows are expected to prove
     * optimality (restart overhead delays exhaustion proofs).
     */
    std::uint64_t restartConflictBase = 0;
    /**
     * Deterministic portfolio width for window solves: K solver
     * configurations (distinct variable orders, restart schedules,
     * value-ordering polarities) race each window model on the shared
     * thread pool, first achiever of the proven optimum wins under a
     * lowest-config-index tie-break, and losers are cancelled through
     * a monotone bound-sharing board (solver/portfolio.hh). 1 = off
     * (plain single-configuration solves, the historical behavior).
     * Plans stay byte-identical for any thread count and any pool
     * size; raising K multiplies worst-case CPU per truncated window
     * by K in exchange for more windows proved optimal inside the
     * unchanged per-configuration decision budget.
     */
    int portfolioConfigs = 1;
    /**
     * Detect interchangeable same-consumer weight blocks (equal T(w),
     * equal candidate layers) at model-build time and add lex-ordering
     * rows so the solver stops exploring permuted duplicates of the
     * same subtree (solver/symmetry.hh). Sound: the verifier proves
     * block-swap invariance exactly before any row is added, and the
     * greedy/memo hints are canonicalized to the chosen order.
     */
    bool symmetryBreaking = true;
    /** Window-solve parallelism (plan stays byte-identical). */
    ParallelPlanParams parallel;
};

/** Offline-stage statistics (paper Table 4 columns). */
struct PlanStats
{
    /**
     * Per-window solve summary, in window (layer) order — the order
     * futures are consumed in, so the vector is identical for any
     * solver thread count. Consumed by the obs tracing layer
     * (SolverWindow events) and available for triage.
     */
    struct WindowSolveSummary
    {
        int window = 0;
        solver::SolveStatus status = solver::SolveStatus::Optimal;
        bool usedGreedy = false;
        std::uint64_t decisions = 0;
        std::uint64_t propagations = 0;
        std::uint64_t conflicts = 0; ///< search backtracks
        std::uint64_t restarts = 0;
        /**
         * Portfolio configuration that produced the committed window
         * solution (final fallback round); 0 when the portfolio is
         * off. Deterministic for any thread count / pool size.
         */
        int winningConfig = 0;
        /**
         * Raw search backtracks per portfolio configuration, merged
         * in submission (configuration) order and summed across
         * fallback rounds; empty when the window never ran the
         * solver. Diagnostic only: cancelled configurations stop at a
         * timing-dependent point, so these counts may vary run to run
         * — which is exactly what makes them useful for triaging a
         * portfolio divergence (the deterministic fields above come
         * from the winner's improvement snapshots and do not vary).
         */
        std::vector<std::uint64_t> configConflicts;
    };

    double processNodesSeconds = 0.0;   ///< graph analysis + capacities
    double stageSeconds = 0.0;          ///< window staging (sequential)
    double buildModelSeconds = 0.0;     ///< CP model construction (CPU, summed)
    /** Wall-clock of the (parallel) solve phase — the Table-4 column. */
    double solveSeconds = 0.0;
    /** Per-window solve time summed across workers (CPU-ish). */
    double solveCpuSeconds = 0.0;
    double mergeSeconds = 0.0;          ///< ordered commit + validation bookkeeping
    solver::SolveStatus overallStatus = solver::SolveStatus::Optimal;
    int windows = 0;
    int optimalWindows = 0;
    int feasibleWindows = 0;
    int softRelaxations = 0;            ///< C4 tier-1 events
    int forcedPreloads = 0;             ///< C4 tier-2 events
    int greedyWindows = 0;              ///< C4 tier-3 events
    int threads = 1;                    ///< worker threads used to solve
    /** @name Merge-time re-balancing (second merge pass). @{ */
    std::int64_t rebalancedChunks = 0;  ///< chunks moved W -> streamed
    int rebalancedWeights = 0;          ///< truncated weights topped up
    /** @} */
    std::uint64_t solverDecisions = 0;
    std::uint64_t solverRestarts = 0;   ///< Luby restarts across windows
    std::uint64_t memoHits = 0;         ///< plan-memo warm starts used
    std::uint64_t memoStores = 0;       ///< incumbents written back
    std::uint64_t solverPropagations = 0; ///< constraint revisions
    std::uint64_t solverConflicts = 0;    ///< search backtracks
    /** Symmetry-breaking lex rows added across all window models. */
    int symmetryRows = 0;
    std::vector<WindowSolveSummary> windowSummaries;
};

/** Produces overlap plans for one graph on one device. */
class LcOpgPlanner
{
  public:
    /**
     * @param g graph to plan (post-fusion).
     * @param capacity provider of per-layer load capacities.
     * @param kernel_model device kernel model (for specs).
     * @param params hyper-parameters.
     */
    LcOpgPlanner(const graph::Graph &g,
                 const profiler::CapacityProvider &capacity,
                 const gpusim::KernelModel &kernel_model,
                 OpgParams params = {});

    /** Run LC-OPG; always returns a valid plan. */
    OverlapPlan plan(PlanStats *stats = nullptr);

    /**
     * Re-plan under a different in-flight memory budget (on-device
     * re-planning: the multi-DNN scheduler shifts a model's residual
     * capacity share when co-resident models are admitted or evicted).
     * Reuses the graph analysis of the first plan() call — only the
     * staging/solve/merge phases re-run — and warm-starts through the
     * configured PlanMemo, so re-plans land well under a second.
     * Deterministic for any thread count, like plan().
     */
    OverlapPlan replan(Bytes mPeak, PlanStats *stats = nullptr);

    /** Per-layer capacities in chunks (after analysis). */
    const std::vector<std::int64_t> &layerCapacities() const
    {
        return capacity_chunks_;
    }

  private:
    struct WindowResult
    {
        bool usedGreedy = false;
        int softRelaxations = 0;
        int forcedPreloads = 0;
        solver::SolveStatus status = solver::SolveStatus::Optimal;
        std::uint64_t decisions = 0;
        std::uint64_t propagations = 0;
        std::uint64_t conflicts = 0; ///< search backtracks
        std::uint64_t restarts = 0;
        double buildSeconds = 0.0;
        double solveSeconds = 0.0;
        std::uint64_t memoHits = 0;
        int winningConfig = 0;  ///< final round's portfolio winner
        int lexRows = 0;        ///< symmetry-breaking rows added
        /** Raw per-configuration backtracks (diagnostic; see
         * PlanStats::WindowSolveSummary::configConflicts). */
        std::vector<std::uint64_t> configConflicts;
    };

    /**
     * Greedy latest-feasible chunk placement for the given weights;
     * returns per-weight (assignments, preload leftovers). Used as the
     * warm start, the tier-3 fallback, and the staged capacity
     * reservation that decouples windows for parallel solving.
     */
    struct GreedyOut
    {
        // Parallel to the weight list handed in.
        std::vector<std::vector<std::pair<graph::NodeId, std::int64_t>>>
            assignments;
        std::vector<std::int64_t> preload;
    };

    /**
     * Everything one window solve needs, captured up front by the
     * sequential staging pass: the weight slice, candidate layers,
     * greedy warm start, and snapshots of the staged residual-capacity
     * and in-flight ledgers. Once staged, solveWindow() is a pure
     * function of this struct (plus the read-only planner fields), so
     * windows solve concurrently and deterministically.
     */
    struct WindowInput
    {
        graph::NodeId start = 0;
        graph::NodeId end = 0;
        std::vector<graph::WeightId> weights;       // consumer order
        std::vector<std::vector<graph::NodeId>> cands;
        graph::NodeId minCand = 0;
        GreedyOut greedy;
        std::vector<std::int64_t> residual;         // staged snapshot
        std::vector<std::int64_t> inflight;         // staged snapshot
    };

    /** Deferred PlanMemo write (flushed in window order at merge). */
    struct MemoStore
    {
        std::uint64_t fingerprint = 0;
        std::vector<std::int64_t> values;
        std::int64_t objective = 0;
    };

    /** Extracted window solution + stats + buffered memo writes. */
    struct WindowOutput
    {
        WindowResult result;
        std::vector<std::int64_t> preload;          // per weight
        std::vector<std::vector<std::pair<graph::NodeId, std::int64_t>>>
            assign;
        std::vector<graph::NodeId> z;
        std::vector<MemoStore> memoStores;
    };

    /** Analyze graph: kernel specs, capacities, chunk counts. */
    void processNodes();

    /**
     * Stage one window [start, end): collect its weights/candidates,
     * compute the greedy warm start against the staging ledgers, then
     * reserve the greedy's capacity in them (so later windows stage
     * against this window's expected usage).
     */
    WindowInput stageWindow(graph::NodeId start, graph::NodeId end,
                            std::vector<std::int64_t> &staging_residual,
                            std::vector<std::int64_t> &staging_inflight)
        const;

    /**
     * One C4 fallback round's CP model, built on the driver thread:
     * the window model (C0-C3), symmetry-breaking lex rows over
     * verified-interchangeable weight blocks, and the canonicalized
     * warm-start hint (greedy, or a validated PlanMemo incumbent).
     * Once built it is immutable, so the portfolio's configurations
     * can race it concurrently.
     */
    struct RoundModel
    {
        solver::CpModel model;
        std::vector<std::int64_t> hint;
        std::vector<solver::VarId> y_vars;
        std::vector<solver::VarId> z_vars; // -1 when fully preloaded
        std::vector<std::vector<solver::VarId>> x_vars;
        std::uint64_t fingerprint = 0;
        bool memoHit = false;
        int lexRows = 0;
        double buildSeconds = 0.0;
    };

    /**
     * Per-window driver state for the flattened solve phase: plan()
     * submits one task per (window, round, configuration) to the
     * shared pool and interprets merged round results in window
     * order, so the C4 fallback tiers (relax/forced) advance exactly
     * as they did when each window ran its rounds inside one task.
     */
    struct WindowSolveState
    {
        const WindowInput *in = nullptr;
        bool done = false;
        bool useGreedy = false;
        int round = 0;
        double relax = 1.0;
        std::vector<bool> forced;
        RoundModel rm;
        std::unique_ptr<solver::PortfolioBoard> board;
        std::vector<std::future<solver::PortfolioOutcome>> futures;
        WindowOutput out;
    };

    /** Build one round's model for @p in (pure; see RoundModel). */
    RoundModel buildWindowModel(const WindowInput &in, double relax,
                                const std::vector<bool> &forced) const;

    /**
     * Fold one merged round result into @p st: accumulate stats
     * (winner-snapshot counters when the portfolio is on, so traces
     * and summaries stay deterministic), extract the solution or
     * advance the C4 tier state. @return true when the window is done
     * (solution extracted or demoted to the greedy backup).
     */
    bool interpretRound(WindowSolveState &st,
                        const solver::PortfolioResult &pr) const;

    /** Fill @p out from the staged greedy solution (tier 3). */
    void applyGreedy(const WindowInput &in, WindowOutput &out) const;

    /**
     * Merge one window's solution into the plan and the authoritative
     * residual/in-flight ledgers, in window order. Assignments that
     * exceed the real residual capacity (possible when a window's
     * solver used more of a shared layer than the greedy reservation
     * staged for it) are clamped, with the overflow moved to the
     * preload set — validity is unconditional.
     */
    void commitWindow(const WindowInput &in, WindowOutput &out,
                      OverlapPlan &plan, PlanStats &stats);

    /**
     * Second merge pass (cross-window capacity re-balancing): walk the
     * committed plan in consumer order and move budget-truncated
     * preload chunks into residual capacity that earlier windows
     * reserved but did not use. Runs after every window committed, so
     * the authoritative ledgers are final; every top-up is validated
     * against them (and the in-flight headroom) before it lands.
     */
    void rebalanceMerge(OverlapPlan &plan, PlanStats &stats);

    GreedyOut greedyAssign(
        const std::vector<graph::WeightId> &weights,
        const std::vector<std::int64_t> &residual_capacity,
        const std::vector<std::int64_t> &inflight_used) const;

    /** Memo instance window solves consult (params_.memo or global). */
    PlanMemo &memoRef() const;

    const graph::Graph &g_;
    const profiler::CapacityProvider &capacity_;
    const gpusim::KernelModel &kernel_model_;
    OpgParams params_;
    WeightSlicer slicer_;

    // processNodes() outputs (budget-independent; computed once and
    // reused across replan() calls).
    bool processed_ = false;
    std::vector<gpusim::KernelSpec> specs_;          // per layer
    std::vector<std::int64_t> capacity_chunks_;      // C_l per layer
    std::vector<std::int64_t> chunk_count_;          // T(w) per weight
    std::vector<bool> pinned_preload_;               // explicit W list
    // Authoritative cross-window ledgers (written only at merge).
    std::vector<std::int64_t> residual_capacity_;    // C_l minus spent
    std::vector<std::int64_t> inflight_used_;        // M_peak usage/layer
};

} // namespace flashmem::core

#endif // FLASHMEM_CORE_LC_OPG_HH
