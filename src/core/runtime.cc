#include "core/runtime.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flashmem::core {

using gpusim::MemKind;

StreamingRuntime::StreamingRuntime(gpusim::GpuSimulator &sim,
                                   const graph::Graph &g,
                                   const OverlapPlan &plan)
    : sim_(sim), g_(g), plan_(plan)
{
    plan_.validate(g_);

    loads_at_.resize(g_.layerCount());
    WeightSlicer slicer(plan_.chunkBytes());
    for (const auto &w : g_.weights()) {
        const auto &s = plan_.schedule(w.id);
        if (s.preloadChunks > 0) {
            // Preload reads are sequenced by consumer with a large
            // lead, so early layers are never blocked behind weights
            // needed much later.
            graph::NodeId z = std::max<graph::NodeId>(
                0, w.consumer - kPreloadLeadLayers);
            loads_at_[z].push_back({w.id, true});
        }
        if (s.earliestLoadLayer != graph::kInvalidNode &&
            slicer.chunkCount(w) > s.preloadChunks)
            loads_at_[s.earliestLoadLayer].push_back({w.id, false});
    }

    last_consumer_.assign(g_.layerCount(), graph::kInvalidNode);
    for (const auto &n : g_.nodes()) {
        for (auto in : n.inputs)
            last_consumer_[in] = std::max(last_consumer_[in], n.id);
    }
}

RunResult
StreamingRuntime::run(const RunConfig &cfg)
{
    auto &mem = sim_.memory();
    const auto &km = sim_.kernelModel();
    WeightSlicer slicer(plan_.chunkBytes());

    RunResult result;
    result.model = g_.name();
    result.arrival = cfg.arrival;
    result.start = cfg.arrival;

    // Framework residency: CL context, command buffers, graph metadata
    // and IO staging that any runtime keeps live for a loaded model.
    Bytes base_overhead =
        mib(60) + static_cast<Bytes>(g_.layerCount()) * kib(30);
    mem.alloc(MemKind::Scratch, base_overhead, cfg.arrival);

    // FlashMem treats initialization and execution as a whole:
    // execution starts immediately; preload reads are interleaved with
    // streamed reads in consumer order (see loads_at_ construction) and
    // each preloaded weight becomes texture-resident as its bytes pass
    // through the DMA transform queue.
    std::vector<SimTime> preload_ready(g_.weightCount(), cfg.arrival);
    SimTime init_done = cfg.arrival;

    // ---- Streamed execution. ------------------------------------------
    const auto layers = static_cast<graph::NodeId>(g_.layerCount());
    // Per-weight streaming state.
    std::vector<gpusim::Interval> disk_iv(g_.weightCount());
    std::vector<bool> disk_issued(g_.weightCount(), false);
    std::vector<std::int64_t> chunks_done(g_.weightCount(), 0);
    std::vector<Bytes> um_remaining(g_.weightCount(), 0);
    std::vector<std::int64_t> stream_chunks(g_.weightCount(), 0);
    for (const auto &w : g_.weights()) {
        stream_chunks[w.id] = slicer.chunkCount(w) -
                              plan_.schedule(w.id).preloadChunks;
    }

    SimTime prev_end = cfg.arrival;
    for (graph::NodeId l = 0; l < layers; ++l) {
        const auto &node = g_.node(l);

        // Issue disk reads scheduled for this layer.
        for (const auto &issue : loads_at_[l]) {
            const auto &w = g_.weight(issue.weight);
            Bytes pb = slicer.bytesForChunks(
                w, plan_.schedule(issue.weight).preloadChunks);
            if (issue.preload) {
                auto iv = sim_.disk().transfer(prev_end, pb);
                mem.alloc(MemKind::UnifiedWeights, pb, prev_end);
                auto xf = sim_.transformQueue().transfer(iv.end, pb);
                preload_ready[issue.weight] = xf.end;
                init_done = std::max(init_done, xf.end);
                mem.free(MemKind::UnifiedWeights, pb, xf.end);
                mem.alloc(MemKind::TextureWeights, pb, xf.end);
                continue;
            }
            Bytes stream_bytes = w.bytes() - pb;
            disk_iv[issue.weight] =
                sim_.disk().transfer(prev_end, stream_bytes);
            disk_issued[issue.weight] = true;
            um_remaining[issue.weight] = stream_bytes;
            mem.alloc(MemKind::UnifiedWeights, stream_bytes, prev_end);
        }

        // Readiness: inline chunks must be on unified memory; weights
        // consumed here must be fully resident in texture memory —
        // streamed chunks were transformed by earlier kernels (plan
        // validation), preloaded bytes arrive with the init stream.
        SimTime ready = prev_end;
        for (auto wid : node.weights) {
            if (plan_.schedule(wid).preloadChunks > 0)
                ready = std::max(ready, preload_ready[wid]);
        }
        Bytes inline_bytes = 0;
        const auto &assigns = plan_.assignmentsAt(l);
        for (const auto &a : assigns) {
            FM_ASSERT(disk_issued[a.weight],
                      "transform before disk issue for weight ",
                      a.weight);
            const auto &iv = disk_iv[a.weight];
            double frac =
                static_cast<double>(chunks_done[a.weight] + a.chunks) /
                static_cast<double>(stream_chunks[a.weight]);
            auto avail = iv.start + static_cast<SimTime>(
                                        frac * static_cast<double>(
                                                   iv.duration()));
            ready = std::max(ready, avail);
            inline_bytes += std::min<Bytes>(
                static_cast<Bytes>(a.chunks) * plan_.chunkBytes(),
                um_remaining[a.weight]);
        }

        // Kernel dispatch.
        auto spec = gpusim::kernelSpecFor(g_, l, true);
        spec.pipelined = cfg.branchFreeKernels && inline_bytes > 0;
        SimTime duration = km.baseLatency(spec) +
                           km.inlineLoadPenalty(spec, inline_bytes);
        auto k_iv = sim_.computeQueue().reserve(ready, duration);
        result.stallTime += std::max<SimTime>(k_iv.start - prev_end, 0);
        ++result.kernels;

        mem.alloc(MemKind::Activations, node.output.bytes(), k_iv.start);

        // Inline transforms retire with the kernel: UM -> TM.
        for (const auto &a : assigns) {
            Bytes moved = std::min<Bytes>(
                static_cast<Bytes>(a.chunks) * plan_.chunkBytes(),
                um_remaining[a.weight]);
            chunks_done[a.weight] += a.chunks;
            um_remaining[a.weight] -= moved;
            mem.free(MemKind::UnifiedWeights, moved, k_iv.end);
            mem.alloc(MemKind::TextureWeights, moved, k_iv.end);
        }

        // Texture weights retire after their (single) consumer — both
        // the streamed chunks and this weight's share of the preload
        // set; inference uses each weight once.
        for (auto wid : node.weights) {
            const auto &w = g_.weight(wid);
            if (w.bytes() > 0)
                mem.free(MemKind::TextureWeights, w.bytes(), k_iv.end);
        }

        // Retire activations whose last consumer ran (dedup repeated
        // inputs such as add(x, x)).
        for (std::size_t i = 0; i < node.inputs.size(); ++i) {
            auto in = node.inputs[i];
            if (std::find(node.inputs.begin(), node.inputs.begin() + i,
                          in) != node.inputs.begin() + i)
                continue;
            if (last_consumer_[in] == l) {
                mem.free(MemKind::Activations,
                         g_.node(in).output.bytes(), k_iv.end);
            }
        }

        prev_end = k_iv.end;
    }

    // Unconsumed outputs + the persistent preload set unload with the
    // model.
    for (const auto &n : g_.nodes()) {
        if (last_consumer_[n.id] == graph::kInvalidNode)
            mem.free(MemKind::Activations, n.output.bytes(), prev_end);
    }
    mem.free(MemKind::Scratch, base_overhead, prev_end);

    result.initDone = std::min(init_done, prev_end);
    result.end = prev_end;
    result.peakMemory = mem.peakOver(result.start, result.end);
    result.avgMemoryBytes = mem.averageBytes(result.start, result.end);
    result.oom = result.peakMemory > sim_.device().appMemoryBudget &&
                 sim_.device().appMemoryBudget > 0;
    return result;
}

} // namespace flashmem::core
