/**
 * @file
 * Weight slicing (paper Section 3.1.2): each weight tensor is split into
 * uniform chunks of size S; T(w) = ceil(bytes / S) chunks per weight.
 * Chunks are the granularity at which the OPG solver assigns transform
 * work to layers and at which the runtime streams.
 */

#ifndef FLASHMEM_CORE_WEIGHT_SLICER_HH
#define FLASHMEM_CORE_WEIGHT_SLICER_HH

#include <cstdint>

#include "common/types.hh"
#include "graph/graph.hh"

namespace flashmem::core {

/** Uniform chunking of weight tensors. */
class WeightSlicer
{
  public:
    explicit WeightSlicer(Bytes chunk_bytes = mib(1));

    Bytes chunkBytes() const { return chunk_bytes_; }

    /** T(w): number of chunks for a weight of @p weight_bytes. */
    std::int64_t chunkCount(Bytes weight_bytes) const;

    /** T(w) for a graph weight. */
    std::int64_t chunkCount(const graph::Weight &w) const;

    /** Bytes covered by @p chunks whole chunks of weight @p w (the last
     * chunk may be short). */
    Bytes bytesForChunks(const graph::Weight &w,
                         std::int64_t chunks) const;

    /** Total chunks over all weights of @p g. */
    std::int64_t totalChunks(const graph::Graph &g) const;

  private:
    Bytes chunk_bytes_;
};

} // namespace flashmem::core

#endif // FLASHMEM_CORE_WEIGHT_SLICER_HH
