#include "core/kernel_rewriter.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace flashmem::core {

namespace {

const std::string kPlainTemplate = R"(// {{name}}: plain kernel (no inline loading)
__kernel void {{name}}(__read_only image2d_t tensor_a,
                       __read_only image2d_t tensor_b,
                       __write_only image2d_t tensor_c)
{
    const int tid = get_global_id(0);
    // load data for computation
    float4 acc = load_tiles(tensor_a, tensor_b, tid);
    for (int i = 0; i < {{k_tiles}}; ++i) {
        // do the computation
        acc = compute_tensor_c(acc, i);
    }
    write_imagef(tensor_c, out_coord(tid), acc);
}
)";

const std::string kBranchyTemplate = R"(// {{name}}: naive overlap (thread-id conditionals cause divergence)
__kernel void {{name}}(__read_only image2d_t tensor_a,
                       __read_only image2d_t tensor_b,
                       __write_only image2d_t tensor_c,
                       __global const half *weight_list)
{
    const int ws = {{load_tiles}};           // tiles of tensor list L
    const int tid = get_global_id(0);
    float4 acc = load_tiles(tensor_a, tensor_b, tid);
    if (tid < {{comp_size}}) {
        for (int i = 0; i < {{k_tiles}}; ++i)
            acc = compute_tensor_c(acc, i);
        if (tid < ws)
            pipeline_load(weight_list, tid); // divergent path
    } else {
        if (tid < ws)
            pipeline_load(weight_list, tid);
    }
    write_imagef(tensor_c, out_coord(tid), acc);
}
)";

const std::string kPipelinedTemplate = R"(// {{name}}: branch-free pipelined compute + weight loading
__kernel void {{name}}(__read_only image2d_t tensor_a,
                       __read_only image2d_t tensor_b,
                       __write_only image2d_t tensor_c,
                       __global const half *weight_list,
                       __write_only image2d_t weight_texture)
{
    const int tid = get_global_id(0);
    // uniform load-compute schedule: every thread follows the same path
    const int c = {{load_tiles}} / get_global_size(0) + 1;
    float4 acc = load_tiles(tensor_a, tensor_b, tid);
    for (int i = 0; i < c; ++i) {
        acc = compute_tensor_c(acc, i);
        // prefetch next weight tile while computing the current one
        float4 v = vload4(i, weight_list + tid * 4 * c);
        write_imagef(weight_texture, wt_coord(tid, i), v);
    }
    for (int i = c; i < {{k_tiles}}; ++i) {
        // drain loop: leftover arithmetic after loads complete
        acc = compute_tensor_c(acc, i);
    }
    write_imagef(tensor_c, out_coord(tid), acc);
}
)";

} // namespace

const char *
kernelTemplateName(KernelTemplate tmpl)
{
    switch (tmpl) {
      case KernelTemplate::Plain:
        return "plain";
      case KernelTemplate::BranchyOverlap:
        return "branchy_overlap";
      case KernelTemplate::PipelinedBranchFree:
        return "pipelined_branch_free";
    }
    return "?";
}

const std::string &
KernelRewriter::templateText(KernelTemplate tmpl)
{
    switch (tmpl) {
      case KernelTemplate::Plain:
        return kPlainTemplate;
      case KernelTemplate::BranchyOverlap:
        return kBranchyTemplate;
      case KernelTemplate::PipelinedBranchFree:
        return kPipelinedTemplate;
    }
    FM_PANIC("unknown kernel template");
}

std::string
KernelRewriter::renderTemplate(
    const std::string &tmpl,
    const std::map<std::string, std::string> &vars)
{
    std::string out;
    out.reserve(tmpl.size());
    std::size_t pos = 0;
    while (pos < tmpl.size()) {
        auto open = tmpl.find("{{", pos);
        if (open == std::string::npos) {
            out.append(tmpl, pos, std::string::npos);
            break;
        }
        out.append(tmpl, pos, open - pos);
        auto close = tmpl.find("}}", open);
        FM_ASSERT(close != std::string::npos,
                  "unterminated placeholder in kernel template");
        std::string key = tmpl.substr(open + 2, close - open - 2);
        auto it = vars.find(key);
        FM_ASSERT(it != vars.end(), "unresolved template key '", key,
                  "'");
        out += it->second;
        pos = close + 2;
    }
    return out;
}

KernelRewriter::KernelRewriter(const graph::Graph &g,
                               const OverlapPlan &plan, bool branch_free)
    : g_(g), plan_(plan), branch_free_(branch_free)
{
}

RewrittenKernel
KernelRewriter::rewrite(graph::NodeId layer) const
{
    RewrittenKernel rk;
    rk.layer = layer;
    rk.spec = gpusim::kernelSpecFor(g_, layer, true);
    rk.inlineLoadBytes = plan_.inlineBytesAt(g_, layer);

    if (rk.inlineLoadBytes == 0) {
        rk.tmpl = KernelTemplate::Plain;
        rk.spec.pipelined = false;
    } else if (branch_free_) {
        rk.tmpl = KernelTemplate::PipelinedBranchFree;
        rk.spec.pipelined = true;
    } else {
        rk.tmpl = KernelTemplate::BranchyOverlap;
        rk.spec.pipelined = false;
    }

    const auto &node = g_.node(layer);
    std::int64_t k_tiles =
        std::max<std::int64_t>(node.output.shape.elements() / 4096, 1);
    std::int64_t load_tiles = static_cast<std::int64_t>(
        rk.inlineLoadBytes / 64);

    rk.source = renderTemplate(
        templateText(rk.tmpl),
        {
            {"name", node.name},
            {"k_tiles", std::to_string(k_tiles)},
            {"load_tiles", std::to_string(load_tiles)},
            {"comp_size", std::to_string(rk.spec.gwsX * rk.spec.gwsY)},
        });
    return rk;
}

std::vector<RewrittenKernel>
KernelRewriter::rewriteAll() const
{
    std::vector<RewrittenKernel> out;
    out.reserve(g_.layerCount());
    for (graph::NodeId l = 0;
         l < static_cast<graph::NodeId>(g_.layerCount()); ++l)
        out.push_back(rewrite(l));
    return out;
}

} // namespace flashmem::core
