#include "core/fusion.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flashmem::core {

using graph::Graph;
using graph::Node;
using graph::NodeId;
using graph::OpClass;
using graph::OpKind;

FusionPass::FusionPass(const Graph &original, FusionParams params)
    : original_(original), params_(params)
{
    FM_ASSERT(params_.maxGroupSize >= 1, "bad maxGroupSize");
}

graph::OpKind
FusionPass::restrictiveKind(const std::vector<OpKind> &kinds)
{
    // Restrictiveness order for the fused kernel's load capacity:
    // hierarchical (0%) dominates, then movement, elemental, reusable.
    auto rank = [](OpKind k) {
        switch (graph::opClass(k)) {
          case OpClass::Hierarchical:
            return 0;
          case OpClass::Movement:
            return 1;
          case OpClass::Elemental:
            return 2;
          case OpClass::Reusable:
            return 3;
        }
        return 3;
    };
    OpKind best = kinds.front();
    for (auto k : kinds) {
        if (rank(k) < rank(best))
            best = k;
    }
    return best;
}

std::vector<FusionGroup>
FusionPass::singletonPartition() const
{
    std::vector<FusionGroup> out;
    out.reserve(original_.layerCount());
    for (const auto &n : original_.nodes())
        out.push_back({{n.id}});
    return out;
}

std::vector<FusionGroup>
FusionPass::initialPartition() const
{
    // consumer counts to identify single-consumer chain links.
    std::vector<int> consumers(original_.layerCount(), 0);
    for (const auto &n : original_.nodes()) {
        for (auto in : n.inputs)
            ++consumers[in];
    }

    std::vector<FusionGroup> groups;
    std::vector<int> group_of(original_.layerCount(), -1);

    for (const auto &n : original_.nodes()) {
        bool chained = false;
        // Chain onto the producer's group when this node is that
        // producer's only consumer and the producer is the group tail.
        if (n.inputs.size() >= 1) {
            NodeId main_in = n.inputs.front();
            int gid = group_of[main_in];
            if (gid >= 0 && consumers[main_in] == 1 &&
                groups[gid].members.back() == main_in &&
                groups[gid].members.size() <
                    static_cast<std::size_t>(params_.maxGroupSize)) {
                // Other inputs must come from outside the group, which
                // holds by topological construction.
                groups[gid].members.push_back(n.id);
                group_of[n.id] = gid;
                chained = true;
            }
        }
        if (!chained) {
            group_of[n.id] = static_cast<int>(groups.size());
            groups.push_back({{n.id}});
        }
    }
    return groups;
}

gpusim::KernelSpec
FusionPass::specForGroup(const FusionGroup &group) const
{
    FM_ASSERT(!group.members.empty(), "empty fusion group");
    gpusim::KernelSpec spec;
    spec.precision = original_.precision();
    spec.usesTexture = true;

    std::vector<OpKind> kinds;
    std::uint64_t macs = 0;
    Bytes weight_bytes = 0;
    Bytes external_in = 0;

    for (std::size_t i = 0; i < group.members.size(); ++i) {
        const auto &n = original_.node(group.members[i]);
        kinds.insert(kinds.end(), n.fusedKinds.begin(),
                     n.fusedKinds.end());
        macs += n.macs;
        for (auto wid : n.weights)
            weight_bytes += original_.weight(wid).bytes();
        for (auto in : n.inputs) {
            bool internal =
                i > 0 && in == group.members[i - 1];
            if (!internal)
                external_in += original_.node(in).output.bytes();
        }
    }

    const auto &last = original_.node(group.members.back());
    spec.kind = restrictiveKind(kinds);
    spec.macs = macs;
    spec.inputBytes = external_in;
    spec.outputBytes = last.output.bytes();
    spec.weightBytes = weight_bytes;
    std::int64_t out_elems = last.output.shape.elements();
    spec.gwsX = std::max<std::int64_t>(out_elems / 64, 1);
    spec.gwsY = 64;
    return spec;
}

Graph
FusionPass::materialize(const std::vector<FusionGroup> &partition,
                        std::vector<NodeId> *fused_id_of_group_out) const
{
    // Validate coverage and compute a topological group order (groups
    // sorted by last member id; see chain argument in the fusion docs).
    std::vector<int> group_of(original_.layerCount(), -1);
    for (std::size_t gid = 0; gid < partition.size(); ++gid) {
        FM_ASSERT(!partition[gid].members.empty(), "empty fusion group");
        for (auto m : partition[gid].members) {
            FM_ASSERT(group_of[m] == -1, "node ", m,
                      " in two fusion groups");
            group_of[m] = static_cast<int>(gid);
        }
    }
    for (int g : group_of)
        FM_ASSERT(g >= 0, "fusion partition does not cover the graph");

    std::vector<std::size_t> order(partition.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return partition[a].members.back() <
                         partition[b].members.back();
              });

    Graph fused(original_.name(), original_.precision());
    std::vector<NodeId> fused_id_of_group(partition.size(), -1);

    for (auto gid : order) {
        const auto &group = partition[gid];
        Node node;
        const auto &first = original_.node(group.members.front());
        const auto &last = original_.node(group.members.back());
        node.name = group.members.size() == 1
                        ? first.name
                        : first.name + "+" +
                              std::to_string(group.members.size() - 1);
        node.output = last.output;

        std::vector<OpKind> kinds;
        for (std::size_t i = 0; i < group.members.size(); ++i) {
            const auto &n = original_.node(group.members[i]);
            kinds.insert(kinds.end(), n.fusedKinds.begin(),
                         n.fusedKinds.end());
            node.macs += n.macs;
            for (auto in : n.inputs) {
                bool internal = i > 0 && in == group.members[i - 1];
                if (internal)
                    continue;
                NodeId mapped = fused_id_of_group[group_of[in]];
                FM_ASSERT(mapped >= 0, "fusion order violation at '",
                          n.name, "'");
                if (std::find(node.inputs.begin(), node.inputs.end(),
                              mapped) == node.inputs.end())
                    node.inputs.push_back(mapped);
            }
        }
        node.kind = restrictiveKind(kinds);
        node.fusedKinds = std::move(kinds);

        NodeId fid = fused.addNode(std::move(node));
        fused_id_of_group[gid] = fid;
        // Re-attach weights in member order.
        for (auto m : group.members) {
            for (auto wid : original_.node(m).weights) {
                const auto &w = original_.weight(wid);
                fused.attachWeight(fid, w.desc, w.name);
            }
        }
    }
    fused.validate();
    if (fused_id_of_group_out)
        *fused_id_of_group_out = fused_id_of_group;
    return fused;
}

bool
FusionPass::splitGroup(const FusionGroup &group, FusionGroup *head,
                       FusionGroup *tail) const
{
    if (group.members.size() < 2)
        return false;
    // Hierarchical fusions: retain intact (paper rule 2).
    for (auto m : group.members) {
        if (graph::opClass(original_.node(m).kind) ==
            OpClass::Hierarchical)
            return false;
    }
    // Rule 1: peel the trailing elemental/movement run off the
    // reusable body (MatMul+Add+GeLU -> MatMul+Add | GeLU).
    std::size_t boundary = group.members.size();
    while (boundary > 0) {
        auto cls = graph::opClass(
            original_.node(group.members[boundary - 1]).kind);
        if (cls == OpClass::Elemental || cls == OpClass::Movement)
            --boundary;
        else
            break;
    }
    if (boundary == 0 || boundary == group.members.size()) {
        // Uniform chain: generic midpoint split restores slots.
        boundary = group.members.size() / 2;
    }
    head->members.assign(group.members.begin(),
                         group.members.begin() + boundary);
    tail->members.assign(group.members.begin() + boundary,
                         group.members.end());
    return !head->members.empty() && !tail->members.empty();
}

bool
FusionPass::splitFeasible(const FusionGroup &group,
                          const FusionGroup &head,
                          const FusionGroup &tail,
                          const profiler::CapacityProvider &capacity,
                          Bytes chunk_bytes) const
{
    auto fused_spec = specForGroup(group);
    auto head_spec = specForGroup(head);
    auto tail_spec = specForGroup(tail);
    fused_spec.pipelined = true;
    head_spec.pipelined = true;
    tail_spec.pipelined = true;

    auto c_fused = capacity.capacityChunks(fused_spec, chunk_bytes);
    auto c_head = capacity.capacityChunks(head_spec, chunk_bytes);
    auto c_tail = capacity.capacityChunks(tail_spec, chunk_bytes);
    return static_cast<double>(c_head + c_tail) >=
           (1.0 + params_.alpha) * static_cast<double>(c_fused);
}

} // namespace flashmem::core
