/**
 * @file
 * The FlashMem streaming runtime (paper Section 4, "Online Execution").
 *
 * Executes a graph against the GPU simulator following an overlap plan:
 * the preload set W is loaded + transformed at initialization; streamed
 * weights are read from disk starting at their z_w layer on the DMA
 * queue while compute proceeds; each layer's rewritten kernel carries
 * its x_{w,l} chunk transforms inline. Memory events (unified/texture
 * weights, activations) are timestamped against the simulated clock,
 * producing the traces behind Tables 1/8 and Figure 6.
 */

#ifndef FLASHMEM_CORE_RUNTIME_HH
#define FLASHMEM_CORE_RUNTIME_HH

#include <string>
#include <vector>

#include "core/kernel_rewriter.hh"
#include "core/overlap_plan.hh"
#include "gpusim/simulator.hh"

namespace flashmem::core {

/** Per-invocation knobs. */
struct RunConfig
{
    /** Execution start time (multi-DNN schedulers pass the dispatch
     * time, i.e. max(request arrival, device free)). */
    SimTime arrival = 0;
    /** Branch-free pipelined kernels; false = ablation's branchy mode. */
    bool branchFreeKernels = true;
};

/** Outcome of one model execution. */
struct RunResult
{
    std::string model;
    /** Request arrival (queue-entry time). Defaults to @c start for
     * standalone runs; multi-DNN schedulers overwrite it with the true
     * arrival so request latency includes queueing delay. */
    SimTime arrival = 0;
    SimTime start = 0;     ///< execution start (dispatch)
    SimTime initDone = 0;  ///< preload set resident (init boundary)
    SimTime end = 0;       ///< last kernel retired

    /** Device-side latency: execution only, excludes queueing. */
    SimTime integratedLatency() const { return end - start; }
    /** Request latency as the user observes it: end - arrival. */
    SimTime requestLatency() const { return end - arrival; }
    /** Time spent queued behind other requests. */
    SimTime queueDelay() const { return start - arrival; }

    /** Latency bound (SLO) the request carried; 0 = unbounded. Set by
     * deadline-aware schedulers, 0 for standalone runs. */
    SimTime latencyBound = 0;
    /** Cluster device the run was placed on (multi-DNN schedulers;
     * 0 for standalone runs). */
    int device = 0;
    /** True when admission dispatched this run at a degraded (reduced)
     * capacity budget instead of shedding it. */
    bool degraded = false;
    /** SLO verdict: unbounded requests always count as met. */
    bool metSlo() const
    {
        return latencyBound <= 0 || requestLatency() <= latencyBound;
    }
    SimTime initLatency() const { return initDone - start; }
    SimTime execLatency() const { return end - initDone; }

    /** Compute stalls waiting for streamed data. */
    SimTime stallTime = 0;
    /** Largest live memory during this run. */
    Bytes peakMemory = 0;
    /** Time-weighted average live memory during this run. */
    double avgMemoryBytes = 0.0;
    /** True if this run pushed past the device app-memory budget. */
    bool oom = false;
    /** Kernels dispatched. */
    std::size_t kernels = 0;
};

/** Executes compiled models on a simulated device. */
class StreamingRuntime
{
  public:
    /**
     * @param sim simulator (shared across runs in multi-DNN pipelines).
     * @param g (fused) graph to execute.
     * @param plan overlap plan for @p g (validated on construction).
     */
    StreamingRuntime(gpusim::GpuSimulator &sim, const graph::Graph &g,
                     const OverlapPlan &plan);

    /** Execute once; timelines/memory persist across calls. */
    RunResult run(const RunConfig &cfg = {});

  private:
    /** How many layers ahead of the consumer preload reads issue. */
    static constexpr graph::NodeId kPreloadLeadLayers = 64;

    /** One scheduled disk read (preload portion or streamed portion). */
    struct LoadIssue
    {
        graph::WeightId weight = -1;
        bool preload = false;
    };

    gpusim::GpuSimulator &sim_;
    const graph::Graph &g_;
    const OverlapPlan &plan_;
    /** Disk reads triggered when each layer starts, in consumer order. */
    std::vector<std::vector<LoadIssue>> loads_at_;
    /** Last consuming layer per node (activation lifetime). */
    std::vector<graph::NodeId> last_consumer_;
};

} // namespace flashmem::core

#endif // FLASHMEM_CORE_RUNTIME_HH
