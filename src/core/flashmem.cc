#include "core/flashmem.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flashmem::core {

FlashMem::FlashMem(const gpusim::DeviceProfile &device,
                   FlashMemOptions options)
    : device_(device), options_(options), kernel_model_(device_),
      capacity_(kernel_model_, options_.thresholds)
{
}

double
FlashMem::groupPenalty(const graph::Graph &fused, const OverlapPlan &plan,
                       graph::NodeId fused_node) const
{
    // Penalty(v_fused) = lambda |W_new| + mu * dz (Section 4.3):
    // preload bytes forced onto this kernel's weights plus the distance
    // shortfall of its streamed weights.
    WeightSlicer slicer(plan.chunkBytes());
    double penalty = 0.0;
    for (auto wid : fused.node(fused_node).weights) {
        const auto &w = fused.weight(wid);
        const auto &s = plan.schedule(wid);
        Bytes preload = slicer.bytesForChunks(w, s.preloadChunks);
        penalty += options_.opg.lambda * static_cast<double>(preload);
        if (s.earliestLoadLayer != graph::kInvalidNode) {
            double dist = static_cast<double>(w.consumer -
                                              s.earliestLoadLayer);
            double shortfall =
                std::max(0.0, static_cast<double>(
                                  options_.opg.maxLoadDistance) -
                                  dist);
            penalty += options_.opg.mu * shortfall *
                       static_cast<double>(w.bytes() - preload) /
                       static_cast<double>(options_.opg.maxLoadDistance);
        }
    }
    return penalty;
}

CompiledModel
FlashMem::compile(const graph::Graph &model) const
{
    FusionPass fusion(model, options_.fusion);
    auto partition = options_.adaptiveFusion ? fusion.initialPartition()
                                             : fusion.singletonPartition();

    CompiledModel out;
    for (int round = 0; round <= options_.maxFusionRounds; ++round) {
        std::vector<graph::NodeId> fused_id_of_group;
        out.fusedGraph = fusion.materialize(partition,
                                            &fused_id_of_group);
        out.fusionRounds = round;

        LcOpgPlanner planner(out.fusedGraph, capacity_, kernel_model_,
                             options_.opg);
        out.plan = planner.plan(&out.stats);
        // Rounds whose windows reuse memoised incumbents (splits leave
        // most of the model untouched) show up as planMemoHits.
        out.totalSolveSeconds += out.stats.solveSeconds;
        out.totalSolverDecisions += out.stats.solverDecisions;
        out.planMemoHits += out.stats.memoHits;
        out.planMemoStores += out.stats.memoStores;

        if (!options_.adaptiveFusion ||
            round == options_.maxFusionRounds)
            break;
        if (out.plan.overlapFraction(out.fusedGraph) >=
            1.0 - options_.splitTriggerPreloadFraction)
            break;

        // Adaptive fusion triggering: rank fused kernels by penalty,
        // verify split feasibility, rebuild, and re-invoke the solver.
        struct Candidate
        {
            std::size_t group;
            double penalty;
        };
        std::vector<Candidate> candidates;
        for (std::size_t gid = 0; gid < partition.size(); ++gid) {
            if (partition[gid].members.size() < 2)
                continue;
            double p = groupPenalty(out.fusedGraph, out.plan,
                                    fused_id_of_group[gid]);
            if (p > 0.0)
                candidates.push_back({gid, p});
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate &a, const Candidate &b) {
                      return a.penalty > b.penalty;
                  });
        if (candidates.size() >
            static_cast<std::size_t>(options_.fusion.splitTopK))
            candidates.resize(options_.fusion.splitTopK);

        int split_count = 0;
        std::vector<FusionGroup> next;
        std::vector<bool> splitting(partition.size(), false);
        std::vector<std::pair<FusionGroup, FusionGroup>> split_parts(
            partition.size());
        for (const auto &c : candidates) {
            FusionGroup head, tail;
            if (!fusion.splitGroup(partition[c.group], &head, &tail))
                continue;
            if (!fusion.splitFeasible(partition[c.group], head, tail,
                                      capacity_,
                                      options_.opg.chunkBytes))
                continue;
            splitting[c.group] = true;
            split_parts[c.group] = {std::move(head), std::move(tail)};
            ++split_count;
        }
        if (split_count == 0)
            break;
        for (std::size_t gid = 0; gid < partition.size(); ++gid) {
            if (splitting[gid]) {
                next.push_back(std::move(split_parts[gid].first));
                next.push_back(std::move(split_parts[gid].second));
            } else {
                next.push_back(std::move(partition[gid]));
            }
        }
        partition = std::move(next);
        out.groupsSplit += split_count;
    }

    KernelRewriter rewriter(out.fusedGraph, out.plan,
                            options_.kernelRewriting);
    out.kernels = rewriter.rewriteAll();
    out.planBudget = options_.opg.mPeak;
    return out;
}

CompiledModel
FlashMem::replan(const CompiledModel &compiled, Bytes mPeak) const
{
    CompiledModel out;
    out.fusedGraph = compiled.fusedGraph;
    out.fusionRounds = compiled.fusionRounds;
    out.groupsSplit = compiled.groupsSplit;
    out.replans = compiled.replans + 1;
    out.planBudget = mPeak;

    LcOpgPlanner planner(out.fusedGraph, capacity_, kernel_model_,
                         options_.opg);
    out.plan = planner.replan(mPeak, &out.stats);
    out.totalSolveSeconds = out.stats.solveSeconds;
    out.totalSolverDecisions = out.stats.solverDecisions;
    out.planMemoHits = out.stats.memoHits;
    out.planMemoStores = out.stats.memoStores;

    KernelRewriter rewriter(out.fusedGraph, out.plan,
                            options_.kernelRewriting);
    out.kernels = rewriter.rewriteAll();
    return out;
}

RunResult
FlashMem::execute(gpusim::GpuSimulator &sim,
                  const CompiledModel &compiled, SimTime arrival) const
{
    StreamingRuntime runtime(sim, compiled.fusedGraph, compiled.plan);
    RunConfig cfg;
    cfg.arrival = arrival;
    cfg.branchFreeKernels = options_.kernelRewriting;
    return runtime.run(cfg);
}

RunResult
FlashMem::runOnce(const graph::Graph &model) const
{
    auto compiled = compile(model);
    gpusim::GpuSimulator sim(device_);
    return execute(sim, compiled, 0);
}

} // namespace flashmem::core
