#include "core/weight_slicer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flashmem::core {

WeightSlicer::WeightSlicer(Bytes chunk_bytes) : chunk_bytes_(chunk_bytes)
{
    FM_ASSERT(chunk_bytes > 0, "chunk size must be positive");
}

std::int64_t
WeightSlicer::chunkCount(Bytes weight_bytes) const
{
    return static_cast<std::int64_t>(
        (weight_bytes + chunk_bytes_ - 1) / chunk_bytes_);
}

std::int64_t
WeightSlicer::chunkCount(const graph::Weight &w) const
{
    return chunkCount(w.bytes());
}

Bytes
WeightSlicer::bytesForChunks(const graph::Weight &w,
                             std::int64_t chunks) const
{
    std::int64_t total = chunkCount(w);
    FM_ASSERT(chunks >= 0 && chunks <= total, "chunk count ", chunks,
              " out of range for weight '", w.name, "'");
    if (chunks == total)
        return w.bytes();
    return static_cast<Bytes>(chunks) * chunk_bytes_;
}

std::int64_t
WeightSlicer::totalChunks(const graph::Graph &g) const
{
    std::int64_t total = 0;
    for (const auto &w : g.weights())
        total += chunkCount(w);
    return total;
}

} // namespace flashmem::core
