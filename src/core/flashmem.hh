/**
 * @file
 * FlashMem public API.
 *
 * Mirrors the paper's two-stage workflow (Figure 3):
 *
 *   Offline — FlashMem::compile(): operator fusion, load-capacity
 *   estimation, LC-OPG overlap planning with the adaptive-fusion
 *   feedback loop, and template kernel rewriting; produces a reusable
 *   CompiledModel.
 *
 *   Online — FlashMem::execute(): streams the model through a
 *   GpuSimulator following the overlap plan.
 *
 * Ablation toggles (Figure 7) select which optimizations participate.
 */

#ifndef FLASHMEM_CORE_FLASHMEM_HH
#define FLASHMEM_CORE_FLASHMEM_HH

#include <memory>
#include <string>
#include <vector>

#include "core/fusion.hh"
#include "core/kernel_rewriter.hh"
#include "core/lc_opg.hh"
#include "core/overlap_plan.hh"
#include "core/runtime.hh"
#include "gpusim/simulator.hh"
#include "profiler/capacity.hh"

namespace flashmem::core {

/** Compile-time options; defaults reproduce the full system. */
struct FlashMemOptions
{
    OpgParams opg;
    FusionParams fusion;
    profiler::CapacityThresholds thresholds;

    /** Enable operator fusion + the adaptive splitting loop. */
    bool adaptiveFusion = true;
    /** Emit branch-free pipelined kernels (vs branchy interleave). */
    bool kernelRewriting = true;
    /** Adaptive fusion feedback rounds. */
    int maxFusionRounds = 3;
    /** Preload fraction above which a fusion round triggers splits. */
    double splitTriggerPreloadFraction = 0.15;
};

/** Offline-stage artifact: plan + kernels for one model on one device. */
struct CompiledModel
{
    graph::Graph fusedGraph;
    OverlapPlan plan;
    std::vector<RewrittenKernel> kernels;
    /** Stats of the final planning round (the plan that shipped). */
    PlanStats stats;
    /** In-flight memory budget (M_peak) the shipped plan was solved
     * under; FlashMem::replan() produces siblings at other budgets. */
    Bytes planBudget = 0;
    /** Re-plans this artifact went through (0 for a fresh compile). */
    int replans = 0;
    int fusionRounds = 0;
    int groupsSplit = 0;
    /** @name Aggregates across all adaptive-fusion rounds. @{ */
    double totalSolveSeconds = 0.0;
    std::uint64_t totalSolverDecisions = 0;
    std::uint64_t planMemoHits = 0;   ///< warm starts reused from memo
    std::uint64_t planMemoStores = 0;
    /** @} */

    /** Fraction of weight bytes streamed rather than preloaded. */
    double
    overlapFraction() const
    {
        return plan.overlapFraction(fusedGraph);
    }
};

/** The FlashMem framework for one device profile. */
class FlashMem
{
  public:
    explicit FlashMem(const gpusim::DeviceProfile &device,
                      FlashMemOptions options = {});

    /** Offline stage: fuse, plan, and rewrite @p model. */
    CompiledModel compile(const graph::Graph &model) const;

    /**
     * On-device re-planning: produce a sibling of @p compiled whose
     * overlap plan is solved under @p mPeak instead of the budget it
     * shipped with. The fused graph is reused as-is (fusion decisions
     * are budget-independent; skipping the adaptive-fusion loop keeps
     * re-plans well under a second) and window solves warm-start
     * through the configured PlanMemo, so repeated budget shifts —
     * the multi-DNN scheduler admitting/evicting co-resident models —
     * are cheap and bit-deterministic for any thread count.
     */
    CompiledModel replan(const CompiledModel &compiled,
                         Bytes mPeak) const;

    /** Online stage: execute a compiled model on @p sim. */
    RunResult execute(gpusim::GpuSimulator &sim,
                      const CompiledModel &compiled,
                      SimTime arrival = 0) const;

    /** Convenience: compile + execute on a fresh simulator. */
    RunResult runOnce(const graph::Graph &model) const;

    const gpusim::DeviceProfile &device() const { return device_; }
    const FlashMemOptions &options() const { return options_; }

  private:
    /** Penalty score of one fused group under @p plan (Section 4.3). */
    double groupPenalty(const graph::Graph &fused,
                        const OverlapPlan &plan,
                        graph::NodeId fused_node) const;

    gpusim::DeviceProfile device_;
    FlashMemOptions options_;
    gpusim::KernelModel kernel_model_;
    profiler::AnalyticCapacityProvider capacity_;
};

} // namespace flashmem::core

#endif // FLASHMEM_CORE_FLASHMEM_HH
