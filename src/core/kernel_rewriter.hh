/**
 * @file
 * Template-based kernel rewriting (paper Section 4.4, Figure 5).
 *
 * Every layer with inline-load assignments is instantiated from a
 * reusable template that embeds branch-free, pipelined weight loading
 * into the computation: each iteration prefetches the next weight tile
 * while computing the current one, with a drain loop for the leftover
 * arithmetic. A branchy variant (thread-id conditionals) exists for the
 * ablation study, and a plain template covers layers with no inline
 * loads. Templates render to OpenCL-style source via {{placeholder}}
 * substitution (the paper uses Jinja).
 */

#ifndef FLASHMEM_CORE_KERNEL_REWRITER_HH
#define FLASHMEM_CORE_KERNEL_REWRITER_HH

#include <map>
#include <string>
#include <vector>

#include "core/overlap_plan.hh"
#include "gpusim/kernel.hh"
#include "graph/graph.hh"

namespace flashmem::core {

/** Which template a dispatch instantiates. */
enum class KernelTemplate
{
    Plain,              ///< no inline loading (Figure 5a)
    BranchyOverlap,     ///< naive interleave with tid conditionals
    PipelinedBranchFree ///< FlashMem rewrite (Figure 5b)
};

/** Human name of a template. */
const char *kernelTemplateName(KernelTemplate tmpl);

/** One rewritten dispatch ready for the runtime. */
struct RewrittenKernel
{
    graph::NodeId layer = graph::kInvalidNode;
    KernelTemplate tmpl = KernelTemplate::Plain;
    gpusim::KernelSpec spec;
    Bytes inlineLoadBytes = 0;
    std::string source; ///< generated OpenCL-style kernel text
};

/** Instantiates kernels for a graph + overlap plan. */
class KernelRewriter
{
  public:
    /**
     * @param branch_free emit the pipelined branch-free template; when
     *        false the ablation's branchy interleave is used instead.
     */
    KernelRewriter(const graph::Graph &g, const OverlapPlan &plan,
                   bool branch_free = true);

    /** Rewrite every layer of the graph. */
    std::vector<RewrittenKernel> rewriteAll() const;

    /** Rewrite one layer. */
    RewrittenKernel rewrite(graph::NodeId layer) const;

    /**
     * Render @p tmpl with {{key}} placeholders substituted from
     * @p vars; fatal on unresolved placeholders.
     */
    static std::string renderTemplate(const std::string &tmpl,
                                      const std::map<std::string,
                                                     std::string> &vars);

    /** Raw template text for @p tmpl (exposed for docs and tests). */
    static const std::string &templateText(KernelTemplate tmpl);

  private:
    const graph::Graph &g_;
    const OverlapPlan &plan_;
    bool branch_free_;
};

} // namespace flashmem::core

#endif // FLASHMEM_CORE_KERNEL_REWRITER_HH
