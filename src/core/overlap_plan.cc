#include "core/overlap_plan.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <type_traits>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace flashmem::core {

OverlapPlan::OverlapPlan(const graph::Graph &g, Bytes chunk_bytes)
    : chunk_bytes_(chunk_bytes)
{
    schedules_.resize(g.weightCount());
    for (std::size_t w = 0; w < g.weightCount(); ++w)
        schedules_[w].weight = static_cast<graph::WeightId>(w);
    by_layer_.resize(g.layerCount());
}

void
OverlapPlan::setPreloadChunks(graph::WeightId w, std::int64_t chunks)
{
    FM_ASSERT(w >= 0 && w < static_cast<graph::WeightId>(
                              schedules_.size()),
              "bad weight id ", w);
    FM_ASSERT(chunks >= 0, "negative preload chunks");
    schedules_[w].preloadChunks = chunks;
}

void
OverlapPlan::setEarliestLoad(graph::WeightId w, graph::NodeId layer)
{
    FM_ASSERT(w >= 0 && w < static_cast<graph::WeightId>(
                              schedules_.size()),
              "bad weight id ", w);
    schedules_[w].earliestLoadLayer = layer;
}

void
OverlapPlan::addAssignment(graph::WeightId w, graph::NodeId layer,
                           std::int64_t chunks)
{
    FM_ASSERT(layer >= 0 && layer < static_cast<graph::NodeId>(
                                        by_layer_.size()),
              "bad layer ", layer);
    FM_ASSERT(chunks > 0, "empty assignment");
    by_layer_[layer].push_back({w, layer, chunks});
}

const WeightSchedule &
OverlapPlan::schedule(graph::WeightId w) const
{
    FM_ASSERT(w >= 0 && w < static_cast<graph::WeightId>(
                              schedules_.size()),
              "bad weight id ", w);
    return schedules_[w];
}

const std::vector<ChunkAssignment> &
OverlapPlan::assignmentsAt(graph::NodeId l) const
{
    FM_ASSERT(l >= 0 && l < static_cast<graph::NodeId>(by_layer_.size()),
              "bad layer ", l);
    return by_layer_[l];
}

Bytes
OverlapPlan::preloadBytes(const graph::Graph &g) const
{
    WeightSlicer slicer(chunk_bytes_);
    Bytes total = 0;
    for (const auto &s : schedules_)
        total += slicer.bytesForChunks(g.weight(s.weight),
                                       s.preloadChunks);
    return total;
}

Bytes
OverlapPlan::streamedBytes(const graph::Graph &g) const
{
    return g.totalWeightBytes() - preloadBytes(g);
}

double
OverlapPlan::overlapFraction(const graph::Graph &g) const
{
    Bytes total = g.totalWeightBytes();
    if (total == 0)
        return 0.0;
    return static_cast<double>(streamedBytes(g)) /
           static_cast<double>(total);
}

Bytes
OverlapPlan::inlineBytesAt(const graph::Graph &g, graph::NodeId l) const
{
    WeightSlicer slicer(chunk_bytes_);
    Bytes total = 0;
    for (const auto &a : assignmentsAt(l)) {
        const auto &w = g.weight(a.weight);
        // Bound by the weight's true bytes (short last chunk).
        total += std::min<Bytes>(
            static_cast<Bytes>(a.chunks) * chunk_bytes_, w.bytes());
    }
    return total;
}

bool
OverlapPlan::validate(const graph::Graph &g, bool fatal_on_error) const
{
    auto fail = [&](const std::string &msg) -> bool {
        if (fatal_on_error)
            FM_FATAL("overlap plan for '", g.name(), "': ", msg);
        warn("overlap plan for '", g.name(), "': ", msg);
        return false;
    };

    if (schedules_.size() != g.weightCount() ||
        by_layer_.size() != g.layerCount())
        return fail("plan shape does not match graph");

    WeightSlicer slicer(chunk_bytes_);
    std::vector<std::int64_t> assigned(g.weightCount(), 0);
    std::vector<graph::NodeId> first_layer(g.weightCount(),
                                           graph::kInvalidNode);

    for (std::size_t l = 0; l < by_layer_.size(); ++l) {
        for (const auto &a : by_layer_[l]) {
            if (a.weight < 0 ||
                a.weight >= static_cast<graph::WeightId>(
                                g.weightCount()))
                return fail("assignment references bad weight");
            const auto &w = g.weight(a.weight);
            // Transform must land strictly before the consuming layer.
            if (static_cast<graph::NodeId>(l) >= w.consumer) {
                return fail("weight '" + w.name +
                            "' transformed at/after its consumer");
            }
            assigned[a.weight] += a.chunks;
            if (first_layer[a.weight] == graph::kInvalidNode) {
                first_layer[a.weight] =
                    static_cast<graph::NodeId>(l);
            }
        }
    }

    for (const auto &s : schedules_) {
        const auto &w = g.weight(s.weight);
        std::int64_t total = slicer.chunkCount(w);
        // C0: completeness of allocation.
        if (s.preloadChunks + assigned[s.weight] != total) {
            return fail("weight '" + w.name + "' covers " +
                        std::to_string(s.preloadChunks +
                                       assigned[s.weight]) +
                        " of " + std::to_string(total) + " chunks");
        }
        // C1: z_w no later than the first transforming layer.
        if (assigned[s.weight] > 0) {
            if (s.earliestLoadLayer == graph::kInvalidNode)
                return fail("weight '" + w.name + "' streams but has "
                            "no earliest-load layer");
            if (s.earliestLoadLayer > first_layer[s.weight])
                return fail("weight '" + w.name +
                            "' loads after its first transform (C1)");
        }
    }
    return true;
}

std::string
OverlapPlan::summary(const graph::Graph &g) const
{
    std::ostringstream os;
    os << "plan[" << g.name() << "]: preload "
       << formatBytes(preloadBytes(g)) << ", streamed "
       << formatBytes(streamedBytes(g)) << " ("
       << formatDouble(100.0 * overlapFraction(g), 1) << "% overlap)";
    return os.str();
}

std::string
OverlapPlan::serialize() const
{
    std::ostringstream os;
    os << "chunk " << chunk_bytes_ << "\n";
    os << "layers " << by_layer_.size() << "\n";
    for (const auto &s : schedules_) {
        os << "w " << s.weight << " " << s.preloadChunks << " "
           << s.earliestLoadLayer << "\n";
    }
    for (const auto &layer : by_layer_) {
        for (const auto &a : layer)
            os << "x " << a.weight << " " << a.layer << " " << a.chunks
               << "\n";
    }
    return os.str();
}

std::optional<std::vector<std::int64_t>>
PlanMemo::lookup(std::uint64_t fingerprint)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it == entries_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    it->second.lastUse = ++clock_;
    return it->second.values;
}

bool
PlanMemo::store(std::uint64_t fingerprint,
                std::vector<std::int64_t> values, std::int64_t objective)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
        // Keep the better incumbent; refresh recency either way.
        it->second.lastUse = ++clock_;
        if (objective < it->second.objective) {
            it->second.values = std::move(values);
            it->second.objective = objective;
            ++stats_.stores;
            return true;
        }
        return false;
    }
    evictIfNeeded();
    entries_[fingerprint] = {std::move(values), objective, ++clock_};
    ++stats_.stores;
    return true;
}

void
PlanMemo::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    stats_ = {};
    clock_ = 0;
}

void
PlanMemo::evictIfNeeded()
{
    if (entries_.size() < capacity_)
        return;
    // Evict the least recently used entry (linear scan: eviction is
    // rare and the map is small).
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        // Tie-break on the fingerprint so the victim never depends on
        // hash-table iteration order.
        if (it->second.lastUse < victim->second.lastUse ||
            (it->second.lastUse == victim->second.lastUse &&
             it->first < victim->first))
            victim = it;
    }
    entries_.erase(victim);
    ++stats_.evictions;
}

PlanMemo &
PlanMemo::global()
{
    static PlanMemo memo;
    return memo;
}

namespace {

/** Magic prefix of the memo file ("FMPM"). */
constexpr std::uint32_t kMemoMagic = 0x464D504D;

template <typename T>
void
putPod(std::ostream &os, T value)
{
    // memcpy through a char buffer instead of reinterpret_cast: the
    // same bytes, but type-safe by construction (no aliasing cast to
    // audit at every call site).
    static_assert(std::is_trivially_copyable_v<T>);
    char buf[sizeof(T)];
    std::memcpy(buf, &value, sizeof buf);
    os.write(buf, sizeof buf);
}

template <typename T>
bool
getPod(std::istream &is, T &value)
{
    static_assert(std::is_trivially_copyable_v<T>);
    char buf[sizeof(T)];
    if (!is.read(buf, sizeof buf))
        return false;
    std::memcpy(&value, buf, sizeof buf);
    return is.good();
}

/**
 * FNV-1a over the serialized payload (everything after magic+version).
 * The memo file lives across process lifetimes on flash, where a
 * single flipped bit in an entry body would otherwise load silently
 * and poison every warm-started plan; the checksum turns any
 * corruption into a clean cold start.
 */
class Fnv1a
{
  public:
    void
    add(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001B3ull;
        }
    }

    template <typename T>
    void
    addPod(const T &value)
    {
        add(&value, sizeof(value));
    }

    std::uint64_t digest() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

} // namespace

bool
PlanMemo::loadFromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;

    std::uint32_t magic = 0, version = 0;
    std::uint64_t count = 0, clock = 0;
    if (!getPod(in, magic) || magic != kMemoMagic ||
        !getPod(in, version) || version != kFileVersion ||
        !getPod(in, clock) || !getPod(in, count))
        return false;

    // Parse into a scratch map first so a truncated file cannot leave
    // the memo half-loaded, re-deriving the payload checksum as we go.
    Fnv1a sum;
    sum.addPod(clock);
    sum.addPod(count);
    std::unordered_map<std::uint64_t, Entry> loaded;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t fp = 0, last_use = 0, nvalues = 0;
        std::int64_t objective = 0;
        if (!getPod(in, fp) || !getPod(in, objective) ||
            !getPod(in, last_use) || !getPod(in, nvalues))
            return false;
        // Sanity bound: one OPG window has at most a few thousand
        // variables; reject absurd counts from corrupt files.
        if (nvalues > (1u << 22))
            return false;
        sum.addPod(fp);
        sum.addPod(objective);
        sum.addPod(last_use);
        sum.addPod(nvalues);
        Entry e;
        e.objective = objective;
        e.lastUse = last_use;
        e.values.resize(nvalues);
        for (auto &v : e.values) {
            if (!getPod(in, v))
                return false;
            sum.addPod(v);
        }
        loaded.emplace(fp, std::move(e));
    }

    // Trailing checksum: catches bit-flips the structural checks
    // above cannot (corrupt values, swapped entries, a stale clock).
    std::uint64_t stored_sum = 0;
    if (!getPod(in, stored_sum) || stored_sum != sum.digest())
        return false;

    std::lock_guard<std::mutex> lock(mu_);
    entries_ = std::move(loaded);
    clock_ = clock;
    // Respect the capacity bound of *this* memo, evicting LRU-first.
    while (entries_.size() > capacity_) {
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->second.lastUse < victim->second.lastUse ||
                (it->second.lastUse == victim->second.lastUse &&
                 it->first < victim->first))
                victim = it;
        }
        entries_.erase(victim);
    }
    return true;
}

bool
PlanMemo::saveToFile(const std::string &path) const
{
    // Write-then-rename so a crash mid-save never corrupts the file a
    // later launch will load.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        std::lock_guard<std::mutex> lock(mu_);
        Fnv1a sum;
        putPod(out, kMemoMagic);
        putPod(out, kFileVersion);
        putPod(out, clock_);
        sum.addPod(clock_);
        const auto count = static_cast<std::uint64_t>(entries_.size());
        putPod(out, count);
        sum.addPod(count);
        // Serialize in ascending-fingerprint order so the file bytes
        // are a pure function of the memo contents — hash-table
        // iteration order (which depends on insertion history) must
        // never reach the disk format.
        std::vector<std::uint64_t> fps;
        fps.reserve(entries_.size());
        for (const auto &kv : entries_)
            fps.push_back(kv.first);
        std::sort(fps.begin(), fps.end());
        for (const auto fp : fps) {
            const Entry &e = entries_.at(fp);
            const auto nvalues =
                static_cast<std::uint64_t>(e.values.size());
            putPod(out, fp);
            putPod(out, e.objective);
            putPod(out, e.lastUse);
            putPod(out, nvalues);
            sum.addPod(fp);
            sum.addPod(e.objective);
            sum.addPod(e.lastUse);
            sum.addPod(nvalues);
            for (const auto v : e.values) {
                putPod(out, v);
                sum.addPod(v);
            }
        }
        putPod(out, sum.digest());
        if (!out.good())
            return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

OverlapPlan
OverlapPlan::deserialize(const std::string &text)
{
    OverlapPlan plan;
    plan.schedules_.clear();
    plan.by_layer_.clear();

    std::istringstream is(text);
    std::string tag;
    std::size_t layers = 0;
    std::vector<ChunkAssignment> pending;
    while (is >> tag) {
        if (tag == "chunk") {
            is >> plan.chunk_bytes_;
        } else if (tag == "layers") {
            is >> layers;
        } else if (tag == "w") {
            WeightSchedule s;
            is >> s.weight >> s.preloadChunks >> s.earliestLoadLayer;
            plan.schedules_.push_back(s);
        } else if (tag == "x") {
            ChunkAssignment a;
            is >> a.weight >> a.layer >> a.chunks;
            pending.push_back(a);
        } else {
            FM_FATAL("overlap plan: unknown record '", tag, "'");
        }
        FM_ASSERT(!is.fail(), "overlap plan: malformed record");
    }
    graph::NodeId max_layer = 0;
    for (const auto &a : pending)
        max_layer = std::max(max_layer, a.layer);
    plan.by_layer_.resize(
        std::max<std::size_t>(layers, max_layer + 1));
    for (const auto &a : pending)
        plan.by_layer_[a.layer].push_back(a);
    return plan;
}

} // namespace flashmem::core
