/**
 * @file
 * The overlap plan: the artifact LC-OPG produces offline and the runtime
 * consumes (paper Section 3). For every weight it records how many
 * chunks are preloaded at initialization, which layers transform the
 * remaining chunks inline (the x_{w,l} assignments), and the earliest
 * disk-load layer z_w.
 */

#ifndef FLASHMEM_CORE_OVERLAP_PLAN_HH
#define FLASHMEM_CORE_OVERLAP_PLAN_HH

#include <string>
#include <vector>

#include "core/weight_slicer.hh"
#include "graph/graph.hh"

namespace flashmem::core {

/** x_{w,l}: chunks of one weight transformed inline by one layer. */
struct ChunkAssignment
{
    graph::WeightId weight = -1;
    graph::NodeId layer = graph::kInvalidNode;
    std::int64_t chunks = 0;
};

/** Per-weight schedule extracted from the solver. */
struct WeightSchedule
{
    graph::WeightId weight = -1;
    /** Chunks loaded + transformed during initialization (subset of W;
     * equal to T(w) means the weight is fully in the preload set). */
    std::int64_t preloadChunks = 0;
    /** z_w: layer whose start triggers the disk read for the streamed
     * chunks; kInvalidNode when everything is preloaded. */
    graph::NodeId earliestLoadLayer = graph::kInvalidNode;
};

/** Complete overlap plan for one (possibly fused) graph. */
class OverlapPlan
{
  public:
    OverlapPlan() = default;
    OverlapPlan(const graph::Graph &g, Bytes chunk_bytes);

    Bytes chunkBytes() const { return chunk_bytes_; }

    /** @name Construction (planner-side). @{ */
    void setPreloadChunks(graph::WeightId w, std::int64_t chunks);
    void setEarliestLoad(graph::WeightId w, graph::NodeId layer);
    void addAssignment(graph::WeightId w, graph::NodeId layer,
                       std::int64_t chunks);
    /** @} */

    /** @name Queries (runtime-side). @{ */
    const WeightSchedule &schedule(graph::WeightId w) const;
    /** Assignments executed by layer @p l, in weight order. */
    const std::vector<ChunkAssignment> &assignmentsAt(
        graph::NodeId l) const;
    /** Total bytes the init phase preloads (the |W| memory term). */
    Bytes preloadBytes(const graph::Graph &g) const;
    /** Bytes streamed inline (not preloaded). */
    Bytes streamedBytes(const graph::Graph &g) const;
    /** Fraction of weight bytes streamed via overlap (Figure 8). */
    double overlapFraction(const graph::Graph &g) const;
    /** Inline bytes layer @p l transforms. */
    Bytes inlineBytesAt(const graph::Graph &g, graph::NodeId l) const;
    /** @} */

    /**
     * Check plan invariants against @p g:
     *  C0 — every weight's chunks are fully covered by preload +
     *       assignments;
     *  C1 — z_w is no later than the first assigned layer;
     *  assignments land strictly before the consuming layer.
     */
    bool validate(const graph::Graph &g, bool fatal_on_error = true) const;

    /** One-line human summary. */
    std::string summary(const graph::Graph &g) const;

    /** Stable text serialization (one record per line). */
    std::string serialize() const;
    /** Parse serialize() output; fatal on malformed input. */
    static OverlapPlan deserialize(const std::string &text);

  private:
    Bytes chunk_bytes_ = mib(1);
    std::vector<WeightSchedule> schedules_;          // by WeightId
    std::vector<std::vector<ChunkAssignment>> by_layer_; // by NodeId
};

} // namespace flashmem::core

#endif // FLASHMEM_CORE_OVERLAP_PLAN_HH
