/**
 * @file
 * The overlap plan: the artifact LC-OPG produces offline and the runtime
 * consumes (paper Section 3). For every weight it records how many
 * chunks are preloaded at initialization, which layers transform the
 * remaining chunks inline (the x_{w,l} assignments), and the earliest
 * disk-load layer z_w.
 */

#ifndef FLASHMEM_CORE_OVERLAP_PLAN_HH
#define FLASHMEM_CORE_OVERLAP_PLAN_HH

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/weight_slicer.hh"
#include "graph/graph.hh"

namespace flashmem::core {

/** x_{w,l}: chunks of one weight transformed inline by one layer. */
struct ChunkAssignment
{
    graph::WeightId weight = -1;
    graph::NodeId layer = graph::kInvalidNode;
    std::int64_t chunks = 0;
};

/** Per-weight schedule extracted from the solver. */
struct WeightSchedule
{
    graph::WeightId weight = -1;
    /** Chunks loaded + transformed during initialization (subset of W;
     * equal to T(w) means the weight is fully in the preload set). */
    std::int64_t preloadChunks = 0;
    /** z_w: layer whose start triggers the disk read for the streamed
     * chunks; kInvalidNode when everything is preloaded. */
    graph::NodeId earliestLoadLayer = graph::kInvalidNode;
};

/** Complete overlap plan for one (possibly fused) graph. */
class OverlapPlan
{
  public:
    OverlapPlan() = default;
    OverlapPlan(const graph::Graph &g, Bytes chunk_bytes);

    Bytes chunkBytes() const { return chunk_bytes_; }

    /** @name Construction (planner-side). @{ */
    void setPreloadChunks(graph::WeightId w, std::int64_t chunks);
    void setEarliestLoad(graph::WeightId w, graph::NodeId layer);
    void addAssignment(graph::WeightId w, graph::NodeId layer,
                       std::int64_t chunks);
    /** @} */

    /** @name Queries (runtime-side). @{ */
    const WeightSchedule &schedule(graph::WeightId w) const;
    /** Assignments executed by layer @p l, in weight order. */
    const std::vector<ChunkAssignment> &assignmentsAt(
        graph::NodeId l) const;
    /** Total bytes the init phase preloads (the |W| memory term). */
    Bytes preloadBytes(const graph::Graph &g) const;
    /** Bytes streamed inline (not preloaded). */
    Bytes streamedBytes(const graph::Graph &g) const;
    /** Fraction of weight bytes streamed via overlap (Figure 8). */
    double overlapFraction(const graph::Graph &g) const;
    /** Inline bytes layer @p l transforms. */
    Bytes inlineBytesAt(const graph::Graph &g, graph::NodeId l) const;
    /** @} */

    /**
     * Check plan invariants against @p g:
     *  C0 — every weight's chunks are fully covered by preload +
     *       assignments;
     *  C1 — z_w is no later than the first assigned layer;
     *  assignments land strictly before the consuming layer.
     */
    bool validate(const graph::Graph &g, bool fatal_on_error = true) const;

    /** One-line human summary. */
    std::string summary(const graph::Graph &g) const;

    /** Stable text serialization (one record per line). */
    std::string serialize() const;
    /** Parse serialize() output; fatal on malformed input. */
    static OverlapPlan deserialize(const std::string &text);

  private:
    Bytes chunk_bytes_ = mib(1);
    std::vector<WeightSchedule> schedules_;          // by WeightId
    std::vector<std::vector<ChunkAssignment>> by_layer_; // by NodeId
};

/**
 * Memo of CP incumbents keyed by CpModel fingerprint.
 *
 * Repeated planning calls — capacity sweeps, multi-model workloads,
 * adaptive-fusion rounds that leave most windows untouched — rebuild
 * byte-identical CP models. The memo hands the previous incumbent back
 * as a warm-start hint, so the solver starts with a tight bound (and,
 * for a previously proven optimum, often only has to re-prove
 * optimality). Entries are validated against the model before use, so a
 * fingerprint collision costs only a discarded hint, never correctness.
 *
 * Bounded LRU; the global() instance is shared process-wide and
 * internally synchronized (lookup() hands back a copy, never a pointer
 * into the map), so concurrent window solves can share it. Note that
 * warm starts make budget-truncated planning history-dependent within
 * a process: equal-footing A/B comparisons should clear() between arms
 * (see bench_fig7 / ablation tests).
 *
 * A memo constructed with @p memoPath is file-backed: entries load on
 * construction (silently starting empty when the file is missing,
 * corrupt, or a different format version) and save on destruction, so
 * CLI tools and benches warm-start across process launches. The file
 * is a versioned binary keyed by CpModel fingerprint.
 */
class PlanMemo
{
  public:
    explicit PlanMemo(std::size_t capacity = 1024,
                      std::string memoPath = {})
        : capacity_(std::max<std::size_t>(capacity, 1)),
          memo_path_(std::move(memoPath))
    {
        if (!memo_path_.empty())
            loadFromFile(memo_path_);
    }

    ~PlanMemo()
    {
        if (!memo_path_.empty())
            saveToFile(memo_path_);
    }

    PlanMemo(const PlanMemo &) = delete;
    PlanMemo &operator=(const PlanMemo &) = delete;

    /** Cached incumbent for @p fingerprint, if any. */
    std::optional<std::vector<std::int64_t>> lookup(
        std::uint64_t fingerprint);

    /**
     * Remember @p values as the incumbent for @p fingerprint.
     * @return true if the entry was inserted or improved; false when
     * an existing entry with an equal-or-better objective was kept.
     */
    bool store(std::uint64_t fingerprint,
               std::vector<std::int64_t> values,
               std::int64_t objective);

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return entries_.size();
    }
    std::size_t capacity() const { return capacity_; }
    void clear();

    /** Hit/miss/store counters since construction (or clear()). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
        std::uint64_t evictions = 0;
    };
    Stats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return stats_;
    }

    /** Process-wide memo shared by all planners. */
    static PlanMemo &global();

    /**
     * Replace the contents with the entries serialized in @p path.
     * @return false — leaving the previous contents untouched — when
     * the file is absent, truncated, fails its payload checksum
     * (bit-flips anywhere in the body), or is not a supported format
     * version. A rejected file is never partially loaded: the caller
     * simply cold-starts with an empty memo.
     */
    bool loadFromFile(const std::string &path);

    /** Serialize every entry to @p path (versioned, checksummed
     * binary). */
    bool saveToFile(const std::string &path) const;

    /** Backing file ("" when the memo is memory-only). */
    const std::string &memoPath() const { return memo_path_; }

    /** On-disk format version written by saveToFile(). Version 2
     * added a trailing FNV-1a checksum over the payload; version-1
     * files are rejected (cold start) rather than trusted unchecked. */
    static constexpr std::uint32_t kFileVersion = 2;

  private:
    struct Entry
    {
        std::vector<std::int64_t> values;
        std::int64_t objective = 0;
        std::uint64_t lastUse = 0;
    };

    void evictIfNeeded(); // caller holds mu_

    const std::size_t capacity_;
    const std::string memo_path_;
    mutable std::mutex mu_;
    std::uint64_t clock_ = 0;
    std::unordered_map<std::uint64_t, Entry> entries_;
    Stats stats_;
};

} // namespace flashmem::core

#endif // FLASHMEM_CORE_OVERLAP_PLAN_HH
