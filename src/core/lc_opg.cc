#include "core/lc_opg.hh"

#include <algorithm>
#include <chrono>
#include <future>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "solver/model.hh"
#include "solver/symmetry.hh"

namespace flashmem::core {

namespace {

double
// FMLINT(allow:no-wall-clock) reported PlanStats timings only; plan content never reads the clock
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               // FMLINT(allow:no-wall-clock) reported PlanStats timings only; plan content never reads the clock
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Objective scaling: lambda/mu mapped onto integer coefficients. */
constexpr std::int64_t kObjScale = 100;

/**
 * Ledger-checked chunk placement step shared by the greedy warm start,
 * the merge-time clamp, and the re-balancing pass: take up to @p want
 * chunks of a weight consumed at @p consumer at layer @p l, bounded by
 * the layer's residual capacity and the in-flight headroom over
 * [l, consumer), committing the take to both ledgers.
 * @return chunks actually taken (0 when the layer cannot help).
 */
std::int64_t
takeAtLayer(graph::NodeId l, graph::NodeId consumer, std::int64_t want,
            std::int64_t mpeak_chunks,
            std::vector<std::int64_t> &residual,
            std::vector<std::int64_t> &inflight)
{
    std::int64_t take = std::min(want, residual[l]);
    for (graph::NodeId p = l; p < consumer && take > 0; ++p)
        take = std::min(take, mpeak_chunks - inflight[p]);
    if (take <= 0)
        return 0;
    residual[l] -= take;
    for (graph::NodeId p = l; p < consumer; ++p)
        inflight[p] += take;
    return take;
}

} // namespace

LcOpgPlanner::LcOpgPlanner(const graph::Graph &g,
                           const profiler::CapacityProvider &capacity,
                           const gpusim::KernelModel &kernel_model,
                           OpgParams params)
    : g_(g), capacity_(capacity), kernel_model_(kernel_model),
      params_(params), slicer_(params.chunkBytes)
{
    FM_ASSERT(params_.windowLayers > 0 && params_.maxLoadDistance > 0,
              "bad OPG window parameters");
}

void
LcOpgPlanner::processNodes()
{
    const auto layers = static_cast<graph::NodeId>(g_.layerCount());
    specs_.reserve(layers);
    capacity_chunks_.assign(layers, 0);
    for (graph::NodeId l = 0; l < layers; ++l) {
        auto spec = gpusim::kernelSpecFor(g_, l, true);
        spec.pipelined = true;
        capacity_chunks_[l] =
            capacity_.capacityChunks(spec, params_.chunkBytes);
        specs_.push_back(std::move(spec));
    }
    chunk_count_.resize(g_.weightCount());
    for (std::size_t w = 0; w < g_.weightCount(); ++w)
        chunk_count_[w] = slicer_.chunkCount(g_.weight(
            static_cast<graph::WeightId>(w)));

    // Explicit preload list: pin weights (consumer order) into W until
    // the requested fraction of bytes is covered.
    pinned_preload_.assign(g_.weightCount(), false);
    if (params_.minPreloadFraction > 0.0) {
        auto target = static_cast<Bytes>(
            params_.minPreloadFraction *
            static_cast<double>(g_.totalWeightBytes()));
        std::vector<graph::WeightId> order;
        for (const auto &w : g_.weights())
            order.push_back(w.id);
        std::sort(order.begin(), order.end(),
                  [&](graph::WeightId a, graph::WeightId b) {
                      return g_.weight(a).consumer <
                             g_.weight(b).consumer;
                  });
        Bytes covered = 0;
        for (auto wid : order) {
            if (covered >= target)
                break;
            pinned_preload_[wid] = true;
            covered += g_.weight(wid).bytes();
        }
    }
}

LcOpgPlanner::GreedyOut
LcOpgPlanner::greedyAssign(
    const std::vector<graph::WeightId> &weights,
    const std::vector<std::int64_t> &residual_capacity,
    const std::vector<std::int64_t> &inflight_used) const
{
    const std::int64_t mpeak_chunks = static_cast<std::int64_t>(
        params_.mPeak / params_.chunkBytes);
    auto residual = residual_capacity;
    auto inflight = inflight_used;

    GreedyOut out;
    out.assignments.resize(weights.size());
    out.preload.assign(weights.size(), 0);

    for (std::size_t k = 0; k < weights.size(); ++k) {
        const auto &w = g_.weight(weights[k]);
        std::int64_t remaining = chunk_count_[weights[k]];
        graph::NodeId lo = std::max<graph::NodeId>(
            0, w.consumer - params_.maxLoadDistance);
        // Latest-feasible placement: walk back from the consumer so
        // chunks arrive as close to their use as capacity allows.
        for (graph::NodeId l = w.consumer - 1; l >= lo && remaining > 0;
             --l) {
            std::int64_t take = takeAtLayer(l, w.consumer, remaining,
                                            mpeak_chunks, residual,
                                            inflight);
            if (take <= 0)
                continue;
            out.assignments[k].push_back({l, take});
            remaining -= take;
        }
        out.preload[k] = remaining;
    }
    return out;
}

LcOpgPlanner::WindowInput
LcOpgPlanner::stageWindow(graph::NodeId start, graph::NodeId end,
                          std::vector<std::int64_t> &staging_residual,
                          std::vector<std::int64_t> &staging_inflight)
    const
{
    WindowInput in;
    in.start = start;
    in.end = end;

    // Weights consumed inside this window, in consumer order (pinned
    // preload-list weights are handled by plan() directly).
    for (const auto &w : g_.weights()) {
        if (w.consumer >= start && w.consumer < end &&
            !pinned_preload_[w.id])
            in.weights.push_back(w.id);
    }
    if (in.weights.empty())
        return in;
    std::sort(in.weights.begin(), in.weights.end(),
              [&](graph::WeightId a, graph::WeightId b) {
                  return g_.weight(a).consumer < g_.weight(b).consumer;
              });

    // Candidate transform layers per weight (earlier windows allowed
    // through whatever staged residual capacity they left behind).
    in.cands.resize(in.weights.size());
    in.minCand = end;
    for (std::size_t k = 0; k < in.weights.size(); ++k) {
        const auto &w = g_.weight(in.weights[k]);
        graph::NodeId lo = std::max<graph::NodeId>(
            0, w.consumer - params_.maxLoadDistance);
        for (graph::NodeId l = lo; l < w.consumer; ++l) {
            if (staging_residual[l] > 0) {
                in.cands[k].push_back(l);
                in.minCand = std::min(in.minCand, l);
            }
        }
    }

    in.greedy = greedyAssign(in.weights, staging_residual,
                             staging_inflight);
    in.residual = staging_residual;
    in.inflight = staging_inflight;

    // Reserve the greedy's capacity in the staging ledgers: windows
    // staged after this one see the expected usage of this window, so
    // their solves can start before this window's solver finishes.
    const auto &w_list = in.weights;
    for (std::size_t k = 0; k < w_list.size(); ++k) {
        const auto consumer = g_.weight(w_list[k]).consumer;
        for (const auto &[l, c] : in.greedy.assignments[k]) {
            staging_residual[l] -= c;
            for (graph::NodeId p = l; p < consumer; ++p)
                staging_inflight[p] += c;
        }
    }
    return in;
}

LcOpgPlanner::RoundModel
LcOpgPlanner::buildWindowModel(const WindowInput &in, double relax,
                               const std::vector<bool> &forced) const
{
    // FMLINT(allow:no-wall-clock) reported PlanStats timings only; plan content never reads the clock
    auto build_t0 = std::chrono::steady_clock::now();
    const std::int64_t mpeak_chunks = static_cast<std::int64_t>(
        params_.mPeak / params_.chunkBytes);

    const auto &weights = in.weights;
    const auto &cands = in.cands;
    const auto &greedy = in.greedy;
    const graph::NodeId end = in.end;
    const graph::NodeId min_cand = in.minCand;

    RoundModel rm;
    solver::CpModel &m = rm.model;
    std::vector<solver::VarId> &y_vars = rm.y_vars;
    std::vector<solver::VarId> &z_vars = rm.z_vars;
    std::vector<std::vector<solver::VarId>> &x_vars = rm.x_vars;
    std::vector<std::int64_t> &hint = rm.hint;
    y_vars.resize(weights.size());
    z_vars.assign(weights.size(), -1);
    x_vars.resize(weights.size());

    std::vector<solver::LinearTerm> objective;
    for (std::size_t k = 0; k < weights.size(); ++k) {
        const auto &w = g_.weight(weights[k]);
        std::int64_t t_w = chunk_count_[weights[k]];
        std::int64_t y_lo = forced[k] ? t_w : 0;
        y_vars[k] = m.newIntVar(y_lo, t_w, w.name + ".preload");
        hint.push_back(forced[k] ? t_w : greedy.preload[k]);
        // lambda-weighted preload cost.
        objective.push_back(
            {y_vars[k], static_cast<std::int64_t>(
                            params_.lambda * kObjScale)});

        std::vector<solver::LinearTerm> coverage{{y_vars[k], 1}};
        for (auto l : cands[k]) {
            std::int64_t cap = std::min<std::int64_t>(
                {t_w,
                 static_cast<std::int64_t>(
                     static_cast<double>(in.residual[l]) *
                     relax),
                 mpeak_chunks});
            auto x = m.newIntVar(0, std::max<std::int64_t>(cap,
                                                           0));
            x_vars[k].push_back(x);
            coverage.push_back({x, 1});
            // Tie-break: transform close to the consumer.
            objective.push_back({x, w.consumer - l - 1});
            std::int64_t hint_x = 0;
            if (!forced[k]) {
                for (auto &[gl, gc] : greedy.assignments[k]) {
                    if (gl == l)
                        hint_x = gc;
                }
            }
            hint.push_back(hint_x);
        }
        // C0: completeness of allocation.
        m.addEquality(coverage, t_w);

        // z_w and C1 implications (streamed weights only).
        if (!cands[k].empty()) {
            graph::NodeId z_lo = std::max<graph::NodeId>(
                0, w.consumer - params_.maxLoadDistance);
            z_vars[k] =
                m.newIntVar(z_lo, w.consumer, w.name + ".z");
            // mu-weighted loading distance i_w - z_w.
            objective.push_back(
                {z_vars[k], -static_cast<std::int64_t>(
                                params_.mu * kObjScale)});
            for (std::size_t j = 0; j < cands[k].size(); ++j) {
                m.addImplicationGeLe(x_vars[k][j], 1, z_vars[k],
                                     cands[k][j]);
            }
            graph::NodeId hint_z = w.consumer;
            if (!forced[k] && !greedy.assignments[k].empty()) {
                for (auto &[gl, gc] : greedy.assignments[k])
                    hint_z = std::min(hint_z, gl);
            }
            hint.push_back(hint_z);
        }
    }

    // C3: per-layer load capacity.
    for (graph::NodeId l = min_cand; l < end && min_cand < end;
         ++l) {
        std::vector<solver::LinearTerm> col;
        for (std::size_t k = 0; k < weights.size(); ++k) {
            for (std::size_t j = 0; j < cands[k].size(); ++j) {
                if (cands[k][j] == l)
                    col.push_back({x_vars[k][j], 1});
            }
        }
        if (!col.empty()) {
            m.addLessOrEqual(
                col, static_cast<std::int64_t>(
                         static_cast<double>(in.residual[l]) *
                         relax));
        }
    }

    // C2: in-flight transformed-but-unconsumed memory.
    for (graph::NodeId p = min_cand; p < end && min_cand < end;
         ++p) {
        std::vector<solver::LinearTerm> inflight;
        for (std::size_t k = 0; k < weights.size(); ++k) {
            if (g_.weight(weights[k]).consumer <= p)
                continue;
            for (std::size_t j = 0; j < cands[k].size(); ++j) {
                if (cands[k][j] <= p)
                    inflight.push_back({x_vars[k][j], 1});
            }
        }
        if (!inflight.empty()) {
            m.addLessOrEqual(inflight, std::max<std::int64_t>(
                                           mpeak_chunks -
                                               in.inflight[p],
                                           0));
        }
    }

    m.minimize(objective);

    // Symmetry breaking: group verified-interchangeable weight blocks
    // (y, x..., z) and chain them with leader-function orderings. Runs
    // before the memo fingerprint so cached incumbents are keyed to —
    // and therefore satisfy — the symmetry-broken model.
    if (params_.symmetryBreaking) {
        std::vector<solver::VarBlock> blocks(weights.size());
        for (std::size_t k = 0; k < weights.size(); ++k) {
            auto &b = blocks[k].vars;
            b.reserve(2 + x_vars[k].size());
            b.push_back(y_vars[k]);
            b.insert(b.end(), x_vars[k].begin(), x_vars[k].end());
            if (z_vars[k] >= 0)
                b.push_back(z_vars[k]);
        }
        const auto groups = solver::groupInterchangeableBlocks(m, blocks);
        if (!groups.empty()) {
            rm.lexRows = solver::addSymmetryBreaking(m, blocks, groups);
            solver::canonicalizeHint(m, blocks, groups, hint);
        }
    }

    // Plan memo: a previously solved window with this exact model
    // reuses its incumbent as the warm start, which is at least as
    // good as the greedy hint. Validation guards against fingerprint
    // collisions: an entry that does not satisfy this model is
    // ignored, keeping the greedy hint. Lookups see only pre-plan()
    // memo state (stores from this plan are buffered until the
    // ordered merge), so window results cannot depend on solve
    // completion order.
    if (params_.planMemo) {
        rm.fingerprint = m.fingerprint();
        auto cached = memoRef().lookup(rm.fingerprint);
        if (cached && m.satisfiedBy(*cached)) {
            hint = std::move(*cached);
            rm.memoHit = true;
        }
    }
    rm.buildSeconds = secondsSince(build_t0);
    return rm;
}

bool
LcOpgPlanner::interpretRound(WindowSolveState &st,
                             const solver::PortfolioResult &pr) const
{
    const WindowInput &in = *st.in;
    WindowResult &result = st.out.result;
    const bool portfolio = params_.portfolioConfigs > 1;
    const solver::SolveResult &r = pr.result;

    result.buildSeconds += st.rm.buildSeconds;
    result.lexRows += st.rm.lexRows;
    if (st.rm.memoHit)
        ++result.memoHits;
    result.solveSeconds += r.wallSeconds;
    if (portfolio) {
        // The raw totals below sum work across configurations, and a
        // cancelled configuration stops at a timing-dependent point —
        // so the summary counters (which feed solver_window trace
        // events) take the winner's improvement snapshots instead:
        // those freeze inside the winner's uninterfered prefix and
        // are byte-deterministic for any pool size.
        result.decisions += r.improveDecisions;
        result.propagations += r.improvePropagations;
        result.conflicts += r.improveBacktracks;
        result.restarts += r.improveRestarts;
    } else {
        result.decisions += r.decisions;
        result.propagations += r.propagations;
        result.conflicts += r.backtracks;
        result.restarts += r.restarts;
    }
    result.status = r.status;
    result.winningConfig = pr.winningConfig;
    if (result.configConflicts.size() < pr.outcomes.size())
        result.configConflicts.resize(pr.outcomes.size(), 0);
    for (const auto &o : pr.outcomes)
        result.configConflicts[o.config] += o.result.backtracks;

    // The merged (winner's) incumbent seeds the memo, so warm starts
    // inherit portfolio wins.
    if (params_.planMemo && r.feasible())
        st.out.memoStores.push_back(
            {st.rm.fingerprint, r.values, r.objective});

    if (!r.feasible()) {
        // Tier 1: soft-threshold relaxation of C_l.
        if (st.round < params_.maxFallbackRounds) {
            st.relax *= params_.softThresholdGrowth;
            ++result.softRelaxations;
            ++st.round;
            return false;
        }
        applyGreedy(in, st.out);
        return true;
    }

    // Extract candidate solution.
    const auto &weights = in.weights;
    auto &extracted_preload = st.out.preload;
    auto &extracted_assign = st.out.assign;
    auto &extracted_z = st.out.z;
    extracted_preload.assign(weights.size(), 0);
    extracted_assign.assign(weights.size(), {});
    Bytes window_bytes = 0, preload_bytes = 0;
    for (std::size_t k = 0; k < weights.size(); ++k) {
        extracted_preload[k] = r.value(st.rm.y_vars[k]);
        window_bytes += g_.weight(weights[k]).bytes();
        preload_bytes += slicer_.bytesForChunks(g_.weight(weights[k]),
                                                extracted_preload[k]);
        for (std::size_t j = 0; j < in.cands[k].size(); ++j) {
            auto v = r.value(st.rm.x_vars[k][j]);
            if (v > 0)
                extracted_assign[k].push_back({in.cands[k][j], v});
        }
        if (st.rm.z_vars[k] >= 0 && !extracted_assign[k].empty())
            extracted_z[k] = static_cast<graph::NodeId>(
                r.value(st.rm.z_vars[k]));
    }

    // Tier 2: if capacity pressure forced most of the window into W,
    // pin the heaviest offender and re-solve so the solver
    // redistributes the rest.
    double preload_frac =
        window_bytes ? static_cast<double>(preload_bytes) / window_bytes
                     : 0.0;
    if (preload_frac > 0.8 && st.round < params_.maxFallbackRounds) {
        std::size_t worst = 0;
        std::int64_t worst_chunks = -1;
        for (std::size_t k = 0; k < weights.size(); ++k) {
            if (!st.forced[k] && extracted_preload[k] > worst_chunks) {
                worst_chunks = extracted_preload[k];
                worst = k;
            }
        }
        if (worst_chunks > 0) {
            st.forced[worst] = true;
            ++result.forcedPreloads;
            ++st.round;
            return false;
        }
    }
    return true;
}

void
LcOpgPlanner::applyGreedy(const WindowInput &in, WindowOutput &out) const
{
    out.result.usedGreedy = true;
    out.preload = in.greedy.preload;
    out.assign = in.greedy.assignments;
    if (out.z.size() != in.weights.size())
        out.z.assign(in.weights.size(), graph::kInvalidNode);
    for (std::size_t k = 0; k < in.weights.size(); ++k) {
        graph::NodeId z = g_.weight(in.weights[k]).consumer;
        for (auto &[l, c] : out.assign[k])
            z = std::min(z, l);
        out.z[k] =
            out.assign[k].empty() ? graph::kInvalidNode : z;
    }
    out.result.status = solver::SolveStatus::Feasible;
}

void
LcOpgPlanner::commitWindow(const WindowInput &in, WindowOutput &out,
                           OverlapPlan &plan, PlanStats &stats)
{
    const std::int64_t mpeak_chunks = static_cast<std::int64_t>(
        params_.mPeak / params_.chunkBytes);

    // Commit into the plan and the authoritative ledgers, clamping to
    // what is really left: a window may have solved against a staged
    // snapshot that an earlier window's solver overshot (relative to
    // its greedy reservation), and the overflow moves to preload.
    for (std::size_t k = 0; k < in.weights.size(); ++k) {
        auto wid = in.weights[k];
        const auto &w = g_.weight(wid);
        std::int64_t preload = out.preload[k];
        graph::NodeId first_kept = graph::kInvalidNode;
        std::vector<std::pair<graph::NodeId, std::int64_t>> kept;
        kept.reserve(out.assign[k].size());
        for (auto &[l, c] : out.assign[k]) {
            std::int64_t take =
                takeAtLayer(l, w.consumer, c, mpeak_chunks,
                            residual_capacity_, inflight_used_);
            preload += c - take;
            if (take <= 0)
                continue;
            kept.push_back({l, take});
            if (first_kept == graph::kInvalidNode || l < first_kept)
                first_kept = l;
        }
        plan.setPreloadChunks(wid, preload);
        for (auto &[l, c] : kept)
            plan.addAssignment(wid, l, c);
        if (!kept.empty()) {
            // z_w from the solver when it survives the clamp (C1
            // guarantees z <= first assigned layer); first kept layer
            // otherwise.
            graph::NodeId z = out.z[k];
            if (z == graph::kInvalidNode || z > first_kept)
                z = first_kept;
            plan.setEarliestLoad(wid, z);
        }
    }

    // Flush buffered memo writes in window order.
    for (auto &s : out.memoStores) {
        if (memoRef().store(s.fingerprint, std::move(s.values),
                            s.objective))
            ++stats.memoStores;
    }
    out.memoStores.clear();
}

void
LcOpgPlanner::rebalanceMerge(OverlapPlan &plan, PlanStats &stats)
{
    const std::int64_t mpeak_chunks = static_cast<std::int64_t>(
        params_.mPeak / params_.chunkBytes);

    // Consumer order (id tie-break): deterministic, and the order the
    // windows themselves committed in, so top-ups drain leftover
    // capacity front to back exactly like a third merge phase.
    std::vector<graph::WeightId> order;
    for (const auto &w : g_.weights()) {
        if (!pinned_preload_[w.id] &&
            plan.schedule(w.id).preloadChunks > 0 && w.consumer > 0)
            order.push_back(w.id);
    }
    std::sort(order.begin(), order.end(),
              [&](graph::WeightId a, graph::WeightId b) {
                  auto ca = g_.weight(a).consumer;
                  auto cb = g_.weight(b).consumer;
                  return ca != cb ? ca < cb : a < b;
              });

    for (auto wid : order) {
        const auto &w = g_.weight(wid);
        const auto &s = plan.schedule(wid);
        std::int64_t preload = s.preloadChunks;
        const std::int64_t before = preload;
        graph::NodeId first_added = graph::kInvalidNode;
        graph::NodeId lo = std::max<graph::NodeId>(
            0, w.consumer - params_.maxLoadDistance);
        // Latest-feasible placement, mirroring the greedy warm start.
        for (graph::NodeId l = w.consumer - 1; l >= lo && preload > 0;
             --l) {
            std::int64_t take =
                takeAtLayer(l, w.consumer, preload, mpeak_chunks,
                            residual_capacity_, inflight_used_);
            if (take <= 0)
                continue;
            plan.addAssignment(wid, l, take);
            preload -= take;
            stats.rebalancedChunks += take;
            if (first_added == graph::kInvalidNode || l < first_added)
                first_added = l;
        }
        if (preload == before)
            continue;
        ++stats.rebalancedWeights;
        plan.setPreloadChunks(wid, preload);
        // C1: z_w covers the new (possibly earlier) first transform.
        graph::NodeId z = s.earliestLoadLayer;
        if (z == graph::kInvalidNode || first_added < z)
            z = first_added;
        plan.setEarliestLoad(wid, z);
    }
}

PlanMemo &
LcOpgPlanner::memoRef() const
{
    return params_.memo ? *params_.memo : PlanMemo::global();
}

OverlapPlan
LcOpgPlanner::plan(PlanStats *stats)
{
    PlanStats local;
    // FMLINT(allow:no-wall-clock) reported PlanStats timings only; plan content never reads the clock
    auto t0 = std::chrono::steady_clock::now();
    if (!processed_) {
        processNodes();
        processed_ = true;
    }
    // Authoritative ledgers are per-plan state, reset on every call so
    // replan() can reuse the (budget-independent) graph analysis.
    residual_capacity_ = capacity_chunks_;
    inflight_used_.assign(g_.layerCount(), 0);
    local.processNodesSeconds = secondsSince(t0);

    OverlapPlan plan(g_, params_.chunkBytes);
    for (std::size_t w = 0; w < g_.weightCount(); ++w) {
        if (pinned_preload_[w]) {
            plan.setPreloadChunks(static_cast<graph::WeightId>(w),
                                  chunk_count_[w]);
        }
    }
    // Phase 1 — stage: sequential pass computing every window's inputs
    // against the staging ledgers (greedy reservations decouple the
    // windows from each other).
    // FMLINT(allow:no-wall-clock) reported PlanStats timings only; plan content never reads the clock
    auto stage_t0 = std::chrono::steady_clock::now();
    const auto layers = static_cast<graph::NodeId>(g_.layerCount());
    std::vector<WindowInput> inputs;
    {
        auto staging_residual = capacity_chunks_;
        std::vector<std::int64_t> staging_inflight(layers, 0);
        for (graph::NodeId start = 0; start < layers;
             start += params_.windowLayers) {
            graph::NodeId end =
                std::min<graph::NodeId>(start + params_.windowLayers,
                                        layers);
            inputs.push_back(stageWindow(start, end, staging_residual,
                                         staging_inflight));
        }
    }
    local.stageSeconds = secondsSince(stage_t0);

    // Phase 2 — solve: flattened (window x config) solve tasks run
    // concurrently on one pool; the main thread drives each window's
    // fallback-round state machine and consumes results in submission
    // (window) order, so downstream phases never observe completion
    // order. With portfolioConfigs > 1, each round races K solver
    // configurations over the same model (solver/portfolio.hh); the
    // merged result is byte-identical for any thread count.
    const int threads =
        params_.parallel.threads > 0
            ? params_.parallel.threads
            : ThreadPool::defaultThreadCount();
    local.threads = threads;
    // FMLINT(allow:no-wall-clock) reported PlanStats timings only; plan content never reads the clock
    auto solve_t0 = std::chrono::steady_clock::now();
    const int configs = std::max(1, params_.portfolioConfigs);
    std::vector<WindowOutput> outputs;
    outputs.reserve(inputs.size());
    {
        ThreadPool pool(threads);
        std::vector<WindowSolveState> states(inputs.size());
        solver::SolverParams sp;
        sp.timeLimitSeconds = params_.solverTimePerWindow;
        sp.maxDecisions = params_.solverDecisionsPerWindow;
        sp.engine = params_.solverEngine;
        sp.restartConflictBase = params_.restartConflictBase;
        auto submitRound = [&](WindowSolveState &st) {
            st.rm = buildWindowModel(*st.in, st.relax, st.forced);
            // Fresh board per round: fallback rounds solve a different
            // model, so a previous round's proven bound must not leak.
            if (configs > 1)
                st.board = std::make_unique<solver::PortfolioBoard>();
            st.futures.clear();
            for (int k = 0; k < configs; ++k) {
                st.futures.push_back(pool.submit([&st, sp, k]() {
                    return solver::solvePortfolioConfig(
                        st.rm.model, sp, k, st.board.get(), &st.rm.hint);
                }));
            }
        };
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            WindowSolveState &st = states[i];
            st.in = &inputs[i];
            const auto &in = inputs[i];
            if (in.weights.empty()) {
                st.done = true;
                continue;
            }
            st.forced.assign(in.weights.size(), false);
            st.out.z.assign(in.weights.size(), graph::kInvalidNode);
            // Tier 3 guard: skip the solver outright for degenerate
            // over-wide windows (solver cost grows superlinearly).
            std::size_t var_estimate = 0;
            for (const auto &c : in.cands)
                var_estimate += c.size() + 2;
            if (var_estimate > 2000) {
                applyGreedy(in, st.out);
                st.done = true;
                continue;
            }
            submitRound(st);
        }
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            WindowSolveState &st = states[i];
            while (!st.done) {
                std::vector<solver::PortfolioOutcome> outcomes;
                outcomes.reserve(st.futures.size());
                for (auto &f : st.futures)
                    outcomes.push_back(f.get());
                st.futures.clear();
                if (interpretRound(
                        st, solver::mergePortfolio(std::move(outcomes))))
                    st.done = true;
                else
                    submitRound(st);
            }
            outputs.push_back(std::move(st.out));
        }
    }
    local.solveSeconds = secondsSince(solve_t0);

    // Phase 3 — merge: commit in window order into the plan and the
    // authoritative ledgers (and flush the buffered memo writes).
    // FMLINT(allow:no-wall-clock) reported PlanStats timings only; plan content never reads the clock
    auto merge_t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < inputs.size(); ++i)
        commitWindow(inputs[i], outputs[i], plan, local);
    // Second merge pass: top up budget-truncated windows from capacity
    // earlier windows reserved greedily but did not use.
    if (params_.mergeRebalance)
        rebalanceMerge(plan, local);
    local.mergeSeconds = secondsSince(merge_t0);

    local.windowSummaries.reserve(outputs.size());
    for (const auto &out : outputs) {
        const auto &wr = out.result;
        PlanStats::WindowSolveSummary s;
        s.window = local.windows;
        s.status = wr.status;
        s.usedGreedy = wr.usedGreedy;
        s.decisions = wr.decisions;
        s.propagations = wr.propagations;
        s.conflicts = wr.conflicts;
        s.restarts = wr.restarts;
        s.winningConfig = wr.winningConfig;
        s.configConflicts = wr.configConflicts;
        local.windowSummaries.push_back(std::move(s));
        ++local.windows;
        local.symmetryRows += wr.lexRows;
        local.buildModelSeconds += wr.buildSeconds;
        local.solveCpuSeconds += wr.solveSeconds;
        local.solverDecisions += wr.decisions;
        local.solverPropagations += wr.propagations;
        local.solverConflicts += wr.conflicts;
        local.solverRestarts += wr.restarts;
        local.softRelaxations += wr.softRelaxations;
        local.forcedPreloads += wr.forcedPreloads;
        local.memoHits += wr.memoHits;
        if (wr.usedGreedy) {
            ++local.greedyWindows;
        } else if (wr.status == solver::SolveStatus::Optimal) {
            ++local.optimalWindows;
        } else {
            ++local.feasibleWindows;
        }
    }
    local.overallStatus = (local.feasibleWindows + local.greedyWindows)
                              ? solver::SolveStatus::Feasible
                              : solver::SolveStatus::Optimal;

    plan.validate(g_);
    if (stats)
        *stats = local;
    return plan;
}

OverlapPlan
LcOpgPlanner::replan(Bytes mPeak, PlanStats *stats)
{
    FM_ASSERT(mPeak >= params_.chunkBytes,
              "re-plan budget below one chunk (", mPeak, " bytes)");
    params_.mPeak = mPeak;
    return plan(stats);
}

} // namespace flashmem::core
