#include "core/lc_opg.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "solver/model.hh"

namespace flashmem::core {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Objective scaling: lambda/mu mapped onto integer coefficients. */
constexpr std::int64_t kObjScale = 100;

} // namespace

LcOpgPlanner::LcOpgPlanner(const graph::Graph &g,
                           const profiler::CapacityProvider &capacity,
                           const gpusim::KernelModel &kernel_model,
                           OpgParams params)
    : g_(g), capacity_(capacity), kernel_model_(kernel_model),
      params_(params), slicer_(params.chunkBytes)
{
    FM_ASSERT(params_.windowLayers > 0 && params_.maxLoadDistance > 0,
              "bad OPG window parameters");
}

void
LcOpgPlanner::processNodes()
{
    const auto layers = static_cast<graph::NodeId>(g_.layerCount());
    specs_.reserve(layers);
    capacity_chunks_.assign(layers, 0);
    for (graph::NodeId l = 0; l < layers; ++l) {
        auto spec = gpusim::kernelSpecFor(g_, l, true);
        spec.pipelined = true;
        capacity_chunks_[l] =
            capacity_.capacityChunks(spec, params_.chunkBytes);
        specs_.push_back(std::move(spec));
    }
    chunk_count_.resize(g_.weightCount());
    for (std::size_t w = 0; w < g_.weightCount(); ++w)
        chunk_count_[w] = slicer_.chunkCount(g_.weight(
            static_cast<graph::WeightId>(w)));
    residual_capacity_ = capacity_chunks_;
    inflight_used_.assign(layers, 0);

    // Explicit preload list: pin weights (consumer order) into W until
    // the requested fraction of bytes is covered.
    pinned_preload_.assign(g_.weightCount(), false);
    if (params_.minPreloadFraction > 0.0) {
        auto target = static_cast<Bytes>(
            params_.minPreloadFraction *
            static_cast<double>(g_.totalWeightBytes()));
        std::vector<graph::WeightId> order;
        for (const auto &w : g_.weights())
            order.push_back(w.id);
        std::sort(order.begin(), order.end(),
                  [&](graph::WeightId a, graph::WeightId b) {
                      return g_.weight(a).consumer <
                             g_.weight(b).consumer;
                  });
        Bytes covered = 0;
        for (auto wid : order) {
            if (covered >= target)
                break;
            pinned_preload_[wid] = true;
            covered += g_.weight(wid).bytes();
        }
    }
}

LcOpgPlanner::GreedyOut
LcOpgPlanner::greedyAssign(
    const std::vector<graph::WeightId> &weights,
    const std::vector<std::int64_t> &residual_capacity,
    const std::vector<std::int64_t> &inflight_used) const
{
    const std::int64_t mpeak_chunks = static_cast<std::int64_t>(
        params_.mPeak / params_.chunkBytes);
    auto residual = residual_capacity;
    auto inflight = inflight_used;

    GreedyOut out;
    out.assignments.resize(weights.size());
    out.preload.assign(weights.size(), 0);

    for (std::size_t k = 0; k < weights.size(); ++k) {
        const auto &w = g_.weight(weights[k]);
        std::int64_t remaining = chunk_count_[weights[k]];
        graph::NodeId lo = std::max<graph::NodeId>(
            0, w.consumer - params_.maxLoadDistance);
        // Latest-feasible placement: walk back from the consumer so
        // chunks arrive as close to their use as capacity allows.
        for (graph::NodeId l = w.consumer - 1; l >= lo && remaining > 0;
             --l) {
            if (l < 0)
                break;
            std::int64_t take =
                std::min(remaining, residual[l]);
            // In-flight headroom over [l, consumer).
            for (graph::NodeId p = l; p < w.consumer && take > 0; ++p)
                take = std::min(take, mpeak_chunks - inflight[p]);
            if (take <= 0)
                continue;
            residual[l] -= take;
            for (graph::NodeId p = l; p < w.consumer; ++p)
                inflight[p] += take;
            out.assignments[k].push_back({l, take});
            remaining -= take;
        }
        out.preload[k] = remaining;
    }
    return out;
}

LcOpgPlanner::WindowResult
LcOpgPlanner::planWindow(graph::NodeId start, graph::NodeId end,
                         OverlapPlan &plan)
{
    WindowResult result;
    const std::int64_t mpeak_chunks = static_cast<std::int64_t>(
        params_.mPeak / params_.chunkBytes);

    // Weights consumed inside this window, in consumer order (pinned
    // preload-list weights are handled by plan() directly).
    std::vector<graph::WeightId> weights;
    for (const auto &w : g_.weights()) {
        if (w.consumer >= start && w.consumer < end &&
            !pinned_preload_[w.id])
            weights.push_back(w.id);
    }
    if (weights.empty())
        return result;
    std::sort(weights.begin(), weights.end(),
              [&](graph::WeightId a, graph::WeightId b) {
                  return g_.weight(a).consumer < g_.weight(b).consumer;
              });

    // Candidate transform layers per weight (earlier windows allowed
    // through their residual capacity).
    std::vector<std::vector<graph::NodeId>> cands(weights.size());
    graph::NodeId min_cand = end;
    for (std::size_t k = 0; k < weights.size(); ++k) {
        const auto &w = g_.weight(weights[k]);
        graph::NodeId lo = std::max<graph::NodeId>(
            0, w.consumer - params_.maxLoadDistance);
        for (graph::NodeId l = lo; l < w.consumer; ++l) {
            if (residual_capacity_[l] > 0) {
                cands[k].push_back(l);
                min_cand = std::min(min_cand, l);
            }
        }
    }

    auto greedy = greedyAssign(weights, residual_capacity_,
                               inflight_used_);

    // Tier-3 guard: windows whose CP model would be degenerate or too
    // large run on the greedy backup directly.
    std::size_t var_estimate = 0;
    for (const auto &c : cands)
        var_estimate += c.size() + 2;
    bool use_greedy = var_estimate > 2000;

    // Solver attempt with C4 fallback tiers.
    std::vector<std::int64_t> extracted_preload;
    std::vector<std::vector<std::pair<graph::NodeId, std::int64_t>>>
        extracted_assign;
    std::vector<graph::NodeId> extracted_z(weights.size(),
                                           graph::kInvalidNode);

    if (!use_greedy) {
        double relax = 1.0;
        std::vector<bool> forced(weights.size(), false);
        for (int round = 0; round <= params_.maxFallbackRounds;
             ++round) {
            auto build_t0 = std::chrono::steady_clock::now();
            solver::CpModel m;
            std::vector<solver::VarId> y_vars(weights.size());
            std::vector<solver::VarId> z_vars(weights.size(), -1);
            std::vector<std::vector<solver::VarId>> x_vars(
                weights.size());
            std::vector<std::int64_t> hint;

            std::vector<solver::LinearTerm> objective;
            for (std::size_t k = 0; k < weights.size(); ++k) {
                const auto &w = g_.weight(weights[k]);
                std::int64_t t_w = chunk_count_[weights[k]];
                std::int64_t y_lo = forced[k] ? t_w : 0;
                y_vars[k] = m.newIntVar(y_lo, t_w, w.name + ".preload");
                hint.push_back(forced[k] ? t_w : greedy.preload[k]);
                // lambda-weighted preload cost.
                objective.push_back(
                    {y_vars[k], static_cast<std::int64_t>(
                                    params_.lambda * kObjScale)});

                std::vector<solver::LinearTerm> coverage{{y_vars[k], 1}};
                for (auto l : cands[k]) {
                    std::int64_t cap = std::min<std::int64_t>(
                        {t_w,
                         static_cast<std::int64_t>(
                             static_cast<double>(residual_capacity_[l]) *
                             relax),
                         mpeak_chunks});
                    auto x = m.newIntVar(0, std::max<std::int64_t>(cap,
                                                                   0));
                    x_vars[k].push_back(x);
                    coverage.push_back({x, 1});
                    // Tie-break: transform close to the consumer.
                    objective.push_back({x, w.consumer - l - 1});
                    std::int64_t hint_x = 0;
                    if (!forced[k]) {
                        for (auto &[gl, gc] : greedy.assignments[k]) {
                            if (gl == l)
                                hint_x = gc;
                        }
                    }
                    hint.push_back(hint_x);
                }
                // C0: completeness of allocation.
                m.addEquality(coverage, t_w);

                // z_w and C1 implications (streamed weights only).
                if (!cands[k].empty()) {
                    graph::NodeId z_lo = std::max<graph::NodeId>(
                        0, w.consumer - params_.maxLoadDistance);
                    z_vars[k] =
                        m.newIntVar(z_lo, w.consumer, w.name + ".z");
                    // mu-weighted loading distance i_w - z_w.
                    objective.push_back(
                        {z_vars[k], -static_cast<std::int64_t>(
                                        params_.mu * kObjScale)});
                    for (std::size_t j = 0; j < cands[k].size(); ++j) {
                        m.addImplicationGeLe(x_vars[k][j], 1, z_vars[k],
                                             cands[k][j]);
                    }
                    graph::NodeId hint_z = w.consumer;
                    if (!forced[k] && !greedy.assignments[k].empty()) {
                        for (auto &[gl, gc] : greedy.assignments[k])
                            hint_z = std::min(hint_z, gl);
                    }
                    hint.push_back(hint_z);
                }
            }

            // C3: per-layer load capacity.
            for (graph::NodeId l = min_cand; l < end && min_cand < end;
                 ++l) {
                std::vector<solver::LinearTerm> col;
                for (std::size_t k = 0; k < weights.size(); ++k) {
                    for (std::size_t j = 0; j < cands[k].size(); ++j) {
                        if (cands[k][j] == l)
                            col.push_back({x_vars[k][j], 1});
                    }
                }
                if (!col.empty()) {
                    m.addLessOrEqual(
                        col, static_cast<std::int64_t>(
                                 static_cast<double>(
                                     residual_capacity_[l]) *
                                 relax));
                }
            }

            // C2: in-flight transformed-but-unconsumed memory.
            for (graph::NodeId p = min_cand; p < end && min_cand < end;
                 ++p) {
                std::vector<solver::LinearTerm> inflight;
                for (std::size_t k = 0; k < weights.size(); ++k) {
                    if (g_.weight(weights[k]).consumer <= p)
                        continue;
                    for (std::size_t j = 0; j < cands[k].size(); ++j) {
                        if (cands[k][j] <= p)
                            inflight.push_back({x_vars[k][j], 1});
                    }
                }
                if (!inflight.empty()) {
                    m.addLessOrEqual(inflight, std::max<std::int64_t>(
                                                   mpeak_chunks -
                                                       inflight_used_[p],
                                                   0));
                }
            }

            m.minimize(objective);
            result.buildSeconds += secondsSince(build_t0);

            // Plan memo: a previously solved window with this exact
            // model reuses its incumbent as the warm start, which is
            // at least as good as the greedy hint. Validation guards
            // against fingerprint collisions: an entry that does not
            // satisfy this model is ignored, keeping the greedy hint.
            std::uint64_t fp = 0;
            if (params_.planMemo) {
                fp = m.fingerprint();
                auto cached = PlanMemo::global().lookup(fp);
                if (cached && m.satisfiedBy(*cached)) {
                    hint = std::move(*cached);
                    ++result.memoHits;
                }
            }

            solver::SolverParams sp;
            sp.timeLimitSeconds = params_.solverTimePerWindow;
            sp.maxDecisions = params_.solverDecisionsPerWindow;
            sp.engine = params_.solverEngine;
            auto r = solver::CpSolver(sp).solve(m, &hint);
            result.solveSeconds += r.wallSeconds;
            result.decisions += r.decisions;
            result.status = r.status;

            if (params_.planMemo && r.feasible() &&
                PlanMemo::global().store(fp, r.values, r.objective)) {
                ++result.memoStores;
            }

            if (!r.feasible()) {
                // Tier 1: soft-threshold relaxation of C_l.
                if (round < params_.maxFallbackRounds) {
                    relax *= params_.softThresholdGrowth;
                    ++result.softRelaxations;
                    continue;
                }
                use_greedy = true;
                break;
            }

            // Extract candidate solution.
            extracted_preload.assign(weights.size(), 0);
            extracted_assign.assign(weights.size(), {});
            Bytes window_bytes = 0, preload_bytes = 0;
            for (std::size_t k = 0; k < weights.size(); ++k) {
                extracted_preload[k] = r.value(y_vars[k]);
                window_bytes += g_.weight(weights[k]).bytes();
                preload_bytes += slicer_.bytesForChunks(
                    g_.weight(weights[k]), extracted_preload[k]);
                for (std::size_t j = 0; j < cands[k].size(); ++j) {
                    auto v = r.value(x_vars[k][j]);
                    if (v > 0)
                        extracted_assign[k].push_back({cands[k][j], v});
                }
                if (z_vars[k] >= 0 && !extracted_assign[k].empty())
                    extracted_z[k] = static_cast<graph::NodeId>(
                        r.value(z_vars[k]));
            }

            // Tier 2: if capacity pressure forced most of the window
            // into W, pin the heaviest offender and re-solve so the
            // solver redistributes the rest.
            double preload_frac =
                window_bytes
                    ? static_cast<double>(preload_bytes) / window_bytes
                    : 0.0;
            if (preload_frac > 0.8 && round < params_.maxFallbackRounds) {
                std::size_t worst = 0;
                std::int64_t worst_chunks = -1;
                for (std::size_t k = 0; k < weights.size(); ++k) {
                    if (!forced[k] &&
                        extracted_preload[k] > worst_chunks) {
                        worst_chunks = extracted_preload[k];
                        worst = k;
                    }
                }
                if (worst_chunks > 0) {
                    forced[worst] = true;
                    ++result.forcedPreloads;
                    continue;
                }
            }
            break;
        }
    }

    if (use_greedy) {
        result.usedGreedy = true;
        extracted_preload = greedy.preload;
        extracted_assign = greedy.assignments;
        for (std::size_t k = 0; k < weights.size(); ++k) {
            graph::NodeId z = g_.weight(weights[k]).consumer;
            for (auto &[l, c] : extracted_assign[k])
                z = std::min(z, l);
            extracted_z[k] = extracted_assign[k].empty()
                                 ? graph::kInvalidNode
                                 : z;
        }
        result.status = solver::SolveStatus::Feasible;
    }

    // Commit into the plan and the cross-window bookkeeping.
    for (std::size_t k = 0; k < weights.size(); ++k) {
        auto wid = weights[k];
        const auto &w = g_.weight(wid);
        plan.setPreloadChunks(wid, extracted_preload[k]);
        for (auto &[l, c] : extracted_assign[k]) {
            plan.addAssignment(wid, l, c);
            residual_capacity_[l] -= c;
            FM_ASSERT(residual_capacity_[l] >= -1,
                      "capacity overdraft at layer ", l);
            residual_capacity_[l] =
                std::max<std::int64_t>(residual_capacity_[l], 0);
            for (graph::NodeId p = l; p < w.consumer; ++p)
                inflight_used_[p] += c;
        }
        if (!extracted_assign[k].empty())
            plan.setEarliestLoad(wid, extracted_z[k]);
    }
    return result;
}

OverlapPlan
LcOpgPlanner::plan(PlanStats *stats)
{
    PlanStats local;
    auto t0 = std::chrono::steady_clock::now();
    processNodes();
    local.processNodesSeconds = secondsSince(t0);

    OverlapPlan plan(g_, params_.chunkBytes);
    for (std::size_t w = 0; w < g_.weightCount(); ++w) {
        if (pinned_preload_[w]) {
            plan.setPreloadChunks(static_cast<graph::WeightId>(w),
                                  chunk_count_[w]);
        }
    }
    const auto layers = static_cast<graph::NodeId>(g_.layerCount());
    for (graph::NodeId start = 0; start < layers;
         start += params_.windowLayers) {
        graph::NodeId end =
            std::min<graph::NodeId>(start + params_.windowLayers,
                                    layers);
        auto wr = planWindow(start, end, plan);
        ++local.windows;
        local.buildModelSeconds += wr.buildSeconds;
        local.solveSeconds += wr.solveSeconds;
        local.solverDecisions += wr.decisions;
        local.softRelaxations += wr.softRelaxations;
        local.forcedPreloads += wr.forcedPreloads;
        local.memoHits += wr.memoHits;
        local.memoStores += wr.memoStores;
        if (wr.usedGreedy) {
            ++local.greedyWindows;
        } else if (wr.status == solver::SolveStatus::Optimal) {
            ++local.optimalWindows;
        } else {
            ++local.feasibleWindows;
        }
    }
    local.overallStatus = (local.feasibleWindows + local.greedyWindows)
                              ? solver::SolveStatus::Feasible
                              : solver::SolveStatus::Optimal;

    plan.validate(g_);
    if (stats)
        *stats = local;
    return plan;
}

} // namespace flashmem::core
