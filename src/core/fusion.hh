/**
 * @file
 * Operator fusion with OPG-aware adaptive splitting (paper Section 4.3).
 *
 * Fusion reduces kernel launches and intermediate memory, but fusing k
 * operators collapses k scheduling slots into one and shrinks the
 * combined load capacity to ~min(C_1..C_k). The adaptive protocol
 * therefore: (1) fuses single-consumer chains aggressively, (2) scores
 * fused kernels by the preload pressure they cause
 * (Penalty = lambda |W_new| + mu dz), and (3) splits the worst
 * offenders when the split's capacity gain passes the
 * C_v1 + C_v2 >= (1 + alpha) C_v feasibility check — except
 * hierarchical fusions, which are retained intact.
 */

#ifndef FLASHMEM_CORE_FUSION_HH
#define FLASHMEM_CORE_FUSION_HH

#include <vector>

#include "gpusim/kernel.hh"
#include "graph/graph.hh"
#include "profiler/capacity.hh"

namespace flashmem::core {

/** Fusion tunables. */
struct FusionParams
{
    /** Longest producer-consumer chain fused into one kernel. */
    int maxGroupSize = 4;
    /** Capacity-gain threshold alpha for split feasibility. */
    double alpha = 0.15;
    /** Fused kernels re-examined per adaptive round. */
    int splitTopK = 8;
};

/** One fused kernel: a producer-consumer chain of original nodes. */
struct FusionGroup
{
    std::vector<graph::NodeId> members; ///< original ids, in chain order
};

/** Fusion pass over one original (unfused) graph. */
class FusionPass
{
  public:
    FusionPass(const graph::Graph &original, FusionParams params = {});

    /**
     * Aggressive initial fusion: grow single-consumer chains up to
     * maxGroupSize, the behaviour of DNNFusion-style frameworks.
     */
    std::vector<FusionGroup> initialPartition() const;

    /** Trivial partition: every node its own group (fusion disabled). */
    std::vector<FusionGroup> singletonPartition() const;

    /**
     * Build the fused graph realizing @p partition. Groups are emitted
     * in topological (last-member) order; when @p fused_id_of_group is
     * non-null it receives the partition-index -> fused-NodeId map.
     */
    graph::Graph materialize(
        const std::vector<FusionGroup> &partition,
        std::vector<graph::NodeId> *fused_id_of_group = nullptr) const;

    /** Dispatch descriptor of a (hypothetical) fused chain. */
    gpusim::KernelSpec specForGroup(const FusionGroup &group) const;

    /**
     * Propose splitting @p group by the operator-specific rules:
     * hierarchical fusions are retained (returns false); otherwise the
     * trailing elemental run splits off (MatMul+Add+GeLU ->
     * MatMul+Add | GeLU), falling back to a midpoint split.
     */
    bool splitGroup(const FusionGroup &group, FusionGroup *head,
                    FusionGroup *tail) const;

    /**
     * Check C_v1 + C_v2 >= (1 + alpha) * C_v using @p capacity.
     * @return true if splitting gains enough schedulable capacity.
     */
    bool splitFeasible(const FusionGroup &group,
                       const FusionGroup &head, const FusionGroup &tail,
                       const profiler::CapacityProvider &capacity,
                       Bytes chunk_bytes) const;

    const graph::Graph &original() const { return original_; }
    const FusionParams &params() const { return params_; }

    /** The capacity-restrictive operator kind of a fused chain. */
    static graph::OpKind restrictiveKind(
        const std::vector<graph::OpKind> &kinds);

  private:
    const graph::Graph &original_;
    FusionParams params_;
};

} // namespace flashmem::core

#endif // FLASHMEM_CORE_FUSION_HH
