#include "baselines/preload_framework.hh"

#include <algorithm>

#include "common/logging.hh"
#include "gpusim/texture.hh"

namespace flashmem::baselines {

using graph::OpClass;
using graph::OpKind;
using gpusim::MemKind;

PreloadFramework::PreloadFramework(FrameworkId id,
                                   const gpusim::DeviceProfile &dev)
    : traits_(frameworkTraits(id)), dev_(dev), kernel_model_(dev)
{
}

SupportStatus
PreloadFramework::supports(const graph::Graph &g) const
{
    for (const auto &name : traits_.unsupportedModels) {
        if (g.name() == name)
            return SupportStatus::MissingOperator;
    }
    bool scan_ops = !traits_.supportsLayerNormGpu ||
                    !traits_.supportsGroupNormGpu ||
                    !traits_.supportsSequenceModels ||
                    !traits_.supportsUpsample;
    if (scan_ops) {
        for (const auto &n : g.nodes()) {
            for (auto kind : n.fusedKinds) {
                if (!traits_.supportsLayerNormGpu &&
                    (kind == OpKind::LayerNorm ||
                     kind == OpKind::RMSNorm))
                    return SupportStatus::MissingOperator;
                if (!traits_.supportsGroupNormGpu &&
                    kind == OpKind::GroupNorm)
                    return SupportStatus::MissingOperator;
                if (!traits_.supportsSequenceModels &&
                    kind == OpKind::Embedding)
                    return SupportStatus::MissingOperator;
                if (!traits_.supportsUpsample &&
                    kind == OpKind::Upsample)
                    return SupportStatus::MissingOperator;
            }
        }
    }
    if (traits_.maxModelBytes > 0 &&
        g.totalWeightBytes() > traits_.maxModelBytes)
        return SupportStatus::ModelTooLarge;
    return SupportStatus::Supported;
}

SimTime
PreloadFramework::kernelLatency(const graph::Graph &g,
                                graph::NodeId l) const
{
    auto spec = gpusim::kernelSpecFor(g, l, !traits_.buffersOnly);
    if (traits_.fp32Storage)
        spec.precision = Precision::FP32;
    SimTime base = kernel_model_.baseLatency(spec);

    double factor = traits_.execSlowdown;
    if (spec.cls() == OpClass::Movement) {
        factor *= traits_.movementCostFactor;
        // Runtime layout conversions round-trip through the
        // framework's (often CPU-assisted) conversion path.
        if (traits_.movementCostFactor >= 1.0) {
            base += traits_.runtimeLayoutBw.transferTime(
                spec.totalBytes());
        }
    }
    return static_cast<SimTime>(static_cast<double>(base) * factor);
}

core::RunResult
PreloadFramework::run(gpusim::GpuSimulator &sim, const graph::Graph &g,
                      SimTime arrival) const
{
    auto &mem = sim.memory();
    core::RunResult result;
    result.model = g.name();
    result.arrival = arrival;
    result.start = arrival;

    mem.alloc(MemKind::Scratch, traits_.baseOverhead, arrival);

    // ---- Init: load everything from disk into unified memory. --------
    Bytes weight_bytes = g.totalWeightBytes();
    Bytes disk_bytes = traits_.fp32Storage ? weight_bytes * 2
                                           : weight_bytes;
    auto load = sim.disk().transfer(arrival, disk_bytes);
    mem.alloc(MemKind::UnifiedWeights, disk_bytes, load.start);

    // Staging residency (fp32 widening, repack buffers) held through
    // the whole transform phase.
    auto staging =
        static_cast<Bytes>(traits_.stagingFactor *
                           static_cast<double>(weight_bytes));
    SimTime init_done = load.end;

    if (!traits_.buffersOnly) {
        if (staging > 0)
            mem.alloc(MemKind::Scratch, staging, load.end);
        // Dedicated per-tensor transform dispatches, serialized on the
        // GPU queue (CPU repack + upload + layout kernel per tensor).
        // Each tensor's unified-memory copy is released as soon as its
        // texture version exists.
        SimTime cursor = load.end;
        double disk_scale = traits_.fp32Storage ? 2.0 : 1.0;
        for (const auto &w : g.weights()) {
            auto cost = gpusim::dedicatedTransformCost(
                dev_, w.bytes(), traits_.transformBw,
                traits_.transformPasses);
            auto iv = sim.computeQueue().reserve(cursor, cost.time);
            cursor = iv.end;
            mem.free(MemKind::UnifiedWeights,
                     static_cast<Bytes>(disk_scale *
                                        static_cast<double>(w.bytes())),
                     cursor);
            mem.alloc(MemKind::TextureWeights, w.bytes(), cursor);
        }
        init_done = cursor;
        if (staging > 0)
            mem.free(MemKind::Scratch, staging, init_done);
    }
    result.initDone = init_done;

    // ---- Exec: kernel-by-kernel with resident weights. ----------------
    std::vector<graph::NodeId> last_consumer(g.layerCount(),
                                             graph::kInvalidNode);
    for (const auto &n : g.nodes()) {
        for (auto in : n.inputs)
            last_consumer[in] = std::max(last_consumer[in], n.id);
    }

    SimTime prev_end = init_done;
    for (graph::NodeId l = 0;
         l < static_cast<graph::NodeId>(g.layerCount()); ++l) {
        const auto &node = g.node(l);
        auto iv = sim.computeQueue().reserve(prev_end,
                                             kernelLatency(g, l));
        ++result.kernels;
        mem.alloc(MemKind::Activations, node.output.bytes(), iv.start);
        for (std::size_t i = 0; i < node.inputs.size(); ++i) {
            auto in = node.inputs[i];
            if (std::find(node.inputs.begin(), node.inputs.begin() + i,
                          in) != node.inputs.begin() + i)
                continue;
            if (last_consumer[in] == l) {
                mem.free(MemKind::Activations,
                         g.node(in).output.bytes(), iv.end);
            }
        }
        prev_end = iv.end;
    }

    // Model unload: everything retired.
    for (const auto &n : g.nodes()) {
        if (last_consumer[n.id] == graph::kInvalidNode)
            mem.free(MemKind::Activations, n.output.bytes(), prev_end);
    }
    if (!traits_.buffersOnly) {
        mem.free(MemKind::TextureWeights, weight_bytes, prev_end);
    } else {
        mem.free(MemKind::UnifiedWeights, disk_bytes, prev_end);
    }
    mem.free(MemKind::Scratch, traits_.baseOverhead, prev_end);

    result.end = prev_end;
    result.peakMemory = mem.peakOver(result.start, result.end);
    result.avgMemoryBytes = mem.averageBytes(result.start, result.end);
    result.oom = dev_.appMemoryBudget > 0 &&
                 result.peakMemory > dev_.appMemoryBudget;
    return result;
}

SimTime
PreloadFramework::warmExecLatency(const graph::Graph &g) const
{
    SimTime total = 0;
    for (graph::NodeId l = 0;
         l < static_cast<graph::NodeId>(g.layerCount()); ++l)
        total += kernelLatency(g, l);
    return total;
}

} // namespace flashmem::baselines
