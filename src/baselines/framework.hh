/**
 * @file
 * Behavioural traits of the compared mobile DNN frameworks.
 *
 * All baselines share the same simulator and kernel model as FlashMem;
 * only their *policies* differ: full weight preloading, per-tensor
 * dedicated transform dispatches with staging copies, runtime layout
 * conversions (except SmartMem, which eliminates them), buffer-path
 * execution (ExecuTorch), and operator-support gaps (NCNN's missing
 * GPU LayerNorm). Trait values are calibrated so the published
 * qualitative ordering of Tables 1/7/8 reproduces; see EXPERIMENTS.md
 * for paper-vs-measured numbers.
 */

#ifndef FLASHMEM_BASELINES_FRAMEWORK_HH
#define FLASHMEM_BASELINES_FRAMEWORK_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "graph/graph.hh"

namespace flashmem::baselines {

/** The compared frameworks (paper Section 5.1). */
enum class FrameworkId
{
    MNN,
    NCNN,
    TVM,
    LiteRT,
    ExecuTorch,
    SmartMem,
};

/** All baseline ids in the paper's column order. */
const std::vector<FrameworkId> &allFrameworks();

/** Behavioural parameters of one framework. */
struct FrameworkTraits
{
    FrameworkId id = FrameworkId::MNN;
    std::string name;

    /** @name Initialization (cold start). @{ */
    /** Per-tensor transform pipeline throughput (CPU repack + upload). */
    Bandwidth transformBw = Bandwidth::mbps(100);
    /** Staging copies per tensor transform. */
    int transformPasses = 2;
    /** Staging bytes resident across init, as a multiple of weights. */
    double stagingFactor = 2.0;
    /** Weights stored/loaded as fp32 (doubles disk traffic). */
    bool fp32Storage = false;
    /** Skips texture transforms entirely (buffer execution). */
    bool buffersOnly = false;
    /** @} */

    /** @name Execution. @{ */
    /** Multiplier on every kernel's base latency. */
    double execSlowdown = 1.0;
    /** Multiplier on movement (layout) operator cost; SmartMem's
     * transformation elimination drives this below 1. */
    double movementCostFactor = 1.0;
    /** Effective bandwidth of runtime layout conversions. */
    Bandwidth runtimeLayoutBw = Bandwidth::gbps(0.6);
    /** @} */

    /** Framework-resident memory (context, workspaces, caches). */
    Bytes baseOverhead = mib(50);

    /** @name Operator support. @{ */
    bool supportsLayerNormGpu = true;  ///< NCNN: false
    bool supportsGroupNormGpu = true;
    /** Token-embedding / autoregressive graphs (LiteRT delegate: no). */
    bool supportsSequenceModels = true;
    /** Upsample-based decoders (LiteRT delegate: no). */
    bool supportsUpsample = true;
    /** Largest weight footprint the framework handles (0 = unbounded
     * until device OOM). */
    Bytes maxModelBytes = 0;
    /** Models the framework's converter rejects outright (graph names;
     * documented per-framework gaps that have no structural proxy). */
    std::vector<std::string> unsupportedModels;
    /** @} */
};

/** Calibrated traits for @p id. */
const FrameworkTraits &frameworkTraits(FrameworkId id);

/** Framework display name ("MNN", "LiteRT", ...). */
const char *frameworkName(FrameworkId id);

} // namespace flashmem::baselines

#endif // FLASHMEM_BASELINES_FRAMEWORK_HH
