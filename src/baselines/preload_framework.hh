/**
 * @file
 * The weight-preloading execution strategy shared by every compared
 * framework: load the full model from disk into unified memory, run
 * per-tensor dedicated transform dispatches into texture layouts (with
 * staging copies), then execute kernel-by-kernel. Initialization and
 * execution are reported separately, matching paper Table 7's
 * Init/Exec columns.
 */

#ifndef FLASHMEM_BASELINES_PRELOAD_FRAMEWORK_HH
#define FLASHMEM_BASELINES_PRELOAD_FRAMEWORK_HH

#include <string>

#include "baselines/framework.hh"
#include "core/runtime.hh"
#include "gpusim/simulator.hh"

namespace flashmem::baselines {

/** Why a framework cannot run a model. */
enum class SupportStatus
{
    Supported,
    MissingOperator,  ///< e.g. NCNN LayerNorm on GPU
    ModelTooLarge,    ///< framework-level size limit
};

/** One preloading framework bound to a device profile. */
class PreloadFramework
{
  public:
    PreloadFramework(FrameworkId id, const gpusim::DeviceProfile &dev);

    /** Static support check (the "-" entries of Tables 7/8). */
    SupportStatus supports(const graph::Graph &g) const;

    /**
     * Cold-start run: full init + one inference. The result's initDone
     * marks the init/exec boundary; oom is set if the device budget was
     * exceeded (Figure 10 empty bars).
     */
    core::RunResult run(gpusim::GpuSimulator &sim, const graph::Graph &g,
                        SimTime arrival = 0) const;

    /**
     * Warm inference only (weights already resident); used for the
     * FIFO multi-DNN study and the warm-start discussion.
     */
    SimTime warmExecLatency(const graph::Graph &g) const;

    const FrameworkTraits &traits() const { return traits_; }
    const std::string &name() const { return traits_.name; }

  private:
    /** Kernel latency under this framework's execution policy. */
    SimTime kernelLatency(const graph::Graph &g, graph::NodeId l) const;

    FrameworkTraits traits_;
    gpusim::DeviceProfile dev_;
    gpusim::KernelModel kernel_model_;
};

} // namespace flashmem::baselines

#endif // FLASHMEM_BASELINES_PRELOAD_FRAMEWORK_HH
