/**
 * @file
 * Naive overlap strategies (paper Section 5.4, Figure 9).
 *
 * Both generate OverlapPlans executable by the FlashMem streaming
 * runtime, but ignore load capacities:
 *
 *  - Always-Next Loading: every weight is transformed entirely by the
 *    layer directly before its consumer, so the GPU transform step lags
 *    the disk and hierarchical layers absorb loads they cannot hide
 *    (up to ~4.3x slower than FlashMem).
 *
 *  - Same-Op-Type Prefetching: weights are transformed by the nearest
 *    preceding layer of the consumer's operator kind, which partially
 *    respects capacity but leaves load badly imbalanced (~2.4x slower).
 */

#ifndef FLASHMEM_BASELINES_NAIVE_OVERLAP_HH
#define FLASHMEM_BASELINES_NAIVE_OVERLAP_HH

#include "core/overlap_plan.hh"
#include "graph/graph.hh"

namespace flashmem::baselines {

/** Always-Next Loading plan: transform at consumer-1, load at -2. */
core::OverlapPlan alwaysNextPlan(const graph::Graph &g,
                                 Bytes chunk_bytes = mib(1));

/**
 * Same-Op-Type Prefetching plan: transform at the nearest preceding
 * layer whose kind matches the consumer (searching up to
 * @p max_distance layers back; preload when none exists).
 */
core::OverlapPlan sameOpTypePlan(const graph::Graph &g,
                                 Bytes chunk_bytes = mib(1),
                                 int max_distance = 24);

} // namespace flashmem::baselines

#endif // FLASHMEM_BASELINES_NAIVE_OVERLAP_HH
