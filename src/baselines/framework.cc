#include "baselines/framework.hh"

#include "common/logging.hh"

namespace flashmem::baselines {

const std::vector<FrameworkId> &
allFrameworks()
{
    static const std::vector<FrameworkId> ids = {
        FrameworkId::MNN,    FrameworkId::NCNN,
        FrameworkId::TVM,    FrameworkId::LiteRT,
        FrameworkId::ExecuTorch, FrameworkId::SmartMem,
    };
    return ids;
}

namespace {

FrameworkTraits
makeMnn()
{
    FrameworkTraits t;
    t.id = FrameworkId::MNN;
    t.name = "MNN";
    t.transformBw = Bandwidth::mbps(100);
    t.transformPasses = 3;
    t.stagingFactor = 2.0;
    t.execSlowdown = 1.15;
    t.movementCostFactor = 1.0;
    t.runtimeLayoutBw = Bandwidth::gbps(0.5);
    t.baseOverhead = mib(50);
    t.maxModelBytes = gib(2);
    t.unsupportedModels = {"sam2"}; // hierarchical windowed attention
    return t;
}

FrameworkTraits
makeNcnn()
{
    FrameworkTraits t;
    t.id = FrameworkId::NCNN;
    t.name = "NCNN";
    t.transformBw = Bandwidth::mbps(40);
    t.transformPasses = 2;
    t.stagingFactor = 2.2;
    t.execSlowdown = 1.0; // excellent conv kernels
    t.movementCostFactor = 0.8;
    t.runtimeLayoutBw = Bandwidth::gbps(0.7);
    t.baseOverhead = mib(65);
    t.supportsLayerNormGpu = false; // transformer models unsupported
    t.supportsGroupNormGpu = false;
    return t;
}

FrameworkTraits
makeTvm()
{
    FrameworkTraits t;
    t.id = FrameworkId::TVM;
    t.name = "TVM";
    t.transformBw = Bandwidth::mbps(70);
    t.transformPasses = 2;
    t.stagingFactor = 3.0; // fp32 workspaces stay resident
    t.execSlowdown = 1.9;
    t.movementCostFactor = 1.1;
    t.runtimeLayoutBw = Bandwidth::gbps(0.5);
    t.baseOverhead = mib(480); // auto-tuning workspaces
    t.maxModelBytes = gib(1);
    t.unsupportedModels = {"sam2"}; // tuning fails on windowed attn
    return t;
}

FrameworkTraits
makeLiteRt()
{
    FrameworkTraits t;
    t.id = FrameworkId::LiteRT;
    t.name = "LiteRT";
    t.transformBw = Bandwidth::mbps(330);
    t.transformPasses = 1;
    t.stagingFactor = 1.6;
    t.execSlowdown = 1.25;
    t.movementCostFactor = 0.25; // delegate fuses most layout ops
    t.runtimeLayoutBw = Bandwidth::gbps(1.2);
    t.baseOverhead = mib(230);
    // GPU delegate rejects sequence models, upsampling decoders, and
    // large graphs (Table 7 "-"): only the vision classifiers remain.
    t.supportsSequenceModels = false;
    t.supportsUpsample = false;
    t.maxModelBytes = mib(600);
    return t;
}

FrameworkTraits
makeExecuTorch()
{
    FrameworkTraits t;
    t.id = FrameworkId::ExecuTorch;
    t.name = "ETorch";
    // No texture pipeline at all: weights map straight into buffers.
    t.transformBw = Bandwidth::gbps(8.0);
    t.transformPasses = 1;
    t.stagingFactor = 0.0;
    t.fp32Storage = true; // no fp16 path on this backend
    t.buffersOnly = true;
    // Lacking GPU-specific optimization, kernels run near CPU speed.
    t.execSlowdown = 55.0;
    t.movementCostFactor = 1.5;
    t.runtimeLayoutBw = Bandwidth::gbps(0.4);
    t.baseOverhead = mib(30);
    // Missing audio frontend + DPT head lowering (Table 7 "-").
    t.unsupportedModels = {"whisper_medium", "depth_anything_s",
                           "depth_anything_l"};
    return t;
}

FrameworkTraits
makeSmartMem()
{
    FrameworkTraits t;
    t.id = FrameworkId::SmartMem;
    t.name = "SMem";
    // Layout planning makes init slower than MNN, execution fastest
    // among the preloading baselines.
    t.transformBw = Bandwidth::mbps(55);
    t.transformPasses = 2;
    t.stagingFactor = 1.0; // planning reuses buffers across tensors
    t.execSlowdown = 1.0;
    t.movementCostFactor = 0.15; // transformation elimination
    t.runtimeLayoutBw = Bandwidth::gbps(2.0);
    t.baseOverhead = mib(40);
    return t;
}

} // namespace

const FrameworkTraits &
frameworkTraits(FrameworkId id)
{
    static const FrameworkTraits mnn = makeMnn();
    static const FrameworkTraits ncnn = makeNcnn();
    static const FrameworkTraits tvm = makeTvm();
    static const FrameworkTraits litert = makeLiteRt();
    static const FrameworkTraits etorch = makeExecuTorch();
    static const FrameworkTraits smartmem = makeSmartMem();
    switch (id) {
      case FrameworkId::MNN:
        return mnn;
      case FrameworkId::NCNN:
        return ncnn;
      case FrameworkId::TVM:
        return tvm;
      case FrameworkId::LiteRT:
        return litert;
      case FrameworkId::ExecuTorch:
        return etorch;
      case FrameworkId::SmartMem:
        return smartmem;
    }
    FM_PANIC("unknown framework id");
}

const char *
frameworkName(FrameworkId id)
{
    return frameworkTraits(id).name.c_str();
}

} // namespace flashmem::baselines
