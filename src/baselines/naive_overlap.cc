#include "baselines/naive_overlap.hh"

#include <algorithm>

namespace flashmem::baselines {

using core::OverlapPlan;
using core::WeightSlicer;

OverlapPlan
alwaysNextPlan(const graph::Graph &g, Bytes chunk_bytes)
{
    OverlapPlan plan(g, chunk_bytes);
    WeightSlicer slicer(chunk_bytes);
    for (const auto &w : g.weights()) {
        auto chunks = slicer.chunkCount(w);
        if (w.consumer == 0) {
            plan.setPreloadChunks(w.id, chunks);
            continue;
        }
        // Just-in-time: the read starts only when the transforming
        // layer itself begins, so compute stalls on every weight.
        graph::NodeId prev = w.consumer - 1;
        plan.setPreloadChunks(w.id, 0);
        plan.addAssignment(w.id, prev, chunks);
        plan.setEarliestLoad(w.id, prev);
    }
    plan.validate(g);
    return plan;
}

OverlapPlan
sameOpTypePlan(const graph::Graph &g, Bytes chunk_bytes,
               int max_distance)
{
    OverlapPlan plan(g, chunk_bytes);
    WeightSlicer slicer(chunk_bytes);
    for (const auto &w : g.weights()) {
        auto chunks = slicer.chunkCount(w);
        auto kind = g.node(w.consumer).kind;
        graph::NodeId found = graph::kInvalidNode;
        graph::NodeId lo = std::max<graph::NodeId>(
            0, w.consumer - max_distance);
        for (graph::NodeId l = w.consumer - 1; l >= lo; --l) {
            if (g.node(l).kind == kind) {
                found = l;
                break;
            }
        }
        if (found == graph::kInvalidNode) {
            plan.setPreloadChunks(w.id, chunks);
            continue;
        }
        plan.setPreloadChunks(w.id, 0);
        plan.addAssignment(w.id, found, chunks);
        // One layer of lead: slightly better pipelining than
        // Always-Next, still far from capacity-aware scheduling.
        plan.setEarliestLoad(
            w.id, std::max<graph::NodeId>(found - 1, 0));
    }
    plan.validate(g);
    return plan;
}

} // namespace flashmem::baselines
