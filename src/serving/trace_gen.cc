#include "serving/trace_gen.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"

namespace flashmem::serving {

using multidnn::ModelRequest;

std::vector<models::ModelId>
ModelMix::distinctModels() const
{
    std::vector<models::ModelId> out;
    for (const auto &e : entries) {
        if (std::find(out.begin(), out.end(), e.model) == out.end())
            out.push_back(e.model);
    }
    return out;
}

namespace {

/** Exponential draw with mean 1/rate, in nanoseconds. */
SimTime
expInterArrival(Rng &rng, double rate_per_second)
{
    FM_ASSERT(rate_per_second > 0.0, "arrival rate must be positive");
    double u = rng.uniform(); // in [0, 1)
    double s = -std::log1p(-u) / rate_per_second;
    return seconds(s);
}

/** Validates the mix once and serves O(entries) weighted picks
 * without re-summing weights per draw (the generators sit in the
 * million-request hot loop). */
class MixSampler
{
  public:
    explicit MixSampler(const ModelMix &mix) : mix_(mix)
    {
        FM_ASSERT(!mix.entries.empty(), "empty model mix");
        for (const auto &e : mix.entries) {
            FM_ASSERT(e.weight > 0.0, "mix weights must be positive");
            total_ += e.weight;
        }
    }

    const ModelMix::Entry &
    sample(Rng &rng) const
    {
        double x = rng.uniform() * total_;
        for (const auto &e : mix_.entries) {
            x -= e.weight;
            if (x < 0.0)
                return e;
        }
        return mix_.entries.back();
    }

  private:
    const ModelMix &mix_;
    double total_ = 0.0;
};

ModelRequest
makeRequest(const ModelMix::Entry &e, SimTime arrival)
{
    return {e.model, arrival, e.priority, e.latencyBound};
}

} // namespace

std::vector<ModelRequest>
poissonTrace(const ModelMix &mix, double qps, std::size_t count,
             std::uint64_t seed)
{
    Rng rng(seed);
    MixSampler sampler(mix);
    std::vector<ModelRequest> out;
    out.reserve(count);
    SimTime t = 0;
    for (std::size_t i = 0; i < count; ++i) {
        t += expInterArrival(rng, qps);
        out.push_back(makeRequest(sampler.sample(rng), t));
    }
    return out;
}

std::vector<ModelRequest>
mmppTrace(const ModelMix &mix, const MmppParams &params,
          std::size_t count, std::uint64_t seed)
{
    FM_ASSERT(params.meanDwell > 0, "MMPP mean dwell must be positive");
    Rng rng(seed);
    MixSampler sampler(mix);
    std::vector<ModelRequest> out;
    out.reserve(count);
    SimTime t = 0;
    int state = 0; // start quiet
    double dwell_rate = 1.0 / toSeconds(params.meanDwell);
    SimTime switch_at = expInterArrival(rng, dwell_rate);
    while (out.size() < count) {
        double rate = state == 0 ? params.qpsLow : params.qpsHigh;
        SimTime next = t + expInterArrival(rng, rate);
        if (next >= switch_at) {
            // Memoryless: restart the arrival clock in the new state.
            t = switch_at;
            state ^= 1;
            switch_at = t + expInterArrival(rng, dwell_rate);
            continue;
        }
        t = next;
        out.push_back(makeRequest(sampler.sample(rng), t));
    }
    return out;
}

std::vector<ModelRequest>
diurnalTrace(const ModelMix &mix, const DiurnalParams &params,
             std::size_t count, std::uint64_t seed)
{
    FM_ASSERT(params.period > 0, "diurnal period must be positive");
    FM_ASSERT(params.amplitude >= 0.0 && params.amplitude < 1.0,
              "diurnal amplitude must be in [0, 1)");
    Rng rng(seed);
    MixSampler sampler(mix);
    std::vector<ModelRequest> out;
    out.reserve(count);
    double max_rate = params.baseQps * (1.0 + params.amplitude);
    double period_s = toSeconds(params.period);
    SimTime t = 0;
    while (out.size() < count) {
        // Lewis-Shedler thinning of the dominating homogeneous process.
        t += expInterArrival(rng, max_rate);
        double phase = 2.0 * M_PI * toSeconds(t) / period_s;
        double rate = params.baseQps *
                      (1.0 + params.amplitude * std::sin(phase));
        if (rng.uniform() * max_rate <= rate)
            out.push_back(makeRequest(sampler.sample(rng), t));
    }
    return out;
}

std::vector<ModelRequest>
closedLoopTrace(const ModelMix &mix, const ClosedLoopParams &params,
                const std::map<models::ModelId, SimTime>
                    &service_estimates,
                std::size_t count, std::uint64_t seed)
{
    FM_ASSERT(params.users > 0, "closed loop needs at least one user");
    FM_ASSERT(params.meanThink >= 0, "negative think time");
    Rng rng(seed);
    MixSampler sampler(mix);
    double think_rate = params.meanThink > 0
                            ? 1.0 / toSeconds(params.meanThink)
                            : 0.0;

    // Each user issues its next request at issue_at[u]; the serialized
    // server drains them FIFO against the calibrated estimates.
    std::vector<SimTime> issue_at(
        static_cast<std::size_t>(params.users), 0);
    std::vector<ModelRequest> out;
    out.reserve(count);
    SimTime server_free = 0;
    while (out.size() < count) {
        // Earliest issuer next; user index breaks ties.
        std::size_t u = 0;
        for (std::size_t i = 1; i < issue_at.size(); ++i) {
            if (issue_at[i] < issue_at[u])
                u = i;
        }
        SimTime arrival = issue_at[u];
        const auto &entry = sampler.sample(rng);
        out.push_back(makeRequest(entry, arrival));

        auto est = service_estimates.find(entry.model);
        FM_ASSERT(est != service_estimates.end(),
                  "closed loop: no service estimate for mix model");
        SimTime completion =
            std::max(server_free, arrival) + est->second;
        server_free = completion;
        SimTime think = think_rate > 0.0
                            ? expInterArrival(rng, think_rate)
                            : 0;
        issue_at[u] = completion + think;
    }
    // Always advancing the globally earliest issuer keeps arrivals
    // nondecreasing without a sort.
    return out;
}

// ------------------------------------------------------------- replay

namespace {

constexpr const char *kCsvHeader = "arrival_ns,model,priority,slo_ns";

/** Split one CSV line on commas (no quoting — fields never contain
 * commas in this format). */
std::vector<std::string>
splitCsv(const std::string &line)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

/** Extract the value of @p key from a single-line JSON object; returns
 * the raw token (string values without quotes). Empty if absent. */
std::string
jsonField(const std::string &line, const std::string &key)
{
    std::string needle = "\"" + key + "\"";
    std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return "";
    std::size_t colon = line.find(':', at + needle.size());
    FM_ASSERT(colon != std::string::npos, "malformed JSONL line: ",
              line);
    std::size_t v = line.find_first_not_of(" \t", colon + 1);
    FM_ASSERT(v != std::string::npos, "malformed JSONL line: ", line);
    if (line[v] == '"') {
        std::size_t close = line.find('"', v + 1);
        FM_ASSERT(close != std::string::npos,
                  "unterminated string in JSONL line: ", line);
        return line.substr(v + 1, close - v - 1);
    }
    std::size_t end = line.find_first_of(",}", v);
    FM_ASSERT(end != std::string::npos, "malformed JSONL line: ", line);
    std::string token = line.substr(v, end - v);
    while (!token.empty() &&
           (token.back() == ' ' || token.back() == '\t'))
        token.pop_back();
    return token;
}

/** Parse a decimal integer, failing loudly (no exceptions) on junk,
 * trailing characters, or overflow. */
long long
parseInt(const std::string &token, const char *what)
{
    FM_ASSERT(!token.empty(), "missing ", what, " in trace");
    std::size_t i = 0;
    bool negative = token[0] == '-';
    if (negative)
        i = 1;
    FM_ASSERT(i < token.size(), "malformed ", what, ": ", token);
    long long v = 0;
    for (; i < token.size(); ++i) {
        char c = token[i];
        FM_ASSERT(c >= '0' && c <= '9', "malformed ", what, ": ",
                  token);
        FM_ASSERT(v <= (std::numeric_limits<long long>::max() -
                        (c - '0')) /
                           10,
                  what, " overflows: ", token);
        v = v * 10 + (c - '0');
    }
    return negative ? -v : v;
}

SimTime
parseSimTime(const std::string &token, const char *what)
{
    long long v = parseInt(token, what);
    FM_ASSERT(v >= 0, what, " must be non-negative: ", token);
    return static_cast<SimTime>(v);
}

} // namespace

std::vector<ModelRequest>
parseCsvTrace(std::istream &in)
{
    std::string line;
    FM_ASSERT(std::getline(in, line), "empty CSV trace");
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    FM_ASSERT(line == kCsvHeader, "CSV trace must start with header '",
              kCsvHeader, "', got '", line, "'");
    std::vector<ModelRequest> out;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        auto fields = splitCsv(line);
        FM_ASSERT(fields.size() == 4, "CSV trace line needs 4 fields: ",
                  line);
        ModelRequest r;
        r.arrival = parseSimTime(fields[0], "arrival_ns");
        r.model = models::modelIdFromAbbr(fields[1]);
        r.priority =
            static_cast<int>(parseInt(fields[2], "priority"));
        r.latencyBound = parseSimTime(fields[3], "slo_ns");
        out.push_back(r);
    }
    return out;
}

std::vector<ModelRequest>
parseJsonlTrace(std::istream &in)
{
    std::vector<ModelRequest> out;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        ModelRequest r;
        r.arrival =
            parseSimTime(jsonField(line, "arrival_ns"), "arrival_ns");
        std::string model = jsonField(line, "model");
        FM_ASSERT(!model.empty(), "missing model in JSONL line: ",
                  line);
        r.model = models::modelIdFromAbbr(model);
        std::string prio = jsonField(line, "priority");
        r.priority =
            prio.empty()
                ? 0
                : static_cast<int>(parseInt(prio, "priority"));
        std::string slo = jsonField(line, "slo_ns");
        r.latencyBound = slo.empty() ? 0 : parseSimTime(slo, "slo_ns");
        out.push_back(r);
    }
    return out;
}

std::vector<ModelRequest>
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    FM_ASSERT(in.good(), "cannot open trace file ", path);
    auto dot = path.rfind('.');
    std::string ext =
        dot == std::string::npos ? "" : path.substr(dot + 1);
    if (ext == "csv")
        return parseCsvTrace(in);
    if (ext == "jsonl")
        return parseJsonlTrace(in);
    FM_FATAL("unknown trace extension '", ext, "' (want .csv/.jsonl): ",
             path);
}

void
writeCsvTrace(std::ostream &out,
              const std::vector<ModelRequest> &trace)
{
    out << kCsvHeader << "\n";
    for (const auto &r : trace) {
        out << r.arrival << ',' << models::modelSpec(r.model).abbr
            << ',' << r.priority << ',' << r.latencyBound << "\n";
    }
}

void
writeJsonlTrace(std::ostream &out,
                const std::vector<ModelRequest> &trace)
{
    for (const auto &r : trace) {
        out << "{\"arrival_ns\": " << r.arrival << ", \"model\": \""
            << models::modelSpec(r.model).abbr
            << "\", \"priority\": " << r.priority
            << ", \"slo_ns\": " << r.latencyBound << "}\n";
    }
}

} // namespace flashmem::serving
