#include "serving/sweep.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.hh"

namespace flashmem::serving {

namespace {

using multidnn::Admission;
using multidnn::ModelRequest;
using multidnn::ReadyRequest;

/** One event of the simulation clock (mirrors the EventScheduler's
 * ordering: arrivals before completions at equal times). */
struct Event
{
    SimTime time = 0;
    enum Kind { Arrival = 0, Completion = 1 } kind = Arrival;
    std::size_t seq = 0;

    bool
    operator>(const Event &o) const
    {
        if (time != o.time)
            return time > o.time;
        if (kind != o.kind)
            return kind > o.kind;
        return seq > o.seq;
    }
};

} // namespace

ServingOutcome
simulateServing(const std::vector<ModelRequest> &trace,
                const multidnn::SchedulingPolicy &policy,
                const ServiceTable &services,
                const ServingSimParams &params)
{
    ServingOutcome out;
    out.policy = policy.name();
    out.submitted = trace.size();

    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events;
    for (std::size_t i = 0; i < trace.size(); ++i)
        events.push({trace[i].arrival, Event::Arrival, i});

    std::vector<ReadyRequest> ready;
    bool busy = false;
    SimTime now = 0;
    while (!events.empty()) {
        auto ev = events.top();
        events.pop();
        now = std::max(now, ev.time);
        if (ev.kind == Event::Arrival) {
            const auto &req = trace[ev.seq];
            auto it = services.find(req.model);
            FM_ASSERT(it != services.end(),
                      "simulateServing: model missing from the "
                      "service table");
            ready.push_back({ev.seq, req.model, req.arrival,
                             req.priority, it->second.service,
                             req.latencyBound});
            if (ready.size() > params.readyLimit) {
                out.unstable = true;
                break;
            }
        } else {
            busy = false;
        }
        if (busy || ready.empty())
            continue;
        if (!events.empty() && events.top().time <= now &&
            events.top().kind == Event::Arrival)
            continue;

        // SLO admission, in arrival order — same pass as the real
        // EventScheduler::drain.
        for (std::size_t i = 0;
             policy.needsAdmission() && i < ready.size();) {
            auto verdict = policy.admit(now, ready[i]);
            if (verdict == Admission::Shed) {
                out.stats.recordShed();
                ready.erase(ready.begin() +
                            static_cast<std::ptrdiff_t>(i));
                continue;
            }
            if (verdict == Admission::Degrade)
                ready[i].degraded = true;
            ++i;
        }
        if (ready.empty())
            continue;

        auto pick = policy.select(now, ready);
        FM_ASSERT(pick < ready.size(), "policy picked out of range");
        ReadyRequest picked = ready[pick];
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));

        const auto &profile = services.at(picked.model);
        SimTime service = picked.degraded ? profile.degradedService
                                          : profile.service;
        Bytes peak = picked.degraded ? profile.degradedPeakBytes
                                     : profile.peakBytes;
        SimTime end = now + service;
        SimTime latency = end - picked.arrival;
        bool met = picked.latencyBound <= 0 ||
                   latency <= picked.latencyBound;
        out.stats.recordCompletion(latency, now - picked.arrival, met,
                                   picked.degraded);
        out.makespan = std::max(out.makespan, end);
        out.peakMemory = std::max(out.peakMemory, peak);
        events.push({end, Event::Completion, picked.queueIndex});
        busy = true;
    }
    return out;
}

namespace {

/** Probe one operating point: seeded Poisson trace, one sim run. */
ProbePoint
probe(const ModelMix &mix, const multidnn::SchedulingPolicy &policy,
      const ServiceTable &services, const SweepParams &params,
      double qps)
{
    auto trace =
        poissonTrace(mix, qps, params.requestsPerProbe, params.seed);
    auto out = simulateServing(trace, policy, services, params.sim);

    ProbePoint pt;
    pt.qps = qps;
    pt.unstable = out.unstable;
    pt.p99Ms = out.stats.p99Ms();
    pt.goodputRate = out.stats.goodputRate();
    pt.shed = out.stats.shedCount();
    pt.sustainable = !out.unstable && out.stats.completed() > 0 &&
                     out.stats.goodputRate() >= params.slo.minGoodput;
    if (params.slo.p99Bound > 0)
        pt.sustainable =
            pt.sustainable &&
            out.stats.p99() <= params.slo.p99Bound;
    return pt;
}

} // namespace

SweepResult
findMaxSustainableQps(const ModelMix &mix,
                      const multidnn::SchedulingPolicy &policy,
                      const ServiceTable &services,
                      const SweepParams &params, ThreadPool *pool)
{
    FM_ASSERT(params.loQps > 0.0 && params.hiQps >= params.loQps,
              "bad sweep QPS range");
    FM_ASSERT(params.resolution > 0.0, "bad sweep resolution");

    // Geometric bracketing ladder: loQps, 2*loQps, ... , hiQps.
    std::vector<double> ladder;
    for (double q = params.loQps; q < params.hiQps; q *= 2.0)
        ladder.push_back(q);
    ladder.push_back(params.hiQps);

    SweepResult result;
    // Ladder probes are pure functions of (mix, qps, seed): evaluating
    // them concurrently cannot change the outcome.
    if (pool) {
        std::vector<std::future<ProbePoint>> futures;
        futures.reserve(ladder.size());
        for (double q : ladder)
            futures.push_back(pool->submit([&, q] {
                return probe(mix, policy, services, params, q);
            }));
        for (auto &f : futures)
            result.probes.push_back(f.get());
    } else {
        for (double q : ladder)
            result.probes.push_back(
                probe(mix, policy, services, params, q));
    }

    // Bracket [lo, hi): lo = last sustainable rung before the first
    // unsustainable one, hi = that first unsustainable rung.
    double lo = 0.0, hi = 0.0;
    for (const auto &pt : result.probes) {
        if (pt.sustainable) {
            lo = pt.qps;
        } else {
            hi = pt.qps;
            break;
        }
    }
    if (lo == 0.0) {
        // Even the lowest rung failed the SLO.
        result.maxSustainableQps = 0.0;
        return result;
    }
    if (hi == 0.0) {
        // Everything up to the cap sustained.
        result.maxSustainableQps = params.hiQps;
        return result;
    }

    // Geometric binary search inside the bracket.
    while ((hi - lo) / lo > params.resolution) {
        double mid = std::sqrt(lo * hi);
        auto pt = probe(mix, policy, services, params, mid);
        result.probes.push_back(pt);
        if (pt.sustainable)
            lo = mid;
        else
            hi = mid;
    }
    result.maxSustainableQps = lo;
    return result;
}

} // namespace flashmem::serving
