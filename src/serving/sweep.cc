#include "serving/sweep.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "multidnn/event_loop.hh"

namespace flashmem::serving {

namespace {

using multidnn::DeviceCluster;
using multidnn::DispatchedRun;
using multidnn::ModelRequest;
using multidnn::ReadyRequest;

/** The fast drain over the shared cluster event loop: dispatch is a
 * service-table lookup placed through DeviceCluster::planTimes — the
 * same timing rule the real EventScheduler commits runs with. */
ServingOutcome
simulateImpl(const std::vector<ModelRequest> &trace,
             const multidnn::SchedulingPolicy &policy,
             const ClusterServiceTable &tables,
             const ServingSimParams &params)
{
    ServingOutcome out;
    out.policy = policy.name();
    out.submitted = trace.size();

    DeviceCluster cluster(params.cluster);
    FM_ASSERT(tables.size() == 1 ||
                  static_cast<int>(tables.size()) >=
                      cluster.deviceCount(),
              "cluster service tables must cover every device");
    const ServiceTable &primary = tables.front();
    auto table_for = [&](int device) -> const ServiceTable & {
        return tables.size() == 1
                   ? primary
                   : tables[static_cast<std::size_t>(device)];
    };
    std::vector<Bytes> device_peak(
        static_cast<std::size_t>(cluster.deviceCount()), 0);

    bool stable = multidnn::drainClusterQueue(
        trace, policy, cluster,
        [&](std::size_t seq) {
            const auto &req = trace[seq];
            auto it = primary.find(req.model);
            FM_ASSERT(it != primary.end(),
                      "simulateServing: model missing from the "
                      "service table");
            ReadyRequest r;
            r.queueIndex = seq;
            r.model = req.model;
            r.arrival = req.arrival;
            r.priority = req.priority;
            r.estimatedLatency = it->second.service;
            r.latencyBound = req.latencyBound;
            return r;
        },
        [&](const ReadyRequest &picked,
            const std::vector<ReadyRequest> &, SimTime now,
            std::uint64_t) {
            // Placement keys (capacity affinity) on the primary
            // table's plan budgets; dispatch times come from the
            // placed device's own table.
            const auto &pp = primary.at(picked.model);
            Bytes budget = picked.degraded ? pp.degradedPlanBudget
                                           : pp.planBudget;
            int dev = cluster.pickDevice(now, picked.model, budget);
            const auto &profile = table_for(dev).at(picked.model);
            SimTime init = picked.degraded
                               ? profile.degradedInitService
                               : profile.initService;
            SimTime exec = picked.degraded
                               ? profile.degradedExecService()
                               : profile.execService();
            auto t = cluster.planTimes(dev, now, init, exec);
            cluster.commit(dev, picked.model, budget, t);

            Bytes peak = picked.degraded ? profile.degradedPeakBytes
                                         : profile.peakBytes;
            out.peakMemory = std::max(out.peakMemory, peak);
            auto &dpeak = device_peak[static_cast<std::size_t>(dev)];
            dpeak = std::max(dpeak, peak);
            return DispatchedRun{dev, t};
        },
        [&](const ReadyRequest &req, const DispatchedRun &run,
            std::uint64_t) {
            // Stats are recorded when a run survives to completion —
            // killed dispatches retry or shed instead — with the
            // actual (possibly stall-shifted) timeline. The loop
            // delivers completions in dispatch order, so the P²
            // insertion order matches the real scheduler's
            // dispatch-ordered runs exactly.
            SimTime latency = run.times.end - req.arrival;
            bool met = req.latencyBound <= 0 ||
                       latency <= req.latencyBound;
            out.stats.recordCompletion(latency,
                                       run.times.start - req.arrival,
                                       met, req.degraded);
            out.makespan = std::max(out.makespan, run.times.end);
        },
        [&](const ReadyRequest &, SimTime, multidnn::DropReason reason) {
            if (reason == multidnn::DropReason::ArrivalShed)
                ++out.arrivalSheds;
            out.stats.recordShed();
        },
        params.readyLimit,
        params.faults.empty() ? nullptr : &params.faults,
        params.recovery, &out.faults, params.arrival, params.trace);

    out.unstable = !stable;
    out.devices = cluster.utilization(out.makespan);
    for (std::size_t i = 0; i < out.devices.size(); ++i)
        out.devices[i].peakMemory = device_peak[i];
    return out;
}

} // namespace

ServingOutcome
simulateServing(const std::vector<ModelRequest> &trace,
                const multidnn::SchedulingPolicy &policy,
                const ServiceTable &services,
                const ServingSimParams &params)
{
    return simulateImpl(trace, policy, ClusterServiceTable{services},
                        params);
}

ServingOutcome
simulateServing(const std::vector<ModelRequest> &trace,
                const multidnn::SchedulingPolicy &policy,
                const ClusterServiceTable &tables,
                const ServingSimParams &params)
{
    FM_ASSERT(!tables.empty(), "empty cluster service table");
    return simulateImpl(trace, policy, tables, params);
}

namespace {

/** Probe one operating point: seeded Poisson trace, one sim run. */
ProbePoint
probe(const ModelMix &mix, const multidnn::SchedulingPolicy &policy,
      const ServiceTable &services, const SweepParams &params,
      double qps)
{
    auto trace =
        poissonTrace(mix, qps, params.requestsPerProbe, params.seed);
    auto out = simulateServing(trace, policy, services, params.sim);

    ProbePoint pt;
    pt.qps = qps;
    pt.unstable = out.unstable;
    pt.p99Ms = out.stats.p99Ms();
    pt.goodputRate = out.stats.goodputRate();
    pt.shed = out.stats.shedCount();
    pt.sustainable = !out.unstable && out.stats.completed() > 0 &&
                     out.stats.goodputRate() >= params.slo.minGoodput;
    if (params.slo.p99Bound > 0)
        pt.sustainable =
            pt.sustainable &&
            out.stats.p99() <= params.slo.p99Bound;
    return pt;
}

} // namespace

SweepResult
findMaxSustainableQps(const ModelMix &mix,
                      const multidnn::SchedulingPolicy &policy,
                      const ServiceTable &services,
                      const SweepParams &params, ThreadPool *pool)
{
    FM_ASSERT(params.loQps > 0.0 && params.hiQps >= params.loQps,
              "bad sweep QPS range");
    FM_ASSERT(params.resolution > 0.0, "bad sweep resolution");

    // Geometric bracketing ladder: loQps, 2*loQps, ... , hiQps.
    std::vector<double> ladder;
    for (double q = params.loQps; q < params.hiQps; q *= 2.0)
        ladder.push_back(q);
    ladder.push_back(params.hiQps);

    SweepResult result;
    // Ladder probes are pure functions of (mix, qps, seed): evaluating
    // them concurrently cannot change the outcome.
    if (pool) {
        std::vector<std::future<ProbePoint>> futures;
        futures.reserve(ladder.size());
        for (double q : ladder)
            futures.push_back(pool->submit([&, q] {
                return probe(mix, policy, services, params, q);
            }));
        for (auto &f : futures)
            result.probes.push_back(f.get());
    } else {
        for (double q : ladder)
            result.probes.push_back(
                probe(mix, policy, services, params, q));
    }

    // Bracket [lo, hi): lo = last sustainable rung before the first
    // unsustainable one, hi = that first unsustainable rung.
    double lo = 0.0, hi = 0.0;
    for (const auto &pt : result.probes) {
        if (pt.sustainable) {
            lo = pt.qps;
        } else {
            hi = pt.qps;
            break;
        }
    }
    if (lo == 0.0) {
        // Even the lowest rung failed the SLO.
        result.maxSustainableQps = 0.0;
        return result;
    }
    if (hi == 0.0) {
        // Everything up to the cap sustained.
        result.maxSustainableQps = params.hiQps;
        return result;
    }

    // Geometric binary search inside the bracket.
    while ((hi - lo) / lo > params.resolution) {
        double mid = std::sqrt(lo * hi);
        auto pt = probe(mix, policy, services, params, mid);
        result.probes.push_back(pt);
        if (pt.sustainable)
            lo = mid;
        else
            hi = mid;
    }
    result.maxSustainableQps = lo;
    return result;
}

std::vector<ShardingPoint>
sweepDeviceCounts(const ModelMix &mix,
                  const multidnn::SchedulingPolicy &policy,
                  const ServiceTable &services,
                  const SweepParams &base,
                  const std::vector<int> &device_counts,
                  ThreadPool *pool)
{
    std::vector<ShardingPoint> out;
    for (int n : device_counts) {
        FM_ASSERT(n >= 1, "sweepDeviceCounts: bad device count");
        for (bool overlap : {false, true}) {
            SweepParams params = base;
            params.sim.cluster.deviceCount = n;
            params.sim.cluster.overlapInitWithExec = overlap;
            // More devices sustain proportionally more load; scale
            // the ladder cap so the knee stays inside the bracket.
            params.hiQps = base.hiQps * n;
            ShardingPoint pt;
            pt.devices = n;
            pt.overlap = overlap;
            pt.sweep = findMaxSustainableQps(mix, policy, services,
                                             params, pool);
            out.push_back(std::move(pt));
        }
    }
    return out;
}

} // namespace flashmem::serving
