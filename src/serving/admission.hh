/**
 * @file
 * Arrival-time overload protection with a learned service model.
 *
 * Dispatch-point admission (multidnn::DeadlinePolicy::admit) only
 * sheds a request once it is already doomed, so under overload doomed
 * requests occupy queue slots for their entire wait and marginal
 * requests dispatch into device backlogs they cannot clear in time —
 * completed-but-late runs that count against goodput twice (they miss
 * their own bound AND burn device time feasible requests needed). The
 * AdmissionController here closes both gaps: at the instant a request
 * (or a fault retry) would enter the ready set, a backlog model over
 * the cluster's per-device compute horizons plus the
 * queued-but-unplaced work projects the earliest feasible completion,
 * and requests that cannot meet their bound are shed — or degraded to
 * the policy's reduced budget — *at arrival*, with
 * DropReason::ArrivalShed.
 *
 * Service times come from a three-tier ServiceEstimator ladder:
 *
 *   1. Calibrated — the model has a ServiceTable entry (a real
 *      compile + execute measured it); use it verbatim.
 *   2. Predicted — a GbtRegressor trained on whole-graph features
 *      (profiler::graphFeatures) of the calibrated models predicts
 *      log-efficiency (service per MAC; the model's own MAC count
 *      restores absolute scale, so estimates extrapolate past the
 *      calibrated hull) for models calibration has never seen,
 *      inflated by a conservative margin learned from leave-one-out
 *      cross-validated residuals (admit cautiously, not blindly).
 *   3. Pessimistic — no usable predictor: assume a multiple of the
 *      slowest calibrated service, so an unknown model is the last
 *      thing admitted under pressure, never a blind spot.
 *
 * This is the cold-model reality of serving at scale: new models ship
 * daily and cannot all be calibrated, but graph aggregates exist the
 * moment a model ships. Follows the paper's own GBT latency predictor
 * (Section 4.2) one level up, per ROADMAP open item 3.
 *
 * Bit-exact cross-validation: the controller decides from (now,
 * request, ready set, cluster state) only — identical between the
 * fast simulator and the real EventScheduler at every arrival by
 * construction — and computes every estimate itself (it never reads
 * ReadyRequest::estimatedLatency, which the two paths populate
 * differently for cold models). Hand the SAME controller to
 * ServingSimParams::arrival and SchedulerConfig::arrivalAdmission and
 * the decision streams match exactly.
 */

#ifndef FLASHMEM_SERVING_ADMISSION_HH
#define FLASHMEM_SERVING_ADMISSION_HH

#include <cstddef>
#include <map>

#include "multidnn/device.hh"
#include "multidnn/policies.hh"
#include "profiler/gbt.hh"
#include "serving/slo.hh"
#include "serving/trace_gen.hh"

namespace flashmem::obs {
class CounterRegistry;
} // namespace flashmem::obs

namespace flashmem::serving {

/** Which rung of the estimate ladder produced a service estimate. */
enum class EstimateTier
{
    Calibrated,  ///< measured ServiceTable entry
    Predicted,   ///< GBT over graph features, margin-inflated
    Pessimistic, ///< no predictor: multiple of the slowest calibrated
};

/** Human name of an estimate tier. */
const char *estimateTierName(EstimateTier tier);

/** One model's admission-facing service estimate. */
struct ServiceEstimate
{
    SimTime service = 0;         ///< full-budget service estimate
    SimTime degradedService = 0; ///< degraded-budget service estimate
    EstimateTier tier = EstimateTier::Pessimistic;
};

/** Tuned GBT hyper-parameters for the (small) model-level training
 * sets service prediction works with: shallow deterministic trees,
 * no row subsampling, single-sample leaves. */
profiler::GbtParams serviceModelGbtParams();

/** Knobs of the three-tier service estimator. */
struct EstimatorParams
{
    /** Master switch for tier 2; off, uncalibrated models fall
     * straight to the pessimistic tier. */
    bool usePredictor = true;
    /** Quantile of the leave-one-out |log-residual| distribution the
     * predicted-tier inflation margin is taken at. */
    double marginQuantile = 0.9;
    /** Floor on the predicted-tier inflation factor (>= 1). */
    double minInflation = 1.1;
    /** Pessimistic tier: this multiple of the slowest calibrated
     * service (degraded likewise). */
    double pessimisticFactor = 2.0;
    /** Pessimistic service when the calibration table is empty. */
    SimTime fallbackService = seconds(1);
    /** Precision the feature graphs are built at (match the serving
     * stack's calibration precision). */
    Precision precision = Precision::FP16;
    /** Boosting hyper-parameters of the tier-2 predictor. */
    profiler::GbtParams gbt = serviceModelGbtParams();
};

/**
 * The three-tier service-time estimator. Construction trains the
 * predictor on the calibrated table (when >= 2 entries and
 * usePredictor) and precomputes an estimate for every zoo model, so
 * estimate() afterwards is a const map lookup — cheap, deterministic,
 * and safe to share across concurrent simulator runs.
 */
class ServiceEstimator
{
  public:
    explicit ServiceEstimator(const ServiceTable &calibrated,
                              EstimatorParams params = {});

    /** The ladder estimate for @p model. */
    const ServiceEstimate &estimate(models::ModelId model) const;

    std::size_t calibratedCount() const { return calibrated_count_; }
    bool predictorTrained() const { return trained_; }
    /** Multiplicative uncertainty margin applied to tier-2 estimates
     * (1 when the predictor is untrained). */
    double inflation() const { return inflation_; }

  private:
    std::map<models::ModelId, ServiceEstimate> estimates_;
    std::size_t calibrated_count_ = 0;
    bool trained_ = false;
    double inflation_ = 1.0;
};

/** Decision accounting of one AdmissionController. */
struct AdmissionDecisions
{
    std::size_t admitted = 0;
    std::size_t degraded = 0;
    std::size_t shed = 0;
    /** Estimate-tier mix of the decided requests. @{ */
    std::size_t tierCalibrated = 0;
    std::size_t tierPredicted = 0;
    std::size_t tierPessimistic = 0;
    /** @} */

    std::size_t total() const { return admitted + degraded + shed; }
};

/** Knobs of the arrival-time backlog gate. */
struct AdmissionControllerParams
{
    /** What to do with a request whose projected completion misses
     * its bound: shed it, or (when the degraded estimate still fits)
     * degrade it to the policy's reduced budget. */
    multidnn::DeadlinePolicy::Overload mode =
        multidnn::DeadlinePolicy::Overload::Shed;
};

/**
 * Arrival-time admission gate over a backlog model (the
 * multidnn::ArrivalAdmission implementation).
 *
 * At each arrival the projected start is
 *
 *   start = min over live devices of max(now, computeBusyUntil)
 *         + (sum of ladder estimates over the earlier-deadline
 *            ready set) / live
 *
 * — the earliest any device frees, plus the queued-but-unplaced work
 * that runs ahead of this request under EDF, spread across the live
 * devices — and the request is admitted iff
 * start + estimate fits its deadline. A projected miss sheds in Shed
 * mode and degrades in Degrade mode (mirroring
 * DeadlinePolicy::admit's overload semantics: the degraded dispatch
 * trades a late completion for freed shared capacity). Unbounded
 * requests always admit; so does an all-Down cluster (the loop's
 * starvation accounting owns that case). All arithmetic is integer
 * nanoseconds: bit-exact on both execution paths.
 */
class AdmissionController : public multidnn::ArrivalAdmission
{
  public:
    explicit AdmissionController(const ServiceEstimator &estimator,
                                 AdmissionControllerParams params = {});

    multidnn::Admission admitAtArrival(
        SimTime now, const multidnn::ReadyRequest &r,
        const std::vector<multidnn::ReadyRequest> &ready,
        const multidnn::DeviceCluster &cluster) const override;

    const ServiceEstimator &estimator() const { return estimator_; }
    const AdmissionDecisions &decisions() const { return decisions_; }
    /** Zero the decision counters (e.g. between the two runs of a
     * cross-validation pair sharing one controller). */
    void resetDecisions() { decisions_ = {}; }

    /**
     * Export the decision counters into @p registry under
     * "admission.*" names (obs instrumentation hook; the per-request
     * AdmissionVerdict trace events are emitted by the event loop,
     * which carries the per-path recorder — a gate object is shared
     * across both execution paths by contract).
     */
    void exportCounters(obs::CounterRegistry &registry) const;

  private:
    const ServiceEstimator &estimator_;
    AdmissionControllerParams params_;
    /** Accounting only — never feeds back into verdicts, so sharing
     * one controller across sequential runs stays deterministic. */
    mutable AdmissionDecisions decisions_;
};

/**
 * Cold-model influx mix: reweight @p base to (1 - cold_fraction) of
 * the total and @p cold to cold_fraction, so a seeded trace generator
 * draws an expected @p cold_fraction of arrivals from the cold
 * entries. Entry order is base-then-cold (deterministic sampling).
 */
ModelMix withColdInflux(const ModelMix &base,
                        const std::vector<ModelMix::Entry> &cold,
                        double cold_fraction);

} // namespace flashmem::serving

#endif // FLASHMEM_SERVING_ADMISSION_HH
