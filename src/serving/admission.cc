#include "serving/admission.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/trace.hh"
#include "profiler/features.hh"

namespace flashmem::serving {

const char *
estimateTierName(EstimateTier tier)
{
    switch (tier) {
      case EstimateTier::Calibrated:
        return "calibrated";
      case EstimateTier::Predicted:
        return "predicted";
      case EstimateTier::Pessimistic:
        return "pessimistic";
    }
    return "unknown";
}

profiler::GbtParams
serviceModelGbtParams()
{
    // Model-level training sets are tiny (one row per calibrated
    // model), so the kernel-regressor defaults (deep trees, 3-sample
    // leaves, row subsampling) would degenerate to a constant. Shallow
    // deterministic stumps with single-sample leaves and no
    // subsampling let even a handful of models separate on size.
    profiler::GbtParams p;
    p.trees = 80;
    p.maxDepth = 2;
    p.learningRate = 0.15;
    p.minSamplesLeaf = 1;
    p.subsample = 1.0;
    return p;
}

ServiceEstimator::ServiceEstimator(const ServiceTable &calibrated,
                                   EstimatorParams params)
{
    calibrated_count_ = calibrated.size();

    // Tier 1: calibrated entries pass through verbatim.
    SimTime slowest = 0, slowest_degraded = 0;
    for (const auto &[model, profile] : calibrated) {
        FM_ASSERT(profile.service > 0,
                  "ServiceEstimator: non-positive calibrated service");
        estimates_.emplace(model,
                           ServiceEstimate{profile.service,
                                           profile.degradedService,
                                           EstimateTier::Calibrated});
        slowest = std::max(slowest, profile.service);
        slowest_degraded =
            std::max(slowest_degraded, profile.degradedService);
    }

    // Tier 2: train a GBT on graph features of the calibrated models.
    // The regression target is log *efficiency* — log(service) minus
    // log(MACs), the first graph feature — not raw log-service: trees
    // cannot predict outside the label range they saw, so a raw
    // service target would saturate every model bigger than the
    // largest calibrated one into the same leaf value. Efficiency is
    // bounded and interpolates well, and adding the model's own
    // log-MACs back restores absolute scale, so predictions track
    // model size even far beyond the calibrated hull. The inflation
    // margin comes from leave-one-out residuals so the predictor's own
    // observed error sets how cautiously its estimates are treated.
    profiler::GbtRegressor predictor(params.gbt);
    double degraded_ratio = 1.0;
    if (params.usePredictor && calibrated.size() >= 2) {
        std::vector<std::vector<double>> x;
        std::vector<double> y;
        double ratio_sum = 0.0;
        for (const auto &[model, profile] : calibrated) {
            x.push_back(profiler::graphFeatures(
                models::buildModel(model, params.precision)));
            y.push_back(
                std::log(static_cast<double>(profile.service)) -
                x.back()[0]);
            ratio_sum += static_cast<double>(profile.degradedService) /
                         static_cast<double>(profile.service);
        }
        degraded_ratio = ratio_sum / static_cast<double>(y.size());

        std::vector<double> margins;
        for (std::size_t i = 0; i < y.size(); ++i) {
            std::vector<std::vector<double>> xi;
            std::vector<double> yi;
            for (std::size_t j = 0; j < y.size(); ++j) {
                if (j == i)
                    continue;
                xi.push_back(x[j]);
                yi.push_back(y[j]);
            }
            profiler::GbtRegressor loo(params.gbt);
            loo.fit(xi, yi);
            margins.push_back(
                std::exp(std::abs(loo.predict(x[i]) - y[i])));
        }
        std::sort(margins.begin(), margins.end());
        auto rank = static_cast<std::size_t>(std::ceil(
            params.marginQuantile *
            static_cast<double>(margins.size())));
        rank = std::clamp<std::size_t>(rank, 1, margins.size());
        inflation_ =
            std::max(params.minInflation, margins[rank - 1]);

        predictor.fit(x, y);
        trained_ = true;
    }

    // Tier 3 values: a multiple of the slowest calibrated service, so
    // an unknown model is treated as the most expensive thing the
    // cluster has ever measured, scaled up — never a blind spot.
    SimTime pessimistic =
        slowest > 0 ? static_cast<SimTime>(std::llround(
                          params.pessimisticFactor *
                          static_cast<double>(slowest)))
                    : params.fallbackService;
    SimTime pessimistic_degraded =
        slowest_degraded > 0
            ? static_cast<SimTime>(std::llround(
                  params.pessimisticFactor *
                  static_cast<double>(slowest_degraded)))
            : params.fallbackService;

    // Precompute the ladder estimate for every zoo model so estimate()
    // is a const lookup (shareable across concurrent runs).
    for (const auto &spec : models::modelZoo()) {
        if (estimates_.count(spec.id))
            continue;
        if (trained_) {
            auto features = profiler::graphFeatures(
                models::buildModel(spec.id, params.precision));
            // predict() yields log efficiency; the model's log-MACs
            // (features[0]) restores the absolute service scale.
            double pred = std::exp(predictor.predict(features) +
                                   features[0]);
            SimTime service = std::max<SimTime>(
                1, static_cast<SimTime>(
                       std::llround(pred * inflation_)));
            SimTime degraded = std::max<SimTime>(
                1, static_cast<SimTime>(std::llround(
                       pred * inflation_ * degraded_ratio)));
            estimates_.emplace(spec.id,
                               ServiceEstimate{service, degraded,
                                               EstimateTier::Predicted});
        } else {
            estimates_.emplace(
                spec.id,
                ServiceEstimate{pessimistic, pessimistic_degraded,
                                EstimateTier::Pessimistic});
        }
    }
}

const ServiceEstimate &
ServiceEstimator::estimate(models::ModelId model) const
{
    auto it = estimates_.find(model);
    FM_ASSERT(it != estimates_.end(),
              "ServiceEstimator: model outside the zoo");
    return it->second;
}

AdmissionController::AdmissionController(
    const ServiceEstimator &estimator,
    AdmissionControllerParams params)
    : estimator_(estimator), params_(params)
{}

multidnn::Admission
AdmissionController::admitAtArrival(
    SimTime now, const multidnn::ReadyRequest &r,
    const std::vector<multidnn::ReadyRequest> &ready,
    const multidnn::DeviceCluster &cluster) const
{
    const auto &est = estimator_.estimate(r.model);
    switch (est.tier) {
      case EstimateTier::Calibrated:
        ++decisions_.tierCalibrated;
        break;
      case EstimateTier::Predicted:
        ++decisions_.tierPredicted;
        break;
      case EstimateTier::Pessimistic:
        ++decisions_.tierPessimistic;
        break;
    }

    // Unbounded requests cannot miss a deadline; always admit.
    if (r.latencyBound <= 0) {
        ++decisions_.admitted;
        return multidnn::Admission::Admit;
    }

    // Earliest instant any live device's compute frees. An all-Down
    // cluster admits: the loop's starvation/retry accounting owns that
    // case, and shedding on a momentarily dead cluster would race the
    // rejoin events.
    SimTime earliest = kTimeNever;
    SimTime live = 0;
    for (const auto &d : cluster.devices()) {
        if (d.health == multidnn::DeviceHealth::Down)
            continue;
        ++live;
        earliest =
            std::min(earliest, std::max(now, d.computeBusyUntil));
    }
    if (live == 0) {
        ++decisions_.admitted;
        return multidnn::Admission::Admit;
    }

    // Queued-but-unplaced work ahead of this request, spread across
    // the live devices (integer division: deterministic, and biased
    // low — optimistic on start, conservative on sheds). Under EDF
    // only earlier-deadline work runs ahead of the arriving request,
    // so later-deadline queue entries do not count against it —
    // charging the whole queue would shed far too eagerly exactly
    // when the queue is full of doomed stragglers.
    SimTime backlog = 0;
    SimTime deadline = r.deadline();
    for (const auto &q : ready) {
        if (q.deadline() > deadline)
            continue;
        const auto &qe = estimator_.estimate(q.model);
        SimTime qs = q.degraded ? qe.degradedService : qe.service;
        // An entry that can no longer meet its own bound even if it
        // started right now is certain to be shed at the dispatch
        // point and costs no device time.
        if (q.latencyBound > 0 && now + qs > q.deadline())
            continue;
        backlog += qs;
    }
    SimTime start = earliest + backlog / live;
    SimTime service = r.degraded ? est.degradedService : est.service;
    if (start + service <= deadline) {
        ++decisions_.admitted;
        return multidnn::Admission::Admit;
    }
    if (params_.mode == multidnn::DeadlinePolicy::Overload::Degrade) {
        ++decisions_.degraded;
        return multidnn::Admission::Degrade;
    }
    ++decisions_.shed;
    return multidnn::Admission::Shed;
}

void
AdmissionController::exportCounters(obs::CounterRegistry &registry)
    const
{
    registry.add("admission.admitted",
                 static_cast<std::int64_t>(decisions_.admitted));
    registry.add("admission.degraded",
                 static_cast<std::int64_t>(decisions_.degraded));
    registry.add("admission.shed",
                 static_cast<std::int64_t>(decisions_.shed));
    registry.add("admission.tier_calibrated",
                 static_cast<std::int64_t>(decisions_.tierCalibrated));
    registry.add("admission.tier_predicted",
                 static_cast<std::int64_t>(decisions_.tierPredicted));
    registry.add(
        "admission.tier_pessimistic",
        static_cast<std::int64_t>(decisions_.tierPessimistic));
}

ModelMix
withColdInflux(const ModelMix &base,
               const std::vector<ModelMix::Entry> &cold,
               double cold_fraction)
{
    FM_ASSERT(cold_fraction > 0.0 && cold_fraction < 1.0,
              "withColdInflux: cold fraction must be in (0, 1)");
    FM_ASSERT(!base.entries.empty() && !cold.empty(),
              "withColdInflux: empty mix");
    auto total = [](const std::vector<ModelMix::Entry> &entries) {
        double w = 0.0;
        for (const auto &e : entries)
            w += e.weight;
        FM_ASSERT(w > 0.0, "withColdInflux: non-positive mix weight");
        return w;
    };
    double base_w = total(base.entries);
    double cold_w = total(cold);

    ModelMix mix;
    for (auto e : base.entries) {
        e.weight *= (1.0 - cold_fraction) / base_w;
        mix.entries.push_back(e);
    }
    for (auto e : cold) {
        e.weight *= cold_fraction / cold_w;
        mix.entries.push_back(e);
    }
    return mix;
}

} // namespace flashmem::serving
