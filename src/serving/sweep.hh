/**
 * @file
 * Request-level serving simulator + streaming-percentile capacity
 * sweeps.
 *
 * simulateServing() runs the EventScheduler's own event loop
 * (multidnn/event_loop.hh — literally the same template, not a copy)
 * over a DeviceCluster, but dispatch costs one table lookup into
 * calibrated per-model service times (serving/slo.hh) instead of a
 * full streamed execution. That makes million-request runs cheap
 * (O(1) arithmetic per request) while staying grounded in real
 * planner/runtime numbers, and bit-identical to the real scheduler
 * for a given trace — including multi-device sharding and
 * cross-request init/exec overlap (ServingSimParams::cluster).
 *
 * findMaxSustainableQps() locates the capacity knee per policy: the
 * largest offered QPS whose probe run still meets the SloSpec (p99
 * under the bound, goodput above the floor). Probes are pure
 * functions of (mix, qps, seed, cluster), so the bracketing ladder
 * can run concurrently on a ThreadPool with no effect on the result.
 * sweepDeviceCounts() repeats the sweep across cluster sizes with
 * overlap off/on — the serving_sharding scaling curve.
 */

#ifndef FLASHMEM_SERVING_SWEEP_HH
#define FLASHMEM_SERVING_SWEEP_HH

#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "multidnn/policies.hh"
#include "serving/serving_stats.hh"
#include "serving/slo.hh"
#include "serving/trace_gen.hh"

namespace flashmem::obs {
class TraceRecorder;
} // namespace flashmem::obs

namespace flashmem::serving {

/** Knobs of the fast request-level simulator. */
struct ServingSimParams
{
    /**
     * Backlog bound: when the ready set exceeds this many queued
     * requests the run is declared unstable (offered load is beyond
     * capacity and the queue diverges) and aborted early — any SLO
     * would long since have blown, and the bound keeps overloaded
     * sweep probes from going quadratic.
     */
    std::size_t readyLimit = 4096;
    /** Cluster shape: device count, placement, cross-request overlap
     * (mirrors multidnn::SchedulerConfig::cluster). */
    multidnn::ClusterConfig cluster;
    /** Deterministic fault schedule (empty = fault-free), identical
     * in shape to multidnn::SchedulerConfig::faults so a fast-sim run
     * and a real EventScheduler run see the same timeline. */
    multidnn::FaultPlan faults;
    /** Detection/retry knobs for recovering from injected faults. */
    multidnn::RecoveryConfig recovery;
    /**
     * Arrival-time admission gate (null = dispatch-point admission
     * only; see serving/admission.hh). Not owned. Hand the SAME gate
     * to SchedulerConfig::arrivalAdmission on the real path for the
     * cross-validation to stay bit-exact.
     */
    const multidnn::ArrivalAdmission *arrival = nullptr;
    /**
     * Optional trace recorder (not owned). Receives the serving
     * event stream from the shared event loop; with the SAME seed,
     * config, and gate, its Stream::Serving text export is
     * byte-identical to a traced EventScheduler run's. Null (the
     * default) keeps every hook a skipped pointer test, so sweeps
     * pay nothing.
     */
    obs::TraceRecorder *trace = nullptr;
};

/** Outcome of one simulated serving run. */
struct ServingOutcome
{
    std::string policy;
    ServingStats stats;
    SimTime makespan = 0;
    /** Peak calibrated working set over the dispatched runs. */
    Bytes peakMemory = 0;
    /** True when the backlog exceeded readyLimit and the run aborted:
     * the offered load is not sustainable. */
    bool unstable = false;
    /** Requests submitted (trace size), including unprocessed ones on
     * an unstable abort. */
    std::size_t submitted = 0;
    /** Per-device accounting (dispatch counts, plan switches,
     * compute-/DMA-busy fractions, downtime, calibrated peak) —
     * mirrors ScheduleOutcome::devices. */
    std::vector<multidnn::DeviceUtilization> devices;
    /** Fault-recovery accounting (all zero on fault-free runs);
     * fault-shed and starved requests also count in stats.shed. */
    multidnn::FaultCounters faults;
    /** Requests shed at arrival by the backlog admission gate
     * (DropReason::ArrivalShed); a subset of stats.shed. */
    std::size_t arrivalSheds = 0;
};

/** Drain @p trace against calibrated @p services under @p policy
 * (homogeneous devices: every cluster device uses @p services). */
ServingOutcome simulateServing(
    const std::vector<multidnn::ModelRequest> &trace,
    const multidnn::SchedulingPolicy &policy,
    const ServiceTable &services, const ServingSimParams &params = {});

/** Sharded variant with per-device service tables: device @c i
 * dispatches against @p tables[i] (table 0 also supplies the
 * placement-independent estimates admission and SJF key on). */
ServingOutcome simulateServing(
    const std::vector<multidnn::ModelRequest> &trace,
    const multidnn::SchedulingPolicy &policy,
    const ClusterServiceTable &tables,
    const ServingSimParams &params = {});

/** One evaluated operating point of a capacity sweep. */
struct ProbePoint
{
    double qps = 0.0;
    bool sustainable = false;
    double p99Ms = 0.0;
    double goodputRate = 0.0;
    std::size_t shed = 0;
    bool unstable = false;
};

/** Capacity-sweep configuration. */
struct SweepParams
{
    double loQps = 1.0;     ///< ladder start (assumed sustainable-ish)
    double hiQps = 8192.0;  ///< ladder cap
    /** Stop refining when the bracket is within this relative width. */
    double resolution = 0.05;
    std::size_t requestsPerProbe = 200000;
    std::uint64_t seed = 1;
    SloSpec slo;
    ServingSimParams sim;
};

/** Result of one policy's capacity sweep. */
struct SweepResult
{
    /** Largest probed QPS meeting the SLO (0 if even loQps fails). */
    double maxSustainableQps = 0.0;
    /** Every probe evaluated, in evaluation order. */
    std::vector<ProbePoint> probes;
};

/**
 * Binary-search the max sustainable QPS of @p policy over @p mix.
 * The cluster shape rides on @c params.sim.cluster. @p pool, when
 * given, evaluates the bracketing ladder concurrently; the result is
 * identical with or without it.
 */
SweepResult findMaxSustainableQps(const ModelMix &mix,
                                  const multidnn::SchedulingPolicy
                                      &policy,
                                  const ServiceTable &services,
                                  const SweepParams &params,
                                  ThreadPool *pool = nullptr);

/** One operating point of the sharding scaling curve. */
struct ShardingPoint
{
    int devices = 1;
    bool overlap = false;
    SweepResult sweep;
};

/**
 * Repeat the capacity sweep of @p policy across @p device_counts,
 * with cross-request overlap off and on per count (placement from
 * @p base.sim.cluster). The QPS ladder cap scales linearly with the
 * device count; every probe stays a pure function of
 * (mix, qps, seed, cluster), so results are thread-count independent.
 */
std::vector<ShardingPoint> sweepDeviceCounts(
    const ModelMix &mix, const multidnn::SchedulingPolicy &policy,
    const ServiceTable &services, const SweepParams &base,
    const std::vector<int> &device_counts, ThreadPool *pool = nullptr);

} // namespace flashmem::serving

#endif // FLASHMEM_SERVING_SWEEP_HH
