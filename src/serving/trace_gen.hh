/**
 * @file
 * Arrival-trace generators for the high-traffic serving harness.
 *
 * Every generator produces a deterministic, seeded stream of
 * multidnn::ModelRequest — the same request type the event-driven
 * scheduler drains — over a weighted ModelMix, so traces feed both the
 * real EventScheduler (small, execution-accurate runs) and the fast
 * request-level serving simulator (million-request capacity sweeps,
 * see serving/sweep.hh).
 *
 * Processes:
 *  - Poisson       — open-loop, exponential inter-arrivals at a QPS.
 *  - MMPP          — bursty two-state Markov-modulated Poisson (low /
 *                    high rate, exponential state dwell).
 *  - Diurnal       — non-homogeneous Poisson with a sinusoidally
 *                    modulated rate (Lewis-Shedler thinning).
 *  - Closed-loop   — N users, exponential think time, next request
 *                    issued after the previous one completes on a
 *                    serialized server (approximated with calibrated
 *                    per-model service estimates).
 *
 * Replay: a simple CSV / JSONL trace format (see serving/README.md)
 * with exact nanosecond round-trips, so captured or hand-written
 * traces can drive the same harness.
 */

#ifndef FLASHMEM_SERVING_TRACE_GEN_HH
#define FLASHMEM_SERVING_TRACE_GEN_HH

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "multidnn/workload.hh"

namespace flashmem::serving {

/** Weighted model mix a trace generator samples requests from. */
struct ModelMix
{
    struct Entry
    {
        models::ModelId model{};
        double weight = 1.0;
        /** Latency SLO stamped on requests of this model (0 = none). */
        SimTime latencyBound = 0;
        int priority = 0;
    };
    std::vector<Entry> entries;

    /** Distinct models in entry order (for calibration). */
    std::vector<models::ModelId> distinctModels() const;
};

/** Open-loop Poisson arrivals at @p qps, @p count requests. */
std::vector<multidnn::ModelRequest> poissonTrace(const ModelMix &mix,
                                                 double qps,
                                                 std::size_t count,
                                                 std::uint64_t seed);

/** Two-state Markov-modulated Poisson process (bursty traffic). */
struct MmppParams
{
    double qpsLow = 10.0;   ///< arrival rate in the quiet state
    double qpsHigh = 100.0; ///< arrival rate in the bursty state
    /** Mean exponential dwell per state. */
    SimTime meanDwell = milliseconds(500);
};
std::vector<multidnn::ModelRequest> mmppTrace(const ModelMix &mix,
                                              const MmppParams &params,
                                              std::size_t count,
                                              std::uint64_t seed);

/** Sinusoidally rate-modulated Poisson process (diurnal load). */
struct DiurnalParams
{
    double baseQps = 50.0;
    /** Modulation depth in [0, 1): rate swings base*(1 +/- amplitude). */
    double amplitude = 0.5;
    /** One full day-night cycle. */
    SimTime period = seconds(60);
};
std::vector<multidnn::ModelRequest> diurnalTrace(
    const ModelMix &mix, const DiurnalParams &params, std::size_t count,
    std::uint64_t seed);

/**
 * Closed-loop arrivals: @p users concurrent users, each issuing its
 * next request an exponential think time after its previous request
 * completed. Completion times are approximated against a serialized
 * FIFO server with the calibrated @p service_estimates (see
 * serving::serviceEstimates), which is exact for FIFO draining and a
 * close upper bound otherwise.
 */
struct ClosedLoopParams
{
    int users = 8;
    SimTime meanThink = 0; ///< mean exponential think time
};
std::vector<multidnn::ModelRequest> closedLoopTrace(
    const ModelMix &mix, const ClosedLoopParams &params,
    const std::map<models::ModelId, SimTime> &service_estimates,
    std::size_t count, std::uint64_t seed);

/** @name Trace replay (CSV / JSONL; see serving/README.md). @{ */

/** Parse "arrival_ns,model,priority,slo_ns" CSV (header required). */
std::vector<multidnn::ModelRequest> parseCsvTrace(std::istream &in);

/** Parse JSONL: one {"arrival_ns":..,"model":"..",...} per line. */
std::vector<multidnn::ModelRequest> parseJsonlTrace(std::istream &in);

/** Load a trace file, dispatching on the .csv / .jsonl extension. */
std::vector<multidnn::ModelRequest> loadTrace(const std::string &path);

void writeCsvTrace(std::ostream &out,
                   const std::vector<multidnn::ModelRequest> &trace);
void writeJsonlTrace(std::ostream &out,
                     const std::vector<multidnn::ModelRequest> &trace);
/** @} */

} // namespace flashmem::serving

#endif // FLASHMEM_SERVING_TRACE_GEN_HH
