/**
 * @file
 * SLO semantics and service calibration for the serving harness.
 *
 * An SloSpec states what "sustainable" means for a capacity sweep: a
 * tail-latency bound the p99 of completed requests must stay under,
 * and a minimum goodput (completed-within-bound over submitted). The
 * per-request latency bounds that deadline-aware admission enforces
 * ride on the requests themselves (multidnn::ModelRequest::
 * latencyBound, stamped by the trace generators from the ModelMix).
 *
 * calibrateServices() measures the real per-model service times the
 * fast request-level simulator runs on: one FlashMem compile + execute
 * per model at the full budget, and one FlashMem::replan + execute at
 * the degraded budget — so million-request sweeps are grounded in the
 * actual planner/runtime behaviour, bit-deterministically for any
 * planner thread count.
 */

#ifndef FLASHMEM_SERVING_SLO_HH
#define FLASHMEM_SERVING_SLO_HH

#include <map>
#include <vector>

#include "core/flashmem.hh"
#include "multidnn/scheduler.hh"
#include "multidnn/workload.hh"

namespace flashmem::serving {

/** What a capacity sweep requires of a sustainable operating point. */
struct SloSpec
{
    /** p99 request-latency bound for completed requests (0 = none). */
    SimTime p99Bound = 0;
    /** Minimum goodput rate (met-SLO completions / submitted). */
    double minGoodput = 0.95;
};

/** Calibrated service profile of one model (real runtime numbers). */
struct ModelServiceProfile
{
    SimTime service = 0;         ///< integrated latency, full budget
    SimTime degradedService = 0; ///< integrated latency, degraded plan
    Bytes peakBytes = 0;
    Bytes degradedPeakBytes = 0;
    Bytes planBudget = 0;
    Bytes degradedPlanBudget = 0;
    /** Init phase (preload set resident, initDone - start) of the
     * full-budget run — the portion of @c service the cross-request
     * overlap model runs on the device's DMA queue. Appended after
     * the original fields so positional initializers keep working
     * (0 = no overlappable init). */
    SimTime initService = 0;
    SimTime degradedInitService = 0;

    /** Init/exec split consumed by DeviceCluster::planTimes. @{ */
    SimTime execService() const { return service - initService; }
    SimTime degradedExecService() const
    {
        return degradedService - degradedInitService;
    }
    /** @} */
};

/** Per-model calibration the fast serving simulator consumes. */
using ServiceTable = std::map<models::ModelId, ModelServiceProfile>;

/**
 * Per-device service tables for a sharded cluster: table @c i
 * calibrates device @c i. Devices are homogeneous today, so
 * replicateServices() fills the vector with copies of one calibrated
 * table; the per-device structure is what heterogeneous device speeds
 * (ROADMAP follow-on) will plug into.
 */
using ClusterServiceTable = std::vector<ServiceTable>;

/** Replicate @p table for @p device_count homogeneous devices. */
ClusterServiceTable replicateServices(const ServiceTable &table,
                                      int device_count);

/**
 * Measure @p model_set on @p fm: compile + execute once per model at
 * the configured budget, then replan + execute at
 * @p degrade_budget_fraction of it, quantized and clamped exactly as
 * the EventScheduler's degraded dispatch does under @p cfg — pass the
 * same SchedulerConfig the real scheduler runs with, so both paths
 * re-plan at the same budget by construction.
 */
ServiceTable calibrateServices(const core::FlashMem &fm,
                               const std::vector<models::ModelId>
                                   &model_set,
                               double degrade_budget_fraction = 0.5,
                               Precision precision = Precision::FP16,
                               const multidnn::SchedulerConfig &cfg =
                                   {});

/** Full-budget estimates keyed by model (closed-loop generator input). */
std::map<models::ModelId, SimTime> serviceEstimates(
    const ServiceTable &table);

/** Mean full-budget service time over @p mix, weight-averaged. */
SimTime meanService(const ServiceTable &table,
                    const std::vector<std::pair<models::ModelId,
                                                double>> &weights);

/** Stamp a uniform latency bound on every request (replayed traces). */
void applyLatencyBound(std::vector<multidnn::ModelRequest> &trace,
                       SimTime bound);

/** Stamp per-model latency bounds; models absent from @p bounds keep
 * their current bound. */
void applyLatencyBounds(std::vector<multidnn::ModelRequest> &trace,
                        const std::map<models::ModelId, SimTime>
                            &bounds);

} // namespace flashmem::serving

#endif // FLASHMEM_SERVING_SLO_HH
