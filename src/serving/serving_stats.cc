#include "serving/serving_stats.hh"

namespace flashmem::serving {

void
ServingStats::recordCompletion(SimTime latency, SimTime queue_delay,
                               bool met_slo, bool degraded)
{
    ++completed_;
    if (met_slo)
        ++goodput_;
    if (degraded)
        ++degraded_;
    auto lat = static_cast<double>(latency);
    q50_.add(lat);
    q95_.add(lat);
    q99_.add(lat);
    latency_ms_.add(toMilliseconds(latency));
    queue_ms_.add(toMilliseconds(queue_delay));
}

void
ServingStats::recordShed()
{
    ++shed_;
}

ServingStats
ServingStats::fromOutcome(const multidnn::ScheduleOutcome &o)
{
    ServingStats s;
    for (const auto &r : o.runs)
        s.recordCompletion(r.requestLatency(), r.queueDelay(),
                           r.metSlo(), r.degraded);
    for (std::size_t i = 0; i < o.shed.size(); ++i)
        s.recordShed();
    return s;
}

double
ServingStats::goodputRate() const
{
    if (submitted() == 0)
        return 1.0;
    return static_cast<double>(goodput_) /
           static_cast<double>(submitted());
}

double
ServingStats::shedRate() const
{
    if (submitted() == 0)
        return 0.0;
    return static_cast<double>(shed_) /
           static_cast<double>(submitted());
}

} // namespace flashmem::serving
