/**
 * @file
 * Streaming tail-latency metrics for the serving harness.
 *
 * ServingStats accumulates per-request observations without storing
 * them: latency quantiles (p50/p95/p99) ride on P² estimators
 * (common/stats.hh), means on Welford accumulators, and the SLO
 * accounting (goodput, shed, degraded) on plain counters — so a
 * million-request capacity sweep costs O(1) memory per probe. All
 * updates are pure arithmetic on the observation order, keeping the
 * reported figures bit-deterministic for a given trace regardless of
 * how many worker threads run *other* probes concurrently.
 */

#ifndef FLASHMEM_SERVING_SERVING_STATS_HH
#define FLASHMEM_SERVING_SERVING_STATS_HH

#include "common/stats.hh"
#include "multidnn/scheduler.hh"

namespace flashmem::serving {

class ServingStats
{
  public:
    /** Record one completed request. */
    void recordCompletion(SimTime latency, SimTime queue_delay,
                          bool met_slo, bool degraded);

    /** Record one request dropped by SLO admission. */
    void recordShed();

    /** Ingest a drained ScheduleOutcome (real-scheduler runs report
     * through the same stats type as the fast simulator). */
    static ServingStats fromOutcome(const multidnn::ScheduleOutcome &o);

    /** @name Counters. @{ */
    std::size_t submitted() const { return completed_ + shed_; }
    std::size_t completed() const { return completed_; }
    std::size_t shedCount() const { return shed_; }
    std::size_t degradedCount() const { return degraded_; }
    /** Completions that met their bound (unbounded ones count). */
    std::size_t goodput() const { return goodput_; }
    /** Completions that blew their bound. */
    std::size_t sloViolations() const { return completed_ - goodput_; }
    double goodputRate() const;
    double shedRate() const;
    /** @} */

    /** @name Streaming latency quantiles (request latency, ns). @{ */
    SimTime p50() const { return static_cast<SimTime>(q50_.value()); }
    SimTime p95() const { return static_cast<SimTime>(q95_.value()); }
    SimTime p99() const { return static_cast<SimTime>(q99_.value()); }
    double p50Ms() const { return toMilliseconds(p50()); }
    double p95Ms() const { return toMilliseconds(p95()); }
    double p99Ms() const { return toMilliseconds(p99()); }
    /** @} */

    double meanLatencyMs() const { return latency_ms_.mean(); }
    double maxLatencyMs() const { return latency_ms_.max(); }
    double meanQueueDelayMs() const { return queue_ms_.mean(); }

  private:
    P2Quantile q50_{0.50};
    P2Quantile q95_{0.95};
    P2Quantile q99_{0.99};
    RunningStat latency_ms_;
    RunningStat queue_ms_;
    std::size_t completed_ = 0;
    std::size_t shed_ = 0;
    std::size_t degraded_ = 0;
    std::size_t goodput_ = 0;
};

} // namespace flashmem::serving

#endif // FLASHMEM_SERVING_SERVING_STATS_HH
