#include "serving/slo.hh"

#include <algorithm>

#include "common/logging.hh"
#include "models/model_zoo.hh"
#include "multidnn/scheduler.hh"

namespace flashmem::serving {

ServiceTable
calibrateServices(const core::FlashMem &fm,
                  const std::vector<models::ModelId> &model_set,
                  double degrade_budget_fraction, Precision precision,
                  const multidnn::SchedulerConfig &cfg)
{
    FM_ASSERT(degrade_budget_fraction > 0.0 &&
                  degrade_budget_fraction <= 1.0,
              "degrade fraction must be in (0, 1]");
    const Bytes base_budget = fm.options().opg.mPeak;
    // Quantize and clamp through the scheduler's own rule under the
    // caller's SchedulerConfig, so the fast simulator's degraded
    // figures describe the budget the real scheduler re-plans at.
    Bytes degraded_budget = multidnn::quantizeBudgetShare(
        static_cast<Bytes>(static_cast<double>(base_budget) *
                           degrade_budget_fraction),
        cfg, fm.options().opg.chunkBytes, base_budget);

    ServiceTable table;
    for (auto id : model_set) {
        if (table.count(id))
            continue;
        auto g = models::buildModel(id, precision);
        auto compiled = fm.compile(g);
        gpusim::GpuSimulator scratch(fm.device());
        auto full = fm.execute(scratch, compiled, 0);

        auto degraded_cm = fm.replan(compiled, degraded_budget);
        gpusim::GpuSimulator scratch2(fm.device());
        auto degraded = fm.execute(scratch2, degraded_cm, 0);

        ModelServiceProfile profile;
        profile.service = full.integratedLatency();
        profile.peakBytes = full.peakMemory;
        profile.planBudget = compiled.planBudget;
        profile.degradedService = degraded.integratedLatency();
        profile.degradedPeakBytes = degraded.peakMemory;
        profile.degradedPlanBudget = degraded_cm.planBudget;
        // Init/exec split for the cross-request overlap model: the
        // same initLatency() the EventScheduler's measured profiles
        // report, so both paths place overlapped runs identically.
        profile.initService = full.initLatency();
        profile.degradedInitService = degraded.initLatency();
        table.emplace(id, profile);
    }
    return table;
}

ClusterServiceTable
replicateServices(const ServiceTable &table, int device_count)
{
    FM_ASSERT(device_count >= 1,
              "replicateServices needs >= 1 device");
    return ClusterServiceTable(static_cast<std::size_t>(device_count),
                               table);
}

std::map<models::ModelId, SimTime>
serviceEstimates(const ServiceTable &table)
{
    std::map<models::ModelId, SimTime> out;
    for (const auto &[id, profile] : table)
        out.emplace(id, profile.service);
    return out;
}

SimTime
meanService(const ServiceTable &table,
            const std::vector<std::pair<models::ModelId, double>>
                &weights)
{
    double total_weight = 0.0;
    double weighted = 0.0;
    for (const auto &[id, w] : weights) {
        auto it = table.find(id);
        FM_ASSERT(it != table.end(),
                  "meanService: model missing from service table");
        FM_ASSERT(w > 0.0, "meanService: weights must be positive");
        weighted += w * static_cast<double>(it->second.service);
        total_weight += w;
    }
    if (total_weight == 0.0)
        return 0;
    return static_cast<SimTime>(weighted / total_weight);
}

void
applyLatencyBound(std::vector<multidnn::ModelRequest> &trace,
                  SimTime bound)
{
    for (auto &r : trace)
        r.latencyBound = bound;
}

void
applyLatencyBounds(std::vector<multidnn::ModelRequest> &trace,
                   const std::map<models::ModelId, SimTime> &bounds)
{
    for (auto &r : trace) {
        auto it = bounds.find(r.model);
        if (it != bounds.end())
            r.latencyBound = it->second;
    }
}

} // namespace flashmem::serving
