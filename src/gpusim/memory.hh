/**
 * @file
 * Timestamped memory accounting.
 *
 * Tracks live bytes per logical category (unified-memory weights,
 * texture-memory weights, activations, transform scratch) over simulated
 * time, producing the traces behind the paper's peak / average memory
 * numbers (Tables 1 and 8, Figure 6) and the OOM checks of Figure 10.
 */

#ifndef FLASHMEM_GPUSIM_MEMORY_HH
#define FLASHMEM_GPUSIM_MEMORY_HH

#include <algorithm>
#include <array>
#include <cstddef>

#include "common/stats.hh"
#include "common/types.hh"

namespace flashmem::gpusim {

/** Logical categories of live memory. */
enum class MemKind
{
    UnifiedWeights,   ///< weights staged in unified memory
    TextureWeights,   ///< weights resident in texture memory
    Activations,      ///< layer inputs/outputs
    Scratch,          ///< transform staging / redundant copies
    NumKinds,
};

/** Human name of a memory category. */
const char *memKindName(MemKind kind);

/**
 * Live-byte tracker with explicit timestamps.
 *
 * Events must be recorded in non-decreasing time order; runtimes process
 * layers in execution order so this holds by construction.
 */
class MemoryTracker
{
  public:
    /** @param budget_bytes app memory budget; 0 disables OOM detection. */
    explicit MemoryTracker(Bytes budget_bytes = 0)
        : budget_(budget_bytes)
    {}

    /**
     * Record an allocation of @p bytes at simulated time @p at.
     * Timestamps are clamped to be non-decreasing (runtimes process
     * layers in order, so clamping only smooths sub-layer reordering).
     */
    void alloc(MemKind kind, Bytes bytes, SimTime at);

    /** Record a release of @p bytes at simulated time @p at. */
    void free(MemKind kind, Bytes bytes, SimTime at);

    /** Largest total inside [start, end] (per-run peak queries). */
    Bytes peakOver(SimTime start, SimTime end) const;

    /** @name Live / aggregate queries. @{ */
    Bytes used() const { return total_; }
    Bytes used(MemKind kind) const;
    Bytes peak() const { return peak_; }
    Bytes peak(MemKind kind) const;
    /** @} */

    /** Total live bytes over time (the Figure-6 trace). */
    const TimeSeries &totalTrace() const { return total_trace_; }

    /** Time-weighted average of total live bytes over [start, end]. */
    double averageBytes(SimTime start, SimTime end) const;

    /** True once any allocation pushed the total above the budget. */
    bool oomOccurred() const { return oom_; }
    Bytes budget() const { return budget_; }

  private:
    static constexpr std::size_t kNumKinds =
        static_cast<std::size_t>(MemKind::NumKinds);

    SimTime
    clamp(SimTime at)
    {
        last_time_ = std::max(last_time_, at);
        return last_time_;
    }

    Bytes budget_;
    SimTime last_time_ = 0;
    Bytes total_ = 0;
    Bytes peak_ = 0;
    bool oom_ = false;
    std::array<Bytes, kNumKinds> used_{};
    std::array<Bytes, kNumKinds> peak_per_kind_{};
    TimeSeries total_trace_;
};

} // namespace flashmem::gpusim

#endif // FLASHMEM_GPUSIM_MEMORY_HH
