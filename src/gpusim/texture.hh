/**
 * @file
 * 2.5D texture-memory layout model.
 *
 * Mobile GPUs organize texture memory as 2D tiles of texels with four
 * scalar channels (paper Section 2.1). Tensors are reorganized into
 * W x H x 4 layouts; the padding waste and the cost of transforming a
 * linear unified-memory tensor into this layout are modeled here.
 */

#ifndef FLASHMEM_GPUSIM_TEXTURE_HH
#define FLASHMEM_GPUSIM_TEXTURE_HH

#include <cstdint>

#include "common/types.hh"
#include "gpusim/device.hh"
#include "graph/tensor.hh"

namespace flashmem::gpusim {

/** A tensor mapped onto a 2.5D texture. */
struct TextureLayout
{
    std::int64_t width = 0;     ///< texels per row
    std::int64_t height = 0;    ///< rows
    static constexpr int kChannels = 4;

    /** Texels actually allocated (width * height). */
    std::int64_t texels() const { return width * height; }

    /** Bytes including padding waste. */
    Bytes paddedBytes(Precision p) const;

    /**
     * Map @p desc to a texture: the innermost dimension packs into the
     * 4-wide channel axis, remaining elements tile a near-square 2D
     * extent clamped to @p max_width (hardware image-width limit).
     */
    static TextureLayout forTensor(const graph::TensorDesc &desc,
                                   std::int64_t max_width = 16384);
};

/** Cost of one unified-memory -> texture layout transformation. */
struct TransformCost
{
    SimTime time = 0;       ///< GPU/CPU time consumed
    Bytes scratchBytes = 0; ///< staging memory live during the transform
};

/**
 * Cost model for a *dedicated* transform dispatch as used by preloading
 * frameworks: per-pass staging copies (often with an fp32 intermediate)
 * plus dispatch overhead.
 *
 * @param effective_bw throughput of the framework's transform pipeline
 *        (CPU repack + upload), typically far below the DMA peak.
 * @param passes number of staging copies the framework performs.
 */
TransformCost dedicatedTransformCost(const DeviceProfile &dev,
                                     Bytes tensor_bytes,
                                     Bandwidth effective_bw, int passes);

/**
 * Cost of FlashMem's in-kernel vectorized transform (vload4 +
 * write_image inside the compute kernel): streams at the UM->TM DMA
 * bandwidth with no dedicated dispatch and no staging copy.
 */
TransformCost inlineTransformCost(const DeviceProfile &dev,
                                  Bytes chunk_bytes);

} // namespace flashmem::gpusim

#endif // FLASHMEM_GPUSIM_TEXTURE_HH
