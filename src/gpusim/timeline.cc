#include "gpusim/timeline.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flashmem::gpusim {

Interval
Timeline::reserve(SimTime earliest, SimTime duration)
{
    FM_ASSERT(duration >= 0, "negative reservation on ", name_);
    SimTime start = std::max(earliest, free_at_);
    Interval iv{start, start + duration};
    free_at_ = iv.end;
    busy_time_ += duration;
    ++reservations_;
    return iv;
}

void
Timeline::reset()
{
    free_at_ = 0;
    busy_time_ = 0;
    reservations_ = 0;
}

Interval
BandwidthTimeline::transfer(SimTime earliest, Bytes bytes)
{
    bool channel_idle = earliest >= timeline_.freeAt();
    SimTime duration = bandwidth_.transferTime(bytes);
    if (channel_idle)
        duration += per_op_overhead_;
    auto iv = timeline_.reserve(earliest, duration);
    bytes_moved_ += bytes;
    return iv;
}

void
BandwidthTimeline::reset()
{
    timeline_.reset();
    bytes_moved_ = 0;
}

} // namespace flashmem::gpusim
