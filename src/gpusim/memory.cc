#include "gpusim/memory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flashmem::gpusim {

const char *
memKindName(MemKind kind)
{
    switch (kind) {
      case MemKind::UnifiedWeights:
        return "um_weights";
      case MemKind::TextureWeights:
        return "tm_weights";
      case MemKind::Activations:
        return "activations";
      case MemKind::Scratch:
        return "scratch";
      case MemKind::NumKinds:
        break;
    }
    return "?";
}

void
MemoryTracker::alloc(MemKind kind, Bytes bytes, SimTime at)
{
    auto idx = static_cast<std::size_t>(kind);
    used_[idx] += bytes;
    total_ += bytes;
    peak_ = std::max(peak_, total_);
    peak_per_kind_[idx] = std::max(peak_per_kind_[idx], used_[idx]);
    if (budget_ > 0 && total_ > budget_)
        oom_ = true;
    total_trace_.record(clamp(at), static_cast<double>(total_));
}

void
MemoryTracker::free(MemKind kind, Bytes bytes, SimTime at)
{
    auto idx = static_cast<std::size_t>(kind);
    FM_ASSERT(used_[idx] >= bytes, "over-free of ", memKindName(kind),
              ": freeing ", bytes, " with ", used_[idx], " live");
    used_[idx] -= bytes;
    total_ -= bytes;
    total_trace_.record(clamp(at), static_cast<double>(total_));
}

Bytes
MemoryTracker::peakOver(SimTime start, SimTime end) const
{
    return static_cast<Bytes>(total_trace_.maxOver(start, end));
}

Bytes
MemoryTracker::used(MemKind kind) const
{
    return used_[static_cast<std::size_t>(kind)];
}

Bytes
MemoryTracker::peak(MemKind kind) const
{
    return peak_per_kind_[static_cast<std::size_t>(kind)];
}

double
MemoryTracker::averageBytes(SimTime start, SimTime end) const
{
    return total_trace_.timeWeightedAverage(start, end);
}

} // namespace flashmem::gpusim
