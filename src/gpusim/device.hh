/**
 * @file
 * Mobile device profiles.
 *
 * Each profile captures the memory hierarchy of paper Figure 1 (a):
 * disk -> unified memory -> texture memory -> streaming multiprocessors,
 * with the published bandwidth ratios, plus compute throughput, memory
 * budget, kernel-launch overhead, and an activity-based power model.
 */

#ifndef FLASHMEM_GPUSIM_DEVICE_HH
#define FLASHMEM_GPUSIM_DEVICE_HH

#include <string>

#include "common/types.hh"

namespace flashmem::gpusim {

/** Static description of one evaluated phone. */
struct DeviceProfile
{
    std::string name;       ///< e.g. "OnePlus 12"
    std::string gpu;        ///< e.g. "Adreno 750"

    /** @name Memory capacity. @{ */
    Bytes ramBytes = gib(16);
    /**
     * Memory an app may hold before the OS low-memory killer fires;
     * models that exceed this during init or execution OOM.
     */
    Bytes appMemoryBudget = gib(10);
    /** @} */

    /** @name Figure-1 hierarchy bandwidths. @{ */
    Bandwidth diskToUm = Bandwidth::gbps(1.5);   ///< UFS sequential read
    /** Per-request latency of a disk read (file API + UFS latency);
     * just-in-time per-tensor reads pay it on the critical path. */
    SimTime diskRequestOverhead = microseconds(150);
    Bandwidth umToTm = Bandwidth::gbps(65.0);    ///< transform path
    Bandwidth tmToSm = Bandwidth::gbps(172.0);   ///< texture fetch
    Bandwidth l2 = Bandwidth::gbps(560.0);       ///< on-chip cache
    /** @} */

    /** @name Compute. @{ */
    double fp16Gflops = 2800.0;
    double fp32Gflops = 1400.0;
    /** Sustained fraction of peak for well-shaped reusable kernels. */
    double matmulEfficiency = 0.35;
    /** Convolutions reach lower peak fractions on mobile GPUs. */
    double convEfficiency = 0.22;
    SimTime kernelLaunchOverhead = microseconds(20);
    /** Extra overhead of a dedicated (non-fused) transform dispatch. */
    SimTime transformDispatchOverhead = microseconds(80);
    /** @} */

    /** @name Activity-based power model (watts). @{ */
    double basePowerW = 1.1;
    double computePowerW = 4.2;   ///< SMs busy
    double memoryPowerW = 1.6;    ///< DRAM traffic at full bandwidth
    double diskPowerW = 0.9;      ///< UFS active
    /** @} */

    /** Peak GFLOPS for @p p. */
    double
    gflops(Precision p) const
    {
        return p == Precision::FP16 ? fp16Gflops : fp32Gflops;
    }

    /** @name The four evaluated phones (paper Section 5.1). @{ */
    static DeviceProfile onePlus12();
    static DeviceProfile onePlus11();
    static DeviceProfile pixel8();
    static DeviceProfile xiaomiMi6();
    /** @} */
};

} // namespace flashmem::gpusim

#endif // FLASHMEM_GPUSIM_DEVICE_HH
