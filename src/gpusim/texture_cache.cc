#include "gpusim/texture_cache.hh"

#include "common/logging.hh"

namespace flashmem::gpusim {

TextureCache::TextureCache(Bytes size_bytes, Bytes line_bytes, int ways)
    : line_bytes_(line_bytes), ways_(ways)
{
    FM_ASSERT(line_bytes > 0 && ways > 0, "bad cache geometry");
    std::size_t lines = size_bytes / line_bytes;
    FM_ASSERT(lines >= static_cast<std::size_t>(ways),
              "cache smaller than one set");
    sets_ = lines / ways;
    lines_.resize(sets_ * ways_);
}

bool
TextureCache::access(std::uint64_t address)
{
    ++tick_;
    std::uint64_t line_addr = address / line_bytes_;
    std::size_t set = line_addr % sets_;
    std::uint64_t tag = line_addr / sets_;

    Line *base = &lines_[set * ways_];
    Line *victim = base;
    for (int w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            ++hits_;
            return true;
        }
        if (!line.valid || line.lru < victim->lru ||
            (victim->valid && !line.valid)) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
    ++misses_;
    return false;
}

double
TextureCache::hitRate() const
{
    auto total = accesses();
    return total ? static_cast<double>(hits_) / total : 0.0;
}

void
TextureCache::resetStats()
{
    hits_ = 0;
    misses_ = 0;
}

double
simulateTiledSweep(TextureCache &cache, const TextureLayout &layout,
                   Precision precision, int tile_w, int tile_h)
{
    cache.resetStats();
    const Bytes texel_bytes =
        TextureLayout::kChannels * elementSize(precision);
    const std::int64_t row_bytes = layout.width * texel_bytes;

    for (std::int64_t ty = 0; ty < layout.height; ty += tile_h) {
        for (std::int64_t tx = 0; tx < layout.width; tx += tile_w) {
            for (int y = 0; y < tile_h && ty + y < layout.height; ++y) {
                for (int x = 0; x < tile_w && tx + x < layout.width;
                     ++x) {
                    std::uint64_t addr =
                        static_cast<std::uint64_t>(ty + y) * row_bytes +
                        (tx + x) * texel_bytes;
                    cache.access(addr);
                }
            }
        }
    }
    return cache.hitRate();
}

double
simulateStridedSweep(TextureCache &cache, Bytes total_bytes,
                     Bytes stride_bytes, Bytes access_bytes)
{
    cache.resetStats();
    FM_ASSERT(stride_bytes > 0 && access_bytes > 0, "bad sweep params");
    // Column-major walk: repeatedly jump by `stride_bytes`, wrapping with
    // an offset, touching `access_bytes` each time.
    std::uint64_t offset = 0;
    for (std::uint64_t touched = 0; touched < total_bytes;
         touched += access_bytes) {
        std::uint64_t addr = offset;
        cache.access(addr);
        offset += stride_bytes;
        if (offset >= total_bytes)
            offset = (offset % stride_bytes) + access_bytes;
    }
    return cache.hitRate();
}

} // namespace flashmem::gpusim
