#include "gpusim/device.hh"

namespace flashmem::gpusim {

DeviceProfile
DeviceProfile::onePlus12()
{
    DeviceProfile d;
    d.name = "OnePlus 12";
    d.gpu = "Adreno 750";
    d.ramBytes = gib(16);
    d.appMemoryBudget = gib(10);
    d.diskToUm = Bandwidth::gbps(1.5);
    d.umToTm = Bandwidth::gbps(65.0);
    d.tmToSm = Bandwidth::gbps(172.0);
    d.l2 = Bandwidth::gbps(560.0);
    d.fp16Gflops = 2800.0;
    d.fp32Gflops = 1400.0;
    return d;
}

DeviceProfile
DeviceProfile::onePlus11()
{
    DeviceProfile d;
    d.name = "OnePlus 11";
    d.gpu = "Adreno 740";
    d.ramBytes = gib(16);
    d.appMemoryBudget = gib(10);
    d.diskToUm = Bandwidth::gbps(1.4);
    d.umToTm = Bandwidth::gbps(58.0);
    d.tmToSm = Bandwidth::gbps(155.0);
    d.l2 = Bandwidth::gbps(500.0);
    d.fp16Gflops = 2400.0;
    d.fp32Gflops = 1200.0;
    d.computePowerW = 4.6;
    return d;
}

DeviceProfile
DeviceProfile::pixel8()
{
    DeviceProfile d;
    d.name = "Google Pixel 8";
    d.gpu = "Mali-G715 MP7";
    d.ramBytes = gib(8);
    d.appMemoryBudget = gib(4.5);
    d.diskToUm = Bandwidth::gbps(1.2);
    d.umToTm = Bandwidth::gbps(40.0);
    d.tmToSm = Bandwidth::gbps(105.0);
    d.l2 = Bandwidth::gbps(350.0);
    d.fp16Gflops = 1300.0;
    d.fp32Gflops = 650.0;
    d.kernelLaunchOverhead = microseconds(26);
    return d;
}

DeviceProfile
DeviceProfile::xiaomiMi6()
{
    DeviceProfile d;
    d.name = "Xiaomi Mi 6";
    d.gpu = "Adreno 540";
    d.ramBytes = gib(6);
    d.appMemoryBudget = gib(3.5);
    d.diskToUm = Bandwidth::gbps(0.65);
    d.umToTm = Bandwidth::gbps(22.0);
    d.tmToSm = Bandwidth::gbps(58.0);
    d.l2 = Bandwidth::gbps(190.0);
    d.fp16Gflops = 550.0;
    d.fp32Gflops = 275.0;
    d.kernelLaunchOverhead = microseconds(34);
    d.computePowerW = 3.4;
    return d;
}

} // namespace flashmem::gpusim
