#include "gpusim/kernel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flashmem::gpusim {

using graph::OpClass;
using graph::OpKind;

KernelSpec
kernelSpecFor(const graph::Graph &g, graph::NodeId id, bool uses_texture)
{
    const auto &node = g.node(id);
    KernelSpec spec;
    spec.kind = node.kind;
    spec.macs = node.macs;
    spec.inputBytes = g.inputBytes(id);
    spec.outputBytes = node.output.bytes();
    spec.precision = g.precision();
    spec.usesTexture = uses_texture;
    for (auto wid : node.weights)
        spec.weightBytes += g.weight(wid).bytes();

    // Work-group geometry: 2D tiles for reusable kernels, wide 1D
    // groups for streaming kernels.
    std::int64_t out_elems = node.output.shape.elements();
    if (spec.cls() == OpClass::Reusable) {
        spec.gwsX = std::max<std::int64_t>(out_elems / 64, 1);
        spec.gwsY = 64;
        spec.lwsX = 8;
        spec.lwsY = 8;
    } else {
        spec.gwsX = std::max<std::int64_t>(out_elems / 4, 1);
        spec.gwsY = 1;
        spec.lwsX = 64;
        spec.lwsY = 1;
    }
    return spec;
}

SimTime
KernelModel::computeTime(const KernelSpec &spec) const
{
    if (spec.macs == 0)
        return 0;
    double eff;
    switch (spec.kind) {
      case OpKind::Conv2D:
      case OpKind::DepthwiseConv2D:
        eff = dev_.convEfficiency;
        break;
      default:
        eff = dev_.matmulEfficiency;
        break;
    }
    double gflops = dev_.gflops(spec.precision) * eff;
    // 2 FLOPs per MAC; ns = 2 * macs / effective GFLOPS.
    return static_cast<SimTime>(2.0 * static_cast<double>(spec.macs) /
                                gflops);
}

SimTime
KernelModel::memoryTime(const KernelSpec &spec) const
{
    // Texture-path kernels fetch through the texture cache at high
    // effective bandwidth (2D locality); buffer kernels stream through
    // unified memory with poorer coalescing — the Romou-style ~3x gap.
    double bw = spec.usesTexture ? dev_.tmToSm.bytesPerSecond * 0.85
                                 : dev_.umToTm.bytesPerSecond * 0.70;
    Bytes bytes = spec.totalBytes();
    double factor = 1.0;
    switch (spec.cls()) {
      case OpClass::Hierarchical:
        // Staged reductions traverse their data multiple times with
        // workgroup synchronization between stages.
        factor = 2.2;
        break;
      case OpClass::Movement:
        factor = 2.0; // read + write of the full tensor
        break;
      default:
        break;
    }
    double ns = static_cast<double>(bytes) * factor / bw * 1e9;
    return static_cast<SimTime>(ns);
}

SimTime
KernelModel::baseLatency(const KernelSpec &spec) const
{
    return dev_.kernelLaunchOverhead +
           std::max(computeTime(spec), memoryTime(spec));
}

double
KernelModel::inlineStreamBandwidth(const KernelSpec &spec) const
{
    // In-kernel streaming shares load/store units with the kernel's own
    // traffic; the branch-free pipelined rewrite sustains a much larger
    // fraction of the DMA path than divergent interleaving.
    double fraction = spec.pipelined ? 0.55 : 0.30;
    if (spec.cls() == OpClass::Elemental) {
        // Linear element-wise kernels coalesce the extra stream well.
        fraction += 0.15;
    }
    return dev_.umToTm.bytesPerSecond * fraction;
}

SimTime
KernelModel::inlineLoadPenalty(const KernelSpec &spec,
                               Bytes extra_bytes) const
{
    if (extra_bytes == 0)
        return 0;
    double bw = inlineStreamBandwidth(spec);
    auto load_time = static_cast<SimTime>(
        static_cast<double>(extra_bytes) / bw * 1e9);

    switch (spec.cls()) {
      case OpClass::Reusable: {
        // Compute-bound kernels hide streaming under their arithmetic
        // slack; only issue overhead and the unhidden tail remain.
        // Convolution weights additionally need Winograd-style
        // repacking that cannot be overlapped (paper Section 5.2).
        double repack =
            (spec.kind == OpKind::Conv2D ||
             spec.kind == OpKind::DepthwiseConv2D)
                ? 1.6
                : 1.0;
        SimTime slack =
            std::max<SimTime>(computeTime(spec) - memoryTime(spec), 0);
        SimTime hidden = std::min<SimTime>(
            load_time, static_cast<SimTime>(0.8 * slack));
        return static_cast<SimTime>(
            repack * static_cast<double>(load_time - hidden +
                                         static_cast<SimTime>(
                                             0.15 * load_time)));
      }
      case OpClass::Elemental:
        return load_time;
      case OpClass::Hierarchical: {
        // Synchronization stages serialize against the stream, and the
        // disruption grows with the relative volume.
        double ratio = static_cast<double>(extra_bytes) /
                       std::max<Bytes>(spec.inputBytes, 1);
        return static_cast<SimTime>(2.5 * load_time +
                                    0.25 * ratio * baseLatency(spec));
      }
      case OpClass::Movement:
        return static_cast<SimTime>(1.2 * load_time);
    }
    return load_time;
}

Bytes
KernelModel::loadCapacityBytes(const KernelSpec &spec,
                               double latency_increase_limit) const
{
    if (latency_increase_limit <= 0.0)
        return 0;
    const SimTime budget = static_cast<SimTime>(
        latency_increase_limit * baseLatency(spec));
    // Penalty is monotone in bytes: binary search, capped to keep OPG
    // domains bounded.
    Bytes lo = 0, hi = mib(256);
    if (inlineLoadPenalty(spec, hi) <= budget)
        return hi;
    while (hi - lo > kib(4)) {
        Bytes mid = lo + (hi - lo) / 2;
        if (inlineLoadPenalty(spec, mid) <= budget)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace flashmem::gpusim
