/**
 * @file
 * Activity-based power/energy model.
 *
 * Energy integrates a base rail plus per-component activity: SM-busy
 * time, disk-busy time, and DRAM traffic expressed as equivalent
 * full-bandwidth time. This reproduces the paper's Table-9 structure:
 * FlashMem draws similar-or-higher instantaneous power (better GPU
 * utilization, concurrent disk traffic) yet far less energy because the
 * run is much shorter.
 */

#ifndef FLASHMEM_GPUSIM_POWER_HH
#define FLASHMEM_GPUSIM_POWER_HH

#include "common/types.hh"
#include "gpusim/device.hh"

namespace flashmem::gpusim {

/** Busy-time summary of one simulated run. */
struct ActivitySummary
{
    SimTime makespan = 0;     ///< wall-clock of the whole run
    SimTime computeBusy = 0;  ///< SM busy time
    SimTime diskBusy = 0;     ///< UFS busy time
    Bytes bytesMoved = 0;     ///< DRAM/texture traffic
};

/** Converts activity into joules / watts for one device. */
class PowerModel
{
  public:
    explicit PowerModel(const DeviceProfile &dev) : dev_(dev) {}

    /** Total energy in joules. */
    double energyJoules(const ActivitySummary &activity) const;

    /** Mean power over the makespan in watts. */
    double averagePowerW(const ActivitySummary &activity) const;

  private:
    DeviceProfile dev_;
};

} // namespace flashmem::gpusim

#endif // FLASHMEM_GPUSIM_POWER_HH
