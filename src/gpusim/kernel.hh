/**
 * @file
 * GPU kernel latency model.
 *
 * Two responsibilities:
 *  1. Base latency of a lowered operator on a device (roofline over
 *     compute throughput and the texture/unified memory path, plus
 *     launch overhead).
 *  2. The *overlap response*: how much slower a kernel runs when forced
 *     to stream extra weight bytes inline (paper Figure 2). Reusable
 *     kernels hide loads under compute slack, elemental kernels pay the
 *     stream cost linearly, hierarchical kernels are disrupted by their
 *     staged synchronization. These curves are what the load-capacity
 *     model (Section 4.2) inverts into per-layer capacities.
 */

#ifndef FLASHMEM_GPUSIM_KERNEL_HH
#define FLASHMEM_GPUSIM_KERNEL_HH

#include <cstdint>

#include "common/types.hh"
#include "gpusim/device.hh"
#include "graph/graph.hh"

namespace flashmem::gpusim {

/** Everything the latency model needs to know about one dispatch. */
struct KernelSpec
{
    graph::OpKind kind = graph::OpKind::MatMul;
    std::uint64_t macs = 0;
    Bytes inputBytes = 0;
    Bytes outputBytes = 0;
    Bytes weightBytes = 0;
    Precision precision = Precision::FP16;
    /** Texture-path kernel (2.5D layout) vs plain buffer kernel. */
    bool usesTexture = true;
    /** Branch-free pipelined rewrite (paper Section 4.4). */
    bool pipelined = false;

    /** @name Work-group geometry (profiler features). @{ */
    std::int64_t gwsX = 0, gwsY = 0;
    int lwsX = 8, lwsY = 8;
    /** @} */

    graph::OpClass cls() const { return graph::opClass(kind); }
    Bytes totalBytes() const
    {
        return inputBytes + outputBytes + weightBytes;
    }
};

/** Build the dispatch descriptor for one graph node. */
KernelSpec kernelSpecFor(const graph::Graph &g, graph::NodeId id,
                         bool uses_texture);

/** Per-device latency model. */
class KernelModel
{
  public:
    explicit KernelModel(const DeviceProfile &dev) : dev_(dev) {}

    /** Latency with no inline loading (includes launch overhead). */
    SimTime baseLatency(const KernelSpec &spec) const;

    /**
     * Additional latency when the kernel streams @p extra_bytes of
     * weights from unified into texture memory while computing
     * (the Figure-2 response).
     */
    SimTime inlineLoadPenalty(const KernelSpec &spec,
                              Bytes extra_bytes) const;

    /** Total latency with inline loading. */
    SimTime
    latencyWithLoad(const KernelSpec &spec, Bytes extra_bytes) const
    {
        return baseLatency(spec) + inlineLoadPenalty(spec, extra_bytes);
    }

    /**
     * Largest inline load whose penalty stays within
     * @p latency_increase_limit x baseLatency (capacity inversion used
     * by the profiler, Section 4.2).
     */
    Bytes loadCapacityBytes(const KernelSpec &spec,
                            double latency_increase_limit) const;

    /** Compute-roofline time (no memory, no launch overhead). */
    SimTime computeTime(const KernelSpec &spec) const;

    /** Memory-roofline time through the kernel's data path. */
    SimTime memoryTime(const KernelSpec &spec) const;

    const DeviceProfile &device() const { return dev_; }

    /**
     * Effective inline-streaming bandwidth inside a running kernel:
     * a fraction of the UM->TM path, degraded when the kernel is not
     * the branch-free pipelined rewrite (divergent interleaving).
     */
    double inlineStreamBandwidth(const KernelSpec &spec) const;

  private:
    DeviceProfile dev_;
};

} // namespace flashmem::gpusim

#endif // FLASHMEM_GPUSIM_KERNEL_HH
