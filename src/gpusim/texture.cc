#include "gpusim/texture.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace flashmem::gpusim {

Bytes
TextureLayout::paddedBytes(Precision p) const
{
    return static_cast<Bytes>(texels()) * kChannels * elementSize(p);
}

TextureLayout
TextureLayout::forTensor(const graph::TensorDesc &desc,
                         std::int64_t max_width)
{
    std::int64_t elems = desc.shape.elements();
    std::int64_t texel_count = (elems + kChannels - 1) / kChannels;

    TextureLayout layout;
    // Near-square tiling preserves 2D spatial locality for the texture
    // cache; hardware clamps the image width.
    auto side = static_cast<std::int64_t>(
        std::ceil(std::sqrt(static_cast<double>(texel_count))));
    layout.width = std::min(std::max<std::int64_t>(side, 1), max_width);
    layout.height = (texel_count + layout.width - 1) / layout.width;
    FM_ASSERT(layout.texels() >= texel_count, "texture layout too small");
    return layout;
}

TransformCost
dedicatedTransformCost(const DeviceProfile &dev, Bytes tensor_bytes,
                       Bandwidth effective_bw, int passes)
{
    FM_ASSERT(passes >= 1, "transform needs at least one pass");
    TransformCost cost;
    cost.time = dev.transformDispatchOverhead * passes +
                effective_bw.transferTime(tensor_bytes);
    // Staging keeps an fp32-widened copy live alongside source and
    // destination while the transform runs.
    cost.scratchBytes = tensor_bytes * 2;
    return cost;
}

TransformCost
inlineTransformCost(const DeviceProfile &dev, Bytes chunk_bytes)
{
    TransformCost cost;
    cost.time = dev.umToTm.transferTime(chunk_bytes);
    cost.scratchBytes = 0;
    return cost;
}

} // namespace flashmem::gpusim
