#include "gpusim/simulator.hh"

#include <algorithm>

namespace flashmem::gpusim {

GpuSimulator::GpuSimulator(DeviceProfile dev)
    : dev_(dev), kernel_model_(dev_),
      disk_("disk", dev_.diskToUm, dev_.diskRequestOverhead),
      transform_("transform", dev_.umToTm,
                 dev_.transformDispatchOverhead),
      compute_("compute"), memory_(dev_.appMemoryBudget), power_(dev_)
{
}

SimTime
GpuSimulator::horizon() const
{
    return std::max({disk_.freeAt(), transform_.freeAt(),
                     compute_.freeAt()});
}

ActivitySummary
GpuSimulator::activity(SimTime makespan) const
{
    ActivitySummary a;
    a.makespan = makespan;
    a.computeBusy = compute_.busyTime();
    a.diskBusy = disk_.busyTime();
    a.bytesMoved = disk_.bytesMoved() + transform_.bytesMoved();
    return a;
}

double
GpuSimulator::energyJoules(SimTime makespan) const
{
    return power_.energyJoules(activity(makespan));
}

double
GpuSimulator::averagePowerW(SimTime makespan) const
{
    return power_.averagePowerW(activity(makespan));
}

} // namespace flashmem::gpusim
