/**
 * @file
 * GpuSimulator: facade tying the device profile, resource timelines
 * (disk DMA, transform queue, compute queue), memory tracking, the
 * kernel model, and power accounting together. Runtimes (FlashMem and
 * the baseline frameworks) orchestrate executions against this object.
 */

#ifndef FLASHMEM_GPUSIM_SIMULATOR_HH
#define FLASHMEM_GPUSIM_SIMULATOR_HH

#include "gpusim/device.hh"
#include "gpusim/kernel.hh"
#include "gpusim/memory.hh"
#include "gpusim/power.hh"
#include "gpusim/timeline.hh"

namespace flashmem::gpusim {

/** One simulated mobile device executing DNN workloads. */
class GpuSimulator
{
  public:
    explicit GpuSimulator(DeviceProfile dev);

    const DeviceProfile &device() const { return dev_; }
    const KernelModel &kernelModel() const { return kernel_model_; }

    /** Disk -> unified memory DMA (UFS reads). */
    BandwidthTimeline &disk() { return disk_; }
    /** Dedicated UM -> TM transform/copy queue. */
    BandwidthTimeline &transformQueue() { return transform_; }
    /** Serialized compute command queue. */
    Timeline &computeQueue() { return compute_; }

    MemoryTracker &memory() { return memory_; }
    const MemoryTracker &memory() const { return memory_; }

    /** Latest point any resource is busy until. */
    SimTime horizon() const;

    /** Activity summary up to @p makespan (for power/energy). */
    ActivitySummary activity(SimTime makespan) const;

    double energyJoules(SimTime makespan) const;
    double averagePowerW(SimTime makespan) const;

  private:
    DeviceProfile dev_;
    KernelModel kernel_model_;
    BandwidthTimeline disk_;
    BandwidthTimeline transform_;
    Timeline compute_;
    MemoryTracker memory_;
    PowerModel power_;
};

} // namespace flashmem::gpusim

#endif // FLASHMEM_GPUSIM_SIMULATOR_HH
