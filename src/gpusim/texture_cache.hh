/**
 * @file
 * Set-associative texture-cache simulator.
 *
 * The dedicated texture cache exploits 2D spatial locality (paper
 * Section 2.1): fetches of neighbouring texels in both axes hit the same
 * or adjacent lines. We simulate a classic set-associative LRU cache and
 * provide access-pattern generators for tiled (texture-friendly) and
 * linear (buffer-style) sweeps so tests and benches can quantify why the
 * 2.5D layout wins.
 */

#ifndef FLASHMEM_GPUSIM_TEXTURE_CACHE_HH
#define FLASHMEM_GPUSIM_TEXTURE_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "gpusim/texture.hh"

namespace flashmem::gpusim {

/** Classic set-associative LRU cache over byte addresses. */
class TextureCache
{
  public:
    /**
     * @param size_bytes total capacity (e.g. 128 KiB per SM).
     * @param line_bytes cache-line size.
     * @param ways associativity.
     */
    TextureCache(Bytes size_bytes, Bytes line_bytes, int ways);

    /** Access one address; returns true on hit. */
    bool access(std::uint64_t address);

    /** @name Statistics. @{ */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t accesses() const { return hits_ + misses_; }
    double hitRate() const;
    void resetStats();
    /** @} */

    std::size_t sets() const { return sets_; }
    int ways() const { return ways_; }

  private:
    struct Line
    {
        std::uint64_t tag = ~0ull;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    Bytes line_bytes_;
    std::size_t sets_;
    int ways_;
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::vector<Line> lines_; // sets_ * ways_
};

/**
 * Sweep a W x H texture in tile order (tile_w x tile_h texels per
 * workgroup), the access pattern of a tiled matmul on 2.5D layouts.
 * @return hit rate.
 */
double simulateTiledSweep(TextureCache &cache, const TextureLayout &layout,
                          Precision precision, int tile_w, int tile_h);

/**
 * Sweep the same data as a flat 1D buffer walked with a large stride
 * (the column-major access a transposed matmul performs on a linear
 * layout). @return hit rate.
 */
double simulateStridedSweep(TextureCache &cache, Bytes total_bytes,
                            Bytes stride_bytes, Bytes access_bytes);

} // namespace flashmem::gpusim

#endif // FLASHMEM_GPUSIM_TEXTURE_CACHE_HH
