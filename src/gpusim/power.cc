#include "gpusim/power.hh"

namespace flashmem::gpusim {

double
PowerModel::energyJoules(const ActivitySummary &activity) const
{
    double makespan_s = toSeconds(activity.makespan);
    double compute_s = toSeconds(activity.computeBusy);
    double disk_s = toSeconds(activity.diskBusy);
    // DRAM traffic expressed as time at full unified-memory bandwidth.
    double mem_s = static_cast<double>(activity.bytesMoved) /
                   dev_.umToTm.bytesPerSecond;

    return dev_.basePowerW * makespan_s +
           dev_.computePowerW * compute_s + dev_.diskPowerW * disk_s +
           dev_.memoryPowerW * mem_s;
}

double
PowerModel::averagePowerW(const ActivitySummary &activity) const
{
    if (activity.makespan <= 0)
        return 0.0;
    return energyJoules(activity) / toSeconds(activity.makespan);
}

} // namespace flashmem::gpusim
