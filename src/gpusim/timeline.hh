/**
 * @file
 * Resource timelines: the discrete-event core of the simulator.
 *
 * Mobile GPUs expose independent command queues for compute and DMA
 * (paper Section 2.1); each is modeled as a serialized Timeline whose
 * reservations advance a monotone "free at" horizon. Runtimes interleave
 * reservations across timelines to express overlap.
 */

#ifndef FLASHMEM_GPUSIM_TIMELINE_HH
#define FLASHMEM_GPUSIM_TIMELINE_HH

#include <string>

#include "common/types.hh"

namespace flashmem::gpusim {

/** Closed-open busy interval on a timeline. */
struct Interval
{
    SimTime start = 0;
    SimTime end = 0;

    SimTime duration() const { return end - start; }
};

/** A serialized resource (one command queue, the disk, ...). */
class Timeline
{
  public:
    explicit Timeline(std::string name) : name_(std::move(name)) {}

    /**
     * Reserve @p duration starting no earlier than @p earliest; the
     * reservation begins when the resource frees up.
     */
    Interval reserve(SimTime earliest, SimTime duration);

    /** First instant a new reservation could begin. */
    SimTime freeAt() const { return free_at_; }

    /** Total busy time accumulated (for utilization / power). */
    SimTime busyTime() const { return busy_time_; }

    /** Number of reservations made. */
    std::size_t reservations() const { return reservations_; }

    const std::string &name() const { return name_; }

    /** Reset to an idle state at time 0. */
    void reset();

  private:
    std::string name_;
    SimTime free_at_ = 0;
    SimTime busy_time_ = 0;
    std::size_t reservations_ = 0;
};

/** Timeline moving bytes at fixed bandwidth with per-op overhead. */
class BandwidthTimeline
{
  public:
    BandwidthTimeline(std::string name, Bandwidth bw,
                      SimTime per_op_overhead = 0)
        : timeline_(std::move(name)), bandwidth_(bw),
          per_op_overhead_(per_op_overhead)
    {}

    /**
     * Reserve a transfer of @p bytes starting at/after @p earliest.
     * The per-op overhead models request latency and is charged only
     * when the channel is idle at @p earliest; a backlogged channel
     * streams requests back-to-back (sequential continuation).
     */
    Interval transfer(SimTime earliest, Bytes bytes);

    SimTime freeAt() const { return timeline_.freeAt(); }
    SimTime busyTime() const { return timeline_.busyTime(); }
    Bytes bytesMoved() const { return bytes_moved_; }
    Bandwidth bandwidth() const { return bandwidth_; }

    void reset();

  private:
    Timeline timeline_;
    Bandwidth bandwidth_;
    SimTime per_op_overhead_;
    Bytes bytes_moved_ = 0;
};

} // namespace flashmem::gpusim

#endif // FLASHMEM_GPUSIM_TIMELINE_HH
