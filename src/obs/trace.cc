#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "models/model_zoo.hh"

namespace flashmem::obs {

namespace {

/** Zoo abbreviation for a model payload, "-" when absent/foreign. */
const char *
modelName(std::int32_t model)
{
    if (model < 0 ||
        static_cast<std::size_t>(model) >= models::modelZoo().size())
        return "-";
    // The zoo is a function-local static, so the abbr storage is
    // stable for the life of the process.
    return models::modelSpec(static_cast<models::ModelId>(model))
        .abbr.c_str();
}

/** Stable time-sorted view: same-instant events keep append order. */
std::vector<std::size_t>
sortedIndex(const std::vector<TraceEvent> &events)
{
    std::vector<std::size_t> idx(events.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t l, std::size_t r) {
                         return events[l].time < events[r].time;
                     });
    return idx;
}

/** Nanoseconds -> microsecond timestamp string ("12.345") via
 * integer division only, so the export is byte-deterministic. */
void
formatMicros(char *buf, std::size_t n, SimTime ns)
{
    std::snprintf(buf, n, "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
}

} // namespace

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::RequestArrival: return "request_arrival";
      case EventKind::AdmissionVerdict: return "admission_verdict";
      case EventKind::RequestDispatch: return "request_dispatch";
      case EventKind::RequestComplete: return "request_complete";
      case EventKind::RequestShed: return "request_shed";
      case EventKind::RetryScheduled: return "retry_scheduled";
      case EventKind::FaultInjected: return "fault_injected";
      case EventKind::DeviceHealthChange: return "device_health";
      case EventKind::Replan: return "replan";
      case EventKind::SolverWindow: return "solver_window";
    }
    return "?";
}

const char *
admissionVerdictCodeName(std::int64_t code)
{
    switch (code) {
      case 0: return "admit";
      case 1: return "degrade";
      case 2: return "shed";
    }
    return "?";
}

const char *
dropReasonCodeName(std::int64_t code)
{
    switch (code) {
      case 0: return "admission";
      case 1: return "fault_budget";
      case 2: return "starved";
      case 3: return "arrival_shed";
    }
    return "?";
}

const char *
faultKindCodeName(std::int64_t code)
{
    switch (code) {
      case 0: return "crash";
      case 1: return "rejoin";
      case 2: return "stall";
      case 3: return "slowdown";
      case 4: return "dma_error";
    }
    return "?";
}

const char *
deviceHealthCodeName(std::int64_t code)
{
    switch (code) {
      case 0: return "healthy";
      case 1: return "suspect";
      case 2: return "down";
    }
    return "?";
}

void
TraceRecorder::writeText(std::ostream &os, Stream stream) const
{
    char buf[256];
    for (std::size_t i : sortedIndex(events_)) {
        const TraceEvent &e = events_[i];
        if (stream == Stream::Serving &&
            (e.kind == EventKind::Replan ||
             e.kind == EventKind::SolverWindow))
            continue;
        switch (e.kind) {
          case EventKind::RequestArrival:
            std::snprintf(buf, sizeof(buf),
                          "[t=%lld] request_arrival req=%llu "
                          "model=%s bound=%lld",
                          static_cast<long long>(e.time),
                          static_cast<unsigned long long>(e.id),
                          modelName(e.model),
                          static_cast<long long>(e.a));
            break;
          case EventKind::AdmissionVerdict:
            std::snprintf(buf, sizeof(buf),
                          "[t=%lld] admission_verdict req=%llu "
                          "model=%s verdict=%s tier=%lld",
                          static_cast<long long>(e.time),
                          static_cast<unsigned long long>(e.id),
                          modelName(e.model),
                          admissionVerdictCodeName(e.a),
                          static_cast<long long>(e.b));
            break;
          case EventKind::RequestDispatch:
            std::snprintf(buf, sizeof(buf),
                          "[t=%lld] request_dispatch req=%llu "
                          "run=%lld dev=%d model=%s start=%lld "
                          "init_done=%lld end=%lld",
                          static_cast<long long>(e.time),
                          static_cast<unsigned long long>(e.id),
                          static_cast<long long>(e.runId), e.device,
                          modelName(e.model),
                          static_cast<long long>(e.a),
                          static_cast<long long>(e.b),
                          static_cast<long long>(e.c));
            break;
          case EventKind::RequestComplete:
            std::snprintf(buf, sizeof(buf),
                          "[t=%lld] request_complete req=%llu "
                          "run=%lld dev=%d model=%s start=%lld "
                          "init_done=%lld",
                          static_cast<long long>(e.time),
                          static_cast<unsigned long long>(e.id),
                          static_cast<long long>(e.runId), e.device,
                          modelName(e.model),
                          static_cast<long long>(e.a),
                          static_cast<long long>(e.b));
            break;
          case EventKind::RequestShed:
            std::snprintf(buf, sizeof(buf),
                          "[t=%lld] request_shed req=%llu model=%s "
                          "reason=%s attempts=%lld",
                          static_cast<long long>(e.time),
                          static_cast<unsigned long long>(e.id),
                          modelName(e.model),
                          dropReasonCodeName(e.a),
                          static_cast<long long>(e.b));
            break;
          case EventKind::RetryScheduled:
            std::snprintf(buf, sizeof(buf),
                          "[t=%lld] retry_scheduled req=%llu "
                          "model=%s retry_at=%lld attempts=%lld "
                          "failed_dev=%d",
                          static_cast<long long>(e.time),
                          static_cast<unsigned long long>(e.id),
                          modelName(e.model),
                          static_cast<long long>(e.a),
                          static_cast<long long>(e.b), e.device);
            break;
          case EventKind::FaultInjected:
            std::snprintf(buf, sizeof(buf),
                          "[t=%lld] fault_injected fault=%llu dev=%d "
                          "kind=%s duration=%lld factor_milli=%lld",
                          static_cast<long long>(e.time),
                          static_cast<unsigned long long>(e.id),
                          e.device, faultKindCodeName(e.a),
                          static_cast<long long>(e.b),
                          static_cast<long long>(e.c));
            break;
          case EventKind::DeviceHealthChange:
            std::snprintf(buf, sizeof(buf),
                          "[t=%lld] device_health dev=%d health=%s "
                          "crash_down=%lld probation_until=%lld",
                          static_cast<long long>(e.time), e.device,
                          deviceHealthCodeName(e.a),
                          static_cast<long long>(e.b),
                          static_cast<long long>(e.c));
            break;
          case EventKind::Replan:
            std::snprintf(buf, sizeof(buf),
                          "[t=%lld] replan model=%s budget=%lld "
                          "memo_hits=%lld windows=%lld",
                          static_cast<long long>(e.time),
                          modelName(e.model),
                          static_cast<long long>(e.a),
                          static_cast<long long>(e.b),
                          static_cast<long long>(e.c));
            break;
          case EventKind::SolverWindow:
            std::snprintf(buf, sizeof(buf),
                          "[t=%lld] solver_window window=%llu "
                          "model=%s conflicts=%lld restarts=%lld "
                          "propagations=%lld proven_optimal=%lld "
                          "winner=k%d",
                          static_cast<long long>(e.time),
                          static_cast<unsigned long long>(e.id),
                          modelName(e.model),
                          static_cast<long long>(e.a),
                          static_cast<long long>(e.b),
                          static_cast<long long>(e.c),
                          static_cast<long long>(e.flag),
                          static_cast<int>(e.runId));
            break;
        }
        os << buf << '\n';
    }
}

std::string
TraceRecorder::text(Stream stream) const
{
    std::ostringstream os;
    writeText(os, stream);
    return os.str();
}

void
TraceRecorder::writeChromeJson(std::ostream &os) const
{
    // Track layout: pid 0 holds everything. Device d gets compute
    // track tid 2d+1 and DMA track tid 2d+2; the planner is tid 998
    // and the async request lane plus request-level instants are tid
    // 999. Metadata events name the tracks so Perfetto labels them.
    std::int32_t max_device = -1;
    bool planner = false;
    for (const TraceEvent &e : events_) {
        max_device =
            std::max(max_device, static_cast<std::int32_t>(e.device));
        planner = planner || e.kind == EventKind::Replan ||
                  e.kind == EventKind::SolverWindow;
    }

    os << "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const char *record) {
        os << (first ? "\n" : ",\n") << record;
        first = false;
    };
    char buf[512];
    char ts[32], dur[32];

    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"tid\":0,"
                  "\"name\":\"process_name\","
                  "\"args\":{\"name\":\"flashmem sim\"}}");
    emit(buf);
    auto thread_name = [&](int tid, const char *name) {
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
                      "\"name\":\"thread_name\","
                      "\"args\":{\"name\":\"%s\"}}",
                      tid, name);
        emit(buf);
    };
    for (std::int32_t d = 0; d <= max_device; ++d) {
        char name[32];
        std::snprintf(name, sizeof(name), "dev %d compute", d);
        thread_name(2 * d + 1, name);
        std::snprintf(name, sizeof(name), "dev %d dma", d);
        thread_name(2 * d + 2, name);
    }
    if (planner)
        thread_name(998, "planner");
    thread_name(999, "requests");

    auto instant = [&](int tid, SimTime t, const char *name) {
        formatMicros(ts, sizeof(ts), t);
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,"
                      "\"ts\":%s,\"s\":\"t\",\"name\":\"%s\"}",
                      tid, ts, name);
        emit(buf);
    };
    char name[96];
    for (std::size_t i : sortedIndex(events_)) {
        const TraceEvent &e = events_[i];
        switch (e.kind) {
          case EventKind::RequestArrival:
            formatMicros(ts, sizeof(ts), e.time);
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"b\",\"pid\":0,\"tid\":999,"
                          "\"ts\":%s,\"cat\":\"request\","
                          "\"id\":%llu,\"name\":\"req\"}",
                          ts,
                          static_cast<unsigned long long>(e.id));
            emit(buf);
            break;
          case EventKind::AdmissionVerdict:
            // Admit verdicts are the overwhelming majority; only the
            // exceptional ones earn an instant.
            if (e.a != 0) {
                std::snprintf(name, sizeof(name), "%s #%llu @arrival",
                              admissionVerdictCodeName(e.a),
                              static_cast<unsigned long long>(e.id));
                instant(999, e.time, name);
            }
            break;
          case EventKind::RequestDispatch:
            // The completion record carries the actual timeline; a
            // planned-times span would double-draw every run.
            break;
          case EventKind::RequestComplete: {
            SimTime start = e.a, init_done = e.b, end = e.time;
            if (init_done > start) {
                formatMicros(ts, sizeof(ts), start);
                formatMicros(dur, sizeof(dur), init_done - start);
                std::snprintf(
                    buf, sizeof(buf),
                    "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,"
                    "\"dur\":%s,\"cat\":\"dma\","
                    "\"name\":\"%s #%llu dma\"}",
                    2 * e.device + 2, ts, dur, modelName(e.model),
                    static_cast<unsigned long long>(e.id));
                emit(buf);
            }
            formatMicros(ts, sizeof(ts), init_done);
            formatMicros(dur, sizeof(dur), end - init_done);
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,"
                          "\"ts\":%s,\"dur\":%s,\"cat\":\"compute\","
                          "\"name\":\"%s #%llu\"}",
                          2 * e.device + 1, ts, dur,
                          modelName(e.model),
                          static_cast<unsigned long long>(e.id));
            emit(buf);
            formatMicros(ts, sizeof(ts), end);
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"e\",\"pid\":0,\"tid\":999,"
                          "\"ts\":%s,\"cat\":\"request\","
                          "\"id\":%llu,\"name\":\"req\"}",
                          ts,
                          static_cast<unsigned long long>(e.id));
            emit(buf);
            break;
          }
          case EventKind::RequestShed:
            std::snprintf(name, sizeof(name), "shed #%llu (%s)",
                          static_cast<unsigned long long>(e.id),
                          dropReasonCodeName(e.a));
            instant(999, e.time, name);
            formatMicros(ts, sizeof(ts), e.time);
            std::snprintf(buf, sizeof(buf),
                          "{\"ph\":\"e\",\"pid\":0,\"tid\":999,"
                          "\"ts\":%s,\"cat\":\"request\","
                          "\"id\":%llu,\"name\":\"req\"}",
                          ts,
                          static_cast<unsigned long long>(e.id));
            emit(buf);
            break;
          case EventKind::RetryScheduled:
            std::snprintf(name, sizeof(name),
                          "retry #%llu (attempt %lld)",
                          static_cast<unsigned long long>(e.id),
                          static_cast<long long>(e.b));
            instant(999, e.time, name);
            break;
          case EventKind::FaultInjected:
            std::snprintf(name, sizeof(name), "fault:%s",
                          faultKindCodeName(e.a));
            instant(2 * e.device + 1, e.time, name);
            break;
          case EventKind::DeviceHealthChange:
            std::snprintf(name, sizeof(name), "health:%s",
                          deviceHealthCodeName(e.a));
            instant(2 * e.device + 1, e.time, name);
            break;
          case EventKind::Replan:
            std::snprintf(name, sizeof(name),
                          "replan %s (memo_hits=%lld)",
                          modelName(e.model),
                          static_cast<long long>(e.b));
            instant(998, e.time, name);
            break;
          case EventKind::SolverWindow:
            std::snprintf(name, sizeof(name),
                          "window %llu (conflicts=%lld, k%d%s)",
                          static_cast<unsigned long long>(e.id),
                          static_cast<long long>(e.a),
                          static_cast<int>(e.runId),
                          e.flag != 0 ? ", optimal" : "");
            instant(998, e.time, name);
            break;
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
CounterRegistry::add(const std::string &name, std::int64_t delta)
{
    FM_ASSERT(delta >= 0, "counters are monotonic; use a gauge");
    counters_[name] += delta;
}

void
CounterRegistry::setGauge(const std::string &name, std::int64_t value)
{
    gauges_[name] = value;
}

std::int64_t
CounterRegistry::value(const std::string &name) const
{
    auto it = counters_.find(name);
    if (it != counters_.end())
        return it->second;
    auto git = gauges_.find(name);
    return git != gauges_.end() ? git->second : 0;
}

std::vector<std::pair<std::string, std::int64_t>>
CounterRegistry::snapshot() const
{
    std::vector<std::pair<std::string, std::int64_t>> out;
    out.reserve(counters_.size() + gauges_.size());
    for (const auto &kv : counters_)
        out.push_back(kv);
    for (const auto &kv : gauges_)
        out.push_back(kv);
    return out;
}

void
CounterRegistry::writeText(std::ostream &os) const
{
    for (const auto &[name, v] : counters_)
        os << "counter " << name << " = " << v << '\n';
    for (const auto &[name, v] : gauges_)
        os << "gauge " << name << " = " << v << '\n';
}

} // namespace flashmem::obs
