/**
 * @file
 * Deterministic tracing and metrics for the serving stack.
 *
 * A TraceRecorder collects typed events keyed by stable IDs (request
 * sequence numbers, run ids, device ids, fault/window indices) and
 * simulation timestamps — never wall clock — so two runs with the
 * same seed and configuration produce byte-identical trace exports
 * regardless of planner/pool thread counts. That makes the trace
 * itself a regression-gateable artifact: the cross-validation tests
 * compare the fast simulator's event stream against the
 * EventScheduler's with a plain string equality, and
 * tools/trace_diff.py turns any divergence into "first event that
 * differs, with context".
 *
 * Instrumentation sites hold a plain `TraceRecorder *` that defaults
 * to null; every hook is a pointer test and nothing else when tracing
 * is off, so the hot path costs zero and bench numbers are
 * unaffected.
 *
 * Exporters:
 *  - writeText(): one line per event, sorted by simulation time
 *    (stable, so same-instant events keep their deterministic append
 *    order). Stream::Serving filters out the planner-side events
 *    (Replan, SolverWindow) for fast-sim vs EventScheduler
 *    comparison — the fast path never plans.
 *  - writeChromeJson(): Chrome/Perfetto trace-event JSON with one
 *    compute and one DMA track per device, a planner track, and an
 *    async request lane; loads directly in ui.perfetto.dev.
 *
 * The numeric payload codes (admission verdicts, drop reasons, fault
 * kinds, device health) mirror the enums in multidnn/; the pinning
 * static_asserts live in multidnn/event_loop.hh so this module keeps
 * depending only on common/ and models/.
 */

#ifndef FLASHMEM_OBS_TRACE_HH
#define FLASHMEM_OBS_TRACE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace flashmem::obs {

/** Typed trace event kinds, in rough lifecycle order. The narrow
 * underlying type keeps TraceEvent at 48 bytes (see below). */
enum class EventKind : std::int8_t
{
    RequestArrival = 0,     ///< request entered the simulation
    AdmissionVerdict = 1,   ///< arrival-time admission decision
    RequestDispatch = 2,    ///< placed on a device (planned times)
    RequestComplete = 3,    ///< survived to completion (actual times)
    RequestShed = 4,        ///< dropped without completing
    RetryScheduled = 5,     ///< killed run re-queued with backoff
    FaultInjected = 6,      ///< FaultPlan event delivered
    DeviceHealthChange = 7, ///< crash / watchdog-down / rejoin
    Replan = 8,             ///< planner produced a budget-replanned plan
    SolverWindow = 9,       ///< per-window solver summary
};

/** Lowercase snake_case name of @p kind (the text-export tag). */
const char *eventKindName(EventKind kind);

/** @name Payload-code names.
 * The codes mirror multidnn enums (pinned by static_asserts in
 * event_loop.hh); unknown codes render as "?". @{ */
const char *admissionVerdictCodeName(std::int64_t code);
const char *dropReasonCodeName(std::int64_t code);
const char *faultKindCodeName(std::int64_t code);
const char *deviceHealthCodeName(std::int64_t code);
/** @} */

/**
 * One recorded event. Fixed-width POD so recording is an O(1) append;
 * the meaning of the generic payload slots a..c (and the one-byte
 * flag) depends on the kind (see the emit helpers on TraceRecorder).
 *
 * Deliberately packed to 48 bytes, widest members first: recording is
 * memory-bandwidth-bound on the serving fast path (~3 events per
 * request), and the struct size is the direct lever on the
 * tracing-on overhead the serving_obs bench section gates. The
 * narrow fields are still comfortably wide for their ranges —
 * request sequence numbers and run ids into the billions, device
 * and model ids into the tens of thousands.
 */
struct TraceEvent
{
    SimTime time = 0;
    std::int64_t a = 0, b = 0, c = 0;
    std::uint32_t id = 0;     ///< request seq / fault idx / window idx
    std::int32_t runId = -1;  ///< dispatch run id (SolverWindow:
                              ///< winning portfolio config), -1 n/a
    std::int16_t device = -1; ///< device id, -1 when n/a
    std::int16_t model = -1;  ///< models::ModelId as int, -1 when n/a
    EventKind kind = EventKind::RequestArrival;
    std::int8_t flag = 0;     ///< SolverWindow: proven_optimal
};

static_assert(sizeof(TraceEvent) == 48,
              "TraceEvent packing regressed; recording cost scales "
              "with this size");

/** Which events writeText() includes. */
enum class Stream
{
    Full,    ///< everything
    Serving, ///< serving-path only: excludes Replan and SolverWindow
};

/**
 * Collects TraceEvents. Not thread-safe by design: every emit site
 * sits on the single-threaded simulation event loop (or the
 * planner's deterministic window-aggregation loop), so appends happen
 * in one deterministic order per run.
 */
class TraceRecorder
{
  public:
    /** @name Emit helpers (one per EventKind).
     * Defined inline: the serving fast path emits ~3 events per
     * request, and keeping the append visible to the caller's
     * optimizer roughly halves the per-event cost the serving_obs
     * bench section gates. @{ */
    void
    requestArrival(SimTime t, std::uint64_t req, std::int32_t model,
                   SimTime latency_bound)
    {
        TraceEvent e = makeEvent(t, EventKind::RequestArrival, req,
                                 -1, -1, model);
        e.a = latency_bound;
        events_.push_back(e);
    }

    void
    admissionVerdict(SimTime t, std::uint64_t req, std::int32_t model,
                     std::int64_t verdict, std::int64_t tier)
    {
        TraceEvent e = makeEvent(t, EventKind::AdmissionVerdict, req,
                                 -1, -1, model);
        e.a = verdict;
        e.b = tier;
        events_.push_back(e);
    }

    void
    requestDispatch(SimTime t, std::uint64_t req, std::int64_t run,
                    std::int32_t device, std::int32_t model,
                    SimTime start, SimTime init_done, SimTime end)
    {
        TraceEvent e = makeEvent(t, EventKind::RequestDispatch, req,
                                 run, device, model);
        e.a = start;
        e.b = init_done;
        e.c = end;
        events_.push_back(e);
    }

    void
    requestComplete(SimTime end, std::uint64_t req, std::int64_t run,
                    std::int32_t device, std::int32_t model,
                    SimTime start, SimTime init_done)
    {
        TraceEvent e = makeEvent(end, EventKind::RequestComplete, req,
                                 run, device, model);
        e.a = start;
        e.b = init_done;
        events_.push_back(e);
    }

    void
    requestShed(SimTime t, std::uint64_t req, std::int32_t model,
                std::int64_t reason, std::int64_t attempts)
    {
        TraceEvent e = makeEvent(t, EventKind::RequestShed, req, -1,
                                 -1, model);
        e.a = reason;
        e.b = attempts;
        events_.push_back(e);
    }

    void
    retryScheduled(SimTime t, std::uint64_t req, std::int32_t model,
                   SimTime retry_at, std::int64_t attempts,
                   std::int32_t failed_device)
    {
        TraceEvent e = makeEvent(t, EventKind::RetryScheduled, req,
                                 -1, failed_device, model);
        e.a = retry_at;
        e.b = attempts;
        events_.push_back(e);
    }

    void
    faultInjected(SimTime t, std::uint64_t fault_index,
                  std::int32_t device, std::int64_t kind,
                  SimTime duration, std::int64_t factor_milli)
    {
        TraceEvent e = makeEvent(t, EventKind::FaultInjected,
                                 fault_index, -1, device, -1);
        e.a = kind;
        e.b = duration;
        e.c = factor_milli;
        events_.push_back(e);
    }

    void
    deviceHealthChange(SimTime t, std::int32_t device,
                       std::int64_t health, std::int64_t crash_down,
                       SimTime probation_until)
    {
        TraceEvent e = makeEvent(t, EventKind::DeviceHealthChange, 0,
                                 -1, device, -1);
        e.a = health;
        e.b = crash_down;
        e.c = probation_until;
        events_.push_back(e);
    }

    void
    replan(SimTime t, std::int32_t model, std::int64_t budget,
           std::int64_t memo_hits, std::int64_t windows)
    {
        TraceEvent e =
            makeEvent(t, EventKind::Replan, 0, -1, -1, model);
        e.a = budget;
        e.b = memo_hits;
        e.c = windows;
        events_.push_back(e);
    }

    /** The winning portfolio configuration index rides in the runId
     * slot (unused for planner-side events), so a trace diff between
     * two runs shows *which* derived configuration won each window —
     * the first thing to look at when portfolio plans diverge. */
    void
    solverWindow(SimTime t, std::uint64_t window, std::int32_t model,
                 std::int64_t conflicts, std::int64_t restarts,
                 std::int64_t propagations,
                 std::int64_t proven_optimal,
                 std::int32_t winning_config = 0)
    {
        TraceEvent e = makeEvent(t, EventKind::SolverWindow, window,
                                 winning_config, -1, model);
        e.a = conflicts;
        e.b = restarts;
        e.c = propagations;
        e.flag = proven_optimal != 0;
        events_.push_back(e);
    }
    /** @} */

    const std::vector<TraceEvent> &events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    bool empty() const { return events_.empty(); }
    void clear() { events_.clear(); }

    /**
     * One line per event, sorted by simulation time (stable: events
     * at the same instant keep append order, which the event loop
     * makes deterministic). Byte-identical for identical runs.
     */
    void writeText(std::ostream &os, Stream stream = Stream::Full)
        const;

    /** writeText() into a string (test/diff convenience). */
    std::string text(Stream stream = Stream::Full) const;

    /**
     * Chrome trace-event JSON (the format ui.perfetto.dev loads):
     * per-device compute and DMA tracks built from completed-run
     * actual times, a planner track for replan/solver events, an
     * async request lane spanning arrival to completion/shed, and
     * instants for faults, sheds, retries, and health changes.
     * Timestamps are microseconds with nanosecond decimals, formatted
     * with snprintf so the export is byte-deterministic.
     */
    void writeChromeJson(std::ostream &os) const;

  private:
    /** Common part of an event; payload slots are filled by the
     * caller. Named assignment, not brace-init, so the packed field
     * order in the struct cannot silently reshuffle a payload. */
    static TraceEvent
    makeEvent(SimTime t, EventKind kind, std::uint64_t id,
              std::int64_t run_id, std::int32_t device,
              std::int32_t model)
    {
        TraceEvent e;
        e.time = t;
        e.kind = kind;
        e.id = static_cast<std::uint32_t>(id);
        e.runId = static_cast<std::int32_t>(run_id);
        e.device = static_cast<std::int16_t>(device);
        e.model = static_cast<std::int16_t>(model);
        return e;
    }

    std::vector<TraceEvent> events_;
};

/**
 * Named monotonic counters and gauges with deterministic snapshot
 * order (lexicographic by name — the backing store is a std::map, so
 * iteration order is the snapshot order by construction, per the
 * determinism lint's ordered-container rule).
 */
class CounterRegistry
{
  public:
    /** Bump the monotonic counter @p name by @p delta (>= 0). */
    void add(const std::string &name, std::int64_t delta = 1);

    /** Set the gauge @p name to @p value (last write wins). */
    void setGauge(const std::string &name, std::int64_t value);

    /** Current value of counter or gauge @p name (0 when absent;
     * counters shadow gauges on a name collision). */
    std::int64_t value(const std::string &name) const;

    bool empty() const
    {
        return counters_.empty() && gauges_.empty();
    }

    /** All counters then all gauges, each sorted by name. */
    std::vector<std::pair<std::string, std::int64_t>> snapshot()
        const;

    /** "counter <name> = <v>" / "gauge <name> = <v>" lines in
     * snapshot order. */
    void writeText(std::ostream &os) const;

  private:
    std::map<std::string, std::int64_t> counters_;
    std::map<std::string, std::int64_t> gauges_;
};

} // namespace flashmem::obs

#endif // FLASHMEM_OBS_TRACE_HH
