/**
 * @file
 * Developer utility: print built vs paper Table-6 characteristics for
 * every zoo model (params, MACs, lowered layer count, weight tensors).
 */

#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "models/model_zoo.hh"

int
main()
{
    using namespace flashmem;
    Table t({"Model", "Params(M)", "paper", "MACs(G)", "paper", "Layers",
             "paper", "Weights", "Bytes"});
    for (const auto &spec : models::modelZoo()) {
        auto g = models::buildModel(spec.id);
        t.addRow({spec.abbr,
                  formatDouble(g.totalParams() / 1e6, 1),
                  formatDouble(spec.paperParamsM, 1),
                  formatDouble(g.totalMacs() / 1e9, 1),
                  formatDouble(spec.paperMacsG, 1),
                  std::to_string(g.layerCount()),
                  std::to_string(spec.paperLayers),
                  std::to_string(g.weightCount()),
                  formatBytes(g.totalWeightBytes())});
    }
    t.print(std::cout);
    return 0;
}
