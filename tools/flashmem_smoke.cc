/**
 * @file
 * Developer utility: compile + run each zoo model under FlashMem on the
 * OnePlus 12 profile and print integrated latency / memory — a quick
 * sanity check of the end-to-end pipeline against Tables 7/8.
 */

#include <iostream>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/flashmem.hh"
#include "models/model_zoo.hh"

int
main()
{
    using namespace flashmem;
    core::FlashMem fm(gpusim::DeviceProfile::onePlus12());

    Table t({"Model", "Integrated", "Init", "Exec", "Stall", "Peak",
             "Avg", "Overlap%", "FusedLayers", "Windows", "Solve(s)"});
    for (const auto &spec : models::modelZoo()) {
        auto g = models::buildModel(spec.id);
        auto compiled = fm.compile(g);
        gpusim::GpuSimulator sim(fm.device());
        auto r = fm.execute(sim, compiled);
        t.addRow({spec.abbr, formatMs(r.integratedLatency()),
                  formatMs(r.initLatency()), formatMs(r.execLatency()),
                  formatMs(r.stallTime), formatBytes(r.peakMemory),
                  formatBytes(static_cast<Bytes>(r.avgMemoryBytes)),
                  formatDouble(100 * compiled.overlapFraction(), 1),
                  std::to_string(compiled.fusedGraph.layerCount()),
                  std::to_string(compiled.stats.windows),
                  formatDouble(compiled.stats.solveSeconds, 2)});
    }
    t.print(std::cout);
    return 0;
}
