/**
 * @file
 * Developer utility: compile + run each zoo model under FlashMem on the
 * OnePlus 12 profile and print integrated latency / memory — a quick
 * sanity check of the end-to-end pipeline against Tables 7/8.
 *
 * With --memo <path>, planning runs against a file-backed PlanMemo:
 * the first launch is cold, later launches warm-start every window
 * from the saved incumbents (watch the MemoHits column).
 */

#include <cstring>
#include <iostream>
#include <memory>

#include "common/strutil.hh"
#include "common/table.hh"
#include "core/flashmem.hh"
#include "models/model_zoo.hh"

int
main(int argc, char **argv)
{
    using namespace flashmem;

    core::FlashMemOptions options;
    std::unique_ptr<core::PlanMemo> file_memo;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--memo") == 0 && i + 1 < argc) {
            file_memo = std::make_unique<core::PlanMemo>(4096,
                                                         argv[++i]);
            options.opg.memo = file_memo.get();
        } else {
            std::cerr << "usage: " << argv[0] << " [--memo <path>]\n";
            return 2;
        }
    }
    core::FlashMem fm(gpusim::DeviceProfile::onePlus12(), options);

    Table t({"Model", "Integrated", "Init", "Exec", "Stall", "Peak",
             "Avg", "Overlap%", "FusedLayers", "Windows", "Solve(s)",
             "MemoHits"});
    for (const auto &spec : models::modelZoo()) {
        auto g = models::buildModel(spec.id);
        auto compiled = fm.compile(g);
        gpusim::GpuSimulator sim(fm.device());
        auto r = fm.execute(sim, compiled);
        t.addRow({spec.abbr, formatMs(r.integratedLatency()),
                  formatMs(r.initLatency()), formatMs(r.execLatency()),
                  formatMs(r.stallTime), formatBytes(r.peakMemory),
                  formatBytes(static_cast<Bytes>(r.avgMemoryBytes)),
                  formatDouble(100 * compiled.overlapFraction(), 1),
                  std::to_string(compiled.fusedGraph.layerCount()),
                  std::to_string(compiled.stats.windows),
                  formatDouble(compiled.stats.solveSeconds, 2),
                  std::to_string(compiled.planMemoHits)});
    }
    t.print(std::cout);
    if (file_memo) {
        std::cout << "memo: " << file_memo->size()
                  << " entries -> " << file_memo->memoPath() << "\n";
    }
    return 0;
}
