#!/usr/bin/env python3
"""Compare two FlashMem trace text files and pinpoint the first divergence.

The obs::TraceRecorder text export is deterministic by contract: the
same seed + config must produce a byte-identical stream, and the fast
simulator and the real EventScheduler must produce identical
Stream::Serving views. When that contract breaks, the interesting
question is never "do the files differ" (diff answers that) but "what
is the FIRST event where the two runs part ways" — everything after
the first divergence is cascade noise.

Usage:
    trace_diff.py A.trace B.trace [--context N]

Exit status: 0 when the traces are identical, 1 when they diverge,
2 on usage errors (unreadable file). On divergence the report shows
the first differing line number, the event from each file, and N
lines of shared context before the split.
"""

import argparse
import itertools
import sys


def read_lines(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return f.read().splitlines()
    except OSError as e:
        print(f"trace_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def first_divergence(a_lines, b_lines):
    """Index of the first differing line, or None when identical.

    A missing line (one trace is a strict prefix of the other) counts
    as a divergence at the shorter trace's length.
    """
    for i, (a, b) in enumerate(
            itertools.zip_longest(a_lines, b_lines)):
        if a != b:
            return i
    return None


def report(a_path, b_path, a_lines, b_lines, idx, context):
    print(f"traces diverge at line {idx + 1}")
    lo = max(0, idx - context)
    if lo > 0:
        print(f"  ... {lo} identical line(s) omitted ...")
    for i in range(lo, idx):
        print(f"  = {a_lines[i]}")
    a_ev = a_lines[idx] if idx < len(a_lines) else "<end of trace>"
    b_ev = b_lines[idx] if idx < len(b_lines) else "<end of trace>"
    print(f"  A {a_path}: {a_ev}")
    print(f"  B {b_path}: {b_ev}")
    a_rest = max(0, len(a_lines) - idx - 1)
    b_rest = max(0, len(b_lines) - idx - 1)
    print(f"  ({a_rest} more line(s) in A, {b_rest} more in B "
          "after the divergence)")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Report the first divergent event between two "
                    "FlashMem trace text files.")
    parser.add_argument("trace_a", help="first trace text file")
    parser.add_argument("trace_b", help="second trace text file")
    parser.add_argument(
        "--context", type=int, default=3, metavar="N",
        help="identical lines to show before the divergence "
             "(default: %(default)s)")
    args = parser.parse_args(argv)

    a_lines = read_lines(args.trace_a)
    b_lines = read_lines(args.trace_b)
    idx = first_divergence(a_lines, b_lines)
    if idx is None:
        print(f"traces identical ({len(a_lines)} events)")
        return 0
    report(args.trace_a, args.trace_b, a_lines, b_lines, idx,
           max(0, args.context))
    return 1


if __name__ == "__main__":
    sys.exit(main())
