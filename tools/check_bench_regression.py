#!/usr/bin/env python3
"""Regression gate over BENCH_table4.json snapshots.

Usage: check_bench_regression.py OLD.json NEW.json

Fails (exit 1) when the fresh run regresses against the committed
snapshot:
  - aggregate solver wall speedup (trail vs seed DFS) drops by more
    than 10%, or
  - any solver-comparison instance ends with a worse (higher)
    objective, or
  - any Table-4 model's plan status gets worse
    (OPTIMAL -> FEASIBLE -> greedy/unknown ordering), or
  - any Fig-6 scheduler policy's makespan or mean request latency
    (queueing delay included) worsens by more than 10%, or the
    memory-aware policy stops re-planning, or
  - any serving policy's p95 request latency worsens by more than 10%,
    its goodput drops by more than 2 points, or its max sustainable
    QPS drops by more than 10%, or
  - the serving_faults section loses a fault scenario, any scenario's
    goodput drops by more than 2 points or its p99 worsens by more
    than 10%, a fresh-run scenario stops accounting for every
    submitted request, or the mid-run-crash goodput ratio falls below
    0.65 of fault-free (the "crash costs < 35% goodput" bound), or
  - the serving_admission section loses a scenario, any scenario's
    goodput drops by more than 2 points or its p99 worsens by more
    than 10%, a fresh-run scenario stops accounting for every
    submitted request, the arrival gate stops strictly beating
    dispatch-point-only admission on goodput at overload
    (arrival_goodput_delta <= 0), or the cold-influx goodput gap of
    the predicted-tier view vs the fully-calibrated oracle exceeds
    0.15, or
  - the serving_sharding section loses a (device count, overlap)
    operating point, any point's max sustainable QPS drops by more
    than 10%, the 4-device scaling efficiency regresses by more than
    10%, or the cross-request overlap demo stops improving the
    back-to-back makespan, or
  - the serving_obs section reports tracing-on overhead above 10%
    of the tracing-off run time, an off-vs-off delta above 10%
    (tracing disabled must cost nothing, so the two untraced arms
    must agree to within measurement noise), a traced run whose
    outcome diverges from the untraced run, or a traced run that
    recorded no events, or
  - the solver_portfolio section loses an instance, its symmetry
    conflict ratio (plain/broken — a deterministic counter ratio, not
    wall time) drops below 90% of the committed value or below 1.0,
    the portfolio proves fewer budget windows optimal than the
    committed snapshot or no more than the single configuration, a
    budget instance's portfolio status/objective worsens, or the
    pool-size-1/2/8 byte-determinism flag goes false.

Missing data fails loudly: absent aggregate_wall_speedup fields,
instances/models/policies present on one side but not the other, and
absent sections are regressions (coverage loss), not silent passes.
Regenerate the snapshot deliberately (tools/run_benchmarks.sh
--no-gate) when the schema legitimately changes.

Run by tools/run_benchmarks.sh before it replaces the snapshot.
"""

import json
import sys

STATUS_RANK = {"OPTIMAL": 0, "FEASIBLE": 1, "UNKNOWN": 2,
               "INFEASIBLE": 3}
SPEEDUP_TOLERANCE = 0.90   # fail below 90% of the committed speedup
LATENCY_TOLERANCE = 1.10   # fail above 110% of the committed time
GOODPUT_TOLERANCE = 0.02   # fail on > 2-point absolute goodput drop
QPS_TOLERANCE = 0.90       # fail below 90% of the committed max QPS
OBS_OVERHEAD_TOLERANCE = 1.10  # tracing-on must stay within +10%
OBS_NOISE_TOLERANCE = 0.10     # off-vs-off arms must agree to 10%


def check_speedup(old, new, failures):
    old_cmp = old.get("solver_comparison", {})
    new_cmp = new.get("solver_comparison", {})
    old_speedup = old_cmp.get("aggregate_wall_speedup")
    new_speedup = new_cmp.get("aggregate_wall_speedup")
    if old_speedup is None or new_speedup is None:
        failures.append(
            "aggregate_wall_speedup missing from "
            + ("both snapshots" if old_speedup is None and
               new_speedup is None else
               "the committed snapshot" if old_speedup is None else
               "the fresh run")
            + " — the speedup gate cannot run")
        return
    if new_speedup < SPEEDUP_TOLERANCE * old_speedup:
        failures.append(
            f"aggregate solver speedup regressed: {old_speedup:.2f}x"
            f" -> {new_speedup:.2f}x (> 10% drop)")
    print(f"speedup: {old_speedup:.2f}x -> {new_speedup:.2f}x")


def check_keyed_rows(name, key, old_rows, new_rows, failures, check):
    """Compare rows keyed by @key; rows missing on either side fail."""
    old_by = {r[key]: r for r in old_rows}
    new_by = {r[key]: r for r in new_rows}
    for k in old_by:
        if k not in new_by:
            failures.append(
                f"{name} {k}: missing from the fresh run "
                "(coverage lost)")
    for k, row in new_by.items():
        if k not in old_by:
            failures.append(
                f"{name} {k}: missing from the committed snapshot "
                "(regenerate the snapshot to admit it)")
            continue
        check(k, old_by[k], row)


def load_snapshot(path, label):
    """Parse one snapshot; unreadable or malformed files are a usage
    error (exit 2), distinct from a regression verdict (exit 1)."""
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        print(f"cannot read {label} snapshot {path}: {e}",
              file=sys.stderr)
        return None
    except json.JSONDecodeError as e:
        print(f"malformed JSON in {label} snapshot {path}: {e}",
              file=sys.stderr)
        return None


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    old = load_snapshot(sys.argv[1], "committed")
    if old is None:
        return 2
    new = load_snapshot(sys.argv[2], "fresh")
    if new is None:
        return 2

    failures = []

    check_speedup(old, new, failures)

    def instance_check(name, old_row, new_row):
        if new_row["objective"] > old_row["objective"]:
            failures.append(
                f"instance {name}: objective worsened"
                f" {old_row['objective']} -> {new_row['objective']}")

    check_keyed_rows(
        "instance", "name",
        old.get("solver_comparison", {}).get("instances", []),
        new.get("solver_comparison", {}).get("instances", []),
        failures, instance_check)

    def table4_check(name, old_row, new_row):
        was = STATUS_RANK.get(old_row["status"], 9)
        now = STATUS_RANK.get(new_row["status"], 9)
        if now > was:
            failures.append(
                f"table4 {name}: status worsened"
                f" {old_row['status']} -> {new_row['status']}")

    check_keyed_rows("table4", "model", old.get("table4", []),
                     new.get("table4", []), failures, table4_check)

    # Fig-6 scheduler policies: makespan and queueing-aware mean
    # latency are the multi-DNN performance gate.
    if "fig6_policies" not in old or "fig6_policies" not in new:
        side = ("both snapshots"
                if "fig6_policies" not in old and
                "fig6_policies" not in new else
                "the committed snapshot"
                if "fig6_policies" not in old else "the fresh run")
        failures.append(f"fig6_policies missing from {side}")
    else:
        def policy_check(name, old_row, new_row):
            for field in ("makespan_ms", "mean_latency_ms"):
                if field not in old_row or field not in new_row:
                    failures.append(
                        f"fig6 policy {name}: {field} missing")
                    continue
                if new_row[field] > LATENCY_TOLERANCE * old_row[field]:
                    failures.append(
                        f"fig6 policy {name}: {field} worsened"
                        f" {old_row[field]:.1f} ->"
                        f" {new_row[field]:.1f} (> 10%)")
            if name == "memory-aware" and new_row.get("replans", 0) <= 0:
                failures.append(
                    "fig6 policy memory-aware: no re-plans — "
                    "on-device re-planning went dead")

        check_keyed_rows("fig6 policy", "policy",
                         old["fig6_policies"], new["fig6_policies"],
                         failures, policy_check)

    # Serving harness: per-policy tail latency, goodput, and the max
    # sustainable QPS from the capacity sweep.
    if "serving" not in old or "serving" not in new:
        side = ("both snapshots"
                if "serving" not in old and "serving" not in new else
                "the committed snapshot"
                if "serving" not in old else "the fresh run")
        failures.append(f"serving section missing from {side}")
    else:
        def serving_check(name, old_row, new_row):
            for field in ("p95_ms", "goodput", "max_sustainable_qps"):
                if field not in old_row or field not in new_row:
                    failures.append(
                        f"serving policy {name}: {field} missing")
                    return
            if new_row["p95_ms"] > LATENCY_TOLERANCE * old_row["p95_ms"]:
                failures.append(
                    f"serving policy {name}: p95 worsened"
                    f" {old_row['p95_ms']:.1f} ->"
                    f" {new_row['p95_ms']:.1f} ms (> 10%)")
            if new_row["goodput"] < old_row["goodput"] - GOODPUT_TOLERANCE:
                failures.append(
                    f"serving policy {name}: goodput dropped"
                    f" {old_row['goodput']:.3f} ->"
                    f" {new_row['goodput']:.3f} (> 2 points)")
            if (new_row["max_sustainable_qps"] <
                    QPS_TOLERANCE * old_row["max_sustainable_qps"]):
                failures.append(
                    f"serving policy {name}: max sustainable QPS"
                    f" regressed {old_row['max_sustainable_qps']:.2f}"
                    f" -> {new_row['max_sustainable_qps']:.2f}"
                    " (> 10%)")

        old_serving = old["serving"].get("policies", [])
        new_serving = new["serving"].get("policies", [])
        if not old_serving or not new_serving:
            failures.append(
                "serving section has no policies in "
                + ("the committed snapshot" if not old_serving
                   else "the fresh run"))
        check_keyed_rows("serving policy", "policy", old_serving,
                         new_serving, failures, serving_check)

    # Fault tolerance: goodput/p99 per injected-fault scenario, the
    # every-request-accounted invariant, and the mid-run-crash
    # goodput bound. Losing a scenario is lost coverage.
    if "serving_faults" not in old or "serving_faults" not in new:
        side = ("both snapshots"
                if "serving_faults" not in old and
                "serving_faults" not in new else
                "the committed snapshot"
                if "serving_faults" not in old else "the fresh run")
        failures.append(f"serving_faults missing from {side}")
    else:
        def fault_check(name, old_row, new_row):
            for field in ("goodput", "p99_ms", "accounting_complete"):
                if field not in old_row or field not in new_row:
                    failures.append(
                        f"fault scenario {name}: {field} missing")
                    return
            if not new_row["accounting_complete"]:
                failures.append(
                    f"fault scenario {name}: a submitted request was "
                    "neither completed nor shed with a reason")
            if new_row["goodput"] < old_row["goodput"] - GOODPUT_TOLERANCE:
                failures.append(
                    f"fault scenario {name}: goodput dropped"
                    f" {old_row['goodput']:.3f} ->"
                    f" {new_row['goodput']:.3f} (> 2 points)")
            if new_row["p99_ms"] > LATENCY_TOLERANCE * old_row["p99_ms"]:
                failures.append(
                    f"fault scenario {name}: p99 worsened"
                    f" {old_row['p99_ms']:.1f} ->"
                    f" {new_row['p99_ms']:.1f} ms (> 10%)")

        old_faults = old["serving_faults"].get("scenarios", [])
        new_faults = new["serving_faults"].get("scenarios", [])
        if not old_faults or not new_faults:
            failures.append(
                "serving_faults has no scenarios in "
                + ("the committed snapshot" if not old_faults
                   else "the fresh run"))
        check_keyed_rows("fault scenario", "scenario", old_faults,
                         new_faults, failures, fault_check)

        ratio = new["serving_faults"].get("crash_goodput_ratio")
        if ratio is None:
            failures.append(
                "crash_goodput_ratio missing from the fresh run")
        elif ratio < 0.65:
            failures.append(
                "mid-run crash now costs more than 35% goodput "
                f"vs fault-free (ratio {ratio:.3f} < 0.65)")
        else:
            print(f"crash goodput ratio: {ratio:.3f}")

    # Arrival-time admission: goodput/p99 per overload scenario, the
    # accounting invariant, the gated-beats-ungated delta, and the
    # cold-influx gap of the predicted-tier estimator vs the oracle.
    if "serving_admission" not in old or "serving_admission" not in new:
        side = ("both snapshots"
                if "serving_admission" not in old and
                "serving_admission" not in new else
                "the committed snapshot"
                if "serving_admission" not in old else "the fresh run")
        failures.append(f"serving_admission missing from {side}")
    else:
        def admission_check(name, old_row, new_row):
            for field in ("goodput", "p99_ms", "accounting_complete"):
                if field not in old_row or field not in new_row:
                    failures.append(
                        f"admission scenario {name}: {field} missing")
                    return
            if not new_row["accounting_complete"]:
                failures.append(
                    f"admission scenario {name}: a submitted request "
                    "was neither completed nor shed with a reason")
            if new_row["goodput"] < old_row["goodput"] - GOODPUT_TOLERANCE:
                failures.append(
                    f"admission scenario {name}: goodput dropped"
                    f" {old_row['goodput']:.3f} ->"
                    f" {new_row['goodput']:.3f} (> 2 points)")
            if new_row["p99_ms"] > LATENCY_TOLERANCE * old_row["p99_ms"]:
                failures.append(
                    f"admission scenario {name}: p99 worsened"
                    f" {old_row['p99_ms']:.1f} ->"
                    f" {new_row['p99_ms']:.1f} ms (> 10%)")

        old_adm = old["serving_admission"].get("scenarios", [])
        new_adm = new["serving_admission"].get("scenarios", [])
        if not old_adm or not new_adm:
            failures.append(
                "serving_admission has no scenarios in "
                + ("the committed snapshot" if not old_adm
                   else "the fresh run"))
        check_keyed_rows("admission scenario", "scenario", old_adm,
                         new_adm, failures, admission_check)

        delta = new["serving_admission"].get("arrival_goodput_delta")
        if delta is None:
            failures.append(
                "arrival_goodput_delta missing from the fresh run")
        elif delta <= 0.0:
            failures.append(
                "arrival-time admission no longer strictly beats "
                "dispatch-point-only admission on goodput at "
                f"overload (delta {delta:.4f} <= 0)")
        else:
            print(f"arrival admission goodput delta: {delta:.4f}")

        gap = new["serving_admission"].get("cold_goodput_gap")
        if gap is None:
            failures.append(
                "cold_goodput_gap missing from the fresh run")
        elif gap > 0.15:
            failures.append(
                "cold-model influx: the predicted-tier gate gives up "
                f"more than 15 goodput points vs the oracle (gap "
                f"{gap:.4f} > 0.15)")
        else:
            print(f"cold influx goodput gap: {gap:.4f}")

    # Device sharding: the scaling curve over device counts and the
    # cross-request overlap demo. Missing device counts are lost
    # coverage, not silent passes.
    if "serving_sharding" not in old or "serving_sharding" not in new:
        side = ("both snapshots"
                if "serving_sharding" not in old and
                "serving_sharding" not in new else
                "the committed snapshot"
                if "serving_sharding" not in old else "the fresh run")
        failures.append(f"serving_sharding missing from {side}")
    else:
        old_sh = old["serving_sharding"]
        new_sh = new["serving_sharding"]

        def point_key(row):
            overlap = "on" if row.get("overlap") else "off"
            return f"{row.get('devices')}dev/{overlap}"

        def keyed(rows):
            return [dict(r, point=point_key(r)) for r in rows]

        def sharding_check(name, old_row, new_row):
            if ("max_sustainable_qps" not in old_row or
                    "max_sustainable_qps" not in new_row):
                failures.append(
                    f"sharding point {name}: max_sustainable_qps "
                    "missing")
                return
            if (new_row["max_sustainable_qps"] <
                    QPS_TOLERANCE * old_row["max_sustainable_qps"]):
                failures.append(
                    f"sharding point {name}: max sustainable QPS"
                    f" regressed {old_row['max_sustainable_qps']:.2f}"
                    f" -> {new_row['max_sustainable_qps']:.2f}"
                    " (> 10%)")

        old_pts = keyed(old_sh.get("scaling", []))
        new_pts = keyed(new_sh.get("scaling", []))
        if not old_pts or not new_pts:
            failures.append(
                "serving_sharding has no scaling points in "
                + ("the committed snapshot" if not old_pts
                   else "the fresh run"))
        check_keyed_rows("sharding point", "point", old_pts, new_pts,
                         failures, sharding_check)

        old_eff = old_sh.get("scaling_efficiency_4dev")
        new_eff = new_sh.get("scaling_efficiency_4dev")
        if old_eff is None or new_eff is None:
            failures.append(
                "scaling_efficiency_4dev missing from "
                + ("both snapshots" if old_eff is None and
                   new_eff is None else
                   "the committed snapshot" if old_eff is None else
                   "the fresh run"))
        else:
            if new_eff < QPS_TOLERANCE * old_eff:
                failures.append(
                    "sharding scaling efficiency at 4 devices "
                    f"regressed: {old_eff:.3f} -> {new_eff:.3f} "
                    "(> 10%)")
            print(f"4-device scaling efficiency: {old_eff:.3f} -> "
                  f"{new_eff:.3f}")

        new_demo = new_sh.get("overlap_demo", {})
        if "makespan_speedup" not in new_demo:
            failures.append(
                "serving_sharding overlap_demo missing from the "
                "fresh run")
        elif new_demo["makespan_speedup"] <= 1.0:
            failures.append(
                "cross-request overlap no longer improves the "
                "back-to-back LLM makespan (speedup "
                f"{new_demo['makespan_speedup']:.3f} <= 1.0)")

    # Observability: the tracing layer's cost contract. The fresh
    # run's ratios are what the gate judges (the committed ones only
    # prove the section existed before); overhead above 10% or a
    # traced/untraced outcome divergence means instrumentation crept
    # onto the hot path.
    if "serving_obs" not in old or "serving_obs" not in new:
        side = ("both snapshots"
                if "serving_obs" not in old and
                "serving_obs" not in new else
                "the committed snapshot"
                if "serving_obs" not in old else "the fresh run")
        failures.append(f"serving_obs missing from {side}")
    else:
        obs = new["serving_obs"]
        overhead = obs.get("on_overhead_ratio")
        if overhead is None:
            failures.append(
                "on_overhead_ratio missing from the fresh run")
        elif overhead > OBS_OVERHEAD_TOLERANCE:
            failures.append(
                "tracing-on overhead exceeds 10% of the untraced "
                f"serving run (ratio {overhead:.3f} > "
                f"{OBS_OVERHEAD_TOLERANCE:.2f})")
        else:
            print(f"tracing-on overhead ratio: {overhead:.3f}")

        noise = obs.get("off_delta_ratio")
        if noise is None:
            failures.append(
                "off_delta_ratio missing from the fresh run")
        elif noise > OBS_NOISE_TOLERANCE:
            failures.append(
                "tracing-off arms disagree by more than 10% "
                f"(delta {noise:.3f}) — either the null-recorder "
                "path stopped being free or the measurement is too "
                "noisy to trust")
        else:
            print(f"tracing-off noise floor: {noise:.3f}")

        if not obs.get("outcome_identical", False):
            failures.append(
                "traced serving outcome diverged from the untraced "
                "run — tracing must observe, never perturb")
        if obs.get("trace_events", 0) <= 0:
            failures.append(
                "the traced serving run recorded no events — "
                "instrumentation went dead")

    # Inside-one-window portfolio + symmetry breaking: the conflict
    # ratio and optimal-window counts are deterministic counters, so
    # the gate holds on any machine class; wall times in the section
    # are informational only.
    if "solver_portfolio" not in old or "solver_portfolio" not in new:
        side = ("both snapshots"
                if "solver_portfolio" not in old and
                "solver_portfolio" not in new else
                "the committed snapshot"
                if "solver_portfolio" not in old else "the fresh run")
        failures.append(f"solver_portfolio missing from {side}")
    else:
        old_pf = old["solver_portfolio"]
        new_pf = new["solver_portfolio"]

        old_ratio = old_pf.get("symmetry_conflict_ratio")
        new_ratio = new_pf.get("symmetry_conflict_ratio")
        if old_ratio is None or new_ratio is None:
            failures.append(
                "symmetry_conflict_ratio missing from "
                + ("both snapshots" if old_ratio is None and
                   new_ratio is None else
                   "the committed snapshot" if old_ratio is None else
                   "the fresh run"))
        else:
            if new_ratio < SPEEDUP_TOLERANCE * old_ratio:
                failures.append(
                    "symmetry-breaking conflict ratio regressed: "
                    f"{old_ratio:.1f}x -> {new_ratio:.1f}x (> 10% "
                    "drop)")
            if new_ratio <= 1.0:
                failures.append(
                    "symmetry breaking no longer cuts conflicts on "
                    f"interchangeable windows (ratio {new_ratio:.2f}"
                    " <= 1.0)")
            print(f"symmetry conflict ratio: {old_ratio:.1f}x -> "
                  f"{new_ratio:.1f}x")

        def sym_check(name, old_row, new_row):
            del old_row
            if ("plain_conflicts" not in new_row or
                    "broken_conflicts" not in new_row):
                failures.append(
                    f"symmetry instance {name}: conflict counts "
                    "missing")
                return
            if (new_row["broken_conflicts"] >=
                    new_row["plain_conflicts"]):
                failures.append(
                    f"symmetry instance {name}: lex rows no longer "
                    f"cut conflicts ({new_row['plain_conflicts']} "
                    f"plain vs {new_row['broken_conflicts']} broken)")

        check_keyed_rows("symmetry instance", "name",
                         old_pf.get("symmetry_instances", []),
                         new_pf.get("symmetry_instances", []),
                         failures, sym_check)

        def budget_check(name, old_row, new_row):
            for field in ("portfolio_status", "portfolio_objective"):
                if field not in old_row or field not in new_row:
                    failures.append(
                        f"budget instance {name}: {field} missing")
                    return
            was = STATUS_RANK.get(old_row["portfolio_status"], 9)
            now = STATUS_RANK.get(new_row["portfolio_status"], 9)
            if now > was:
                failures.append(
                    f"budget instance {name}: portfolio status "
                    f"worsened {old_row['portfolio_status']} -> "
                    f"{new_row['portfolio_status']}")
            if (new_row["portfolio_objective"] >
                    old_row["portfolio_objective"]):
                failures.append(
                    f"budget instance {name}: portfolio objective "
                    f"worsened {old_row['portfolio_objective']} -> "
                    f"{new_row['portfolio_objective']}")

        check_keyed_rows("budget instance", "name",
                         old_pf.get("budget_instances", []),
                         new_pf.get("budget_instances", []),
                         failures, budget_check)

        old_opt = old_pf.get("optimal_windows_portfolio")
        new_opt = new_pf.get("optimal_windows_portfolio")
        new_single = new_pf.get("optimal_windows_single")
        if old_opt is None or new_opt is None or new_single is None:
            failures.append(
                "optimal-window counts missing from the "
                + ("committed snapshot" if old_opt is None
                   else "fresh run"))
        else:
            if new_opt < old_opt:
                failures.append(
                    "portfolio proves fewer windows optimal than the "
                    f"committed snapshot ({old_opt} -> {new_opt})")
            if new_opt <= new_single:
                failures.append(
                    "the portfolio no longer proves strictly more "
                    "windows optimal than the single configuration "
                    f"({new_opt} vs {new_single}) at the same "
                    "per-config budget")
            print(f"optimal windows: single {new_single}, "
                  f"portfolio {old_opt} -> {new_opt}")

        if not new_pf.get("deterministic", False):
            failures.append(
                "portfolio merged results are no longer identical "
                "across pool sizes 1/2/8 — thread count leaked into "
                "the plan")

    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1
    print("regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
