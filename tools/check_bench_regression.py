#!/usr/bin/env python3
"""Regression gate over BENCH_table4.json snapshots.

Usage: check_bench_regression.py OLD.json NEW.json

Fails (exit 1) when the fresh run regresses against the committed
snapshot:
  - aggregate solver wall speedup (trail vs seed DFS) drops by more
    than 10%, or
  - any solver-comparison instance ends with a worse (higher)
    objective, or
  - any Table-4 model's plan status gets worse
    (OPTIMAL -> FEASIBLE -> greedy/unknown ordering).

Run by tools/run_benchmarks.sh before it replaces the snapshot.
"""

import json
import sys

STATUS_RANK = {"OPTIMAL": 0, "FEASIBLE": 1, "UNKNOWN": 2,
               "INFEASIBLE": 3}
SPEEDUP_TOLERANCE = 0.90  # fail below 90% of the committed speedup


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        old = json.load(f)
    with open(sys.argv[2]) as f:
        new = json.load(f)

    failures = []

    old_cmp = old.get("solver_comparison", {})
    new_cmp = new.get("solver_comparison", {})
    old_speedup = old_cmp.get("aggregate_wall_speedup")
    new_speedup = new_cmp.get("aggregate_wall_speedup")
    if old_speedup and new_speedup:
        if new_speedup < SPEEDUP_TOLERANCE * old_speedup:
            failures.append(
                f"aggregate solver speedup regressed: {old_speedup:.2f}x"
                f" -> {new_speedup:.2f}x (> 10% drop)")
        print(f"speedup: {old_speedup:.2f}x -> {new_speedup:.2f}x")

    old_obj = {i["name"]: i["objective"]
               for i in old_cmp.get("instances", [])}
    for inst in new_cmp.get("instances", []):
        name = inst["name"]
        if name in old_obj and inst["objective"] > old_obj[name]:
            failures.append(
                f"instance {name}: objective worsened"
                f" {old_obj[name]} -> {inst['objective']}")

    old_status = {m["model"]: m["status"]
                  for m in old.get("table4", [])}
    for model in new.get("table4", []):
        name = model["model"]
        if name not in old_status:
            continue
        was = STATUS_RANK.get(old_status[name], 9)
        now = STATUS_RANK.get(model["status"], 9)
        if now > was:
            failures.append(
                f"table4 {name}: status worsened"
                f" {old_status[name]} -> {model['status']}")

    if failures:
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1
    print("regression gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
