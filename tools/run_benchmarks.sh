#!/usr/bin/env bash
# Build Release and emit BENCH_table4.json (solver wall time,
# decisions/s, plan-memo effect, merge-time re-balancing, planner
# thread count, the Fig-6 per-policy scheduler section, and the
# serving-harness section) so successive PRs accumulate a perf
# trajectory. Run from anywhere; artifacts land in the repo root.
#
# Acts as a regression gate: the fresh run is compared against the
# committed snapshot (tools/check_bench_regression.py) and the script
# fails — leaving the committed snapshot in place — if the aggregate
# solver speedup regresses by more than 10%, any instance objective
# worsens, any Table-4 status degrades, any Fig-6 policy's makespan
# or mean request latency worsens by more than 10%, or any serving
# policy's p95 / goodput / max sustainable QPS regresses. Missing
# fields/sections fail loudly, as do colliding top-level keys in the
# section merge. Pass --no-gate to skip the comparison (e.g. on a
# machine class different from the snapshot's, or when the schema
# legitimately changed and the snapshot must be regenerated).
#
# Usage: tools/run_benchmarks.sh [--no-gate] [output.json]

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"

gate=1
if [[ "${1:-}" == "--no-gate" ]]; then
    gate=0
    shift
fi
out_json="${1:-${repo_root}/BENCH_table4.json}"
fresh_json="$(mktemp /tmp/bench_table4.XXXXXX.json)"
fig6_json="$(mktemp /tmp/bench_fig6.XXXXXX.json)"
serving_json="$(mktemp /tmp/bench_serving.XXXXXX.json)"
trap 'rm -f "${fresh_json}" "${fig6_json}" "${serving_json}"' EXIT

cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release -DBUILD_TESTING=OFF >/dev/null
cmake --build "${build_dir}" -j \
      --target bench_table4_solver_runtime bench_fig6_multimodel \
               bench_serving

"${build_dir}/bench_table4_solver_runtime" "${fresh_json}"
"${build_dir}/bench_fig6_multimodel" "${fig6_json}" >/dev/null
"${build_dir}/bench_serving" "${serving_json}" >/dev/null

# Merge the per-bench sections into the Table-4 snapshot. Top-level
# keys must be disjoint: a silent overwrite would let one bench mask
# another's section, so collisions fail the run.
if ! command -v python3 >/dev/null; then
    echo "warning: python3 not found; bench sections not merged" >&2
else
python3 - "${fresh_json}" "${fig6_json}" "${serving_json}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    snap = json.load(f)
for path in sys.argv[2:]:
    with open(path) as f:
        section = json.load(f)
    for key, value in section.items():
        if key in snap:
            sys.exit(f"error: bench section merge would overwrite "
                     f"top-level key '{key}' (from {path}); bench "
                     f"outputs must use disjoint keys")
        snap[key] = value
with open(sys.argv[1], "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")
EOF
fi

if [[ ${gate} -eq 1 && -f "${out_json}" ]]; then
    if command -v python3 >/dev/null; then
        python3 "${repo_root}/tools/check_bench_regression.py" \
                "${out_json}" "${fresh_json}"
    else
        echo "warning: python3 not found; skipping regression gate" >&2
    fi
fi

mv "${fresh_json}" "${out_json}"
trap 'rm -f "${fig6_json}" "${serving_json}"' EXIT
echo "perf snapshot written to ${out_json}"
