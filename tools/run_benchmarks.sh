#!/usr/bin/env bash
# Build Release and emit BENCH_table4.json (solver wall time,
# decisions/s, plan-memo effect) so successive PRs accumulate a perf
# trajectory. Run from anywhere; artifacts land in the repo root.
#
# Usage: tools/run_benchmarks.sh [output.json]

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"
out_json="${1:-${repo_root}/BENCH_table4.json}"

cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release -DBUILD_TESTING=OFF >/dev/null
cmake --build "${build_dir}" -j --target bench_table4_solver_runtime

"${build_dir}/bench_table4_solver_runtime" "${out_json}"
echo "perf snapshot written to ${out_json}"
