#!/usr/bin/env bash
# Build Release and emit BENCH_table4.json (solver wall time,
# decisions/s, plan-memo effect, merge-time re-balancing, planner
# thread count, and the Fig-6 per-policy scheduler section) so
# successive PRs accumulate a perf trajectory. Run from anywhere;
# artifacts land in the repo root.
#
# Acts as a regression gate: the fresh run is compared against the
# committed snapshot (tools/check_bench_regression.py) and the script
# fails — leaving the committed snapshot in place — if the aggregate
# solver speedup regresses by more than 10%, any instance objective
# worsens, any Table-4 status degrades, or any Fig-6 policy's makespan
# or mean request latency worsens by more than 10%. Missing
# fields/sections fail loudly. Pass --no-gate to skip the comparison
# (e.g. on a machine class different from the snapshot's, or when the
# schema legitimately changed and the snapshot must be regenerated).
#
# Usage: tools/run_benchmarks.sh [--no-gate] [output.json]

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"

gate=1
if [[ "${1:-}" == "--no-gate" ]]; then
    gate=0
    shift
fi
out_json="${1:-${repo_root}/BENCH_table4.json}"
fresh_json="$(mktemp /tmp/bench_table4.XXXXXX.json)"
fig6_json="$(mktemp /tmp/bench_fig6.XXXXXX.json)"
trap 'rm -f "${fresh_json}" "${fig6_json}"' EXIT

cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release -DBUILD_TESTING=OFF >/dev/null
cmake --build "${build_dir}" -j \
      --target bench_table4_solver_runtime bench_fig6_multimodel

"${build_dir}/bench_table4_solver_runtime" "${fresh_json}"
"${build_dir}/bench_fig6_multimodel" "${fig6_json}" >/dev/null

# Merge the Fig-6 per-policy section into the Table-4 snapshot.
if ! command -v python3 >/dev/null; then
    echo "warning: python3 not found; fig6_policies not merged" >&2
else
python3 - "${fresh_json}" "${fig6_json}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    snap = json.load(f)
with open(sys.argv[2]) as f:
    snap.update(json.load(f))
with open(sys.argv[1], "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")
EOF
fi

if [[ ${gate} -eq 1 && -f "${out_json}" ]]; then
    if command -v python3 >/dev/null; then
        python3 "${repo_root}/tools/check_bench_regression.py" \
                "${out_json}" "${fresh_json}"
    else
        echo "warning: python3 not found; skipping regression gate" >&2
    fi
fi

mv "${fresh_json}" "${out_json}"
trap 'rm -f "${fig6_json}"' EXIT
echo "perf snapshot written to ${out_json}"
