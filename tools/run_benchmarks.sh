#!/usr/bin/env bash
# Build Release and emit BENCH_table4.json (solver wall time,
# decisions/s, plan-memo effect, planner thread count) so successive
# PRs accumulate a perf trajectory. Run from anywhere; artifacts land
# in the repo root.
#
# Acts as a regression gate: the fresh run is compared against the
# committed snapshot (tools/check_bench_regression.py) and the script
# fails — leaving the committed snapshot in place — if the aggregate
# solver speedup regresses by more than 10%, any instance objective
# worsens, or any Table-4 status degrades. Pass --no-gate to skip the
# comparison (e.g. on a machine class different from the snapshot's).
#
# Usage: tools/run_benchmarks.sh [--no-gate] [output.json]

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"

gate=1
if [[ "${1:-}" == "--no-gate" ]]; then
    gate=0
    shift
fi
out_json="${1:-${repo_root}/BENCH_table4.json}"
fresh_json="$(mktemp /tmp/bench_table4.XXXXXX.json)"
trap 'rm -f "${fresh_json}"' EXIT

cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release -DBUILD_TESTING=OFF >/dev/null
cmake --build "${build_dir}" -j --target bench_table4_solver_runtime

"${build_dir}/bench_table4_solver_runtime" "${fresh_json}"

if [[ ${gate} -eq 1 && -f "${out_json}" ]]; then
    if command -v python3 >/dev/null; then
        python3 "${repo_root}/tools/check_bench_regression.py" \
                "${out_json}" "${fresh_json}"
    else
        echo "warning: python3 not found; skipping regression gate" >&2
    fi
fi

mv "${fresh_json}" "${out_json}"
trap - EXIT
echo "perf snapshot written to ${out_json}"
