#!/usr/bin/env bash
# Build Release and emit BENCH_table4.json (solver wall time,
# decisions/s, plan-memo effect, merge-time re-balancing, planner
# thread count, the Fig-6 per-policy scheduler section, and the
# serving-harness + device-sharding sections) so successive PRs
# accumulate a perf trajectory. Run from anywhere; artifacts land in
# the repo root.
#
# Acts as a regression gate: the fresh run is compared against the
# committed snapshot (tools/check_bench_regression.py) and the script
# fails — leaving the committed snapshot in place — if the aggregate
# solver speedup regresses by more than 10%, any instance objective
# worsens, any Table-4 status degrades, any Fig-6 policy's makespan
# or mean request latency worsens by more than 10%, any serving
# policy's p95 / goodput / max sustainable QPS regresses, the
# serving_admission study loses a scenario / stops beating
# dispatch-only admission / blows its cold-influx gap bound, or the
# serving_sharding scaling curve loses a device count / regresses its
# 4-device scaling efficiency. Missing fields/sections fail loudly,
# as do colliding top-level keys in the section merge. Pass --no-gate
# to skip the comparison (e.g. on a machine class different from the
# snapshot's, or when the schema legitimately changed and the
# snapshot must be regenerated).
#
# Pass --only SECTION[,SECTION...] (sections: solver, fig6, serving,
# admission, obs, portfolio) to re-run a subset of the benches — e.g.
# `--only serving` iterates on the 1M-request serving study without
# re-running the solver suite, `--only admission` re-runs just the
# arrival-time admission study (bench_serving --admission-only),
# `--only obs` re-runs just the tracing-overhead study (bench_serving
# --obs-only), and `--only portfolio` re-runs just the inside-one-
# window portfolio + symmetry study (bench_table4_solver_runtime
# --portfolio-only). The sections not re-run are carried over from
# the committed snapshot, so the merged result keeps the full schema
# and the gate still checks everything. (`serving` already owns the
# serving_admission and serving_obs sections, and `solver` owns
# solver_portfolio, so the fragments are folded in when both are
# requested.)
#
# Pass --trace-dir DIR to additionally export Chrome/Perfetto
# trace-event JSON of representative runs (bench_serving --trace for
# the faulty overload serving path, bench_fig6_multimodel --trace for
# the re-planning scheduler with its planner track) into DIR; load
# the files in ui.perfetto.dev. The exports ride alongside whatever
# sections run — they don't participate in the snapshot merge.
#
# Usage: tools/run_benchmarks.sh [--no-gate] [--only SECTIONS]
#        [--trace-dir DIR] [output.json]

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build-bench"

# The perf snapshot is only trustworthy if the determinism gate runs
# with it: a test build dir configured before the lint was registered
# silently skips it on every ctest invocation. Nag (don't fail — this
# script's job is the perf snapshot) until the dir is reconfigured.
if [[ -f "${repo_root}/build/CTestTestfile.cmake" ]] &&
   ! grep -rq "flashmem_lint" "${repo_root}/build/CTestTestfile.cmake" \
        "${repo_root}/build/tests/CTestTestfile.cmake" 2>/dev/null; then
    echo "note: ${repo_root}/build predates the flashmem_lint ctest" \
         "gate and is silently skipping it; reconfigure with" \
         "'cmake -B build -S .' so ctest enforces the determinism" \
         "rules." >&2
fi

gate=1
only=""
trace_dir=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --no-gate) gate=0; shift ;;
        --only) only="${2:?--only needs a section list}"; shift 2 ;;
        --only=*) only="${1#--only=}"; shift ;;
        --trace-dir)
            trace_dir="${2:?--trace-dir needs a directory}"; shift 2 ;;
        --trace-dir=*) trace_dir="${1#--trace-dir=}"; shift ;;
        *) break ;;
    esac
done
out_json="${1:-${repo_root}/BENCH_table4.json}"

run_solver=1; run_fig6=1; run_serving=1; run_admission=0; run_obs=0
run_portfolio=0
if [[ -n "${only}" ]]; then
    run_solver=0; run_fig6=0; run_serving=0
    IFS=',' read -ra sections <<< "${only}"
    for s in "${sections[@]}"; do
        case "$s" in
            solver)    run_solver=1 ;;
            fig6)      run_fig6=1 ;;
            serving)   run_serving=1 ;;
            admission) run_admission=1 ;;
            obs)       run_obs=1 ;;
            portfolio) run_portfolio=1 ;;
            *) echo "error: unknown section '$s'" \
                    "(expected solver, fig6, serving, admission," \
                    "obs, portfolio)" >&2; exit 2 ;;
        esac
    done
    if [[ ! -f "${out_json}" ]]; then
        echo "error: --only needs an existing snapshot at" \
             "${out_json} to carry the other sections from" >&2
        exit 2
    fi
fi
# The full serving bench already emits serving_admission and
# serving_obs, and the full solver bench already emits
# solver_portfolio; running the standalone fragments too would
# collide in the merge.
if [[ ${run_serving} -eq 1 ]]; then
    run_admission=0
    run_obs=0
fi
if [[ ${run_solver} -eq 1 ]]; then
    run_portfolio=0
fi

# Install the cleanup trap before the first mktemp so an early exit
# (set -e between the mktemp calls, ctrl-C) cannot strand temp files.
solver_json=""; fig6_json=""; serving_json=""
admission_json=""; obs_json=""; portfolio_json=""; merged_json=""
cleanup() {
    rm -f ${solver_json:+"${solver_json}"} \
          ${fig6_json:+"${fig6_json}"} \
          ${serving_json:+"${serving_json}"} \
          ${admission_json:+"${admission_json}"} \
          ${obs_json:+"${obs_json}"} \
          ${portfolio_json:+"${portfolio_json}"} \
          ${merged_json:+"${merged_json}"}
}
trap cleanup EXIT
solver_json="$(mktemp /tmp/bench_table4.XXXXXX.json)"
fig6_json="$(mktemp /tmp/bench_fig6.XXXXXX.json)"
serving_json="$(mktemp /tmp/bench_serving.XXXXXX.json)"
admission_json="$(mktemp /tmp/bench_admission.XXXXXX.json)"
obs_json="$(mktemp /tmp/bench_obs.XXXXXX.json)"
portfolio_json="$(mktemp /tmp/bench_portfolio.XXXXXX.json)"
merged_json="$(mktemp /tmp/bench_merged.XXXXXX.json)"

targets=()
[[ ${run_solver} -eq 1 || ${run_portfolio} -eq 1 ]] &&
    targets+=(bench_table4_solver_runtime)
[[ ${run_fig6} -eq 1 || -n "${trace_dir}" ]] &&
    targets+=(bench_fig6_multimodel)
[[ ${run_serving} -eq 1 || ${run_admission} -eq 1 ||
   ${run_obs} -eq 1 || -n "${trace_dir}" ]] &&
    targets+=(bench_serving)

cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release -DBUILD_TESTING=OFF >/dev/null
cmake --build "${build_dir}" -j --target "${targets[@]}"

fresh=()
if [[ ${run_solver} -eq 1 ]]; then
    "${build_dir}/bench_table4_solver_runtime" "${solver_json}"
    fresh+=("${solver_json}")
fi
if [[ ${run_fig6} -eq 1 ]]; then
    "${build_dir}/bench_fig6_multimodel" "${fig6_json}" >/dev/null
    fresh+=("${fig6_json}")
fi
if [[ ${run_serving} -eq 1 ]]; then
    "${build_dir}/bench_serving" "${serving_json}" >/dev/null
    fresh+=("${serving_json}")
fi
if [[ ${run_admission} -eq 1 ]]; then
    "${build_dir}/bench_serving" --admission-only \
        "${admission_json}" >/dev/null
    fresh+=("${admission_json}")
fi
if [[ ${run_obs} -eq 1 ]]; then
    "${build_dir}/bench_serving" --obs-only "${obs_json}" >/dev/null
    fresh+=("${obs_json}")
fi
if [[ ${run_portfolio} -eq 1 ]]; then
    "${build_dir}/bench_table4_solver_runtime" --portfolio-only \
        "${portfolio_json}"
    fresh+=("${portfolio_json}")
fi

if [[ -n "${trace_dir}" ]]; then
    mkdir -p "${trace_dir}"
    "${build_dir}/bench_serving" --trace \
        "${trace_dir}/serving_trace.json"
    "${build_dir}/bench_fig6_multimodel" --trace \
        "${trace_dir}/fig6_trace.json"
    echo "perfetto traces written to ${trace_dir}" \
         "(load in ui.perfetto.dev)"
fi

if ! command -v python3 >/dev/null; then
    echo "error: python3 is required to merge bench sections" >&2
    exit 1
fi

# Merge the per-bench sections. Full run: sections start from the
# solver output and top-level keys must be disjoint (a silent
# overwrite would let one bench mask another's section). Partial run
# (--only): start from the committed snapshot and *replace* the keys
# the re-run benches own; two fresh outputs still must not collide
# with each other.
if [[ -n "${only}" ]]; then
    merge_base="${out_json}"
    merge_mode="replace"
else
    merge_base="${fresh[0]}"
    merge_mode="disjoint"
    fresh=("${fresh[@]:1}")
fi
python3 - "${merge_mode}" "${merge_base}" "${merged_json}" \
        "${fresh[@]}" <<'EOF'
import json, sys
mode, base_path, out_path = sys.argv[1:4]
with open(base_path) as f:
    snap = json.load(f)
fresh_owner = {}
for path in sys.argv[4:]:
    with open(path) as f:
        section = json.load(f)
    for key, value in section.items():
        if key in fresh_owner:
            sys.exit(f"error: bench outputs collide on top-level "
                     f"key '{key}' ({fresh_owner[key]} and {path})")
        if mode == "disjoint" and key in snap:
            sys.exit(f"error: bench section merge would overwrite "
                     f"top-level key '{key}' (from {path}); bench "
                     f"outputs must use disjoint keys")
        fresh_owner[key] = path
        snap[key] = value
with open(out_path, "w") as f:
    json.dump(snap, f, indent=2)
    f.write("\n")
EOF

if [[ ${gate} -eq 1 && -f "${out_json}" ]]; then
    python3 "${repo_root}/tools/check_bench_regression.py" \
            "${out_json}" "${merged_json}"
fi

mv "${merged_json}" "${out_json}"
merged_json="" # delivered; cleanup must not touch it
echo "perf snapshot written to ${out_json}"
