#!/usr/bin/env bash
# Build the tree under AddressSanitizer (+UBSan) and ThreadSanitizer
# and run the test suite under each. Catches the failure classes the
# fault-tolerance machinery is most exposed to: use-after-free on
# killed in-flight runs, rollback bugs in the one-deep commit undo,
# and data races in the planner thread pool's exception propagation.
#
# Each sanitizer gets its own build directory (build-asan /
# build-tsan) so instrumented objects never mix with the plain build.
#
# Usage: tools/run_sanitized_tests.sh [address|thread|undefined]
#   With no argument both address and thread run ('all'), followed by
#   a focused standalone-UBSan pass over the solver portfolio /
#   symmetry tests — the portfolio's concurrent cancellation path
#   (board polling + racing losers torn down mid-search) is the
#   newest cross-thread machinery, so it gets undefined-behavior
#   coverage on every full run. The address build already folds UBSan
#   in, so 'undefined' is the standalone UBSan build for isolating
#   alignment/overflow reports from ASan noise. Extra ctest arguments
#   can be passed via CTEST_ARGS, e.g. CTEST_ARGS="-R Faults" to
#   iterate on the fault-injection tests alone.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
requested="${1:-all}"
ctest_args=(${CTEST_ARGS:-})

run_one() {
    local san="$1"
    shift
    # Focused passes append their own ctest filter to CTEST_ARGS.
    local extra_ctest_args=("$@")
    local build_dir="$repo_root/build-${san:0:1}san"
    echo "=== $san sanitizer: configure + build ($build_dir) ==="
    cmake -B "$build_dir" -S "$repo_root" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo \
          -DFLASHMEM_SANITIZE="$san" >/dev/null
    cmake --build "$build_dir" -j >/dev/null
    echo "=== $san sanitizer: ctest ==="
    # halt_on_error makes a sanitizer report fail the test instead of
    # scrolling past; the TSan history size covers the long-running
    # serving cross-validation tests.
    local env_prefix=()
    case "$san" in
        address)
            env_prefix=(env ASAN_OPTIONS=halt_on_error=1
                        UBSAN_OPTIONS=halt_on_error=1) ;;
        undefined)
            env_prefix=(env UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1") ;;
        *)
            env_prefix=(env TSAN_OPTIONS="halt_on_error=1 history_size=7") ;;
    esac
    # -j needs an explicit count here: a bare -j would swallow the
    # first CTEST_ARGS token as its value.
    (cd "$build_dir" &&
     "${env_prefix[@]}" ctest --output-on-failure -j "$(nproc)" \
         "${ctest_args[@]}" "${extra_ctest_args[@]}")
}

case "$requested" in
    address|thread|undefined) run_one "$requested" ;;
    all)
        run_one address
        run_one thread
        # Cancellation-path UBSan arm: the portfolio race and the
        # symmetry lex rows, alone, under the standalone UBSan build.
        run_one undefined -R "Portfolio|Symmetry"
        ;;
    *)  echo "usage: $0 [address|thread|undefined]" >&2; exit 2 ;;
esac
echo "sanitized test run: PASS"
