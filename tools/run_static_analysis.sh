#!/usr/bin/env bash
# Single entry point for the static-analysis gate, in severity order:
#
#   1. flashmem_lint     determinism rules (tools/flashmem_lint.py);
#                        always available, fails fast.
#   2. lint self-test    the fixture corpus proves every check fires
#                        and every suppression path works.
#   3. clang-tidy        generic bug classes (.clang-tidy profile)
#                        over compile_commands.json; availability-
#                        gated — this container ships GCC only, so
#                        the stage self-skips with a notice when no
#                        clang-tidy binary is on PATH.
#   4. sanitizers        tools/run_sanitized_tests.sh (address+UBSan,
#                        thread); opt-in via --with-sanitizers, the
#                        two instrumented builds dominate wall time.
#
# Usage: tools/run_static_analysis.sh [--with-sanitizers]
# Fail-fast: the first failing stage stops the run. Each stage
# reports wall time so CI logs show where the minutes go.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
with_sanitizers=0
for arg in "$@"; do
    case "$arg" in
        --with-sanitizers) with_sanitizers=1 ;;
        *) echo "usage: $0 [--with-sanitizers]" >&2; exit 2 ;;
    esac
done

stage() {
    local name="$1"; shift
    echo "=== $name ==="
    local t0 t1
    t0=$(date +%s)
    "$@"
    t1=$(date +%s)
    echo "=== $name: OK ($((t1 - t0))s) ==="
}

cd "$repo_root"

stage "flashmem_lint (determinism rules)" \
    python3 tools/flashmem_lint.py src bench tests tools \
            --exclude lint_fixtures

stage "flashmem_lint self-test (fixture corpus)" \
    python3 tests/test_flashmem_lint.py

# clang-tidy wants the compile database the CMake configure exports;
# configure a build dir if none exists yet.
run_clang_tidy() {
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "clang-tidy not on PATH; stage skipped (GCC-only" \
             "container). Install clang-tidy to enable it."
        return 0
    fi
    local build_dir="$repo_root/build"
    if [ ! -f "$build_dir/compile_commands.json" ]; then
        cmake -B "$build_dir" -S "$repo_root" >/dev/null
    fi
    # The curated profile sets WarningsAsErrors: '*', so any finding
    # fails the stage. Sources only; headers ride along via
    # HeaderFilterRegex.
    find src bench tools -name '*.cc' -print0 |
        xargs -0 clang-tidy -p "$build_dir" --quiet
}
stage "clang-tidy (curated profile)" run_clang_tidy

if [ "$with_sanitizers" = 1 ]; then
    stage "sanitized test suites (address, thread)" \
        tools/run_sanitized_tests.sh
else
    echo "(sanitizers skipped; pass --with-sanitizers to include" \
         "tools/run_sanitized_tests.sh)"
fi

echo "static analysis: PASS"
