#!/usr/bin/env python3
"""flashmem_lint — static enforcement of FlashMem's determinism rules.

The repo's headline guarantee — the fast serving simulator and the real
EventScheduler are bit-exact, and plans are byte-identical across thread
counts — is enforced dynamically by cross-validation tests at a handful
of seeds.  This tool enforces the same invariants *statically*, as named
checks over the whole tree, so one unordered-container iteration or
wall-clock read on an emit path fails the build instead of waiting for a
2.5k-request repro to notice.

Checks (see tools/README.md for the full catalog):

  no-unordered-iteration   range-for / iterator loops over
                           std::unordered_{map,set} whose body writes to
                           an ordered sink (plans, traces, streams,
                           files, event queues).
  no-wall-clock            wall-clock reads (system_clock, steady_clock,
                           time(), gettimeofday, ...) or stdlib
                           randomness (rand(), random_device, mt19937,
                           std distributions) outside the benchmark
                           timing harness; all randomness must flow
                           through seeded common/rng.
  no-pointer-order         ordering by raw pointer value: std::map/set
                           keyed by a pointer, std::hash over a pointer
                           type, relational comparison of address-of
                           expressions or .get() results — allocation-
                           order nondeterminism in tie-breaks.
  uninitialized-member     public-header structs with uninitialized
                           scalar/enum/pointer fields (the config-struct
                           pattern depends on zero-init discipline).
  float-accumulation-order floating-point += reductions inside thread-
                           pool task bodies (and functions those bodies
                           call in the same file): summation order must
                           not depend on task completion order.
  no-raw-cast              reinterpret_cast / const_cast anywhere: type
                           punning bakes byte-order and alignment
                           assumptions into serialized plan bytes; use
                           std::memcpy through a char buffer instead.
  cross-thread-state       ad-hoc lock-free shared state: std::atomic /
                           atomic_* / volatile declarations.  Bare
                           atomics are how scheduling order leaks into
                           results; the approved patterns are
                           mutex-guarded structures merged in
                           deterministic order, or a named suppression
                           carrying a written safety argument (the
                           portfolio cancellation board in
                           src/solver/portfolio.hh is the canonical
                           sanctioned instance: its atomics broadcast
                           only monotone, order-independent facts).
  bad-suppression          an FMLINT annotation with an empty or missing
                           justification (always fatal; the suppression
                           policy itself is machine-enforced).

Suppressing a finding requires an inline annotation with a non-empty
justification, on the flagged line or on a comment line directly above:

    // FMLINT(allow:no-wall-clock) solver time budget, not plan content
    auto t0 = std::chrono::steady_clock::now();

Engines: the default `builtin` engine lexes C++ and builds a
lightweight block/scope structure itself (AST-level matching, not
regex-over-text: strings/comments never match, scopes and loop bodies
are real token spans).  When the clang.cindex Python bindings are
installed, `--engine=clang` runs the subset of checks that map onto
libclang cursors on a full AST instead; this container does not ship
libclang, so the builtin engine is the one CI exercises and the clang
engine is availability-gated.

Usage:
  flashmem_lint.py [--checks a,b] [--exclude PAT]... [--engine E]
                   [-v] PATH...
Exits nonzero when any unsuppressed finding remains.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------- tokens

CHECK_NAMES = [
    "no-unordered-iteration",
    "no-wall-clock",
    "no-pointer-order",
    "uninitialized-member",
    "float-accumulation-order",
    "no-raw-cast",
    "cross-thread-state",
]

# Multi-character punctuators, longest first so the lexer is greedy.
PUNCTUATORS = [
    "<<=", ">>=", "...", "->*", "<=>",
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
]

KEYWORDS = {
    "alignas", "alignof", "auto", "bool", "break", "case", "catch",
    "char", "class", "const", "consteval", "constexpr", "constinit",
    "continue", "decltype", "default", "delete", "do", "double",
    "else", "enum", "explicit", "extern", "false", "final", "float",
    "for", "friend", "goto", "if", "inline", "int", "long", "mutable",
    "namespace", "new", "noexcept", "nullptr", "operator", "override",
    "private", "protected", "public", "return", "short", "signed",
    "sizeof", "static", "struct", "switch", "template", "this",
    "throw", "true", "try", "typedef", "typename", "union", "unsigned",
    "using", "virtual", "void", "volatile", "while",
}


@dataclass
class Token:
    kind: str   # 'id' | 'num' | 'str' | 'char' | 'punct' | 'pp'
    text: str
    line: int


@dataclass
class Comment:
    text: str
    line: int        # line the comment starts on
    own_line: bool   # no code precedes it on its line


class LexError(Exception):
    pass


def lex(source: str):
    """Tokenize C++ source; returns (tokens, comments).

    Strings, chars and comments are consumed as units so later passes
    can never match inside them.  Preprocessor directives become single
    'pp' tokens (with continuation lines folded in).
    """
    tokens: list[Token] = []
    comments: list[Comment] = []
    i, n, line = 0, len(source), 1
    line_has_code = False

    def at(j):
        return source[j] if j < n else ""

    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            line_has_code = False
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and at(i + 1) == "/":
            j = i + 2
            while j < n and source[j] != "\n":
                j += 1
            comments.append(Comment(source[i + 2:j].strip(), line,
                                    not line_has_code))
            i = j
            continue
        if c == "/" and at(i + 1) == "*":
            j = source.find("*/", i + 2)
            if j < 0:
                raise LexError(f"line {line}: unterminated block comment")
            body = source[i + 2:j]
            comments.append(Comment(body.strip(), line, not line_has_code))
            line += body.count("\n")
            i = j + 2
            continue
        if c == "#" and not line_has_code:
            # Preprocessor directive; fold continuation lines.
            j = i
            start_line = line
            while j < n:
                if source[j] == "\n":
                    if source[j - 1] == "\\":
                        line += 1
                        j += 1
                        continue
                    break
                j += 1
            tokens.append(Token("pp", source[i:j], start_line))
            i = j
            line_has_code = False  # directive is not expression code
            continue
        line_has_code = True
        if c == "R" and at(i + 1) == '"':
            # Raw string literal R"delim( ... )delim"
            j = source.find("(", i + 2)
            if j < 0:
                raise LexError(f"line {line}: bad raw string")
            delim = source[i + 2:j]
            end = source.find(")" + delim + '"', j + 1)
            if end < 0:
                raise LexError(f"line {line}: unterminated raw string")
            text = source[i:end + len(delim) + 2]
            tokens.append(Token("str", text, line))
            line += text.count("\n")
            i = end + len(delim) + 2
            continue
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if source[j] == "\\":
                    j += 2
                    continue
                if source[j] == quote:
                    break
                if source[j] == "\n":
                    raise LexError(f"line {line}: unterminated literal")
                j += 1
            if j >= n:
                raise LexError(f"line {line}: unterminated literal")
            tokens.append(Token("str" if quote == '"' else "char",
                                source[i:j + 1], line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token("id", source[i:j], line))
            i = j
            continue
        if c.isdigit() or (c == "." and at(i + 1).isdigit()):
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] in "._'"
                             or (source[j] in "+-" and
                                 source[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", source[i:j], line))
            i = j
            continue
        for p in PUNCTUATORS:
            if source.startswith(p, i):
                tokens.append(Token("punct", p, line))
                i += len(p)
                break
        else:
            tokens.append(Token("punct", c, line))
            i += 1
    return tokens, comments


# --------------------------------------------------------------- annotations

FMLINT_RE = re.compile(
    r"FMLINT\(\s*allow\s*:\s*([A-Za-z0-9_,\- ]+?)\s*\)\s*(.*)",
    re.DOTALL)


@dataclass
class Suppression:
    checks: list[str]
    reason: str
    line: int
    covered: set[int]
    used: bool = False


def parse_suppressions(comments, code_lines, findings, path):
    """Extract FMLINT annotations; malformed ones are findings."""
    sups: list[Suppression] = []
    for c in comments:
        if "FMLINT(" not in c.text:
            continue   # prose mentioning FMLINT is not an annotation
        m = FMLINT_RE.search(c.text)
        if not m:
            findings.append(Finding(path, c.line, "bad-suppression",
                                    "malformed FMLINT annotation "
                                    "(expected 'FMLINT(allow:<check>) "
                                    "reason')"))
            continue
        checks = [s.strip() for s in m.group(1).split(",") if s.strip()]
        unknown = [s for s in checks
                   if s not in CHECK_NAMES and s != "*"]
        if unknown:
            findings.append(Finding(path, c.line, "bad-suppression",
                                    "unknown check name(s) in FMLINT "
                                    f"annotation: {', '.join(unknown)}"))
            continue
        reason = m.group(2).strip()
        if not reason:
            findings.append(Finding(path, c.line, "bad-suppression",
                                    "FMLINT suppression without a "
                                    "justification string"))
            continue
        covered = {c.line}
        if c.own_line:
            # A comment-only annotation covers the next code line.
            nxt = [ln for ln in code_lines if ln > c.line]
            if nxt:
                covered.add(min(nxt))
        sups.append(Suppression(checks, reason, c.line, covered))
    return sups


# ------------------------------------------------------------------ findings

@dataclass
class Finding:
    path: str
    line: int
    check: str
    message: str
    suppressed: bool = False
    reason: str = ""


# ----------------------------------------------------------- builtin parsing

def match_pairs(tokens, path):
    """Matching-bracket table for (), {}, [] over the token stream.

    Returns dict index->index both directions.  Template angle brackets
    are NOT bracketed here (ambiguous with comparison); type parsing
    handles them locally.
    """
    pairs = {}
    stack = []
    opens = {"(": ")", "{": "}", "[": "]"}
    closes = {")": "(", "}": "{", "]": "["}
    for idx, t in enumerate(tokens):
        if t.kind != "punct":
            continue
        if t.text in opens:
            stack.append((t.text, idx))
        elif t.text in closes:
            want = closes[t.text]
            # Tolerate imbalance (macros): pop until match or empty.
            while stack and stack[-1][0] != want:
                stack.pop()
            if stack:
                _, oidx = stack.pop()
                pairs[oidx] = idx
                pairs[idx] = oidx
    return pairs


def skip_template_args(tokens, i):
    """tokens[i] == '<': return index just past the matching '>'.

    Treats '>>' as two closers.  Returns i+1 when unmatched (then it was
    a comparison, not a template argument list).
    """
    depth = 0
    j = i
    limit = min(len(tokens), i + 400)
    while j < limit:
        t = tokens[j]
        if t.kind == "punct":
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    return j + 1
            elif t.text in (";", "{", "}"):
                return i + 1   # statement ended: was a comparison
        j += 1
    return i + 1


UNORDERED_TYPES = {"unordered_map", "unordered_set",
                   "unordered_multimap", "unordered_multiset"}

SCALAR_TYPES = {
    "bool", "char", "short", "int", "long", "unsigned", "signed",
    "float", "double", "size_t", "ssize_t", "ptrdiff_t", "wchar_t",
    "char8_t", "char16_t", "char32_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "intptr_t", "uintptr_t", "streamsize", "time_t",
}

WALLCLOCK_IDS = {
    "system_clock": "wall-clock read",
    "steady_clock": "wall-clock read",
    "high_resolution_clock": "wall-clock read",
    "gettimeofday": "wall-clock read",
    "clock_gettime": "wall-clock read",
    "timespec_get": "wall-clock read",
    "localtime": "wall-clock read",
    "gmtime": "wall-clock read",
    "random_device": "nondeterministic randomness",
    "mt19937": "stdlib RNG (streams differ across stdlibs; use "
               "seeded common/rng)",
    "mt19937_64": "stdlib RNG (streams differ across stdlibs; use "
                  "seeded common/rng)",
    "default_random_engine": "stdlib RNG (implementation-defined; use "
                             "seeded common/rng)",
    "uniform_int_distribution": "stdlib distribution (implementation-"
                                "defined; use seeded common/rng)",
    "uniform_real_distribution": "stdlib distribution (implementation-"
                                 "defined; use seeded common/rng)",
    "normal_distribution": "stdlib distribution (implementation-"
                           "defined; use seeded common/rng)",
}

WALLCLOCK_CALLS = {"time", "rand", "srand", "clock", "rand_r"}

# Writes whose relative order is observable downstream: appends to
# sequences, stream emission, file writes.  (set/map insert is excluded
# on purpose — inserting into another unordered container inside the
# loop is order-insensitive.)
ORDER_SINKS = {"push_back", "emplace_back", "push_front", "append",
               "write", "put", "print"}


@dataclass
class FileUnit:
    path: str
    tokens: list
    comments: list
    pairs: dict
    code_lines: set


class SymbolTable:
    """Cross-file pass-1 symbols the per-file checks consult."""

    def __init__(self):
        self.unordered_aliases: set[str] = set()
        self.scalar_aliases: set[str] = set()
        self.enum_names: set[str] = set()
        self.float_fields: set[str] = set()
        # Members declared unordered in one file (a header) are often
        # iterated in another (the .cc), so declared-unordered names
        # are collected globally.
        self.unordered_names: set[str] = set()

    def collect(self, unit: FileUnit):
        toks = unit.tokens
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            if t.text == "using" and nxt and nxt.kind == "id":
                # using Alias = <type...>;
                j = i + 2
                if j < len(toks) and toks[j].text == "=":
                    k = j + 1
                    seen = []
                    while k < len(toks) and toks[k].text != ";":
                        seen.append(toks[k].text)
                        k += 1
                    if any(s in UNORDERED_TYPES for s in seen):
                        self.unordered_aliases.add(nxt.text)
                    if any(s in SCALAR_TYPES for s in seen):
                        self.scalar_aliases.add(nxt.text)
            elif t.text == "enum":
                j = i + 1
                if j < len(toks) and toks[j].text in ("class", "struct"):
                    j += 1
                if j < len(toks) and toks[j].kind == "id":
                    self.enum_names.add(toks[j].text)
            elif t.text in UNORDERED_TYPES or \
                    t.text in self.unordered_aliases:
                j = i + 1
                if j < len(toks) and toks[j].text == "<":
                    j = skip_template_args(toks, j)
                while j < len(toks) and toks[j].text in ("&", "*",
                                                         "const"):
                    j += 1
                if (j < len(toks) and toks[j].kind == "id"
                        and toks[j].text not in KEYWORDS):
                    self.unordered_names.add(toks[j].text)
            elif t.text in ("float", "double"):
                # 'double name' declaration (member or local): record
                # the declared name as float-typed for the accumulation
                # check.  Pointers to float are not accumulators.
                if (nxt and nxt.kind == "id"
                        and nxt.text not in KEYWORDS):
                    after = toks[i + 2] if i + 2 < len(toks) else None
                    if after and after.text in (";", "=", "{", ",", ")"):
                        self.float_fields.add(nxt.text)


def unordered_names_in_file(unit: FileUnit, symbols: SymbolTable):
    """Names of variables/members declared with an unordered type."""
    names = set()
    toks = unit.tokens
    i = 0
    while i < len(toks):
        t = toks[i]
        if t.kind == "id" and (t.text in UNORDERED_TYPES
                               or t.text in symbols.unordered_aliases):
            j = i + 1
            if j < len(toks) and toks[j].text == "<":
                j = skip_template_args(toks, j)
            # Skip refs/qualifiers between type and name.
            while j < len(toks) and toks[j].text in ("&", "*", "const"):
                j += 1
            if (j < len(toks) and toks[j].kind == "id"
                    and toks[j].text not in KEYWORDS):
                names.add(toks[j].text)
            i = j
            continue
        i += 1
    return names


def find_loops(unit: FileUnit):
    """Yield (header_span, body_span, kind) for for/while loops.

    Spans are [start, end) token indices; kind is 'range' (range-for)
    or 'classic'.  Bodies without braces extend to the statement's ';'.
    """
    toks, pairs = unit.tokens, unit.pairs
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in ("for", "while"):
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        op = i + 1
        cp = pairs.get(op)
        if cp is None:
            continue
        kind = "classic"
        if t.text == "for":
            depth_semis = [j for j in range(op + 1, cp)
                           if toks[j].text == ";" and _paren_depth_zero(
                               toks, pairs, op, j)]
            if not depth_semis:
                kind = "range"
        body_start = cp + 1
        if body_start < len(toks) and toks[body_start].text == "{":
            body_end = pairs.get(body_start, body_start) + 1
        else:
            body_end = body_start
            while (body_end < len(toks)
                   and toks[body_end].text != ";"):
                if toks[body_end].text == "{":
                    body_end = pairs.get(body_end, body_end)
                body_end += 1
            body_end += 1
        yield (op, cp), (body_start, body_end), kind


def _sorted_after(toks, loop_end, receiver, window=60):
    """True when `sort(...receiver...)` appears shortly after a loop —
    the collect-then-sort idiom that canonicalizes the order."""
    saw_sort = None
    for j in range(loop_end, min(len(toks), loop_end + window)):
        if toks[j].kind == "id" and toks[j].text in ("sort",
                                                     "stable_sort"):
            saw_sort = j
        elif (saw_sort is not None and toks[j].kind == "id"
              and toks[j].text == receiver):
            return True
    return False


def _paren_depth_zero(toks, pairs, op, j):
    """True when toks[j] is directly inside the paren opened at op."""
    depth = 0
    for k in range(op + 1, j):
        tx = toks[k].text
        if tx in ("(", "[", "{"):
            depth += 1
        elif tx in (")", "]", "}"):
            depth -= 1
    return depth == 0


# ------------------------------------------------------------------- checks

def check_unordered_iteration(unit, symbols, findings):
    toks, pairs = unit.tokens, unit.pairs
    unordered = (unordered_names_in_file(unit, symbols)
                 | symbols.unordered_names)
    if not unordered:
        return
    for (op, cp), (bs, be), kind in find_loops(unit):
        target = None
        if kind == "range":
            # for (decl : expr) — expr root identifiers.
            colon = None
            for j in range(op + 1, cp):
                if (toks[j].text == ":"
                        and _paren_depth_zero(toks, pairs, op, j)):
                    colon = j
                    break
            if colon is None:
                continue
            expr_ids = [t.text for t in toks[colon + 1:cp]
                        if t.kind == "id"]
            target = next((x for x in expr_ids if x in unordered), None)
        else:
            # Iterator loop: X.begin()/X.cbegin() in the header.
            for j in range(op + 1, cp - 1):
                if (toks[j].text in ("begin", "cbegin", "rbegin")
                        and toks[j + 1].text == "("
                        and j >= 2 and toks[j - 1].text in (".", "->")
                        and toks[j - 2].kind == "id"
                        and toks[j - 2].text in unordered):
                    target = toks[j - 2].text
                    break
        if target is None:
            continue
        sink = None
        for j in range(bs, be):
            tb = toks[j]
            if (tb.kind == "id" and tb.text in ORDER_SINKS
                    and j + 1 < len(toks)
                    and toks[j + 1].text == "("
                    and j >= 1 and toks[j - 1].text in (".", "->")):
                # Collect-then-sort idiom: pushing into a vector that
                # is sorted right after the loop produces a canonical
                # order — the approved fix, not a violation.
                receiver = (toks[j - 2].text
                            if j >= 2 and toks[j - 2].kind == "id"
                            else None)
                if receiver and _sorted_after(toks, be, receiver):
                    continue
                sink = tb
                break
            if tb.kind == "punct" and tb.text == "<<":
                sink = tb
                break
        if sink is not None:
            findings.append(Finding(
                unit.path, toks[op].line, "no-unordered-iteration",
                f"iteration over unordered container '{target}' "
                f"feeds an ordered sink ('{sink.text}' at line "
                f"{sink.line}); iterate a sorted view or an ordered "
                "container instead"))


def wallclock_exempt(path, whitelist, deny):
    """True when @p path may read wall clocks: it matches a whitelist
    prefix and no deny prefix. Deny wins over the whitelist — the
    observability layer (src/obs/) must stay simulation-clock-only by
    construction, even if a future whitelist entry happens to cover
    it. Per-line FMLINT(allow:...) suppressions are unaffected: they
    stay visible in the source, which is the point."""
    norm = path.replace(os.sep, "/")
    if any(norm.startswith(d) or f"/{d}" in norm for d in deny):
        return False
    return any(norm.startswith(w) or f"/{w}" in norm
               for w in whitelist)


def check_wall_clock(unit, symbols, findings, whitelist, deny):
    del symbols
    if wallclock_exempt(unit.path, whitelist, deny):
        return
    toks = unit.tokens
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if t.text in WALLCLOCK_IDS:
            findings.append(Finding(
                unit.path, t.line, "no-wall-clock",
                f"'{t.text}': {WALLCLOCK_IDS[t.text]}"))
            continue
        if t.text in WALLCLOCK_CALLS:
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            prev = toks[i - 1] if i > 0 else None
            if not nxt or nxt.text != "(":
                continue
            if prev and prev.text in (".", "->"):
                continue   # member call on some object, not libc
            if prev and prev.text == "::":
                qual = toks[i - 2] if i >= 2 else None
                if not qual or qual.text != "std":
                    continue   # SomeClass::time(...), not std::time
            findings.append(Finding(
                unit.path, t.line, "no-wall-clock",
                f"'{t.text}()': wall-clock/libc randomness call"))


def check_pointer_order(unit, symbols, findings):
    del symbols
    toks = unit.tokens

    def first_template_arg_is_pointer(i):
        """toks[i] == '<' after map/set/hash: first arg ends in '*'?"""
        depth = 0
        last = None
        for j in range(i, min(len(toks), i + 200)):
            tx = toks[j].text
            if tx == "<":
                depth += 1
            elif tx in (">", ">>"):
                depth -= 2 if tx == ">>" else 1
                if depth <= 0:
                    return last == "*"
            elif tx == "," and depth == 1:
                return last == "*"
            elif j > i:
                last = tx
        return False

    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        nxt = toks[i + 1] if i + 1 < len(toks) else None
        prev = toks[i - 1] if i > 0 else None
        if (t.text in ("map", "set", "multimap", "multiset", "hash")
                and nxt and nxt.text == "<"
                and prev and prev.text == "::"
                and i >= 2 and toks[i - 2].text == "std"
                and first_template_arg_is_pointer(i + 1)):
            what = ("std::hash over a raw pointer"
                    if t.text == "hash"
                    else f"ordered std::{t.text} keyed by a raw pointer")
            findings.append(Finding(
                unit.path, t.line, "no-pointer-order",
                f"{what}: pointer values depend on allocation order"))
        # &a < &b — relational comparison of address-of expressions.
        if (t.kind == "id" and prev and prev.text == "&" and i >= 2
                and toks[i - 2].text in ("(", ",", "return", "=",
                                         "&&", "||", ";")
                and nxt and nxt.text in ("<", ">", "<=", ">=")
                and i + 2 < len(toks) and toks[i + 2].text == "&"
                and i + 3 < len(toks) and toks[i + 3].kind == "id"):
            findings.append(Finding(
                unit.path, t.line, "no-pointer-order",
                f"relational comparison of addresses '&{t.text} "
                f"{nxt.text} &{toks[i + 3].text}': allocation-order "
                "nondeterminism"))
    # x.get() < y.get() — comparing smart-pointer identities.
    for i in range(3, len(toks) - 6):
        if (toks[i].text == "get" and toks[i - 1].text in (".", "->")
                and toks[i + 1].text == "(" and toks[i + 2].text == ")"
                and toks[i + 3].kind == "punct"
                and toks[i + 3].text in ("<", ">", "<=", ">=")):
            tail = [toks[j].text for j in range(i + 4,
                                               min(len(toks), i + 10))]
            if "get" in tail:
                findings.append(Finding(
                    unit.path, toks[i].line, "no-pointer-order",
                    "comparing smart-pointer .get() identities "
                    "orders by allocation address"))


def check_uninitialized_member(unit, symbols, findings):
    if not unit.path.endswith((".hh", ".h", ".hpp")):
        return
    toks, pairs = unit.tokens, unit.pairs

    def scalar_like(type_tokens):
        """Does a member type read as scalar/enum/pointer?

        Templated types (vector<...>, optional<...>) have constructors
        and are never scalar, even when their arguments are.
        """
        texts = [t.text for t in type_tokens]
        if "<" in texts:
            return False
        if "*" in texts:
            return True
        for s in texts:
            if (s in SCALAR_TYPES or s in symbols.scalar_aliases
                    or s in symbols.enum_names):
                return True
        return False

    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in ("struct", "class"):
            continue
        prev = toks[i - 1] if i > 0 else None
        if prev and prev.text in ("enum", "friend"):
            continue
        j = i + 1
        if j >= len(toks) or toks[j].kind != "id":
            continue
        name = toks[j].text
        j += 1
        while j < len(toks) and toks[j].text == "final":
            j += 1
        if j < len(toks) and toks[j].text == ":":
            # Base clause: scan forward to the body brace.
            while j < len(toks) and toks[j].text != "{":
                if toks[j].text == ";":
                    break
                j += 1
        if j >= len(toks) or toks[j].text != "{":
            continue   # forward declaration or pointer-to-struct decl
        body_open, body_close = j, pairs.get(j)
        if body_close is None:
            continue
        is_public = (t.text == "struct")
        # A type that declares any constructor initializes its members
        # there; the zero-init rule targets aggregate config structs.
        has_ctor = False
        k = body_open + 1
        depth = 0
        while k < body_close:
            tx = toks[k]
            if tx.text == "{":
                k = pairs.get(k, k) + 1
                continue
            if (depth == 0 and tx.kind == "id" and tx.text == name
                    and k + 1 < len(toks) and toks[k + 1].text == "("
                    and toks[k - 1].text != "~"):
                has_ctor = True
                break
            k += 1
        if has_ctor:
            continue
        # Walk depth-1 statements.
        k = body_open + 1
        stmt_start = k
        access_public = is_public
        while k < body_close:
            tx = toks[k]
            if tx.text in ("public", "private", "protected") and \
                    k + 1 < len(toks) and toks[k + 1].text == ":":
                access_public = (tx.text == "public")
                k += 2
                stmt_start = k
                continue
            if tx.text == "{":
                # Method body / nested type body / brace initializer.
                k = pairs.get(k, k) + 1
                # Brace-init members end with ';'; method bodies don't.
                if k < body_close and toks[k].text == ";":
                    k += 1
                stmt_start = k
                continue
            if tx.text == "(":
                # Function declaration/definition: skip to its end.
                k = pairs.get(k, k) + 1
                while k < body_close and toks[k].text not in (";", "{"):
                    if toks[k].text == "(":
                        k = pairs.get(k, k)
                    k += 1
                if k < body_close and toks[k].text == "{":
                    k = pairs.get(k, k) + 1
                else:
                    k += 1
                stmt_start = k
                continue
            if tx.text == ";":
                stmt = toks[stmt_start:k]
                _check_member_stmt(unit, name, stmt, access_public,
                                   scalar_like, findings)
                k += 1
                stmt_start = k
                continue
            k += 1


def _check_member_stmt(unit, struct_name, stmt, access_public,
                       scalar_like, findings):
    if not access_public or not stmt:
        return
    texts = [t.text for t in stmt]
    if any(s in ("using", "typedef", "friend", "static", "operator",
                 "struct", "class", "enum", "union", "template")
           for s in texts):
        return
    if "=" in texts:
        return   # has initializer
    # Find the declared name: last identifier before any array suffix.
    name_tok = None
    idx = len(stmt) - 1
    while idx >= 0:
        if stmt[idx].text == "]":
            while idx >= 0 and stmt[idx].text != "[":
                idx -= 1
            idx -= 1
            continue
        if stmt[idx].kind == "id" and stmt[idx].text not in KEYWORDS:
            name_tok = stmt[idx]
            break
        if stmt[idx].text == ":":   # bitfield width: keep scanning left
            idx -= 1
            continue
        break
    if name_tok is None:
        return
    type_tokens = stmt[:idx]
    if not type_tokens:
        return
    if any(tt.text == "&" for tt in type_tokens):
        return   # references must be bound elsewhere
    if scalar_like(type_tokens):
        findings.append(Finding(
            unit.path, name_tok.line, "uninitialized-member",
            f"'{struct_name}::{name_tok.text}' is a scalar field "
            "without an initializer; config structs rely on "
            "zero-init discipline (add '= 0' / '= nullptr' / '{}')"))


def check_float_accumulation(unit, symbols, findings):
    toks, pairs = unit.tokens, unit.pairs
    texts = {t.text for t in toks}
    if "ThreadPool" not in texts and "thread_pool" not in " ".join(
            t.text for t in toks if t.kind == "pp"):
        if not any(t.kind == "pp" and "thread_pool" in t.text
                   for t in toks):
            return

    # Find lambdas handed to pool.submit(...): spans of their bodies.
    task_spans = []
    called_fns = set()
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "submit":
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        op = i + 1
        cp = pairs.get(op)
        if cp is None:
            continue
        j = op + 1
        while j < cp:
            if toks[j].text == "[":
                cb = pairs.get(j)
                if cb is None:
                    break
                k = cb + 1
                while k < cp and toks[k].text not in ("{",):
                    if toks[k].text == "(":
                        k = pairs.get(k, k)
                    k += 1
                if k < cp and toks[k].text == "{":
                    body_end = pairs.get(k, k)
                    task_spans.append((k, body_end))
                    for m in range(k, body_end):
                        if (toks[m].kind == "id"
                                and m + 1 < len(toks)
                                and toks[m + 1].text == "("
                                and toks[m].text not in KEYWORDS):
                            called_fns.add(toks[m].text)
                    j = body_end
            j += 1

    # One level of reachability: bodies of same-file functions the task
    # lambdas call.
    for i, t in enumerate(toks):
        if (t.kind == "id" and t.text in called_fns
                and i + 1 < len(toks) and toks[i + 1].text == "("):
            cp = pairs.get(i + 1)
            if cp is None:
                continue
            k = cp + 1
            while k < len(toks) and toks[k].text in ("const", "noexcept",
                                                     "override", "->"):
                k += 1
                if toks[k - 1].text == "->":
                    while (k < len(toks)
                           and toks[k].text not in ("{", ";")):
                        k += 1
            if k < len(toks) and toks[k].text == "{":
                task_spans.append((k, pairs.get(k, k)))

    float_names = set(symbols.float_fields)
    # Local float decls inside the unit add to the set.
    for i, t in enumerate(toks):
        if t.text in ("float", "double") and i + 1 < len(toks) \
                and toks[i + 1].kind == "id":
            float_names.add(toks[i + 1].text)

    seen_lines = set()
    for (bs, be) in task_spans:
        for j in range(bs, be):
            if toks[j].kind == "punct" and toks[j].text in ("+=", "-="):
                lhs = toks[j - 1] if j > 0 else None
                if (lhs and lhs.kind == "id"
                        and lhs.text in float_names
                        and toks[j].line not in seen_lines):
                    seen_lines.add(toks[j].line)
                    findings.append(Finding(
                        unit.path, toks[j].line,
                        "float-accumulation-order",
                        f"floating-point accumulation '{lhs.text} "
                        f"{toks[j].text} ...' is reachable from a "
                        "thread-pool task; summation order must not "
                        "depend on completion order"))


def check_raw_cast(unit, symbols, findings):
    """reinterpret_cast / const_cast anywhere in the tree.

    Type punning through reinterpret_cast is how byte-order and
    alignment assumptions sneak into serialized plan bytes; const_cast
    hides mutation the determinism tests cannot see. The approved
    replacements are std::memcpy through a char buffer (see
    overlap_plan.cc putPod/getPod) and fixing constness at the source.
    """
    del symbols
    for t in unit.tokens:
        if t.kind == "id" and t.text in ("reinterpret_cast",
                                         "const_cast"):
            findings.append(Finding(
                unit.path, t.line, "no-raw-cast",
                f"'{t.text}': use std::memcpy through a char buffer "
                "(type punning) or fix constness at the declaration"))


ATOMIC_TYPEDEFS = {
    "atomic_bool", "atomic_char", "atomic_schar", "atomic_uchar",
    "atomic_short", "atomic_ushort", "atomic_int", "atomic_uint",
    "atomic_long", "atomic_ulong", "atomic_llong", "atomic_ullong",
    "atomic_size_t", "atomic_ptrdiff_t",
    "atomic_intptr_t", "atomic_uintptr_t",
    "atomic_int8_t", "atomic_uint8_t", "atomic_int16_t",
    "atomic_uint16_t", "atomic_int32_t", "atomic_uint32_t",
    "atomic_int64_t", "atomic_uint64_t", "atomic_flag",
}


def check_cross_thread_state(unit, symbols, findings):
    """Ad-hoc lock-free shared state: std::atomic / volatile.

    Mutex-guarded state consumed in a deterministic (submission) order
    is the repo's approved cross-thread pattern — common/thread_pool
    plus ordered future consumption.  A bare atomic bypasses that
    discipline: whatever it carries is observed in scheduling order,
    which is exactly how thread-count dependence leaks into plans.  An
    atomic is only sound here when every write is a monotone,
    order-independent broadcast (racing writers all publish the same
    fact), and that argument must be written down — the suppression
    justification is where it lives.  The portfolio cancellation board
    (src/solver/portfolio.hh) is the canonical sanctioned instance.
    """
    del symbols
    toks = unit.tokens
    seen_lines = set()
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        hit = None
        if t.text == "atomic":
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            if nxt and nxt.text == "<":
                hit = "std::atomic<...>"
        elif t.text in ATOMIC_TYPEDEFS:
            hit = f"std::{t.text}"
        elif t.text == "volatile":
            hit = "volatile"
        if hit and t.line not in seen_lines:
            seen_lines.add(t.line)
            findings.append(Finding(
                unit.path, t.line, "cross-thread-state",
                f"'{hit}' is ad-hoc lock-free cross-thread state; "
                "scheduling order can leak into results — use "
                "mutex-guarded state merged in deterministic order, "
                "or suppress with a written safety argument (every "
                "write must be a monotone, order-independent "
                "broadcast)"))


BUILTIN_CHECKS = {
    "no-unordered-iteration": check_unordered_iteration,
    "no-pointer-order": check_pointer_order,
    "uninitialized-member": check_uninitialized_member,
    "float-accumulation-order": check_float_accumulation,
    "no-raw-cast": check_raw_cast,
    "cross-thread-state": check_cross_thread_state,
}


# -------------------------------------------------------------- clang engine

class ClangEngine:
    """libclang-backed engine for the cursor-mappable checks.

    Availability-gated: this container has no libclang, so the builtin
    engine is authoritative; when clang.cindex imports, this engine
    runs no-wall-clock and no-unordered-iteration on a real AST and
    delegates the structural checks to the builtin engine.
    """

    def __init__(self, include_dirs):
        import clang.cindex  # noqa: gated import; may raise
        self.cindex = clang.cindex
        self.args = ["-std=c++20", "-xc++"] + [
            f"-I{d}" for d in include_dirs]

    def run(self, path, findings, whitelist, deny):
        ci = self.cindex
        whitelisted = wallclock_exempt(path, whitelist, deny)
        tu = ci.Index.create().parse(path, args=self.args)
        for cur in tu.cursor.walk_preorder():
            if cur.location.file is None or \
                    cur.location.file.name != path:
                continue
            if (not whitelisted
                    and cur.kind == ci.CursorKind.DECL_REF_EXPR
                    and cur.spelling in WALLCLOCK_IDS):
                findings.append(Finding(
                    path, cur.location.line, "no-wall-clock",
                    f"'{cur.spelling}': "
                    f"{WALLCLOCK_IDS[cur.spelling]}"))
            if cur.kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(cur.get_children())
                if len(children) >= 2:
                    rng = children[-2]
                    if "unordered_" in rng.type.spelling:
                        findings.append(Finding(
                            path, cur.location.line,
                            "no-unordered-iteration",
                            "range-for over "
                            f"'{rng.type.spelling}'"))


# --------------------------------------------------------------------- main

def gather_files(paths, excludes):
    exts = (".cc", ".cpp", ".cxx", ".hh", ".h", ".hpp")
    out = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(exts):
                out.append(p)
            continue
        for root, dirs, names in os.walk(p):
            dirs[:] = sorted(d for d in dirs
                             if d not in ("build", ".git"))
            for nm in sorted(names):
                if nm.endswith(exts):
                    out.append(os.path.join(root, nm))
    norm = [f.replace(os.sep, "/") for f in out]
    return [f for f in norm
            if not any(x in f for x in excludes)]


def run_builtin(files, checks, whitelist, deny, verbose):
    units = []
    findings: list[Finding] = []
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                tokens, comments = lex(f.read())
        except LexError as e:
            findings.append(Finding(path, 0, "bad-suppression",
                                    f"lex error: {e}"))
            continue
        pairs = match_pairs(tokens, path)
        code_lines = {t.line for t in tokens}
        units.append(FileUnit(path, tokens, comments, pairs,
                              code_lines))

    symbols = SymbolTable()
    # Two rounds so aliases discovered late still classify variables
    # declared in files scanned earlier.
    for _ in range(2):
        for unit in units:
            symbols.collect(unit)

    for unit in units:
        file_findings: list[Finding] = []
        for name in checks:
            if name == "no-wall-clock":
                check_wall_clock(unit, symbols, file_findings,
                                 whitelist, deny)
            else:
                BUILTIN_CHECKS[name](unit, symbols, file_findings)
        sups = parse_suppressions(unit.comments, unit.code_lines,
                                  file_findings, unit.path)
        for fd in file_findings:
            if fd.check == "bad-suppression":
                continue
            for sup in sups:
                if fd.line in sup.covered and (
                        fd.check in sup.checks or "*" in sup.checks):
                    fd.suppressed = True
                    fd.reason = sup.reason
                    sup.used = True
                    break
        if verbose:
            for sup in sups:
                if not sup.used:
                    print(f"{unit.path}:{sup.line}: note: FMLINT "
                          "suppression matches no finding "
                          f"({','.join(sup.checks)})")
        findings.extend(file_findings)
    return findings


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="flashmem_lint",
        description="FlashMem determinism lint (see module docstring)")
    ap.add_argument("paths", nargs="*", default=[])
    ap.add_argument("--checks", default=",".join(CHECK_NAMES),
                    help="comma-separated subset of checks to run")
    ap.add_argument("--exclude", action="append", default=[],
                    help="skip files whose path contains this "
                         "substring (repeatable)")
    ap.add_argument("--engine", choices=["auto", "builtin", "clang"],
                    default="auto")
    ap.add_argument("--wallclock-whitelist", action="append",
                    default=None,
                    help="path prefixes allowed to read wall clocks "
                         "(default: bench/)")
    ap.add_argument("--wallclock-deny", action="append",
                    default=None,
                    help="path prefixes NEVER allowed to read wall "
                         "clocks, overriding the whitelist "
                         "(default: src/obs/)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for c in CHECK_NAMES:
            print(c)
        return 0
    if not args.paths:
        ap.error("no paths given")

    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in checks if c not in CHECK_NAMES]
    if unknown:
        ap.error(f"unknown checks: {', '.join(unknown)} "
                 f"(try --list-checks)")
    whitelist = (args.wallclock_whitelist
                 if args.wallclock_whitelist is not None
                 else ["bench/"])
    deny = (args.wallclock_deny
            if args.wallclock_deny is not None
            else ["src/obs/"])

    files = gather_files(args.paths, args.exclude)
    if not files:
        print("flashmem_lint: no files matched", file=sys.stderr)
        return 2

    engine = args.engine
    if engine == "clang":
        try:
            ClangEngine([])
        except Exception as e:   # pragma: no cover - env-dependent
            print("flashmem_lint: --engine=clang requested but "
                  f"clang.cindex is unavailable ({e}); this "
                  "container gates the libclang engine on the "
                  "python3-clang package", file=sys.stderr)
            return 2
        print("flashmem_lint: note: clang engine covers the cursor-"
              "mappable checks; structural checks run via builtin",
              file=sys.stderr)
    findings = run_builtin(files, checks, whitelist, deny,
                           args.verbose)
    if engine == "clang":   # pragma: no cover - env-dependent
        ce = ClangEngine(["src", "."])
        extra: list[Finding] = []
        for path in files:
            if path.endswith((".cc", ".cpp", ".cxx")):
                ce.run(path, extra, whitelist, deny)
        known = {(f.path, f.line, f.check) for f in findings}
        findings.extend(f for f in extra
                        if (f.path, f.line, f.check) not in known)

    unsuppressed = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]
    for f in sorted(unsuppressed, key=lambda f: (f.path, f.line)):
        print(f"{f.path}:{f.line}: [{f.check}] {f.message}")
    if args.verbose:
        for f in sorted(suppressed, key=lambda f: (f.path, f.line)):
            print(f"{f.path}:{f.line}: suppressed [{f.check}] "
                  f"— {f.reason}")
    print(f"flashmem_lint: {len(unsuppressed)} finding(s), "
          f"{len(suppressed)} suppressed, {len(files)} file(s)",
          file=sys.stderr)
    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main())
