/**
 * @file
 * Figure 2 reproduction: latency increase of representative operators
 * when forced to stream additional weight data inline, as a function of
 * the additional-data volume ratio (x in [0, 2]). Expected shape:
 * Softmax and LayerNorm rise steepest, element-wise ops are moderate,
 * MatMul/Attention tolerate the most. The 20%/30% thresholds mark where
 * overhead reaches that fraction of the original kernel.
 */

#include "bench/harness.hh"

#include "gpusim/kernel.hh"

int
main()
{
    using namespace flashmem;
    using namespace flashmem::bench;
    using graph::OpKind;
    using gpusim::KernelSpec;

    printHeading(std::cout,
                 "Figure 2: per-operator inline-load latency response");

    gpusim::KernelModel km(gpusim::DeviceProfile::onePlus12());

    // Representative kernels, sized like mid-network transformer ops.
    auto make = [](OpKind kind, std::uint64_t macs, Bytes in, Bytes out,
                   Bytes w) {
        KernelSpec s;
        s.kind = kind;
        s.macs = macs;
        s.inputBytes = in;
        s.outputBytes = out;
        s.weightBytes = w;
        s.pipelined = true;
        return s;
    };
    struct Row
    {
        const char *name;
        KernelSpec spec;
    };
    const Bytes act = mib(8);
    Row rows[] = {
        {"Matmul", make(OpKind::MatMul, 1ull << 31, act, act, mib(16))},
        {"Attention",
         make(OpKind::AttentionMatMul, 1ull << 29, act, act, 0)},
        {"ElementWise-Ops", make(OpKind::Add, 0, act, act, 0)},
        {"LayerNorm", make(OpKind::LayerNorm, 1 << 22, act, act, 0)},
        {"SoftMax", make(OpKind::Softmax, 1 << 22, act, act, 0)},
    };

    std::vector<std::string> headers = {"Operator", "base ms"};
    const double ratios[] = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0};
    // Built up with += rather than operator+ chaining: GCC 12's
    // -Wrestrict misfires on the char*+std::string&& overload here.
    for (double r : ratios) {
        std::string h = "+";
        h += formatDouble(r, 2);
        h += "x";
        headers.push_back(std::move(h));
    }
    headers.push_back("r@20%");
    headers.push_back("r@30%");
    Table t(headers);

    std::map<std::string, double> increase_at_1;
    for (const auto &row : rows) {
        double base = toMilliseconds(km.baseLatency(row.spec));
        std::vector<std::string> cells = {row.name,
                                          formatDouble(base, 3)};
        for (double r : ratios) {
            auto extra = static_cast<Bytes>(
                r * static_cast<double>(row.spec.inputBytes));
            double inc = toMilliseconds(
                km.inlineLoadPenalty(row.spec, extra));
            cells.push_back(formatDouble(inc, 3));
            if (r == 1.0)
                increase_at_1[row.name] = inc / base;
        }
        // Threshold crossings: smallest ratio whose overhead reaches
        // 20% / 30% of the base kernel.
        for (double thr : {0.2, 0.3}) {
            Bytes cap = km.loadCapacityBytes(row.spec, thr);
            cells.push_back(formatDouble(
                static_cast<double>(cap) /
                    static_cast<double>(row.spec.inputBytes),
                2));
        }
        t.addRow(cells);
    }
    t.print(std::cout);

    bool shape_ok =
        increase_at_1["Matmul"] < increase_at_1["ElementWise-Ops"] &&
        increase_at_1["ElementWise-Ops"] < increase_at_1["LayerNorm"] &&
        increase_at_1["LayerNorm"] <= increase_at_1["SoftMax"] * 1.2;
    std::cout << "\nRelative increase at ratio 1.0: matmul "
              << formatDouble(increase_at_1["Matmul"], 3)
              << ", elementwise "
              << formatDouble(increase_at_1["ElementWise-Ops"], 3)
              << ", layernorm "
              << formatDouble(increase_at_1["LayerNorm"], 3)
              << ", softmax "
              << formatDouble(increase_at_1["SoftMax"], 3) << "\n";
    std::cout << "Shape check (paper curve ordering): "
              << (shape_ok ? "PASS" : "FAIL") << "\n";
    return shape_ok ? 0 : 1;
}
