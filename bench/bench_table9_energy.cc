/**
 * @file
 * Table 9 reproduction: average power and total energy for DeepViT and
 * SD-UNet across MNN, LiteRT, ExecuTorch, SmartMem, and FlashMem.
 * Expected shape: FlashMem's instantaneous power is comparable (or
 * higher — better GPU utilization plus concurrent disk traffic) while
 * its energy is far lower because runs finish much sooner.
 */

#include "bench/harness.hh"

int
main()
{
    using namespace flashmem;
    using namespace flashmem::bench;

    printHeading(std::cout,
                 "Table 9: power and energy (measured | paper)");

    auto dev = gpusim::DeviceProfile::onePlus12();
    core::FlashMem fm(dev);
    const ModelId targets[] = {ModelId::DeepViT, ModelId::SDUNet};

    struct PaperCell
    {
        double powerW = -1, energyJ = -1;
    };
    const std::map<FrameworkId, std::map<ModelId, PaperCell>> paper = {
        {FrameworkId::MNN,
         {{ModelId::DeepViT, {6.3, 33.1}},
          {ModelId::SDUNet, {4.8, 95.2}}}},
        {FrameworkId::LiteRT, {{ModelId::DeepViT, {6.4, 51.3}}}},
        {FrameworkId::ExecuTorch, {{ModelId::DeepViT, {3.6, 130.5}}}},
        {FrameworkId::SmartMem,
         {{ModelId::DeepViT, {5.2, 41.0}},
          {ModelId::SDUNet, {4.5, 134.5}}}},
    };
    // Paper "Ours": DeepViT 5.7 W / 4.5 J, SD-UNet 5.6 W / 17.9 J.
    const std::map<ModelId, PaperCell> paper_ours = {
        {ModelId::DeepViT, {5.7, 4.5}},
        {ModelId::SDUNet, {5.6, 17.9}},
    };

    Table t({"Framework", "DeepViT W", "DeepViT J", "SD-UNet W",
             "SD-UNet J"});
    std::map<ModelId, double> flash_energy;
    bool ok = true;

    auto fmt = [](double v, double paper_v, int dec) {
        std::string s = formatDouble(v, dec);
        if (paper_v >= 0)
            s += " | " + formatDouble(paper_v, dec);
        return s;
    };

    for (auto fw :
         {FrameworkId::MNN, FrameworkId::LiteRT,
          FrameworkId::ExecuTorch, FrameworkId::SmartMem}) {
        std::vector<std::string> cells = {
            baselines::frameworkName(fw)};
        for (auto id : targets) {
            const auto &g = cachedModel(id);
            baselines::PreloadFramework framework(fw, dev);
            if (framework.supports(g) !=
                baselines::SupportStatus::Supported) {
                cells.push_back("-");
                cells.push_back("-");
                continue;
            }
            gpusim::GpuSimulator sim(dev);
            auto r = framework.run(sim, g);
            double energy = sim.energyJoules(r.end);
            double power = sim.averagePowerW(r.end);
            PaperCell pc;
            auto fit = paper.find(fw);
            if (fit != paper.end() && fit->second.count(id))
                pc = fit->second.at(id);
            cells.push_back(fmt(power, pc.powerW, 1));
            cells.push_back(fmt(energy, pc.energyJ, 1));
        }
        t.addRow(cells);
    }

    std::vector<std::string> ours = {"Ours"};
    std::map<ModelId, double> flash_power;
    for (auto id : targets) {
        gpusim::GpuSimulator sim(dev);
        auto r = fm.execute(sim, cachedCompiled(fm, id));
        flash_energy[id] = sim.energyJoules(r.end);
        flash_power[id] = sim.averagePowerW(r.end);
        ours.push_back(
            fmt(flash_power[id], paper_ours.at(id).powerW, 1));
        ours.push_back(
            fmt(flash_energy[id], paper_ours.at(id).energyJ, 1));
    }
    t.addRule();
    t.addRow(ours);
    t.print(std::cout);

    // Energy-savings check against every supported baseline.
    metrics::RatioSummary savings;
    for (auto fw :
         {FrameworkId::MNN, FrameworkId::LiteRT,
          FrameworkId::ExecuTorch, FrameworkId::SmartMem}) {
        for (auto id : targets) {
            auto r = runBaseline(fw, cachedModel(id), dev);
            if (!r || r->oom)
                continue;
            gpusim::GpuSimulator sim(dev); // fresh run for energy
            baselines::PreloadFramework framework(fw, dev);
            auto rr = framework.run(sim, cachedModel(id));
            double baseline_energy = sim.energyJoules(rr.end);
            double ratio = baseline_energy / flash_energy[id];
            savings.add(ratio);
            ok &= ratio > 2.0; // >=50% savings everywhere
        }
    }
    std::cout << "\nEnergy reduction vs baselines: geo-mean "
              << formatRatio(savings.geomean()) << " (min "
              << formatRatio(savings.min())
              << "); paper reports 83-96% savings (5.9x-25x)\n";
    std::cout << "Shape check: " << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
}
