/**
 * @file
 * High-traffic serving bench: drives the serving harness
 * (src/serving/) with a million-request Poisson trace per scheduling
 * policy over a mixed model zoo, reporting streaming tail latencies
 * (P² p50/p95/p99), goodput vs. shed rate, and — via the capacity
 * sweep — the maximum sustainable QPS per policy (the knee where the
 * SLO blows). Per-model service times are calibrated from real
 * FlashMem compiles/replans/executions, so the request-level simulator
 * inherits the planner's behaviour; headline runs execute concurrently
 * on the shared thread pool.
 *
 * With a JSON-path argument the per-policy numbers are written for
 * BENCH_table4.json's `serving` section (tools/run_benchmarks.sh),
 * regression-gated by tools/check_bench_regression.py.
 *
 * `--determinism`: run the headline 1M-request trace and a capacity
 * sweep under (planner threads, pool threads) = (1,1) and (4,4) on
 * isolated PlanMemos and fail unless every policy's p50/p95/p99, shed
 * and degraded counts, goodput, makespan, and max sustainable QPS are
 * bit-identical — the ctest-registered serving determinism check.
 */

#include "bench/harness.hh"

#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/thread_pool.hh"
#include "serving/sweep.hh"

namespace {

using namespace flashmem;
using namespace flashmem::bench;

constexpr std::size_t kHeadlineRequests = 1000000;
constexpr std::uint64_t kTraceSeed = 2026;
constexpr double kSloSlack = 4.0;      // bound = slack x full service
constexpr double kHeadlineUtil = 0.7;  // offered load vs capacity

/** The serving policy set under comparison. */
std::vector<std::unique_ptr<multidnn::SchedulingPolicy>>
servingPolicies()
{
    std::vector<std::unique_ptr<multidnn::SchedulingPolicy>> out;
    out.push_back(std::make_unique<multidnn::FifoPolicy>());
    out.push_back(std::make_unique<multidnn::SjfPolicy>());
    out.push_back(std::make_unique<multidnn::DeadlinePolicy>(
        multidnn::DeadlinePolicy::Overload::Shed));
    out.push_back(std::make_unique<multidnn::DeadlinePolicy>(
        multidnn::DeadlinePolicy::Overload::Degrade));
    return out;
}

/** Everything one serving-bench arm needs, calibrated once. */
struct Arm
{
    serving::ServiceTable services;
    serving::ModelMix mix;
    double headlineQps = 0.0;
    double capacityQps = 0.0;
    SimTime p99Bound = 0;
};

/** Calibrate the model mix on a fresh FlashMem at @p planner_threads
 * and derive the offered-load operating points from it. */
Arm
calibrateArm(core::PlanMemo &memo, int planner_threads)
{
    auto dev = gpusim::DeviceProfile::onePlus12();
    core::FlashMemOptions opt;
    opt.opg.parallel.threads = planner_threads;
    opt.opg.memo = &memo;
    core::FlashMem fm(dev, opt);

    Arm arm;
    arm.mix.entries = {
        {ModelId::ResNet50, 0.45, 0, 0},
        {ModelId::DepthAnythingS, 0.25, 0, 0},
        {ModelId::ViT, 0.20, 0, 0},
        {ModelId::GPTNeoS, 0.10, 0, 0},
    };
    arm.services = serving::calibrateServices(
        fm, arm.mix.distinctModels(), /*degrade_budget_fraction=*/0.5);

    // Per-model latency SLO: a fixed slack over the calibrated
    // full-budget service time; the sweep's p99 bound is the loosest
    // per-model bound.
    std::vector<std::pair<models::ModelId, double>> weights;
    SimTime max_service = 0;
    for (auto &e : arm.mix.entries) {
        const auto &profile = arm.services.at(e.model);
        e.latencyBound = static_cast<SimTime>(
            kSloSlack * static_cast<double>(profile.service));
        max_service = std::max(max_service, profile.service);
        weights.emplace_back(e.model, e.weight);
    }
    SimTime mean_service = serving::meanService(arm.services, weights);
    arm.capacityQps = 1.0 / toSeconds(mean_service);
    arm.headlineQps = kHeadlineUtil * arm.capacityQps;
    arm.p99Bound =
        static_cast<SimTime>(kSloSlack *
                             static_cast<double>(max_service));
    return arm;
}

serving::SweepParams
sweepParams(const Arm &arm, std::size_t requests_per_probe)
{
    serving::SweepParams sp;
    sp.loQps = std::max(1.0, 0.05 * arm.capacityQps);
    sp.hiQps = 8.0 * arm.capacityQps;
    sp.requestsPerProbe = requests_per_probe;
    sp.seed = kTraceSeed;
    sp.slo.p99Bound = arm.p99Bound;
    sp.slo.minGoodput = 0.95;
    return sp;
}

/** Headline + sweep results for every policy of one arm. */
struct PolicyFigures
{
    std::string policy;
    serving::ServingOutcome headline;
    serving::SweepResult sweep;
};

std::vector<PolicyFigures>
runArm(const Arm &arm, ThreadPool &pool,
       std::size_t headline_requests, std::size_t sweep_requests)
{
    auto policies = servingPolicies();
    auto trace = serving::poissonTrace(
        arm.mix, arm.headlineQps, headline_requests, kTraceSeed);

    // The 1M-request headline runs execute concurrently on the pool;
    // each run is a pure function of (trace, policy, services), so the
    // pool size cannot change the figures.
    std::vector<std::future<serving::ServingOutcome>> futures;
    for (const auto &p : policies) {
        const auto *policy = p.get();
        futures.push_back(pool.submit([&, policy] {
            return serving::simulateServing(trace, *policy,
                                            arm.services);
        }));
    }

    std::vector<PolicyFigures> out;
    for (std::size_t i = 0; i < policies.size(); ++i) {
        PolicyFigures f;
        f.policy = policies[i]->name();
        f.headline = futures[i].get();
        out.push_back(std::move(f));
    }
    // Sweeps run per policy, each parallelizing its bracketing ladder
    // on the pool (no nested submission).
    auto sp = sweepParams(arm, sweep_requests);
    for (std::size_t i = 0; i < policies.size(); ++i)
        out[i].sweep = serving::findMaxSustainableQps(
            arm.mix, *policies[i], arm.services, sp, &pool);
    return out;
}

/** Bit-exact equality of the determinism-relevant figures. */
bool
figuresIdentical(const PolicyFigures &a, const PolicyFigures &b)
{
    const auto &sa = a.headline.stats;
    const auto &sb = b.headline.stats;
    return a.policy == b.policy && sa.p50() == sb.p50() &&
           sa.p95() == sb.p95() && sa.p99() == sb.p99() &&
           sa.shedCount() == sb.shedCount() &&
           sa.degradedCount() == sb.degradedCount() &&
           sa.goodput() == sb.goodput() &&
           a.headline.makespan == b.headline.makespan &&
           a.sweep.maxSustainableQps == b.sweep.maxSustainableQps;
}

int
runDeterminismCheck()
{
    auto run_arm = [&](int threads) {
        core::PlanMemo memo(1024);
        auto arm = calibrateArm(memo, threads);
        ThreadPool pool(threads);
        return runArm(arm, pool, kHeadlineRequests,
                      /*sweep_requests=*/100000);
    };
    auto t1 = run_arm(1);
    auto t4 = run_arm(4);

    bool identical = t1.size() == t4.size();
    for (std::size_t i = 0; identical && i < t1.size(); ++i)
        identical = figuresIdentical(t1[i], t4[i]);
    bool exercised = false;
    for (const auto &f : t1) {
        exercised = exercised || f.headline.stats.shedCount() > 0 ||
                    f.headline.stats.degradedCount() > 0;
    }
    std::cout << "serving determinism (planner+pool threads 1 vs 4): "
              << (identical ? "identical" : "DIVERGED") << "\n";
    for (const auto &f : t1) {
        std::cout << "  " << f.policy << ": p99 "
                  << formatMs(f.headline.stats.p99()) << ", shed "
                  << f.headline.stats.shedCount() << ", degraded "
                  << f.headline.stats.degradedCount() << ", max QPS "
                  << formatDouble(f.sweep.maxSustainableQps, 2)
                  << "\n";
    }
    std::cout << "SLO admission exercised: "
              << (exercised ? "yes" : "NO") << "\n";
    return identical && exercised ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace flashmem;
    using namespace flashmem::bench;

    if (argc > 1 && std::strcmp(argv[1], "--determinism") == 0)
        return runDeterminismCheck();

    printHeading(std::cout,
                 "Serving harness: 1M-request capacity study");

    core::PlanMemo memo(1024);
    auto arm = calibrateArm(memo, ThreadPool::defaultThreadCount());

    std::cout << "calibrated capacity "
              << formatDouble(arm.capacityQps, 1) << " QPS, headline "
              << formatDouble(arm.headlineQps, 1) << " QPS ("
              << formatDouble(100.0 * kHeadlineUtil, 0)
              << "% utilization), per-model SLO "
              << formatDouble(kSloSlack, 1) << "x service\n";
    Table ct({"Model", "Service", "Degraded svc", "Plan budget",
              "Degraded budget", "SLO bound"});
    for (const auto &e : arm.mix.entries) {
        const auto &p = arm.services.at(e.model);
        ct.addRow({models::modelSpec(e.model).abbr,
                   formatMs(p.service), formatMs(p.degradedService),
                   formatBytes(p.planBudget),
                   formatBytes(p.degradedPlanBudget),
                   formatMs(e.latencyBound)});
    }
    ct.print(std::cout);

    ThreadPool pool(ThreadPool::defaultThreadCount());
    auto figures = runArm(arm, pool, kHeadlineRequests,
                          /*sweep_requests=*/200000);

    printHeading(std::cout, "Per-policy serving figures");
    Table t({"Policy", "p50", "p95", "p99", "Mean queue", "Goodput",
             "Shed", "Degraded", "Max QPS"});
    std::vector<metrics::QuantileRow> qrows;
    bool ok = true;
    std::ostringstream json;
    json << "{\n  \"serving\": {\n    \"request_count\": "
         << kHeadlineRequests
         << ",\n    \"headline_qps\": "
         << formatDouble(arm.headlineQps, 3)
         << ",\n    \"slo_slack\": " << formatDouble(kSloSlack, 1)
         << ",\n    \"policies\": [\n";
    for (std::size_t i = 0; i < figures.size(); ++i) {
        const auto &f = figures[i];
        const auto &s = f.headline.stats;
        t.addRow({f.policy, formatMs(s.p50()), formatMs(s.p95()),
                  formatMs(s.p99()),
                  formatDouble(s.meanQueueDelayMs(), 2) + " ms",
                  formatDouble(100.0 * s.goodputRate(), 2) + "%",
                  std::to_string(s.shedCount()),
                  std::to_string(s.degradedCount()),
                  formatDouble(f.sweep.maxSustainableQps, 1)});
        qrows.push_back({f.policy, s.p50Ms(), s.p95Ms(), s.p99Ms()});
        json << "      {\"policy\": \"" << f.policy
             << "\", \"p50_ms\": " << s.p50Ms()
             << ", \"p95_ms\": " << s.p95Ms()
             << ", \"p99_ms\": " << s.p99Ms()
             << ", \"mean_queue_ms\": " << s.meanQueueDelayMs()
             << ", \"goodput\": " << s.goodputRate()
             << ", \"shed\": " << s.shedCount()
             << ", \"degraded\": " << s.degradedCount()
             << ", \"max_sustainable_qps\": "
             << f.sweep.maxSustainableQps << "}"
             << (i + 1 < figures.size() ? "," : "") << "\n";

        // Every submitted request is accounted for, the run stayed
        // stable at 70% utilization, and quantiles are ordered.
        ok &= !f.headline.unstable;
        ok &= s.submitted() == kHeadlineRequests;
        ok &= s.p50() <= s.p95() && s.p95() <= s.p99();
        ok &= f.sweep.maxSustainableQps > 0.0;
    }
    t.print(std::cout);
    json << "    ]\n  }\n}\n";

    std::cout << "\nRequest-latency quantiles (shared axis):\n";
    metrics::renderQuantileChart(std::cout, qrows, 60);

    // Policy-shape checks: deadline shedding never completes a request
    // past its bound (admission is exact against calibrated service
    // times), and the degrade variant degrades instead of shedding.
    const auto &deadline = figures[2];
    const auto &degrade = figures[3];
    ok &= deadline.policy == "deadline";
    ok &= deadline.headline.stats.sloViolations() == 0;
    ok &= degrade.policy == "deadline-degrade";
    ok &= degrade.headline.stats.shedCount() == 0;
    // Shedding doomed requests stops wasting service time on already-
    // late work: the deadline policy sustains at least FIFO's load.
    ok &= deadline.sweep.maxSustainableQps >=
          figures[0].sweep.maxSustainableQps;

    std::cout << "\nShape check (stable at 70% load, ordered "
                 "quantiles, deadline admission meets bounds): "
              << (ok ? "PASS" : "FAIL") << "\n";

    if (argc > 1) {
        std::ofstream out(argv[1]);
        out << json.str();
        if (out.good()) {
            std::cout << "wrote " << argv[1] << "\n";
        } else {
            std::cerr << "failed to write " << argv[1] << "\n";
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
