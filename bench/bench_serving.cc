/**
 * @file
 * High-traffic serving bench: drives the serving harness
 * (src/serving/) with a million-request Poisson trace per scheduling
 * policy over a mixed model zoo, reporting streaming tail latencies
 * (P² p50/p95/p99), goodput vs. shed rate, and — via the capacity
 * sweep — the maximum sustainable QPS per policy (the knee where the
 * SLO blows). Per-model service times are calibrated from real
 * FlashMem compiles/replans/executions, so the request-level simulator
 * inherits the planner's behaviour; headline runs execute concurrently
 * on the shared thread pool.
 *
 * With a JSON-path argument the per-policy numbers are written for
 * BENCH_table4.json's `serving` section (tools/run_benchmarks.sh),
 * regression-gated by tools/check_bench_regression.py.
 *
 * `--determinism`: run the headline 1M-request trace and a capacity
 * sweep under (planner threads, pool threads) = (1,1) and (4,4) on
 * isolated PlanMemos and fail unless every policy's p50/p95/p99, shed
 * and degraded counts, goodput, makespan, and max sustainable QPS are
 * bit-identical — the ctest-registered serving determinism check.
 *
 * The sharding study (`serving_sharding` JSON section) sweeps the
 * DeviceCluster over 1/2/4/8 devices with cross-request init/exec
 * overlap off and on: max sustainable QPS and p95 at a fixed 70%
 * per-device utilization, plus the single-device overlap demo — a
 * back-to-back LLM trace whose makespan shrinks when each request's
 * streamed preload overlaps the previous request's compute.
 * `--sharding-determinism` repeats the study at (1,1) vs (4,4)
 * planner/pool threads and fails on any bit difference.
 *
 * The admission study (`serving_admission` JSON section) compares
 * dispatch-point-only admission against the arrival-time backlog gate
 * (serving/admission.hh) at 2x overload on the 4-device overlap
 * cluster, then repeats under a cold-model influx (25% of arrivals
 * from models calibration never saw) with the gate on a
 * fully-calibrated oracle estimator vs the deployed warm-only view
 * whose cold estimates ride the GBT predicted tier.
 * `--admission-only PATH` runs just this study and writes a
 * standalone fragment for tools/run_benchmarks.sh `--only admission`.
 *
 * The observability study (`serving_obs` JSON section) times the
 * 200k-request crash_midrun fault scenario with tracing off, on, and
 * off again (median of three runs per pass): the off/off delta is the
 * machine's noise floor, the on/off ratio is the recorder's true
 * overhead, and the traced outcome must equal the untraced one
 * bit-for-bit. `--obs-only PATH` writes the standalone fragment for
 * tools/run_benchmarks.sh `--only obs`; `--trace PATH` exports a
 * Chrome/Perfetto trace (ui.perfetto.dev) of a representative faulty
 * overload run with the arrival gate engaged.
 */

#include "bench/harness.hh"

#include <algorithm>
#include <limits>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include "common/thread_pool.hh"
#include "obs/trace.hh"
#include "serving/admission.hh"
#include "serving/sweep.hh"

namespace {

using namespace flashmem;
using namespace flashmem::bench;

constexpr std::size_t kHeadlineRequests = 1000000;
constexpr std::uint64_t kTraceSeed = 2026;
constexpr double kSloSlack = 4.0;      // bound = slack x full service
constexpr double kHeadlineUtil = 0.7;  // offered load vs capacity

/** The serving policy set under comparison. */
std::vector<std::unique_ptr<multidnn::SchedulingPolicy>>
servingPolicies()
{
    std::vector<std::unique_ptr<multidnn::SchedulingPolicy>> out;
    out.push_back(std::make_unique<multidnn::FifoPolicy>());
    out.push_back(std::make_unique<multidnn::SjfPolicy>());
    out.push_back(std::make_unique<multidnn::DeadlinePolicy>(
        multidnn::DeadlinePolicy::Overload::Shed));
    out.push_back(std::make_unique<multidnn::DeadlinePolicy>(
        multidnn::DeadlinePolicy::Overload::Degrade));
    return out;
}

/** Everything one serving-bench arm needs, calibrated once. */
struct Arm
{
    serving::ServiceTable services;
    serving::ModelMix mix;
    double headlineQps = 0.0;
    double capacityQps = 0.0;
    SimTime p99Bound = 0;
};

/** Calibrate the model mix on a fresh FlashMem at @p planner_threads
 * and derive the offered-load operating points from it. */
Arm
calibrateArm(core::PlanMemo &memo, int planner_threads)
{
    auto dev = gpusim::DeviceProfile::onePlus12();
    core::FlashMemOptions opt;
    opt.opg.parallel.threads = planner_threads;
    opt.opg.memo = &memo;
    core::FlashMem fm(dev, opt);

    Arm arm;
    arm.mix.entries = {
        {ModelId::ResNet50, 0.45, 0, 0},
        {ModelId::DepthAnythingS, 0.25, 0, 0},
        {ModelId::ViT, 0.20, 0, 0},
        {ModelId::GPTNeoS, 0.10, 0, 0},
    };
    arm.services = serving::calibrateServices(
        fm, arm.mix.distinctModels(), /*degrade_budget_fraction=*/0.5);

    // Per-model latency SLO: a fixed slack over the calibrated
    // full-budget service time; the sweep's p99 bound is the loosest
    // per-model bound.
    std::vector<std::pair<models::ModelId, double>> weights;
    SimTime max_service = 0;
    for (auto &e : arm.mix.entries) {
        const auto &profile = arm.services.at(e.model);
        e.latencyBound = static_cast<SimTime>(
            kSloSlack * static_cast<double>(profile.service));
        max_service = std::max(max_service, profile.service);
        weights.emplace_back(e.model, e.weight);
    }
    SimTime mean_service = serving::meanService(arm.services, weights);
    arm.capacityQps = 1.0 / toSeconds(mean_service);
    arm.headlineQps = kHeadlineUtil * arm.capacityQps;
    arm.p99Bound =
        static_cast<SimTime>(kSloSlack *
                             static_cast<double>(max_service));
    return arm;
}

serving::SweepParams
sweepParams(const Arm &arm, std::size_t requests_per_probe)
{
    serving::SweepParams sp;
    sp.loQps = std::max(1.0, 0.05 * arm.capacityQps);
    sp.hiQps = 8.0 * arm.capacityQps;
    sp.requestsPerProbe = requests_per_probe;
    sp.seed = kTraceSeed;
    sp.slo.p99Bound = arm.p99Bound;
    sp.slo.minGoodput = 0.95;
    return sp;
}

/** Headline + sweep results for every policy of one arm. */
struct PolicyFigures
{
    std::string policy;
    serving::ServingOutcome headline;
    serving::SweepResult sweep;
};

std::vector<PolicyFigures>
runArm(const Arm &arm, ThreadPool &pool,
       std::size_t headline_requests, std::size_t sweep_requests)
{
    auto policies = servingPolicies();
    auto trace = serving::poissonTrace(
        arm.mix, arm.headlineQps, headline_requests, kTraceSeed);

    // The 1M-request headline runs execute concurrently on the pool;
    // each run is a pure function of (trace, policy, services), so the
    // pool size cannot change the figures.
    std::vector<std::future<serving::ServingOutcome>> futures;
    for (const auto &p : policies) {
        const auto *policy = p.get();
        futures.push_back(pool.submit([&, policy] {
            return serving::simulateServing(trace, *policy,
                                            arm.services);
        }));
    }

    std::vector<PolicyFigures> out;
    for (std::size_t i = 0; i < policies.size(); ++i) {
        PolicyFigures f;
        f.policy = policies[i]->name();
        f.headline = futures[i].get();
        out.push_back(std::move(f));
    }
    // Sweeps run per policy, each parallelizing its bracketing ladder
    // on the pool (no nested submission).
    auto sp = sweepParams(arm, sweep_requests);
    for (std::size_t i = 0; i < policies.size(); ++i)
        out[i].sweep = serving::findMaxSustainableQps(
            arm.mix, *policies[i], arm.services, sp, &pool);
    return out;
}

// ----------------------------------------------------------- sharding

const std::vector<int> kShardDeviceCounts = {1, 2, 4, 8};
constexpr std::size_t kOverlapDemoRequests = 8;
/** Requests per sharding sweep probe and per headline point. */
constexpr std::size_t kShardingRequests = 200000;

/** One operating point of the sharding study: the capacity sweep and
 * a fixed-utilization headline run for tail latency / utilization. */
struct ShardingFigures
{
    struct Point
    {
        int devices = 1;
        bool overlap = false;
        double maxQps = 0.0;
        double headlineQps = 0.0;
        serving::ServingOutcome headline;
    };
    std::vector<Point> points;
    /** Back-to-back LLM trace, 1 device, overlap off vs on. */
    serving::ServingOutcome demoSerial;
    serving::ServingOutcome demoOverlap;
};

/** Mean of a per-device utilization field over the cluster. */
double
meanUtil(const serving::ServingOutcome &out, bool compute)
{
    if (out.devices.empty())
        return 0.0;
    double total = 0.0;
    for (const auto &d : out.devices)
        total += compute ? d.computeUtilization : d.dmaUtilization;
    return total / static_cast<double>(out.devices.size());
}

ShardingFigures
runShardingStudy(const Arm &arm, ThreadPool &pool,
                 std::size_t sweep_requests,
                 std::size_t headline_requests)
{
    multidnn::FifoPolicy fifo;
    ShardingFigures f;
    auto sp = sweepParams(arm, sweep_requests);
    auto sharded = serving::sweepDeviceCounts(
        arm.mix, fifo, arm.services, sp, kShardDeviceCounts, &pool);

    for (const auto &pt : sharded) {
        ShardingFigures::Point p;
        p.devices = pt.devices;
        p.overlap = pt.overlap;
        p.maxQps = pt.sweep.maxSustainableQps;
        // Headline: 70% of the cluster's aggregate calibrated
        // capacity, so per-device utilization is constant across the
        // scaling curve and p95 isolates the sharding behaviour.
        p.headlineQps = kHeadlineUtil * arm.capacityQps * pt.devices;
        auto trace = serving::poissonTrace(
            arm.mix, p.headlineQps, headline_requests, kTraceSeed);
        serving::ServingSimParams simp;
        simp.cluster.deviceCount = pt.devices;
        simp.cluster.overlapInitWithExec = pt.overlap;
        p.headline =
            serving::simulateServing(trace, fifo, arm.services, simp);
        f.points.push_back(std::move(p));
    }

    // Cross-request overlap demo: back-to-back LLM requests on one
    // device. Serial, each request pays init + exec in sequence; with
    // overlap the next request's streamed preload runs on the DMA
    // queue while the current request computes.
    std::vector<multidnn::ModelRequest> llm(
        kOverlapDemoRequests, {ModelId::GPTNeoS, 0, 0, 0});
    serving::ServingSimParams serial_p;
    f.demoSerial =
        serving::simulateServing(llm, fifo, arm.services, serial_p);
    serving::ServingSimParams overlap_p;
    overlap_p.cluster.overlapInitWithExec = true;
    f.demoOverlap =
        serving::simulateServing(llm, fifo, arm.services, overlap_p);
    return f;
}

double
shardingScalingEfficiency(const ShardingFigures &f, int devices)
{
    double base = 0.0, at = 0.0;
    for (const auto &p : f.points) {
        if (!p.overlap)
            continue;
        if (p.devices == 1)
            base = p.maxQps;
        if (p.devices == devices)
            at = p.maxQps;
    }
    if (base <= 0.0)
        return 0.0;
    return at / (static_cast<double>(devices) * base);
}

// ------------------------------------------------------- fault study

/** Requests per fault scenario (fast sim; seconds per scenario). */
constexpr std::size_t kFaultRequests = 200000;
constexpr int kFaultDevices = 4;

/** One fault scenario evaluated on the 4-device overlap cluster. */
struct FaultFigures
{
    std::string scenario;
    serving::ServingOutcome outcome;
    std::size_t submitted = 0;
    /** Down fraction of the faulted device (device 0). */
    double downFraction = 0.0;
    /** completed + shed == submitted: no request vanished. */
    bool accountingComplete = false;
};

/**
 * Fault-tolerance study: the same deadline-policy trace on a 4-device
 * overlap cluster, fault-free vs a mid-run crash (down for a quarter
 * of the run), a 4x thermal slowdown over half the run, and a
 * flapping device (five crash/rejoin cycles). Reports goodput / p99 /
 * retry / failover / shed figures per scenario, with the accounting
 * invariant that every submitted request completes or is shed with a
 * reason — never silently dropped.
 */
std::vector<FaultFigures>
runFaultStudy(const Arm &arm)
{
    const double qps =
        kHeadlineUtil * arm.capacityQps * kFaultDevices;
    const SimTime horizon = seconds(
        static_cast<double>(kFaultRequests) / qps);
    auto trace = serving::poissonTrace(arm.mix, qps, kFaultRequests,
                                       kTraceSeed);

    std::vector<std::pair<std::string, multidnn::FaultPlan>>
        scenarios;
    scenarios.emplace_back("fault_free", multidnn::FaultPlan{});
    scenarios.emplace_back(
        "crash_midrun",
        multidnn::crashAndRejoin(0, horizon / 2, horizon / 4));
    scenarios.emplace_back(
        "slowdown_4x",
        multidnn::singleSlowdown(0, horizon / 4, horizon / 2, 4.0));
    scenarios.emplace_back(
        "flapping",
        multidnn::flappingDevice(0, horizon / 4, horizon / 10,
                                 horizon / 20, 5));

    multidnn::DeadlinePolicy policy;
    std::vector<FaultFigures> out;
    for (auto &[name, plan] : scenarios) {
        serving::ServingSimParams params;
        params.readyLimit = 0; // drain everything; accounting must close
        params.cluster.deviceCount = kFaultDevices;
        params.cluster.overlapInitWithExec = true;
        params.faults = std::move(plan);
        FaultFigures f;
        f.scenario = name;
        f.outcome =
            serving::simulateServing(trace, policy, arm.services,
                                     params);
        f.submitted = trace.size();
        f.downFraction = f.outcome.devices.empty()
                             ? 0.0
                             : f.outcome.devices[0].downFraction;
        f.accountingComplete =
            f.outcome.stats.completed() +
                f.outcome.stats.shedCount() ==
            trace.size();
        out.push_back(std::move(f));
    }
    return out;
}

// --------------------------------------------------- admission study

/** Requests per admission scenario (fast sim). */
constexpr std::size_t kAdmissionRequests = 200000;
constexpr int kAdmissionDevices = 4;
/** Offered load vs the cluster's aggregate calibrated capacity. */
constexpr double kAdmissionOverload = 2.0;
/** Fraction of arrivals drawn from the cold (uncalibrated) models. */
constexpr double kAdmissionColdFraction = 0.25;
/** Bound on how much goodput the predicted-tier gate may give up vs
 * the fully-calibrated oracle gate under cold-model influx. */
constexpr double kColdGapBound = 0.15;

/** One admission scenario on the 4-device overlap cluster. */
struct AdmissionFigures
{
    std::string scenario;
    serving::ServingOutcome outcome;
    /** Gate decision counters (zero when ungated). */
    serving::AdmissionDecisions decisions;
    std::size_t submitted = 0;
    bool gated = false;
    /** completed + shed == submitted: no request vanished. */
    bool accountingComplete = false;
};

/** The admission study's scenarios plus the estimator's vitals. */
struct AdmissionStudy
{
    std::vector<AdmissionFigures> scenarios;
    /** Warm + cold calibrated (what execution always prices with). */
    serving::ServiceTable oracle;
    /** Uniform product-tier SLO bound stamped on every request. */
    SimTime sloBound = 0;
    /** Predicted-tier vitals of the warm-only serving view. */
    double viewInflation = 1.0;
    bool viewPredictorTrained = false;
    std::size_t warmCalibrated = 0;
};

/**
 * Arrival-time admission study: the same 2x-overload deadline-policy
 * traces on the 4-device overlap cluster, with and without the
 * arrival-time backlog gate (serving/admission.hh), then under a
 * cold-model influx (a quarter of arrivals from models calibration
 * never saw) with the gate running on a fully-calibrated oracle
 * estimator vs the deployed warm-only view whose cold estimates come
 * from the GBT predicted tier.
 *
 * The SLO is a single product-tier bound for every model (slack x the
 * slowest oracle service): per-model proportional bounds would hand
 * expensive models proportionally more slack, and under overload a
 * feasibility gate then shifts the served mix toward expensive
 * requests — the goodput comparison would measure the mix shift, not
 * the gate. A uniform bound makes deadline order arrival order, so
 * gated-vs-ungated is a pure timing comparison.
 */
AdmissionStudy
runAdmissionStudy(const Arm &arm, core::PlanMemo &memo,
                  int planner_threads)
{
    // Oracle calibration of the cold models the warm table never saw
    // (same device profile / memo as the warm arm, so the merged table
    // is what one calibration pass over all six models would yield).
    auto dev = gpusim::DeviceProfile::onePlus12();
    core::FlashMemOptions opt;
    opt.opg.parallel.threads = planner_threads;
    opt.opg.memo = &memo;
    core::FlashMem fm(dev, opt);
    const std::vector<models::ModelId> cold_models = {
        ModelId::DeepViT, ModelId::DepthAnythingL};
    auto cold_services = serving::calibrateServices(
        fm, cold_models, /*degrade_budget_fraction=*/0.5);

    AdmissionStudy study;
    study.oracle = arm.services;
    for (const auto &[model, profile] : cold_services)
        study.oracle.emplace(model, profile);

    SimTime slowest = 0;
    for (const auto &[model, profile] : study.oracle)
        slowest = std::max(slowest, profile.service);
    study.sloBound = static_cast<SimTime>(
        kSloSlack * static_cast<double>(slowest));

    serving::ModelMix warm = arm.mix;
    for (auto &e : warm.entries)
        e.latencyBound = study.sloBound;
    std::vector<serving::ModelMix::Entry> cold_entries;
    for (auto model : cold_models)
        cold_entries.push_back({model, 1.0, study.sloBound, 0});
    auto cold = serving::withColdInflux(warm, cold_entries,
                                        kAdmissionColdFraction);

    // Offered load: the overload factor times the cluster's aggregate
    // capacity against the mix actually offered (the cold mix is
    // heavier per request, so its QPS is recomputed, not reused).
    auto overloadQps = [&](const serving::ModelMix &mix) {
        std::vector<std::pair<models::ModelId, double>> weights;
        for (const auto &e : mix.entries)
            weights.emplace_back(e.model, e.weight);
        return kAdmissionOverload * kAdmissionDevices /
               toSeconds(serving::meanService(study.oracle, weights));
    };
    auto warm_trace = serving::poissonTrace(
        warm, overloadQps(warm), kAdmissionRequests, kTraceSeed);
    auto cold_trace = serving::poissonTrace(
        cold, overloadQps(cold), kAdmissionRequests, kTraceSeed);

    // Estimators: the oracle view calibrates everything; the serving
    // view knows only the warm table, so the cold models ride the
    // margin-inflated GBT predicted tier.
    serving::ServiceEstimator oracle_est(study.oracle);
    serving::ServiceEstimator view_est(arm.services);
    study.viewInflation = view_est.inflation();
    study.viewPredictorTrained = view_est.predictorTrained();
    study.warmCalibrated = view_est.calibratedCount();

    serving::AdmissionController warm_gate(view_est);
    serving::AdmissionController oracle_gate(oracle_est);
    serving::AdmissionController view_gate(view_est);

    multidnn::DeadlinePolicy policy;
    auto run = [&](const char *name,
                   const std::vector<multidnn::ModelRequest> &trace,
                   serving::AdmissionController *gate) {
        serving::ServingSimParams params;
        params.readyLimit = 0; // drain everything; accounting closes
        params.cluster.deviceCount = kAdmissionDevices;
        params.cluster.overlapInitWithExec = true;
        params.arrival = gate;
        if (gate)
            gate->resetDecisions();
        AdmissionFigures f;
        f.scenario = name;
        f.gated = gate != nullptr;
        // Execution always prices against the oracle table — the view
        // only changes what the gate believes, never what runs.
        f.outcome = serving::simulateServing(trace, policy,
                                             study.oracle, params);
        f.submitted = trace.size();
        if (gate)
            f.decisions = gate->decisions();
        f.accountingComplete = f.outcome.stats.completed() +
                                   f.outcome.stats.shedCount() ==
                               trace.size();
        study.scenarios.push_back(std::move(f));
    };
    run("overload_dispatch_only", warm_trace, nullptr);
    run("overload_arrival", warm_trace, &warm_gate);
    run("cold_influx_oracle", cold_trace, &oracle_gate);
    run("cold_influx_predicted", cold_trace, &view_gate);
    return study;
}

/** Print the admission study; returns the shape-check verdict and the
 * `serving_admission` JSON fragment (no trailing comma/newline). */
std::pair<bool, std::string>
reportAdmissionStudy(const AdmissionStudy &study)
{
    printHeading(std::cout,
                 "Arrival-time admission: overload + cold influx");
    std::cout << "uniform SLO bound " << formatMs(study.sloBound)
              << ", " << formatDouble(kAdmissionOverload, 1)
              << "x overload on " << kAdmissionDevices
              << " overlap devices; warm view: "
              << study.warmCalibrated
              << " calibrated models, predictor "
              << (study.viewPredictorTrained ? "trained" : "UNTRAINED")
              << ", inflation "
              << formatDouble(study.viewInflation, 2) << "x\n";

    Table t({"Scenario", "Gate", "Goodput", "p99", "Shed",
             "Arrival sheds", "Tier cal/pred/pess", "Accounted"});
    for (const auto &f : study.scenarios) {
        const auto &s = f.outcome.stats;
        const auto &d = f.decisions;
        t.addRow({f.scenario, f.gated ? "arrival" : "dispatch",
                  formatDouble(100.0 * s.goodputRate(), 2) + "%",
                  formatMs(s.p99()), std::to_string(s.shedCount()),
                  std::to_string(f.outcome.arrivalSheds),
                  std::to_string(d.tierCalibrated) + "/" +
                      std::to_string(d.tierPredicted) + "/" +
                      std::to_string(d.tierPessimistic),
                  f.accountingComplete ? "yes" : "NO"});
    }
    t.print(std::cout);

    auto row = [&](const char *name) -> const AdmissionFigures & {
        for (const auto &f : study.scenarios)
            if (f.scenario == name)
                return f;
        return study.scenarios.front();
    };
    const auto &ungated = row("overload_dispatch_only");
    const auto &gated = row("overload_arrival");
    const auto &oracle = row("cold_influx_oracle");
    const auto &predicted = row("cold_influx_predicted");
    double arrival_delta = gated.outcome.stats.goodputRate() -
                           ungated.outcome.stats.goodputRate();
    double cold_gap = oracle.outcome.stats.goodputRate() -
                      predicted.outcome.stats.goodputRate();

    // Acceptance shapes: the gate strictly beats dispatch-point-only
    // admission on goodput at 2x overload; under cold influx the
    // predicted-tier gate degrades gracefully (bounded goodput gap vs
    // the fully-calibrated oracle gate); every submitted request is
    // completed or shed with a reason; the gate decided every arrival
    // (fault-free: decisions == submissions); and each scenario's
    // estimate-tier mix is what its view implies.
    bool admission_ok = true;
    for (const auto &f : study.scenarios) {
        admission_ok &= f.accountingComplete;
        admission_ok &= !f.outcome.unstable;
        admission_ok &= f.gated
                            ? f.outcome.arrivalSheds > 0 &&
                                  f.decisions.total() == f.submitted
                            : f.outcome.arrivalSheds == 0;
    }
    admission_ok &= arrival_delta > 0.0;
    admission_ok &= cold_gap <= kColdGapBound;
    admission_ok &= study.viewPredictorTrained;
    admission_ok &= gated.decisions.tierPredicted == 0 &&
                    gated.decisions.tierPessimistic == 0;
    admission_ok &= oracle.decisions.tierPredicted == 0 &&
                    oracle.decisions.tierPessimistic == 0;
    admission_ok &= predicted.decisions.tierPredicted > 0 &&
                    predicted.decisions.tierCalibrated > 0;

    std::cout << "arrival-gate goodput delta at "
              << formatDouble(kAdmissionOverload, 1) << "x overload: "
              << formatDouble(100.0 * arrival_delta, 2)
              << " points\ncold-influx goodput gap (oracle - "
                 "predicted view): "
              << formatDouble(100.0 * cold_gap, 2) << " points\n"
              << "Admission shape check (gate beats dispatch-only, "
                 "bounded cold gap, every request accounted): "
              << (admission_ok ? "PASS" : "FAIL") << "\n";

    std::ostringstream ajson;
    ajson << "  \"serving_admission\": {\n    \"request_count\": "
          << kAdmissionRequests
          << ",\n    \"devices\": " << kAdmissionDevices
          << ",\n    \"overlap\": true,\n    \"policy\": "
             "\"deadline\",\n    \"overload_factor\": "
          << formatDouble(kAdmissionOverload, 1)
          << ",\n    \"cold_fraction\": "
          << formatDouble(kAdmissionColdFraction, 2)
          << ",\n    \"slo_bound_ms\": "
          << toMilliseconds(study.sloBound)
          << ",\n    \"warm_calibrated_models\": "
          << study.warmCalibrated
          << ",\n    \"predictor_trained\": "
          << (study.viewPredictorTrained ? "true" : "false")
          << ",\n    \"predicted_inflation\": "
          << formatDouble(study.viewInflation, 4)
          << ",\n    \"arrival_goodput_delta\": "
          << formatDouble(arrival_delta, 6)
          << ",\n    \"cold_goodput_gap\": "
          << formatDouble(cold_gap, 6) << ",\n    \"scenarios\": [\n";
    for (std::size_t i = 0; i < study.scenarios.size(); ++i) {
        const auto &f = study.scenarios[i];
        const auto &s = f.outcome.stats;
        const auto &d = f.decisions;
        ajson << "      {\"scenario\": \"" << f.scenario
              << "\", \"gated\": " << (f.gated ? "true" : "false")
              << ", \"goodput\": " << s.goodputRate()
              << ", \"p99_ms\": " << s.p99Ms()
              << ", \"completed\": " << s.completed()
              << ", \"shed\": " << s.shedCount()
              << ", \"arrival_sheds\": " << f.outcome.arrivalSheds
              << ", \"degraded\": " << s.degradedCount()
              << ", \"tier_calibrated\": " << d.tierCalibrated
              << ", \"tier_predicted\": " << d.tierPredicted
              << ", \"tier_pessimistic\": " << d.tierPessimistic
              << ", \"accounting_complete\": "
              << (f.accountingComplete ? "true" : "false") << "}"
              << (i + 1 < study.scenarios.size() ? "," : "") << "\n";
    }
    ajson << "    ]\n  }";
    return {admission_ok, ajson.str()};
}

// -------------------------------------------------- observability

/** Requests of the Perfetto trace export (kept small: the artifact is
 * meant to be opened in ui.perfetto.dev, not to stress the sim). */
constexpr std::size_t kTraceExportRequests = 5000;

/** Export @p fc as obs counters under "faults.*" (the canonical
 * machine-readable rendering; deterministic snapshot order). */
void
exportFaultCounters(const multidnn::FaultCounters &fc,
                    obs::CounterRegistry &reg)
{
    reg.add("faults.crashes", fc.crashes);
    reg.add("faults.timeouts", fc.timeouts);
    reg.add("faults.dma_aborts", fc.dmaAborts);
    reg.add("faults.retries", fc.retries);
    reg.add("faults.failovers", fc.failovers);
    reg.add("faults.fault_sheds", fc.faultSheds);
    reg.add("faults.starved", fc.starved);
}

/**
 * `--trace PATH`: one representative faulty overload run — 2x
 * overload on the 4-device overlap cluster, a mid-run crash plus a
 * thermal slowdown, deadline policy behind the arrival gate — traced
 * and exported as Chrome trace-event JSON for ui.perfetto.dev.
 */
int
runTraceExport(const char *path)
{
    core::PlanMemo memo(1024);
    auto arm = calibrateArm(memo, ThreadPool::defaultThreadCount());
    const double qps =
        kAdmissionOverload * arm.capacityQps * kFaultDevices;
    const SimTime horizon = seconds(
        static_cast<double>(kTraceExportRequests) / qps);
    auto trace = serving::poissonTrace(
        arm.mix, qps, kTraceExportRequests, kTraceSeed);
    auto plan = multidnn::crashAndRejoin(0, horizon / 2, horizon / 4);
    plan = multidnn::mergeFaultPlans(
        plan, multidnn::singleSlowdown(1, horizon / 4, horizon / 2,
                                       4.0));

    serving::ServiceEstimator estimator(arm.services);
    serving::AdmissionController gate(estimator);
    multidnn::DeadlinePolicy policy;
    obs::TraceRecorder rec;
    serving::ServingSimParams params;
    params.readyLimit = 0;
    params.cluster.deviceCount = kFaultDevices;
    params.cluster.overlapInitWithExec = true;
    params.faults = plan;
    params.arrival = &gate;
    params.trace = &rec;
    auto out =
        serving::simulateServing(trace, policy, arm.services, params);

    std::ofstream os(path);
    rec.writeChromeJson(os);
    bool ok = os.good();
    std::cout << "perfetto trace: " << kTraceExportRequests
              << " requests at " << formatDouble(qps, 1)
              << " QPS (2x overload, crash + slowdown), "
              << rec.size() << " events -> " << path << "\n"
              << "  completed " << out.stats.completed() << ", shed "
              << out.stats.shedCount() << ", arrival sheds "
              << out.arrivalSheds << ", retries "
              << out.faults.retries << "\n";
    // The traced run actually exercised every track the export draws.
    ok &= out.stats.completed() > 0 && out.stats.shedCount() > 0 &&
          out.faults.crashes > 0 && out.faults.retries > 0;
    if (!ok)
        std::cerr << "trace export failed shape check or write\n";
    return ok ? 0 : 1;
}

/** Wall seconds of one call (bench-side measurement only — the sim
 * itself never reads wall clocks). */
template <typename Fn>
double
wallSeconds(Fn &&fn)
{
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** The observability overhead study. Returns (all-pass, fragment). */
std::pair<bool, std::string>
runObsStudy(const Arm &arm)
{
    printHeading(std::cout,
                 "Observability: tracing overhead on the serving path");
    const double qps =
        kHeadlineUtil * arm.capacityQps * kFaultDevices;
    const SimTime horizon = seconds(
        static_cast<double>(kFaultRequests) / qps);
    auto trace = serving::poissonTrace(arm.mix, qps, kFaultRequests,
                                       kTraceSeed);
    auto plan = multidnn::crashAndRejoin(0, horizon / 2, horizon / 4);
    multidnn::DeadlinePolicy policy;

    auto run_once = [&](obs::TraceRecorder *rec) {
        serving::ServingSimParams params;
        params.readyLimit = 0;
        params.cluster.deviceCount = kFaultDevices;
        params.cluster.overlapInitWithExec = true;
        params.faults = plan;
        params.trace = rec;
        return serving::simulateServing(trace, policy, arm.services,
                                        params);
    };
    // Min-of-N with the three arms interleaved per round: scheduler
    // noise is strictly additive on top of the true cost, so the
    // minimum is the least-biased estimator on a shared machine, and
    // interleaving means a load spike degrades all arms alike instead
    // of silently inflating whichever block it landed on. The off-off
    // delta is the residual noise floor; the recorder's cost must not
    // be hiding inside it.
    // Each timed sample is three back-to-back sims so short load
    // spikes average out within a sample instead of dominating it.
    obs::TraceRecorder rec;
    auto sample = [&](obs::TraceRecorder *r) {
        return wallSeconds([&] {
            for (int k = 0; k < 3; ++k) {
                if (r)
                    r->clear();
                run_once(r);
            }
        }) / 3.0;
    };
    double off1 = std::numeric_limits<double>::infinity();
    double on = off1, off2 = off1;
    for (int i = 0; i < 5; ++i) {
        off1 = std::min(off1, sample(nullptr));
        on = std::min(on, sample(&rec));
        off2 = std::min(off2, sample(nullptr));
    }
    double off_mean = 0.5 * (off1 + off2);
    double on_overhead = on / std::max(off_mean, 1e-12);
    double off_delta = std::abs(off1 - off2) /
                       std::max(std::min(off1, off2), 1e-12);

    // The traced outcome is the untraced outcome, bit for bit.
    auto plain = run_once(nullptr);
    rec.clear();
    auto traced = run_once(&rec);
    bool identical =
        plain.stats.completed() == traced.stats.completed() &&
        plain.stats.shedCount() == traced.stats.shedCount() &&
        plain.stats.goodput() == traced.stats.goodput() &&
        plain.makespan == traced.makespan &&
        plain.faults.retries == traced.faults.retries;

    obs::CounterRegistry reg;
    exportFaultCounters(traced.faults, reg);
    reg.setGauge("obs.trace_events",
                 static_cast<std::int64_t>(rec.size()));
    std::cout << "crash_midrun, " << kFaultRequests
              << " requests: off " << formatDouble(off1, 3) << " s, on "
              << formatDouble(on, 3) << " s, off again "
              << formatDouble(off2, 3) << " s (min of 5)\n"
              << "tracing-on overhead: "
              << formatDouble(100.0 * (on_overhead - 1.0), 2)
              << "%, off-path noise floor: "
              << formatDouble(100.0 * off_delta, 2) << "%\n"
              << "traced outcome identical to untraced: "
              << (identical ? "yes" : "NO") << "\n";
    reg.writeText(std::cout);

    bool ok = identical && rec.size() > 0;
    std::cout << "Observability shape check (outcome unchanged, "
                 "events recorded): "
              << (ok ? "PASS" : "FAIL") << "\n";

    std::ostringstream json;
    json << "  \"serving_obs\": {\n    \"request_count\": "
         << kFaultRequests
         << ",\n    \"scenario\": \"crash_midrun\",\n"
         << "    \"devices\": " << kFaultDevices
         << ",\n    \"policy\": \"deadline\",\n    \"off_seconds\": "
         << formatDouble(off1, 6)
         << ",\n    \"on_seconds\": " << formatDouble(on, 6)
         << ",\n    \"off2_seconds\": " << formatDouble(off2, 6)
         << ",\n    \"on_overhead_ratio\": "
         << formatDouble(on_overhead, 6)
         << ",\n    \"off_delta_ratio\": "
         << formatDouble(off_delta, 6)
         << ",\n    \"trace_events\": " << rec.size()
         << ",\n    \"outcome_identical\": "
         << (identical ? "true" : "false") << "\n  }";
    return {ok, json.str()};
}

/** `--obs-only PATH`: run just the observability study and write a
 * standalone {"serving_obs": ...} fragment for the section merge in
 * tools/run_benchmarks.sh (`--only obs`). */
int
runObsOnly(const char *path)
{
    core::PlanMemo memo(1024);
    auto arm =
        calibrateArm(memo, ThreadPool::defaultThreadCount());
    auto [ok, json] = runObsStudy(arm);
    std::ofstream out(path);
    out << "{\n" << json << "\n}\n";
    if (out.good()) {
        std::cout << "wrote " << path << "\n";
    } else {
        std::cerr << "failed to write " << path << "\n";
        ok = false;
    }
    return ok ? 0 : 1;
}

/** Bit-exact equality of the determinism-relevant figures. */
bool
figuresIdentical(const PolicyFigures &a, const PolicyFigures &b)
{
    const auto &sa = a.headline.stats;
    const auto &sb = b.headline.stats;
    return a.policy == b.policy && sa.p50() == sb.p50() &&
           sa.p95() == sb.p95() && sa.p99() == sb.p99() &&
           sa.shedCount() == sb.shedCount() &&
           sa.degradedCount() == sb.degradedCount() &&
           sa.goodput() == sb.goodput() &&
           a.headline.makespan == b.headline.makespan &&
           a.sweep.maxSustainableQps == b.sweep.maxSustainableQps;
}

/** Bit-exact equality of two sharding studies. */
bool
shardingIdentical(const ShardingFigures &a, const ShardingFigures &b)
{
    if (a.points.size() != b.points.size())
        return false;
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        const auto &pa = a.points[i];
        const auto &pb = b.points[i];
        const auto &sa = pa.headline.stats;
        const auto &sb = pb.headline.stats;
        if (pa.devices != pb.devices || pa.overlap != pb.overlap ||
            pa.maxQps != pb.maxQps ||
            pa.headline.makespan != pb.headline.makespan ||
            sa.p50() != sb.p50() || sa.p95() != sb.p95() ||
            sa.p99() != sb.p99() ||
            sa.goodput() != sb.goodput())
            return false;
    }
    return a.demoSerial.makespan == b.demoSerial.makespan &&
           a.demoOverlap.makespan == b.demoOverlap.makespan;
}

int
runShardingDeterminismCheck()
{
    auto run_study = [&](int threads) {
        core::PlanMemo memo(1024);
        auto arm = calibrateArm(memo, threads);
        ThreadPool pool(threads);
        return runShardingStudy(arm, pool, /*sweep_requests=*/50000,
                                /*headline_requests=*/100000);
    };
    auto t1 = run_study(1);
    auto t4 = run_study(4);
    bool identical = shardingIdentical(t1, t4);
    std::cout << "serving sharding determinism (planner+pool threads "
                 "1 vs 4): "
              << (identical ? "identical" : "DIVERGED") << "\n";
    for (const auto &p : t1.points) {
        std::cout << "  " << p.devices << " device(s), overlap "
                  << (p.overlap ? "on " : "off") << ": max QPS "
                  << formatDouble(p.maxQps, 2) << ", p95 "
                  << formatMs(p.headline.stats.p95()) << "\n";
    }
    std::cout << "  overlap demo makespan: serial "
              << formatMs(t1.demoSerial.makespan) << " -> overlapped "
              << formatMs(t1.demoOverlap.makespan) << "\n";
    // The demo must actually exercise the overlap path.
    bool exercised =
        t1.demoOverlap.makespan < t1.demoSerial.makespan;
    std::cout << "cross-request overlap exercised: "
              << (exercised ? "yes" : "NO") << "\n";
    return identical && exercised ? 0 : 1;
}

/** `--admission-only PATH`: run just the admission study and write a
 * standalone {"serving_admission": ...} fragment for the section
 * merge in tools/run_benchmarks.sh (`--only admission`). */
int
runAdmissionOnly(const char *path)
{
    core::PlanMemo memo(1024);
    int threads = ThreadPool::defaultThreadCount();
    auto arm = calibrateArm(memo, threads);
    auto study = runAdmissionStudy(arm, memo, threads);
    auto [ok, ajson] = reportAdmissionStudy(study);
    std::ofstream out(path);
    out << "{\n" << ajson << "\n}\n";
    if (out.good()) {
        std::cout << "wrote " << path << "\n";
    } else {
        std::cerr << "failed to write " << path << "\n";
        ok = false;
    }
    return ok ? 0 : 1;
}

int
runDeterminismCheck()
{
    auto run_arm = [&](int threads) {
        core::PlanMemo memo(1024);
        auto arm = calibrateArm(memo, threads);
        ThreadPool pool(threads);
        return runArm(arm, pool, kHeadlineRequests,
                      /*sweep_requests=*/100000);
    };
    auto t1 = run_arm(1);
    auto t4 = run_arm(4);

    bool identical = t1.size() == t4.size();
    for (std::size_t i = 0; identical && i < t1.size(); ++i)
        identical = figuresIdentical(t1[i], t4[i]);
    bool exercised = false;
    for (const auto &f : t1) {
        exercised = exercised || f.headline.stats.shedCount() > 0 ||
                    f.headline.stats.degradedCount() > 0;
    }
    std::cout << "serving determinism (planner+pool threads 1 vs 4): "
              << (identical ? "identical" : "DIVERGED") << "\n";
    for (const auto &f : t1) {
        std::cout << "  " << f.policy << ": p99 "
                  << formatMs(f.headline.stats.p99()) << ", shed "
                  << f.headline.stats.shedCount() << ", degraded "
                  << f.headline.stats.degradedCount() << ", max QPS "
                  << formatDouble(f.sweep.maxSustainableQps, 2)
                  << "\n";
    }
    std::cout << "SLO admission exercised: "
              << (exercised ? "yes" : "NO") << "\n";
    return identical && exercised ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace flashmem;
    using namespace flashmem::bench;

    if (argc > 1 && std::strcmp(argv[1], "--determinism") == 0)
        return runDeterminismCheck();
    if (argc > 1 &&
        std::strcmp(argv[1], "--sharding-determinism") == 0)
        return runShardingDeterminismCheck();
    if (argc > 2 && std::strcmp(argv[1], "--admission-only") == 0)
        return runAdmissionOnly(argv[2]);
    if (argc > 2 && std::strcmp(argv[1], "--obs-only") == 0)
        return runObsOnly(argv[2]);
    if (argc > 2 && std::strcmp(argv[1], "--trace") == 0)
        return runTraceExport(argv[2]);

    printHeading(std::cout,
                 "Serving harness: 1M-request capacity study");

    core::PlanMemo memo(1024);
    auto arm = calibrateArm(memo, ThreadPool::defaultThreadCount());

    std::cout << "calibrated capacity "
              << formatDouble(arm.capacityQps, 1) << " QPS, headline "
              << formatDouble(arm.headlineQps, 1) << " QPS ("
              << formatDouble(100.0 * kHeadlineUtil, 0)
              << "% utilization), per-model SLO "
              << formatDouble(kSloSlack, 1) << "x service\n";
    Table ct({"Model", "Service", "Degraded svc", "Plan budget",
              "Degraded budget", "SLO bound"});
    for (const auto &e : arm.mix.entries) {
        const auto &p = arm.services.at(e.model);
        ct.addRow({models::modelSpec(e.model).abbr,
                   formatMs(p.service), formatMs(p.degradedService),
                   formatBytes(p.planBudget),
                   formatBytes(p.degradedPlanBudget),
                   formatMs(e.latencyBound)});
    }
    ct.print(std::cout);

    ThreadPool pool(ThreadPool::defaultThreadCount());
    auto figures = runArm(arm, pool, kHeadlineRequests,
                          /*sweep_requests=*/200000);

    printHeading(std::cout, "Per-policy serving figures");
    Table t({"Policy", "p50", "p95", "p99", "Mean queue", "Goodput",
             "Shed", "Degraded", "Max QPS"});
    std::vector<metrics::QuantileRow> qrows;
    bool ok = true;
    std::ostringstream json;
    json << "{\n  \"serving\": {\n    \"request_count\": "
         << kHeadlineRequests
         << ",\n    \"headline_qps\": "
         << formatDouble(arm.headlineQps, 3)
         << ",\n    \"slo_slack\": " << formatDouble(kSloSlack, 1)
         << ",\n    \"policies\": [\n";
    for (std::size_t i = 0; i < figures.size(); ++i) {
        const auto &f = figures[i];
        const auto &s = f.headline.stats;
        t.addRow({f.policy, formatMs(s.p50()), formatMs(s.p95()),
                  formatMs(s.p99()),
                  formatDouble(s.meanQueueDelayMs(), 2) + " ms",
                  formatDouble(100.0 * s.goodputRate(), 2) + "%",
                  std::to_string(s.shedCount()),
                  std::to_string(s.degradedCount()),
                  formatDouble(f.sweep.maxSustainableQps, 1)});
        qrows.push_back({f.policy, s.p50Ms(), s.p95Ms(), s.p99Ms()});
        json << "      {\"policy\": \"" << f.policy
             << "\", \"p50_ms\": " << s.p50Ms()
             << ", \"p95_ms\": " << s.p95Ms()
             << ", \"p99_ms\": " << s.p99Ms()
             << ", \"mean_queue_ms\": " << s.meanQueueDelayMs()
             << ", \"goodput\": " << s.goodputRate()
             << ", \"shed\": " << s.shedCount()
             << ", \"degraded\": " << s.degradedCount()
             << ", \"max_sustainable_qps\": "
             << f.sweep.maxSustainableQps << "}"
             << (i + 1 < figures.size() ? "," : "") << "\n";

        // Every submitted request is accounted for, the run stayed
        // stable at 70% utilization, and quantiles are ordered.
        ok &= !f.headline.unstable;
        ok &= s.submitted() == kHeadlineRequests;
        ok &= s.p50() <= s.p95() && s.p95() <= s.p99();
        ok &= f.sweep.maxSustainableQps > 0.0;
    }
    t.print(std::cout);
    json << "    ]\n  },\n"; // serving_faults section follows

    std::cout << "\nRequest-latency quantiles (shared axis):\n";
    metrics::renderQuantileChart(std::cout, qrows, 60);

    // Policy-shape checks: deadline shedding never completes a request
    // past its bound (admission is exact against calibrated service
    // times), and the degrade variant degrades instead of shedding.
    const auto &deadline = figures[2];
    const auto &degrade = figures[3];
    ok &= deadline.policy == "deadline";
    ok &= deadline.headline.stats.sloViolations() == 0;
    ok &= degrade.policy == "deadline-degrade";
    ok &= degrade.headline.stats.shedCount() == 0;
    // Shedding doomed requests stops wasting service time on already-
    // late work: the deadline policy sustains at least FIFO's load.
    ok &= deadline.sweep.maxSustainableQps >=
          figures[0].sweep.maxSustainableQps;

    std::cout << "\nShape check (stable at 70% load, ordered "
                 "quantiles, deadline admission meets bounds): "
              << (ok ? "PASS" : "FAIL") << "\n";

    // ------------------------------------------- sharding scaling study
    printHeading(std::cout,
                 "Device sharding: scaling curve + overlap demo");
    auto sharding = runShardingStudy(arm, pool, kShardingRequests,
                                     kShardingRequests);
    Table st({"Devices", "Overlap", "Max QPS", "Headline QPS", "p95",
              "Goodput", "Compute util", "DMA util"});
    for (const auto &p : sharding.points) {
        const auto &s = p.headline.stats;
        st.addRow({std::to_string(p.devices),
                   p.overlap ? "on" : "off",
                   formatDouble(p.maxQps, 2),
                   formatDouble(p.headlineQps, 1),
                   formatMs(s.p95()),
                   formatDouble(100.0 * s.goodputRate(), 2) + "%",
                   formatDouble(100.0 * meanUtil(p.headline, true),
                                1) +
                       "%",
                   formatDouble(100.0 * meanUtil(p.headline, false),
                                1) +
                       "%"});
    }
    st.print(std::cout);

    double eff4 = shardingScalingEfficiency(sharding, 4);
    double demo_speedup =
        static_cast<double>(sharding.demoSerial.makespan) /
        static_cast<double>(
            std::max<SimTime>(sharding.demoOverlap.makespan, 1));
    std::cout << "scaling efficiency at 4 devices (overlap on): "
              << formatDouble(100.0 * eff4, 1) << "%\n"
              << "back-to-back LLM overlap demo ("
              << kOverlapDemoRequests << "x GPTN-S, 1 device): "
              << formatMs(sharding.demoSerial.makespan) << " -> "
              << formatMs(sharding.demoOverlap.makespan) << " ("
              << formatDouble(demo_speedup, 3) << "x)\n";

    // Acceptance shapes: 4 devices with overlap sustain at least
    // 2.5x the single-device max; overlap alone improves the
    // back-to-back LLM makespan; scaling is monotone in devices.
    auto max_qps_at = [&](int devices, bool overlap) {
        for (const auto &p : sharding.points) {
            if (p.devices == devices && p.overlap == overlap)
                return p.maxQps;
        }
        return 0.0;
    };
    bool shard_ok = true;
    shard_ok &= max_qps_at(4, true) >= 2.5 * max_qps_at(1, true);
    shard_ok &= max_qps_at(4, true) >= 2.5 * max_qps_at(1, false);
    shard_ok &= sharding.demoOverlap.makespan <
                sharding.demoSerial.makespan;
    for (bool overlap : {false, true}) {
        double prev = 0.0;
        for (int n : kShardDeviceCounts) {
            double q = max_qps_at(n, overlap);
            shard_ok &= q >= prev;
            prev = q;
        }
    }
    for (const auto &p : sharding.points)
        shard_ok &= !p.headline.unstable;
    std::cout << "Sharding shape check (>= 2.5x at 4 devices, "
                 "overlap improves makespan, monotone scaling): "
              << (shard_ok ? "PASS" : "FAIL") << "\n";
    ok &= shard_ok;

    std::ostringstream sjson;
    sjson << "  \"serving_sharding\": {\n    \"policy\": \"fifo\",\n"
          << "    \"request_count\": " << kShardingRequests
          << ",\n    \"scaling_efficiency_4dev\": "
          << formatDouble(eff4, 4) << ",\n    \"scaling\": [\n";
    for (std::size_t i = 0; i < sharding.points.size(); ++i) {
        const auto &p = sharding.points[i];
        const auto &s = p.headline.stats;
        sjson << "      {\"devices\": " << p.devices
              << ", \"overlap\": " << (p.overlap ? "true" : "false")
              << ", \"max_sustainable_qps\": " << p.maxQps
              << ", \"headline_qps\": "
              << formatDouble(p.headlineQps, 3)
              << ", \"p95_ms\": " << s.p95Ms()
              << ", \"goodput\": " << s.goodputRate()
              << ", \"mean_compute_util\": "
              << formatDouble(meanUtil(p.headline, true), 4)
              << ", \"mean_dma_util\": "
              << formatDouble(meanUtil(p.headline, false), 4) << "}"
              << (i + 1 < sharding.points.size() ? "," : "") << "\n";
    }
    sjson << "    ],\n    \"overlap_demo\": {\"model\": \"GPTN-S\", "
          << "\"requests\": " << kOverlapDemoRequests
          << ", \"serial_makespan_ms\": "
          << toMilliseconds(sharding.demoSerial.makespan)
          << ", \"overlap_makespan_ms\": "
          << toMilliseconds(sharding.demoOverlap.makespan)
          << ", \"makespan_speedup\": "
          << formatDouble(demo_speedup, 4) << "}\n  }\n";

    // ------------------------------------------------ fault study
    printHeading(std::cout,
                 "Fault tolerance: crash / slowdown / flapping");
    auto faults = runFaultStudy(arm);
    Table ft({"Scenario", "Goodput", "p99", "Shed", "Retries",
              "Failovers", "Fault sheds", "Starved", "Dev0 down",
              "Accounted"});
    for (const auto &f : faults) {
        const auto &s = f.outcome.stats;
        const auto &fc = f.outcome.faults;
        ft.addRow({f.scenario,
                   formatDouble(100.0 * s.goodputRate(), 2) + "%",
                   formatMs(s.p99()), std::to_string(s.shedCount()),
                   std::to_string(fc.retries),
                   std::to_string(fc.failovers),
                   std::to_string(fc.faultSheds),
                   std::to_string(fc.starved),
                   formatDouble(100.0 * f.downFraction, 1) + "%",
                   f.accountingComplete ? "yes" : "NO"});
    }
    ft.print(std::cout);

    // Acceptance shapes: a single mid-run crash (device down for a
    // quarter of the run) costs less than 35% goodput vs fault-free;
    // the flapping device actually flaps and still neither deadlocks
    // nor loses a request without a shed record; the fault-free run
    // trips no fault machinery at all.
    auto fault_row = [&](const char *name) -> const FaultFigures & {
        for (const auto &f : faults)
            if (f.scenario == name)
                return f;
        return faults.front();
    };
    const auto &ff = fault_row("fault_free");
    const auto &crash = fault_row("crash_midrun");
    const auto &flap = fault_row("flapping");
    bool fault_ok = true;
    for (const auto &f : faults) {
        fault_ok &= f.accountingComplete;
        fault_ok &= !f.outcome.unstable;
    }
    double crash_goodput_ratio =
        crash.outcome.stats.goodputRate() /
        std::max(ff.outcome.stats.goodputRate(), 1e-12);
    fault_ok &= crash_goodput_ratio >= 0.65;
    fault_ok &= crash.outcome.faults.crashes == 1;
    fault_ok &= flap.outcome.faults.crashes >= 2;
    fault_ok &= ff.outcome.faults.crashes == 0 &&
                ff.outcome.faults.retries == 0 &&
                ff.outcome.faults.timeouts == 0;
    std::cout << "crash_midrun goodput ratio vs fault_free: "
              << formatDouble(crash_goodput_ratio, 4) << "\n"
              << "Fault shape check (crash costs < 35% goodput, "
                 "every request accounted, flapping flaps): "
              << (fault_ok ? "PASS" : "FAIL") << "\n";
    ok &= fault_ok;

    std::ostringstream fjson;
    fjson << "  \"serving_faults\": {\n    \"request_count\": "
          << kFaultRequests << ",\n    \"devices\": " << kFaultDevices
          << ",\n    \"overlap\": true,\n    \"policy\": "
             "\"deadline\",\n    \"crash_goodput_ratio\": "
          << formatDouble(crash_goodput_ratio, 4)
          << ",\n    \"scenarios\": [\n";
    for (std::size_t i = 0; i < faults.size(); ++i) {
        const auto &f = faults[i];
        const auto &s = f.outcome.stats;
        const auto &fc = f.outcome.faults;
        fjson << "      {\"scenario\": \"" << f.scenario
              << "\", \"goodput\": " << s.goodputRate()
              << ", \"p99_ms\": " << s.p99Ms()
              << ", \"shed\": " << s.shedCount()
              << ", \"crashes\": " << fc.crashes
              << ", \"timeouts\": " << fc.timeouts
              << ", \"dma_aborts\": " << fc.dmaAborts
              << ", \"retries\": " << fc.retries
              << ", \"failovers\": " << fc.failovers
              << ", \"fault_sheds\": " << fc.faultSheds
              << ", \"starved\": " << fc.starved
              << ", \"down_fraction_dev0\": "
              << formatDouble(f.downFraction, 4)
              << ", \"accounting_complete\": "
              << (f.accountingComplete ? "true" : "false") << "}"
              << (i + 1 < faults.size() ? "," : "") << "\n";
    }
    fjson << "    ]\n  },\n"; // serving_admission section follows

    // ------------------------------------------- admission study
    auto admission =
        runAdmissionStudy(arm, memo, ThreadPool::defaultThreadCount());
    auto [admission_ok, ajson] = reportAdmissionStudy(admission);
    ok &= admission_ok;

    // --------------------------------------- observability study
    auto [obs_ok, ojson] = runObsStudy(arm);
    ok &= obs_ok;

    if (argc > 1) {
        std::ofstream out(argv[1]);
        out << json.str() << fjson.str() << ajson << ",\n" << ojson
            << ",\n" << sjson.str() << "}\n";
        if (out.good()) {
            std::cout << "wrote " << argv[1] << "\n";
        } else {
            std::cerr << "failed to write " << argv[1] << "\n";
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
