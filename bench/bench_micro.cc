/**
 * @file
 * Google-benchmark micro suites for the performance-sensitive library
 * components: the CP-SAT solver, LC-OPG planning end to end, texture
 * layout/cache simulation, the GBT regressor, and the streaming
 * runtime.
 */

#include <benchmark/benchmark.h>

#include "core/flashmem.hh"
#include "core/lc_opg.hh"
#include "gpusim/texture_cache.hh"
#include "models/model_zoo.hh"
#include "profiler/capacity.hh"
#include "profiler/gbt.hh"
#include "solver/solver.hh"

namespace {

using namespace flashmem;

/** CP-SAT on OPG-window-shaped instances of growing size. */
void
BM_SolverWindow(benchmark::State &state)
{
    const int weights = static_cast<int>(state.range(0));
    const int layers = 8;
    for (auto _ : state) {
        solver::CpModel m;
        std::vector<std::vector<solver::VarId>> x(weights);
        for (int w = 0; w < weights; ++w) {
            std::vector<solver::LinearTerm> row;
            for (int l = 0; l < layers; ++l) {
                x[w].push_back(m.newIntVar(0, 8));
                row.push_back({x[w][l], 1});
            }
            m.addEquality(row, 8);
        }
        for (int l = 0; l < layers; ++l) {
            std::vector<solver::LinearTerm> col;
            for (int w = 0; w < weights; ++w)
                col.push_back({x[w][l], 1});
            m.addLessOrEqual(col, weights * 2);
        }
        std::vector<solver::LinearTerm> obj;
        for (int w = 0; w < weights; ++w)
            for (int l = 0; l < layers; ++l)
                obj.push_back({x[w][l], layers - l});
        m.minimize(obj);
        solver::SolverParams params;
        params.timeLimitSeconds = 0.02;
        auto r = solver::CpSolver(params).solve(m);
        benchmark::DoNotOptimize(r.objective);
    }
}
BENCHMARK(BM_SolverWindow)->Arg(8)->Arg(16)->Arg(32);

/** Full LC-OPG plan generation per model scale. */
void
BM_PlanModel(benchmark::State &state)
{
    static const models::ModelId ids[] = {models::ModelId::ResNet50,
                                          models::ModelId::ViT,
                                          models::ModelId::GPTNeo1_3B};
    auto g = models::buildModel(ids[state.range(0)]);
    gpusim::KernelModel km(gpusim::DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);
    for (auto _ : state) {
        core::LcOpgPlanner planner(g, cap, km);
        auto plan = planner.plan();
        benchmark::DoNotOptimize(plan.preloadBytes(g));
    }
    state.SetLabel(g.name());
}
BENCHMARK(BM_PlanModel)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

/** Texture-cache simulation throughput (tiled sweep). */
void
BM_TextureCacheTiledSweep(benchmark::State &state)
{
    graph::TensorDesc desc{{768, 3072}, Precision::FP16};
    auto layout = gpusim::TextureLayout::forTensor(desc);
    for (auto _ : state) {
        gpusim::TextureCache cache(kib(128), 64, 8);
        double rate = gpusim::simulateTiledSweep(cache, layout,
                                                 Precision::FP16, 8, 8);
        benchmark::DoNotOptimize(rate);
    }
}
BENCHMARK(BM_TextureCacheTiledSweep)->Unit(benchmark::kMillisecond);

/** GBT training on profiling-sized datasets. */
void
BM_GbtFit(benchmark::State &state)
{
    Rng rng(9);
    const int n = static_cast<int>(state.range(0));
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < n; ++i) {
        double a = rng.uniform(0, 8), b = rng.uniform(0, 8);
        x.push_back({a, b, a * b});
        y.push_back(3 * a + b * b + rng.gaussian(0, 0.1));
    }
    for (auto _ : state) {
        profiler::GbtParams params;
        params.trees = 60;
        profiler::GbtRegressor gbt(params);
        gbt.fit(x, y);
        benchmark::DoNotOptimize(gbt.predict({4.0, 4.0, 16.0}));
    }
}
BENCHMARK(BM_GbtFit)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

/** Streaming-runtime simulation throughput (compile once, run many). */
void
BM_StreamingRuntime(benchmark::State &state)
{
    core::FlashMem fm(gpusim::DeviceProfile::onePlus12());
    auto g = models::buildModel(models::ModelId::ViT);
    auto compiled = fm.compile(g);
    for (auto _ : state) {
        gpusim::GpuSimulator sim(fm.device());
        auto r = fm.execute(sim, compiled);
        benchmark::DoNotOptimize(r.integratedLatency());
    }
}
BENCHMARK(BM_StreamingRuntime)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
