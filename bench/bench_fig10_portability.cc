/**
 * @file
 * Figure 10 reproduction: portability across OnePlus 11, Xiaomi Mi 6,
 * and Google Pixel 8 — FlashMem's latency speedup and memory saving
 * over SmartMem per device for SD-UNet, GPT-Neo-1.3B, and ViT, with
 * the published OOM pattern (GPTN-1.3B initialization exceeds the
 * 6-8 GB devices under SmartMem; FlashMem runs it everywhere).
 */

#include "bench/harness.hh"

int
main()
{
    using namespace flashmem;
    using namespace flashmem::bench;

    printHeading(std::cout,
                 "Figure 10: portability across devices vs SmartMem");

    const gpusim::DeviceProfile devices[] = {
        gpusim::DeviceProfile::onePlus11(),
        gpusim::DeviceProfile::xiaomiMi6(),
        gpusim::DeviceProfile::pixel8(),
    };
    const ModelId targets[] = {ModelId::SDUNet, ModelId::GPTNeo1_3B,
                               ModelId::ViT};

    Table t({"Device", "Model", "SMem integrated", "Ours",
             "Speedup", "SMem avg mem", "Ours", "Saving"});
    bool ok = true;
    for (const auto &dev : devices) {
        core::FlashMem fm(dev);
        for (auto id : targets) {
            const auto &g = cachedModel(id);
            auto flash = runFlash(fm, g);
            ok &= !flash.oom;

            auto smem = runBaseline(FrameworkId::SmartMem, g, dev);
            bool smem_usable = smem.has_value() && !smem->oom;
            if (!smem_usable) {
                // Published empty bars: GPTN-1.3B on Mi 6 / Pixel 8.
                t.addRow({dev.name, models::modelSpec(id).abbr,
                          "OOM", formatMs(flash.integratedLatency()),
                          "-", "OOM",
                          formatBytes(static_cast<Bytes>(
                              flash.avgMemoryBytes)),
                          "-"});
                ok &= id == ModelId::GPTNeo1_3B;
                ok &= dev.ramBytes <= gib(8);
                continue;
            }
            double speedup =
                static_cast<double>(smem->integratedLatency()) /
                static_cast<double>(flash.integratedLatency());
            double saving =
                smem->avgMemoryBytes / flash.avgMemoryBytes;
            t.addRow({dev.name, models::modelSpec(id).abbr,
                      formatMs(smem->integratedLatency()),
                      formatMs(flash.integratedLatency()),
                      formatRatio(speedup),
                      formatBytes(static_cast<Bytes>(
                          smem->avgMemoryBytes)),
                      formatBytes(static_cast<Bytes>(
                          flash.avgMemoryBytes)),
                      formatRatio(saving)});
            ok &= speedup > 1.5;
            ok &= saving > 1.5;
        }
        t.addRule();
    }
    t.print(std::cout);

    std::cout << "\nShape check (consistent wins on every device; "
                 "GPTN-1.3B OOMs under SmartMem only on 6-8 GB "
                 "devices): "
              << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
}
