/**
 * @file
 * Shared infrastructure for the table/figure reproduction harnesses:
 * the paper's published numbers (for side-by-side printing) and helpers
 * that run one (framework, model, device) cell.
 *
 * Reproduction policy: the substrate is a simulator, not the authors'
 * phones, so harnesses check *shape* — orderings, unsupported/OOM
 * patterns, and rough factors — and print paper vs measured for
 * EXPERIMENTS.md. See DESIGN.md Section 6.
 */

#ifndef FLASHMEM_BENCH_HARNESS_HH
#define FLASHMEM_BENCH_HARNESS_HH

#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "baselines/naive_overlap.hh"
#include "baselines/preload_framework.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "core/flashmem.hh"
#include "metrics/report.hh"
#include "models/model_zoo.hh"

namespace flashmem::bench {

using baselines::FrameworkId;
using models::ModelId;

/** Paper Table 7 entries (milliseconds); negative = "-" unsupported. */
struct PaperLatency
{
    double init = -1;
    double exec = -1;
    bool
    supported() const
    {
        return init >= 0;
    }
    double
    integrated() const
    {
        return init + exec;
    }
};

/** Published Table 7 cell for (framework, model); unsupported = nullopt
 * semantics via PaperLatency::supported(). */
PaperLatency paperTable7(FrameworkId fw, ModelId m);

/** Published FlashMem integrated latency (Table 7 "Ours"), ms. */
double paperTable7Flash(ModelId m);

/** Published Table 8 average memory (MB); negative = unsupported. */
double paperTable8(FrameworkId fw, ModelId m);

/** Published FlashMem average memory (Table 8 "Ours"), MB. */
double paperTable8Flash(ModelId m);

/** Run one baseline cell; nullopt when the framework rejects the
 * model. OOM outcomes are returned with .oom set. */
std::optional<core::RunResult> runBaseline(
    FrameworkId fw, const graph::Graph &g,
    const gpusim::DeviceProfile &dev);

/** Compile + run FlashMem on a fresh simulator. */
core::RunResult runFlash(const core::FlashMem &fm,
                         const graph::Graph &g);

/** "123 ms" / "-" / "OOM" cell formatting. */
std::string cellMs(const std::optional<core::RunResult> &r, bool init);

/** Cache of built models so multi-table benches stay fast. */
const graph::Graph &cachedModel(ModelId id);

/** One Table-4 model: display name + cached graph. */
struct Table4Model
{
    std::string name;
    const graph::Graph *graph = nullptr;
};

/**
 * The Table-4 model set — GPT-Neo S/1.3B/2.7B plus the synthetic
 * ViT-8B, Llama2-13B, and Llama2-70B — built once and cached. Shared
 * by bench_table4_solver_runtime and the fig-7 phase-breakdown bench,
 * and the model set the parallel-planning determinism checks run on.
 */
const std::vector<Table4Model> &table4ModelSet();

/** Cache of FlashMem compilations per device name. */
const core::CompiledModel &cachedCompiled(const core::FlashMem &fm,
                                          ModelId id);

} // namespace flashmem::bench

#endif // FLASHMEM_BENCH_HARNESS_HH
