/**
 * @file
 * Table 4 reproduction: LC-OPG offline time breakdown (process nodes /
 * build CP model / solve) for GPT-Neo S/1.3B/2.7B and the synthetic
 * ViT-8B, Llama2-13B, Llama2-70B, each under the paper's 150-second
 * limit. Absolute times differ from the authors' 128-thread
 * workstation; the checks are (a) every plan lands OPTIMAL or FEASIBLE,
 * and (b) cost grows with model scale.
 *
 * Additionally proves out the solver rewrite: the trail-based engine is
 * compared head-to-head against the seed DFS ("baseline") on identical
 * CP models — exhaustively solved instances must agree on optimum and
 * status, and fixed-decision-budget instances measure wall time per
 * decision. The PASS bar is a >= 5x aggregate reduction in solver wall
 * time (equivalently decisions/s). A final section demonstrates the
 * plan memo: re-planning an unchanged model reuses cached incumbents.
 *
 * A final portfolio section measures the inside-one-window parallel
 * search: symmetry breaking's conflict reduction on interchangeable
 * windows, the K=4 configuration portfolio proving strictly more
 * budget-truncated windows optimal at an unchanged per-configuration
 * decision budget, and byte-determinism across pool sizes 1/2/8.
 *
 * With an argument, also writes the measurements as JSON (consumed by
 * tools/run_benchmarks.sh -> BENCH_table4.json). With
 * `--portfolio-only PATH` runs just the portfolio section and writes
 * its JSON fragment to PATH (tools/run_benchmarks.sh --only portfolio).
 */

#include "bench/harness.hh"

#include <chrono>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/lc_opg.hh"
#include "graph/builder.hh"
#include "profiler/capacity.hh"
#include "solver/portfolio.hh"
#include "solver/solver.hh"
#include "solver/symmetry.hh"

namespace {

using namespace flashmem;
using solver::CpModel;
using solver::CpSolver;
using solver::LinearTerm;
using solver::SearchEngine;
using solver::SolveResult;
using solver::SolverParams;
using solver::VarId;

/** One CP instance plus its greedy warm-start hint. */
struct Instance
{
    std::string name;
    CpModel model;
    std::vector<std::int64_t> hint;
    std::uint64_t decisionBudget = 0; ///< 0 = run to exhaustion
};

/**
 * OPG-window-shaped instance: per-weight coverage equalities
 * (y_w + sum_l x_{w,l} = T(w)), per-layer capacity rows, z_w
 * implication chains, and the lambda/mu objective — the same structure
 * LcOpgPlanner::planWindow() emits, at a parameterizable scale.
 */
Instance
opgWindowInstance(const std::string &name, int weights, int layers,
                  int tw, int cap, unsigned seed,
                  std::uint64_t decision_budget)
{
    Rng rng(seed);
    Instance inst;
    inst.name = name;
    inst.decisionBudget = decision_budget;
    CpModel &m = inst.model;

    std::vector<std::vector<VarId>> x(weights);
    std::vector<VarId> y(weights), z(weights);
    std::vector<int> consumer(weights);
    std::vector<std::int64_t> residual(layers, cap);
    for (int w = 0; w < weights; ++w)
        consumer[w] = 1 + static_cast<int>(rng.uniformInt(1, layers - 1));

    for (int w = 0; w < weights; ++w) {
        std::vector<LinearTerm> row;
        y[w] = m.newIntVar(0, tw);
        row.push_back({y[w], 1});
        for (int l = 0; l < consumer[w]; ++l) {
            x[w].push_back(m.newIntVar(0, tw));
            row.push_back({x[w].back(), 1});
        }
        m.addEquality(row, tw);
        z[w] = m.newIntVar(0, consumer[w]);
        for (int l = 0; l < consumer[w]; ++l)
            m.addImplicationGeLe(x[w][l], 1, z[w], l);
    }
    for (int l = 0; l < layers; ++l) {
        std::vector<LinearTerm> col;
        for (int w = 0; w < weights; ++w) {
            if (l < consumer[w])
                col.push_back({x[w][l], 1});
        }
        if (!col.empty())
            m.addLessOrEqual(col, cap);
    }
    std::vector<LinearTerm> obj;
    for (int w = 0; w < weights; ++w) {
        obj.push_back({y[w], 90}); // lambda-weighted preload cost
        for (int l = 0; l < consumer[w]; ++l)
            obj.push_back({x[w][l], consumer[w] - l - 1});
        obj.push_back({z[w], -10}); // mu-weighted distance reward
    }
    m.minimize(obj);

    // Greedy latest-feasible hint, mirroring LcOpgPlanner's warm start.
    std::vector<std::int64_t> hint(m.varCount(), 0);
    for (int w = 0; w < weights; ++w) {
        std::int64_t rem = tw;
        std::int64_t zval = consumer[w];
        for (int l = consumer[w] - 1; l >= 0 && rem > 0; --l) {
            std::int64_t take =
                std::min<std::int64_t>(rem, residual[l]);
            if (take <= 0)
                continue;
            residual[l] -= take;
            hint[x[w][l]] = take;
            rem -= take;
            zval = l;
        }
        hint[y[w]] = rem;
        hint[z[w]] = zval;
    }
    inst.hint = std::move(hint);
    return inst;
}

struct EngineRun
{
    SolveResult base;
    SolveResult trail;
};

EngineRun
runBothEngines(const Instance &inst, double time_limit)
{
    EngineRun out;
    for (auto engine : {SearchEngine::Baseline, SearchEngine::Trail}) {
        SolverParams p;
        p.engine = engine;
        p.timeLimitSeconds = time_limit;
        p.maxDecisions = inst.decisionBudget;
        auto r = CpSolver(p).solve(inst.model, &inst.hint);
        (engine == SearchEngine::Baseline ? out.base : out.trail) =
            std::move(r);
    }
    return out;
}

double
decisionsPerSecond(const SolveResult &r)
{
    return static_cast<double>(r.decisions) / (r.wallSeconds + 1e-12);
}

/**
 * Fully interchangeable OPG window: every weight has the same total
 * size and the same consumer set (all layers), so every per-weight
 * [y_w, x_w*, z_w] block swaps with every other — the worst case for
 * plain search and the best case for lex symmetry breaking.
 */
Instance
symWindowInstance(const std::string &name, int weights, int layers,
                  int tw, int cap,
                  std::vector<solver::VarBlock> *blocks_out)
{
    Instance inst;
    inst.name = name;
    CpModel &m = inst.model;

    std::vector<std::vector<VarId>> x(weights);
    std::vector<VarId> y(weights), z(weights);
    for (int w = 0; w < weights; ++w) {
        std::vector<LinearTerm> row;
        y[w] = m.newIntVar(0, tw);
        row.push_back({y[w], 1});
        for (int l = 0; l < layers; ++l) {
            x[w].push_back(m.newIntVar(0, tw));
            row.push_back({x[w].back(), 1});
        }
        m.addEquality(row, tw);
        z[w] = m.newIntVar(0, layers);
        for (int l = 0; l < layers; ++l)
            m.addImplicationGeLe(x[w][l], 1, z[w], l);
    }
    for (int l = 0; l < layers; ++l) {
        std::vector<LinearTerm> col;
        for (int w = 0; w < weights; ++w)
            col.push_back({x[w][l], 1});
        m.addLessOrEqual(col, cap);
    }
    std::vector<LinearTerm> obj;
    for (int w = 0; w < weights; ++w) {
        obj.push_back({y[w], 90});
        for (int l = 0; l < layers; ++l)
            obj.push_back({x[w][l], layers - l - 1});
        obj.push_back({z[w], -10});
    }
    m.minimize(obj);

    if (blocks_out) {
        for (int w = 0; w < weights; ++w) {
            solver::VarBlock b;
            b.vars.push_back(y[w]);
            for (auto v : x[w])
                b.vars.push_back(v);
            b.vars.push_back(z[w]);
            blocks_out->push_back(std::move(b));
        }
    }
    return inst;
}

/**
 * Portfolio + symmetry study (the `solver_portfolio` JSON section).
 *
 * (a) Symmetry: interchangeable windows solved to exhaustion with and
 *     without lex rows must agree on the optimum, and the rows must
 *     cut conflicts (the aggregate plain/broken conflict ratio is the
 *     machine-independent speedup figure the regression gate tracks).
 * (b) Budget: instances solved by a single restarting configuration
 *     vs the K=4 portfolio at the identical per-configuration decision
 *     budget — the portfolio must prove strictly more windows optimal
 *     and never end with a worse objective.
 * (c) Determinism: the merged portfolio result must be byte-identical
 *     across pool sizes 1/2/8.
 * (d) Informational: Llama2-70B whole-plan wall time, single vs
 *     portfolio, plus the symmetry rows the planner adds by default.
 *
 * Returns {ok, fragment}; the fragment is the `"solver_portfolio"`
 * member without a trailing comma, shared by the full run and
 * --portfolio-only.
 */
std::pair<bool, std::string>
reportPortfolioStudy()
{
    bool ok = true;
    std::ostringstream json;
    json << "  \"solver_portfolio\": {\n";

    // --------------------------------------------------------------
    // (a) Symmetry breaking on interchangeable windows.
    // --------------------------------------------------------------
    printHeading(std::cout,
                 "Symmetry breaking: interchangeable windows, "
                 "run-to-exhaustion conflicts");

    struct SymCase
    {
        const char *name;
        int weights, layers, tw, cap;
    };
    const SymCase sym_cases[] = {
        {"sym-w5-l3", 5, 3, 2, 3},
        {"sym-w6-l3", 6, 3, 2, 4},
        {"sym-w6-l4", 6, 4, 2, 4},
        {"sym-w7-l3", 7, 3, 2, 4},
    };

    Table st({"Instance", "Objective", "Lex rows", "Plain conflicts",
              "Broken conflicts", "Ratio"});
    std::uint64_t conf_plain = 0, conf_broken = 0;
    json << "    \"symmetry_instances\": [\n";
    for (std::size_t i = 0; i < std::size(sym_cases); ++i) {
        const auto &c = sym_cases[i];
        SolverParams sp;
        sp.timeLimitSeconds = 60.0;

        auto plain = symWindowInstance(c.name, c.weights, c.layers,
                                       c.tw, c.cap, nullptr);
        auto r_plain = CpSolver(sp).solve(plain.model, nullptr);

        std::vector<solver::VarBlock> blocks;
        auto broken = symWindowInstance(c.name, c.weights, c.layers,
                                        c.tw, c.cap, &blocks);
        auto groups =
            solver::groupInterchangeableBlocks(broken.model, blocks);
        std::size_t rows =
            solver::addSymmetryBreaking(broken.model, blocks, groups);
        auto r_broken = CpSolver(sp).solve(broken.model, nullptr);

        // Lex rows are sound: same optimum, proven both ways.
        ok &= r_plain.status == solver::SolveStatus::Optimal;
        ok &= r_broken.status == solver::SolveStatus::Optimal;
        ok &= r_plain.objective == r_broken.objective;
        ok &= rows > 0;
        ok &= r_broken.backtracks < r_plain.backtracks;
        conf_plain += r_plain.backtracks;
        conf_broken += r_broken.backtracks;

        double ratio = static_cast<double>(r_plain.backtracks) /
                       static_cast<double>(
                           r_broken.backtracks ? r_broken.backtracks
                                               : 1);
        st.addRow({c.name, std::to_string(r_broken.objective),
                   std::to_string(rows),
                   std::to_string(r_plain.backtracks),
                   std::to_string(r_broken.backtracks),
                   formatDouble(ratio, 1) + "x"});
        json << "      {\"name\": \"" << c.name
             << "\", \"objective\": " << r_broken.objective
             << ", \"lex_rows\": " << rows
             << ", \"plain_conflicts\": " << r_plain.backtracks
             << ", \"broken_conflicts\": " << r_broken.backtracks
             << "}" << (i + 1 < std::size(sym_cases) ? "," : "")
             << "\n";
    }
    st.print(std::cout);

    double conflict_ratio =
        static_cast<double>(conf_plain) /
        static_cast<double>(conf_broken ? conf_broken : 1);
    ok &= conflict_ratio > 1.0;
    std::cout << "\nAggregate conflict ratio (plain / broken): "
              << formatDouble(conflict_ratio, 1)
              << "x (deterministic; gated)\n";
    json << "    ],\n    \"symmetry_conflict_ratio\": "
         << conflict_ratio << ",\n";

    // --------------------------------------------------------------
    // (b) Portfolio vs single configuration at an unchanged
    //     per-configuration decision budget.
    // --------------------------------------------------------------
    printHeading(std::cout,
                 "Portfolio (K=4) vs single configuration at the same "
                 "per-config budget");

    struct BudgetCase
    {
        const char *name;
        int weights, layers, tw, cap;
        unsigned seed;
        std::uint64_t budget;
    };
    // Budgets bracket the proving thresholds measured for the
    // restarting base (config 0) vs the no-restart exhaustion config:
    // the first three flip FEASIBLE -> OPTIMAL under the portfolio,
    // the -wide case proves either way, w10-l6 proves neither way.
    const BudgetCase budget_cases[] = {
        {"budget-w8-l5", 8, 5, 2, 5, 1, 100000},
        {"budget-w9-l5", 9, 5, 2, 6, 7, 200000},
        {"budget-w8-l4", 8, 4, 2, 6, 11, 50000},
        {"budget-w8-l4-wide", 8, 4, 2, 6, 11, 200000},
        {"budget-w10-l6", 10, 6, 3, 8, 21, 100000},
    };
    constexpr int kConfigs = 4;
    const int hw_threads = std::max(
        1u, std::thread::hardware_concurrency());

    Table bt({"Instance", "Budget", "Single", "Portfolio", "Single obj",
              "Portfolio obj", "Winner"});
    int optimal_single = 0, optimal_portfolio = 0;
    json << "    \"budget_instances\": [\n";
    for (std::size_t i = 0; i < std::size(budget_cases); ++i) {
        const auto &c = budget_cases[i];
        auto inst = opgWindowInstance(c.name, c.weights, c.layers,
                                      c.tw, c.cap, c.seed, c.budget);
        SolverParams base;
        base.timeLimitSeconds = 60.0;
        base.maxDecisions = c.budget;
        // The Table-4 planner's budget-truncated window setup.
        base.restartConflictBase = 1024;

        auto r_single = CpSolver(base).solve(inst.model, &inst.hint);
        auto r_port = solver::solvePortfolio(inst.model, base, kConfigs,
                                             &inst.hint, hw_threads);

        bool s_opt = r_single.status == solver::SolveStatus::Optimal;
        bool p_opt =
            r_port.result.status == solver::SolveStatus::Optimal;
        optimal_single += s_opt ? 1 : 0;
        optimal_portfolio += p_opt ? 1 : 0;
        // The portfolio contains config 0 (= the single arm) at the
        // same budget, so it can never do worse on either axis.
        ok &= r_port.result.objective <= r_single.objective;
        ok &= !s_opt || p_opt;

        bt.addRow({c.name, std::to_string(c.budget),
                   solver::solveStatusName(r_single.status),
                   solver::solveStatusName(r_port.result.status),
                   std::to_string(r_single.objective),
                   std::to_string(r_port.result.objective),
                   // std::string("k") + ...: the const char* + rvalue
                   // overload trips GCC 12's -Wrestrict false positive
                   // (PR105651) under -O3.
                   std::string("k") +
                       std::to_string(r_port.winningConfig)});
        json << "      {\"name\": \"" << c.name
             << "\", \"budget\": " << c.budget
             << ", \"single_status\": \""
             << solver::solveStatusName(r_single.status)
             << "\", \"single_objective\": " << r_single.objective
             << ", \"portfolio_status\": \""
             << solver::solveStatusName(r_port.result.status)
             << "\", \"portfolio_objective\": "
             << r_port.result.objective
             << ", \"winning_config\": " << r_port.winningConfig
             << "}" << (i + 1 < std::size(budget_cases) ? "," : "")
             << "\n";
    }
    bt.print(std::cout);

    ok &= optimal_portfolio > optimal_single;
    std::cout << "\nWindows proven optimal: single " << optimal_single
              << "/" << std::size(budget_cases) << ", portfolio "
              << optimal_portfolio << "/" << std::size(budget_cases)
              << " (portfolio strictly more: "
              << (optimal_portfolio > optimal_single ? "PASS" : "FAIL")
              << ")\n";
    json << "    ],\n    \"optimal_windows_single\": " << optimal_single
         << ",\n    \"optimal_windows_portfolio\": "
         << optimal_portfolio << ",\n";

    // --------------------------------------------------------------
    // (c) Byte-determinism across pool sizes 1/2/8.
    // --------------------------------------------------------------
    const int pool_sizes[] = {1, 2, 8};
    bool deterministic = true;
    for (const auto &c :
         {budget_cases[0], budget_cases[3], budget_cases[4]}) {
        auto inst = opgWindowInstance(c.name, c.weights, c.layers,
                                      c.tw, c.cap, c.seed, c.budget);
        SolverParams base;
        base.timeLimitSeconds = 60.0;
        base.maxDecisions = c.budget;
        base.restartConflictBase = 1024;
        auto ref = solver::solvePortfolio(inst.model, base, kConfigs,
                                          &inst.hint, pool_sizes[0]);
        for (std::size_t t = 1; t < std::size(pool_sizes); ++t) {
            auto r = solver::solvePortfolio(inst.model, base, kConfigs,
                                            &inst.hint, pool_sizes[t]);
            deterministic &= r.winningConfig == ref.winningConfig;
            deterministic &= r.result.status == ref.result.status;
            deterministic &= r.result.objective == ref.result.objective;
            deterministic &= r.result.values == ref.result.values;
        }
    }
    ok &= deterministic;
    std::cout << "Merged result identical across pool sizes 1/2/8: "
              << (deterministic ? "PASS" : "FAIL") << "\n";
    json << "    \"pool_sizes_checked\": [1, 2, 8],\n"
         << "    \"deterministic\": "
         << (deterministic ? "true" : "false") << ",\n";

    // --------------------------------------------------------------
    // (d) Whole-plan wall time, Llama2-70B, single vs portfolio
    //     (informational: wall depends on host core count).
    // --------------------------------------------------------------
    const auto &t4models = bench::table4ModelSet();
    const auto &llama70b = t4models.back();
    FM_ASSERT(llama70b.name == "Llama2-70B",
              "table4ModelSet() order changed");
    gpusim::KernelModel km(gpusim::DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);

    double plan_single_s = 0.0, plan_portfolio_s = 0.0;
    std::uint64_t symmetry_rows = 0;
    int plan_threads = 1;
    for (int configs : {1, kConfigs}) {
        core::OpgParams params;
        params.solverDecisionsPerWindow = 20000;
        params.restartConflictBase = 1024;
        params.portfolioConfigs = configs;
        core::PlanMemo memo(2048); // isolate from earlier sections
        params.memo = &memo;
        core::LcOpgPlanner planner(*llama70b.graph, cap, km, params);
        core::PlanStats stats;
        auto t0 = std::chrono::steady_clock::now();
        auto plan = planner.plan(&stats);
        double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        ok &= plan.validate(*llama70b.graph, false);
        (configs == 1 ? plan_single_s : plan_portfolio_s) = wall;
        symmetry_rows = stats.symmetryRows;
        plan_threads = stats.threads;
    }
    std::cout << "Llama2-70B whole plan: single "
              << formatDouble(plan_single_s, 2) << " s, portfolio (K="
              << kConfigs << ") " << formatDouble(plan_portfolio_s, 2)
              << " s on " << plan_threads << " thread(s); "
              << symmetry_rows << " symmetry rows added by default\n";
    json << "    \"llama70b_plan_single_s\": " << plan_single_s
         << ",\n    \"llama70b_plan_portfolio_s\": " << plan_portfolio_s
         << ",\n    \"llama70b_symmetry_rows\": " << symmetry_rows
         << ",\n    \"portfolio_configs\": " << kConfigs
         << ",\n    \"threads\": " << plan_threads << "\n  }";

    return {ok, json.str()};
}

/** `--portfolio-only PATH`: portfolio section alone, as a JSON
 *  fragment for tools/run_benchmarks.sh --only portfolio. */
int
runPortfolioOnly(const char *path)
{
    auto [ok, pjson] = reportPortfolioStudy();
    std::ofstream out(path);
    out << "{\n" << pjson << "\n}\n";
    if (out.good()) {
        std::cout << "\nwrote " << path << "\n";
    } else {
        std::cerr << "failed to write " << path << "\n";
        ok = false;
    }
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace flashmem;
    using namespace flashmem::bench;

    if (argc > 2 && std::strcmp(argv[1], "--portfolio-only") == 0)
        return runPortfolioOnly(argv[2]);

    bool ok = true;
    std::ostringstream json;
    json << "{\n";

    // ------------------------------------------------------------------
    // Part 1: trail engine vs seed DFS on identical CP models.
    // Exhaustive instances prove identical optima/statuses; budgeted
    // instances measure wall time for the same number of decisions.
    // ------------------------------------------------------------------
    printHeading(std::cout,
                 "Solver rewrite: trail engine vs seed DFS (same models)");

    std::vector<Instance> suite;
    // Run-to-OPTIMAL instances (small enough for the seed DFS).
    suite.push_back(opgWindowInstance("opt-w8-l5", 8, 5, 2, 5, 1, 0));
    suite.push_back(opgWindowInstance("opt-w9-l5", 9, 5, 2, 6, 7, 0));
    suite.push_back(opgWindowInstance("opt-w8-l4", 8, 4, 2, 6, 11, 0));
    // Fixed-decision-budget instances at LC-OPG window scale.
    suite.push_back(
        opgWindowInstance("win-w24-l8", 24, 8, 4, 14, 3, 400000));
    suite.push_back(
        opgWindowInstance("win-w32-l8", 32, 8, 4, 18, 5, 400000));
    suite.push_back(
        opgWindowInstance("win-w40-l10", 40, 10, 6, 26, 4, 400000));
    suite.push_back(
        opgWindowInstance("win-w56-l12", 56, 12, 6, 30, 9, 400000));
    suite.push_back(
        opgWindowInstance("win-w72-l14", 72, 14, 6, 36, 13, 400000));

    Table cmp({"Instance", "Status", "Objective", "Seed (s)",
               "Trail (s)", "Seed dec/s", "Trail dec/s", "Speedup"});
    double wall_base = 0.0, wall_trail = 0.0;
    std::uint64_t dec_base = 0, dec_trail = 0;
    json << "  \"solver_comparison\": {\n    \"instances\": [\n";
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &inst = suite[i];
        auto r = runBothEngines(inst, 60.0);
        ok &= r.base.status == r.trail.status;
        ok &= r.base.feasible() && r.trail.feasible();
        if (inst.decisionBudget == 0) {
            // Run to exhaustion: optima are defined and must match.
            ok &= r.base.status == solver::SolveStatus::Optimal;
            ok &= r.base.objective == r.trail.objective;
        } else {
            // Budget-truncated anytime results: each engine seeds its
            // incumbent from the hint, so neither may end worse than
            // the hint's objective (the invariant both guarantee).
            std::int64_t hint_obj = 0;
            for (const auto &t : inst.model.objective())
                hint_obj += t.coef * inst.hint[t.var];
            ok &= r.base.objective <= hint_obj;
            ok &= r.trail.objective <= hint_obj;
        }
        wall_base += r.base.wallSeconds;
        wall_trail += r.trail.wallSeconds;
        dec_base += r.base.decisions;
        dec_trail += r.trail.decisions;
        std::string obj_cell = std::to_string(r.trail.objective);
        if (r.base.objective != r.trail.objective)
            obj_cell += " (seed " + std::to_string(r.base.objective) +
                        ")";
        cmp.addRow({inst.name, solver::solveStatusName(r.trail.status),
                    obj_cell,
                    formatDouble(r.base.wallSeconds, 3),
                    formatDouble(r.trail.wallSeconds, 3),
                    formatDouble(decisionsPerSecond(r.base), 0),
                    formatDouble(decisionsPerSecond(r.trail), 0),
                    formatDouble(r.base.wallSeconds /
                                     (r.trail.wallSeconds + 1e-12),
                                 1) +
                        "x"});
        json << "      {\"name\": \"" << inst.name << "\", \"status\": \""
             << solver::solveStatusName(r.trail.status)
             << "\", \"objective\": " << r.trail.objective
             << ", \"seed_wall_s\": " << r.base.wallSeconds
             << ", \"trail_wall_s\": " << r.trail.wallSeconds
             << ", \"seed_decisions\": " << r.base.decisions
             << ", \"trail_decisions\": " << r.trail.decisions << "}"
             << (i + 1 < suite.size() ? "," : "") << "\n";
    }
    cmp.print(std::cout);

    double wall_speedup = wall_base / (wall_trail + 1e-12);
    double dps_base = static_cast<double>(dec_base) / (wall_base + 1e-12);
    double dps_trail =
        static_cast<double>(dec_trail) / (wall_trail + 1e-12);
    double dps_ratio = dps_trail / (dps_base + 1e-12);
    std::cout << "\nAggregate: seed " << formatDouble(wall_base, 2)
              << " s @ " << formatDouble(dps_base, 0)
              << " dec/s; trail " << formatDouble(wall_trail, 2)
              << " s @ " << formatDouble(dps_trail, 0) << " dec/s -> "
              << formatDouble(wall_speedup, 1) << "x wall, "
              << formatDouble(dps_ratio, 1) << "x dec/s\n";
    bool speedup_ok = wall_speedup >= 5.0 || dps_ratio >= 5.0;
    ok &= speedup_ok;
    std::cout << ">=5x solver speedup (identical statuses everywhere, "
                 "identical optima on exhausted instances): "
              << (speedup_ok ? "PASS" : "FAIL") << "\n";
    json << "    ],\n    \"aggregate_wall_speedup\": " << wall_speedup
         << ",\n    \"aggregate_decisions_per_sec_seed\": " << dps_base
         << ",\n    \"aggregate_decisions_per_sec_trail\": " << dps_trail
         << ",\n    \"decisions_per_sec_ratio\": " << dps_ratio
         << "\n  },\n";

    // ------------------------------------------------------------------
    // Part 2: Table 4 — LC-OPG offline breakdown per model.
    // ------------------------------------------------------------------
    printHeading(std::cout,
                 "Table 4: LC-OPG solver runtime (150 s budget)");
    core::PlanMemo::global().clear(); // cold Table-4 numbers

    // Published columns (seconds / status), aligned with
    // table4ModelSet() order.
    struct Published
    {
        double p_process, p_build, p_solve;
        const char *p_status;
    };
    const Published published[] = {
        {0.010, 0.260, 45.00, "OPTIMAL"},    // GPTN-S
        {0.020, 1.170, 121.00, "FEASIBLE"},  // GPTN-1.3B
        {0.050, 1.980, 121.00, "FEASIBLE"},  // GPTN-2.7B
        {0.001, 4.110, 121.40, "FEASIBLE"},  // ViT-8B
        {0.007, 3.566, 124.80, "FEASIBLE"},  // Llama2-13B
        {0.023, 14.456, 136.38, "FEASIBLE"}, // Llama2-70B
    };
    const auto &t4models = table4ModelSet();
    FM_ASSERT(t4models.size() == std::size(published),
              "published[] out of sync with table4ModelSet()");

    gpusim::KernelModel km(gpusim::DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);

    Table t({"Model", "Process (s)", "(paper)", "Build (s)", "(paper)",
             "Solve (s)", "(paper)", "Status", "(paper)"});
    double total_70b = 0.0, total_s = 0.0;
    int plan_threads = 1;
    json << "  \"table4\": [\n";
    for (std::size_t i = 0; i < t4models.size(); ++i) {
        const auto &e = t4models[i];
        const auto &pub = published[i];
        core::OpgParams params;
        // Scale per-window budget so the whole-model budget mirrors
        // the paper's 150 s limit across ~60 windows.
        params.solverDecisionsPerWindow = 20000;
        // Budget-truncated windows: Luby restarts + solution phase
        // saving keep incumbent quality under the same budget.
        params.restartConflictBase = 1024;
        core::LcOpgPlanner planner(*e.graph, cap, km, params);
        core::PlanStats stats;
        auto plan = planner.plan(&stats);
        ok &= plan.validate(*e.graph, false);
        plan_threads = stats.threads;

        const char *status =
            solver::solveStatusName(stats.overallStatus);
        t.addRow({e.name, formatDouble(stats.processNodesSeconds, 3),
                  formatDouble(pub.p_process, 3),
                  formatDouble(stats.buildModelSeconds, 3),
                  formatDouble(pub.p_build, 3),
                  formatDouble(stats.solveSeconds, 2),
                  formatDouble(pub.p_solve, 2), status, pub.p_status});
        json << "    {\"model\": \"" << e.name
             << "\", \"process_s\": " << stats.processNodesSeconds
             << ", \"stage_s\": " << stats.stageSeconds
             << ", \"build_s\": " << stats.buildModelSeconds
             << ", \"solve_s\": " << stats.solveSeconds
             << ", \"solve_cpu_s\": " << stats.solveCpuSeconds
             << ", \"merge_s\": " << stats.mergeSeconds
             << ", \"decisions\": " << stats.solverDecisions
             << ", \"restarts\": " << stats.solverRestarts
             << ", \"rebalanced_chunks\": " << stats.rebalancedChunks
             << ", \"status\": \"" << status << "\"}"
             << (i + 1 < t4models.size() ? "," : "") << "\n";

        double total = stats.processNodesSeconds +
                       stats.buildModelSeconds + stats.solveSeconds;
        if (e.name == "GPTN-S")
            total_s = total;
        if (e.name == "Llama2-70B")
            total_70b = total;
        ok &= stats.overallStatus == solver::SolveStatus::Optimal ||
              stats.overallStatus == solver::SolveStatus::Feasible;
    }
    t.print(std::cout);
    json << "  ],\n  \"threads\": " << plan_threads << ",\n";

    // Scale check: the 70B plan costs far more than the small model,
    // mirroring the paper's nonlinear growth.
    ok &= total_70b > 2.0 * total_s;
    std::cout << "\nShape check (all plans feasible, cost grows with "
                 "scale): "
              << (ok ? "PASS" : "FAIL") << "\n";

    // ------------------------------------------------------------------
    // Part 3: plan memo — re-planning an unchanged model warm-starts
    // every window from the cached incumbent. On a model whose windows
    // all solve to OPTIMAL the replanned plan is provably identical;
    // on budget-truncated models warm starts may improve the plan, so
    // there the check is validity + reuse.
    // ------------------------------------------------------------------
    printHeading(std::cout, "Plan memo: repeated planning calls");
    core::PlanMemo::global().clear();

    graph::GraphBuilder tiny_b("memo_tiny", Precision::FP16);
    {
        auto x = tiny_b.input({64, 256});
        for (int i = 0; i < 3; ++i) {
            std::string p = "blk" + std::to_string(i);
            auto n = tiny_b.layerNorm(x, p + ".ln");
            auto h = tiny_b.matmul(n, 1024, p + ".fc1");
            h = tiny_b.activation(h, graph::OpKind::GeLU, p + ".act");
            h = tiny_b.matmul(h, 256, p + ".fc2");
            x = tiny_b.add(x, h, p + ".res");
        }
    }
    auto tiny_g = tiny_b.build();
    core::OpgParams tiny_params;
    tiny_params.chunkBytes = kib(256);
    // Generous budget: this window exhausts in ~226k decisions.
    tiny_params.solverDecisionsPerWindow = 2000000;
    tiny_params.solverTimePerWindow = 10.0;
    core::PlanStats tiny_cold, tiny_warm;
    std::string tiny_cold_plan, tiny_warm_plan;
    {
        core::LcOpgPlanner planner(tiny_g, cap, km, tiny_params);
        tiny_cold_plan = planner.plan(&tiny_cold).serialize();
    }
    {
        core::LcOpgPlanner planner(tiny_g, cap, km, tiny_params);
        tiny_warm_plan = planner.plan(&tiny_warm).serialize();
    }
    bool memo_exact_ok =
        tiny_cold.overallStatus == solver::SolveStatus::Optimal &&
        tiny_warm.memoHits > 0 && tiny_cold_plan == tiny_warm_plan;

    const auto &gpts = *t4models.front().graph;
    core::PlanStats cold_stats, warm_stats;
    bool warm_valid = false;
    {
        core::LcOpgPlanner planner(gpts, cap, km);
        planner.plan(&cold_stats);
    }
    {
        core::LcOpgPlanner planner(gpts, cap, km);
        warm_valid = planner.plan(&warm_stats).validate(gpts, false);
    }
    bool memo_ok = memo_exact_ok && warm_valid &&
                   warm_stats.memoHits > 0;
    ok &= memo_ok;
    std::cout << "tiny model (all-OPTIMAL windows): identical plan "
              << (tiny_cold_plan == tiny_warm_plan ? "yes" : "NO")
              << ", " << tiny_warm.memoHits << " memo hits\n";
    std::cout << "GPTN-S cold: "
              << formatDouble(cold_stats.solveSeconds, 3) << " s, "
              << cold_stats.solverDecisions << " decisions; warm: "
              << formatDouble(warm_stats.solveSeconds, 3) << " s, "
              << warm_stats.solverDecisions << " decisions ("
              << warm_stats.memoHits << " memo hits across "
              << warm_stats.windows << " windows)\n";
    std::cout << "Memo reuse (hits > 0, exact replan on optimal "
                 "windows): "
              << (memo_ok ? "PASS" : "FAIL") << "\n";
    json << "  \"plan_memo\": {\"cold_solve_s\": "
         << cold_stats.solveSeconds
         << ", \"warm_solve_s\": " << warm_stats.solveSeconds
         << ", \"warm_hits\": " << warm_stats.memoHits
         << ", \"windows\": " << warm_stats.windows << "},\n";

    // ------------------------------------------------------------------
    // Part 4: merge-time re-balancing. Under the latency-priority
    // configuration (the Figure-6 study: 1 GiB in-flight budget,
    // lambda 0.5) some budget-truncated windows preload chunks even
    // though earlier windows reserved capacity greedily and did not
    // use it; the second merge pass moves those chunks back into the
    // stream. The check: at least one Table-4 model gets topped up,
    // and topping up never increases the preload set.
    // ------------------------------------------------------------------
    printHeading(std::cout,
                 "Merge-time re-balancing: truncated windows topped up");
    Table rt({"Model", "Rebalanced chunks", "Weights", "Preload (off)",
              "Preload (on)"});
    bool reb_any = false;
    json << "  \"rebalance\": [\n";
    for (std::size_t i = 0; i < 2; ++i) { // GPTN-S, GPTN-1.3B
        const auto &e = t4models[i];
        core::OpgParams params;
        params.solverDecisionsPerWindow = 20000;
        params.restartConflictBase = 1024;
        params.mPeak = mib(1024);
        params.lambda = 0.5;
        core::PlanMemo memo_off(2048), memo_on(2048);

        params.mergeRebalance = false;
        params.memo = &memo_off;
        core::PlanStats stats_off;
        core::LcOpgPlanner off(*e.graph, cap, km, params);
        auto plan_off = off.plan(&stats_off);

        params.mergeRebalance = true;
        params.memo = &memo_on;
        core::PlanStats stats_on;
        core::LcOpgPlanner on(*e.graph, cap, km, params);
        auto plan_on = on.plan(&stats_on);

        Bytes pre_off = plan_off.preloadBytes(*e.graph);
        Bytes pre_on = plan_on.preloadBytes(*e.graph);
        ok &= plan_on.validate(*e.graph, false);
        ok &= pre_on <= pre_off;
        reb_any |= stats_on.rebalancedChunks > 0;
        rt.addRow({e.name, std::to_string(stats_on.rebalancedChunks),
                   std::to_string(stats_on.rebalancedWeights),
                   formatBytes(pre_off), formatBytes(pre_on)});
        json << "    {\"model\": \"" << e.name
             << "\", \"rebalanced_chunks\": "
             << stats_on.rebalancedChunks
             << ", \"rebalanced_weights\": "
             << stats_on.rebalancedWeights
             << ", \"preload_mb_off\": " << toMiB(pre_off)
             << ", \"preload_mb_on\": " << toMiB(pre_on) << "}"
             << (i + 1 < 2 ? "," : "") << "\n";
    }
    rt.print(std::cout);
    ok &= reb_any;
    std::cout << "\nRe-balancing pass (>=1 model topped up, preload "
                 "never grows): "
              << (reb_any ? "PASS" : "FAIL") << "\n";
    json << "  ],\n";

    // ------------------------------------------------------------------
    // Part 5: inside-one-window portfolio search + symmetry breaking.
    // ------------------------------------------------------------------
    {
        auto [pok, pjson] = reportPortfolioStudy();
        ok &= pok;
        json << pjson << ",\n";
    }

    json << "  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
    if (argc > 1) {
        std::ofstream out(argv[1]);
        out << json.str();
        if (out.good()) {
            std::cout << "\nwrote " << argv[1] << "\n";
        } else {
            std::cerr << "failed to write " << argv[1] << "\n";
            ok = false;
        }
    }
    return ok ? 0 : 1;
}
