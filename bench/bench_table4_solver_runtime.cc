/**
 * @file
 * Table 4 reproduction: LC-OPG offline time breakdown (process nodes /
 * build CP model / solve) for GPT-Neo S/1.3B/2.7B and the synthetic
 * ViT-8B, Llama2-13B, Llama2-70B, each under the paper's 150-second
 * limit. Absolute times differ from the authors' 128-thread
 * workstation; the checks are (a) every plan lands OPTIMAL or FEASIBLE,
 * and (b) cost grows with model scale.
 */

#include "bench/harness.hh"

#include "core/lc_opg.hh"
#include "profiler/capacity.hh"

int
main()
{
    using namespace flashmem;
    using namespace flashmem::bench;

    printHeading(std::cout,
                 "Table 4: LC-OPG solver runtime (150 s budget)");

    struct Entry
    {
        std::string name;
        graph::Graph g;
        // Published columns (seconds / status).
        double p_process, p_build, p_solve;
        const char *p_status;
    };

    models::SyntheticTransformerCfg vit8b;
    vit8b.name = "vit_8b";
    vit8b.blocks = 40;
    vit8b.dModel = 4096;
    vit8b.heads = 32;
    vit8b.vocab = 1000;

    models::SyntheticTransformerCfg llama13;
    llama13.name = "llama2_13b";
    llama13.blocks = 40;
    llama13.dModel = 5120;
    llama13.heads = 40;
    llama13.ffnHidden = 13824;
    llama13.llamaStyle = true;

    models::SyntheticTransformerCfg llama70;
    llama70.name = "llama2_70b";
    llama70.blocks = 80;
    llama70.dModel = 8192;
    llama70.heads = 64;
    llama70.ffnHidden = 28672;
    llama70.kvDim = 1024;
    llama70.llamaStyle = true;

    std::vector<Entry> entries;
    entries.push_back({"GPTN-S", models::buildModel(ModelId::GPTNeoS),
                       0.010, 0.260, 45.00, "OPTIMAL"});
    entries.push_back({"GPTN-1.3B",
                       models::buildModel(ModelId::GPTNeo1_3B), 0.020,
                       1.170, 121.00, "FEASIBLE"});
    entries.push_back({"GPTN-2.7B",
                       models::buildModel(ModelId::GPTNeo2_7B), 0.050,
                       1.980, 121.00, "FEASIBLE"});
    entries.push_back({"ViT-8B",
                       buildSyntheticTransformer(vit8b,
                                                 Precision::FP16),
                       0.001, 4.110, 121.40, "FEASIBLE"});
    entries.push_back({"Llama2-13B",
                       buildSyntheticTransformer(llama13,
                                                 Precision::FP16),
                       0.007, 3.566, 124.80, "FEASIBLE"});
    entries.push_back({"Llama2-70B",
                       buildSyntheticTransformer(llama70,
                                                 Precision::FP16),
                       0.023, 14.456, 136.38, "FEASIBLE"});

    gpusim::KernelModel km(gpusim::DeviceProfile::onePlus12());
    profiler::AnalyticCapacityProvider cap(km);

    Table t({"Model", "Process (s)", "(paper)", "Build (s)", "(paper)",
             "Solve (s)", "(paper)", "Status", "(paper)"});
    bool ok = true;
    double prev_total = 0.0;
    double total_70b = 0.0, total_s = 0.0;
    for (const auto &e : entries) {
        core::OpgParams params;
        // Scale per-window budget so the whole-model budget mirrors
        // the paper's 150 s limit across ~60 windows.
        params.solverDecisionsPerWindow = 20000;
        core::LcOpgPlanner planner(e.g, cap, km, params);
        core::PlanStats stats;
        auto plan = planner.plan(&stats);
        ok &= plan.validate(e.g, false);

        const char *status =
            solver::solveStatusName(stats.overallStatus);
        t.addRow({e.name, formatDouble(stats.processNodesSeconds, 3),
                  formatDouble(e.p_process, 3),
                  formatDouble(stats.buildModelSeconds, 3),
                  formatDouble(e.p_build, 3),
                  formatDouble(stats.solveSeconds, 2),
                  formatDouble(e.p_solve, 2), status, e.p_status});

        double total = stats.processNodesSeconds +
                       stats.buildModelSeconds + stats.solveSeconds;
        if (e.name == "GPTN-S")
            total_s = total;
        if (e.name == "Llama2-70B")
            total_70b = total;
        ok &= stats.overallStatus == solver::SolveStatus::Optimal ||
              stats.overallStatus == solver::SolveStatus::Feasible;
        prev_total = total;
    }
    (void)prev_total;
    t.print(std::cout);

    // Scale check: the 70B plan costs far more than the small model,
    // mirroring the paper's nonlinear growth.
    ok &= total_70b > 2.0 * total_s;
    std::cout << "\nShape check (all plans feasible, cost grows with "
                 "scale): "
              << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
}
