/**
 * @file
 * Figure 9 reproduction: FlashMem against the two naive overlap
 * policies — Always-Next Loading (just-in-time, capacity-oblivious)
 * and Same-Op-Type Prefetching (partially capacity-aware) — on the
 * paper's six-model subset.
 */

#include "bench/harness.hh"

#include "core/runtime.hh"

int
main()
{
    using namespace flashmem;
    using namespace flashmem::bench;

    printHeading(std::cout,
                 "Figure 9: naive overlap strategies vs FlashMem");

    auto dev = gpusim::DeviceProfile::onePlus12();
    core::FlashMem fm(dev);
    const ModelId targets[] = {ModelId::GPTNeo1_3B, ModelId::ResNet50,
                               ModelId::SAM2,       ModelId::DeepViT,
                               ModelId::SDUNet,
                               ModelId::DepthAnythingL};

    Table t({"Model", "FlashMem", "Same-Op-Type", "vs Ours",
             "Always-Next", "vs Ours"});
    metrics::RatioSummary same_ratios, always_ratios;
    bool ok = true;
    for (auto id : targets) {
        const auto &g = cachedModel(id);
        gpusim::GpuSimulator fsim(dev);
        auto flash = fm.execute(fsim, cachedCompiled(fm, id));

        core::RunConfig naive_cfg;
        naive_cfg.branchFreeKernels = false;

        gpusim::GpuSimulator s1(dev);
        auto same_plan = baselines::sameOpTypePlan(g);
        auto same = core::StreamingRuntime(s1, g, same_plan)
                        .run(naive_cfg);
        gpusim::GpuSimulator s2(dev);
        auto next_plan = baselines::alwaysNextPlan(g);
        auto always = core::StreamingRuntime(s2, g, next_plan)
                          .run(naive_cfg);

        double same_r =
            static_cast<double>(same.integratedLatency()) /
            static_cast<double>(flash.integratedLatency());
        double always_r =
            static_cast<double>(always.integratedLatency()) /
            static_cast<double>(flash.integratedLatency());
        same_ratios.add(same_r);
        always_ratios.add(always_r);
        t.addRow({models::modelSpec(id).abbr,
                  formatMs(flash.integratedLatency()),
                  formatMs(same.integratedLatency()),
                  formatRatio(same_r),
                  formatMs(always.integratedLatency()),
                  formatRatio(always_r)});
        ok &= always_r > 1.0;        // Always-Next loses everywhere
        ok &= always_r > same_r;     // type-matching beats pure JIT
    }
    t.print(std::cout);

    // FlashMem must beat Same-Op-Type in the aggregate (individual
    // compute-bound models can come close).
    ok &= same_ratios.geomean() > 1.0;
    ok &= always_ratios.geomean() > same_ratios.geomean();

    std::cout << "\nWorst case measured: Always-Next "
              << formatRatio(always_ratios.max()) << ", Same-Op-Type "
              << formatRatio(same_ratios.max())
              << " (paper: up to 4.3x / 2.4x on-device; the simulator "
                 "reproduces the ordering with damped magnitude)\n";
    std::cout << "Shape check: " << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
}
