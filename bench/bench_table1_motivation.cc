/**
 * @file
 * Table 1 reproduction: memory usage and latency of Whisper-M,
 * GPT-Neo-S, and SD-UNet under the MNN preloading strategy on the
 * OnePlus 12 — the motivating observation that GPU initialization
 * (load + transform) dominates and peak memory is a large multiple of
 * the model size.
 */

#include "bench/harness.hh"

#include "common/logging.hh"

int
main()
{
    using namespace flashmem;
    using namespace flashmem::bench;

    printHeading(std::cout, "Table 1: preloading cost on OnePlus 12 "
                            "(MNN strategy) — paper vs measured");

    struct PaperRow
    {
        ModelId id;
        double peak, avg, load, trans, infer; // MB / ms
    };
    // Published values (Whisper row reports the paper's Whisper entry).
    const PaperRow paper_rows[] = {
        {ModelId::WhisperMedium, 4077, 1650, 2702, 3441, 1343},
        {ModelId::GPTNeoS, 1026, 610, 631, 2898, 337},
        {ModelId::SDUNet, 4858, 1800, 4159, 17588, 1647},
    };

    auto dev = gpusim::DeviceProfile::onePlus12();
    Table t({"Model", "Peak MB", "(paper)", "Avg MB", "(paper)",
             "Load ms", "(paper)", "Trans ms", "(paper)", "Infer ms",
             "(paper)"});

    bool shape_ok = true;
    for (const auto &row : paper_rows) {
        const auto &g = cachedModel(row.id);
        // Decompose init into disk load and transform by re-deriving
        // the disk time from the device profile.
        auto r = runBaseline(FrameworkId::MNN, g, dev);
        FM_ASSERT(r.has_value(), "MNN must support Table-1 models");
        double load_ms =
            toMilliseconds(dev.diskToUm.transferTime(
                g.totalWeightBytes()) +
                           dev.diskRequestOverhead);
        double trans_ms = toMilliseconds(r->initLatency()) - load_ms;
        double peak_mb = toMiB(r->peakMemory);
        double avg_mb = r->avgMemoryBytes / (1024.0 * 1024.0);

        t.addRow({models::modelSpec(row.id).abbr,
                  formatDouble(peak_mb, 0), formatDouble(row.peak, 0),
                  formatDouble(avg_mb, 0), formatDouble(row.avg, 0),
                  formatDouble(load_ms, 0), formatDouble(row.load, 0),
                  formatDouble(trans_ms, 0), formatDouble(row.trans, 0),
                  formatMs(r->execLatency()),
                  formatDouble(row.infer, 0)});

        // Shape checks: transform dominates load; peak is a multiple
        // of the weight footprint.
        shape_ok &= trans_ms > load_ms;
        shape_ok &= peak_mb > 2.0 * toMiB(g.totalWeightBytes());
    }
    t.print(std::cout);
    std::cout << "\nShape check (transform >> load, peak >> weights): "
              << (shape_ok ? "PASS" : "FAIL") << "\n";
    return shape_ok ? 0 : 1;
}
