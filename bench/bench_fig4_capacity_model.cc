/**
 * @file
 * Figure 4 reproduction: the profiling + XGBoost pipeline. Kernels from
 * multiple models are profiled under synthetic extra-I/O workloads
 * (with measurement noise), the gradient-boosted latency regressor is
 * trained, and its held-out accuracy plus derived per-class load
 * capacities are reported.
 */

#include "bench/harness.hh"

#include "profiler/capacity.hh"
#include "profiler/features.hh"

int
main()
{
    using namespace flashmem;
    using namespace flashmem::bench;
    using graph::OpClass;

    printHeading(std::cout,
                 "Figure 4: kernel profiling + GBT latency model");

    gpusim::KernelModel km(gpusim::DeviceProfile::onePlus12());
    profiler::LearnedCapacityProvider learned(km);

    // Paper: "profiling operators from more than ten models"; we train
    // on a representative architectural mix (attention, conv, DPT,
    // UNet, speech) covering all operator classes.
    std::vector<const graph::Graph *> graphs;
    const ModelId train_set[] = {
        ModelId::ViT,          ModelId::ResNet50,
        ModelId::GPTNeoS,      ModelId::DepthAnythingS,
        ModelId::WhisperMedium};
    for (auto id : train_set)
        graphs.push_back(&cachedModel(id));
    learned.profileAndFit(graphs);

    std::cout << "profiled samples: " << learned.sampleCount()
              << ", trees: " << learned.regressor().treeCount()
              << ", features: "
              << profiler::kernelFeatureNames().size() << "\n";
    std::cout << "held-out R^2: "
              << formatDouble(learned.holdoutR2(), 4) << "\n\n";

    // Per-class capacity summary on an unseen model (DeepViT).
    profiler::AnalyticCapacityProvider analytic(km);
    const auto &g = cachedModel(ModelId::DeepViT);
    Table t({"Class", "layers", "learned cap (MB, mean)",
             "analytic cap (MB, mean)"});
    std::map<OpClass, std::pair<double, int>> learned_sum, analytic_sum;
    for (const auto &n : g.nodes()) {
        auto spec = gpusim::kernelSpecFor(g, n.id, true);
        spec.pipelined = true;
        auto cls = spec.cls();
        learned_sum[cls].first += toMiB(learned.capacityBytes(spec));
        analytic_sum[cls].first += toMiB(analytic.capacityBytes(spec));
        ++learned_sum[cls].second;
    }
    bool ok = true;
    for (auto cls : {OpClass::Reusable, OpClass::Elemental,
                     OpClass::Movement, OpClass::Hierarchical}) {
        auto [lsum, n] = learned_sum[cls];
        double asum = analytic_sum[cls].first;
        t.addRow({graph::opClassName(cls), std::to_string(n),
                  formatDouble(n ? lsum / n : 0, 2),
                  formatDouble(n ? asum / n : 0, 2)});
    }
    t.print(std::cout);

    // Checks: the regressor fits well; hierarchical capacity is zero
    // under both providers; the ground-truth capacity ordering follows
    // Table 5 (reusable mean above elemental). The learned per-class
    // means track the analytic ones loosely — small-kernel inversion
    // noise is expected and absorbed by the C4 fallbacks.
    ok &= learned.holdoutR2() > 0.9;
    ok &= learned_sum[OpClass::Hierarchical].first == 0.0;
    ok &= analytic_sum[OpClass::Hierarchical].first == 0.0;
    double reuse_mean = analytic_sum[OpClass::Reusable].first /
                        std::max(1, learned_sum[OpClass::Reusable]
                                        .second);
    double elem_mean = analytic_sum[OpClass::Elemental].first /
                       std::max(1, learned_sum[OpClass::Elemental]
                                       .second);
    ok &= reuse_mean > elem_mean;
    std::cout << "\nShape check (R^2 > 0.9, hierarchical = 0, "
                 "analytic class ordering): "
              << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
}
