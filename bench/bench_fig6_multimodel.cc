/**
 * @file
 * Figure 6 reproduction: memory usage over time for a FIFO multi-model
 * workload (DepthAnything, ViT, SD-UNet, Whisper — plus GPT-Neo-1.3B
 * under FlashMem) with interleaved iterations. MNN spikes to multiple
 * GB on every model initialization; FlashMem's streamed execution stays
 * near its 1.5 GB configuration.
 */

#include "bench/harness.hh"

#include "multidnn/fifo_scheduler.hh"

int
main()
{
    using namespace flashmem;
    using namespace flashmem::bench;

    printHeading(std::cout,
                 "Figure 6: multi-model FIFO memory behaviour");

    auto dev = gpusim::DeviceProfile::onePlus12();

    // FlashMem runs the full five-model mix (paper Figure 6a).
    auto flash_queue = multidnn::interleavedWorkload(
        {ModelId::DepthAnythingS, ModelId::ViT, ModelId::SDUNet,
         ModelId::WhisperMedium, ModelId::GPTNeo1_3B},
        /*iterations=*/3, /*gap=*/0, /*seed=*/99);
    // MNN cannot hold GPT-Neo-1.3B at all (paper Figure 6b drops it).
    auto mnn_queue = multidnn::interleavedWorkload(
        {ModelId::DepthAnythingS, ModelId::ViT, ModelId::SDUNet,
         ModelId::WhisperMedium},
        /*iterations=*/3, /*gap=*/0, /*seed=*/99);

    // Latency-priority configuration: paper uses a manually selected
    // 1.5 GB constraint for this study.
    core::FlashMemOptions opt;
    opt.opg.mPeak = mib(1024);
    opt.opg.lambda = 0.5;
    core::FlashMem fm(dev, opt);

    auto flash = multidnn::FifoScheduler::runFlashMem(fm, flash_queue);
    auto flash_trace = multidnn::FifoScheduler::lastTrace();
    auto mnn = multidnn::FifoScheduler::runPreload(FrameworkId::MNN,
                                                   dev, mnn_queue);
    auto mnn_trace = multidnn::FifoScheduler::lastTrace();

    std::cout << "FlashMem (5 models x 3 iterations):\n";
    metrics::renderAsciiChart(
        std::cout,
        {{"FlashMem total memory", '#',
          metrics::sampleTrace(flash_trace, 76)}},
        76, 10);
    std::cout << "\nMNN (4 models x 3 iterations — GPTN-1.3B "
                 "unsupported):\n";
    metrics::renderAsciiChart(
        std::cout,
        {{"MNN total memory", '.', metrics::sampleTrace(mnn_trace,
                                                        76)}},
        76, 10);

    Table t({"Strategy", "Models", "Makespan", "Peak mem", "Avg mem"});
    t.addRow({"FlashMem", "5 (incl. GPTN-1.3B)",
              formatMs(flash.makespan), formatBytes(flash.peakMemory),
              formatBytes(static_cast<Bytes>(flash.avgMemoryBytes))});
    t.addRow({"MNN", "4", formatMs(mnn.makespan),
              formatBytes(mnn.peakMemory),
              formatBytes(static_cast<Bytes>(mnn.avgMemoryBytes))});
    t.print(std::cout);

    bool ok = true;
    // FlashMem stays under the configured ceiling (paper: 1.5 GB);
    // MNN spikes into multi-GB territory on a smaller model set.
    ok &= flash.peakMemory < gib(1.5);
    ok &= mnn.peakMemory > gib(2.5);
    ok &= flash.makespan < mnn.makespan;
    std::cout << "\nShape check (FlashMem < 1.5 GB, MNN multi-GB "
                 "spikes): "
              << (ok ? "PASS" : "FAIL") << "\n";
    return ok ? 0 : 1;
}
